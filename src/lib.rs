//! `bbncg` — **b**ounded **b**udget **n**etwork **c**reation **g**ames.
//!
//! A production-quality Rust reproduction of *“On a Bounded Budget
//! Network Creation Game”* (Ehsani, Shokat Fadaee, Fazli, Mehrabian,
//! Sadeghian Sadeghabad, Safari, Saghafian — SPAA 2011). Players are
//! vertices with a fixed budget of links to buy; costs are either the
//! sum of distances (SUM) or the local diameter (MAX) in the undirected
//! underlying graph. This crate is a facade re-exporting the workspace:
//!
//! * [`graph`] — graph substrate (ownership digraphs, BFS, distances,
//!   connectivity, generators, and the in-place-editable
//!   [`PatchableCsr`](graph::PatchableCsr));
//! * [`game`] — the game itself (instances, costs, best responses,
//!   equilibria, dynamics, price of anarchy), built on the
//!   allocation-free deviation engine
//!   ([`DeviationScratch`](game::DeviationScratch)) and the batched
//!   parallel Nash audit ([`audit_equilibrium`](game::audit_equilibrium));
//! * [`constructions`] — the paper's explicit equilibria (Theorem 2.3,
//!   the Figure 2 spider, the Theorem 3.4 binary tree, the Theorem 5.3
//!   shift-graph equilibrium);
//! * [`facility`] — k-center / k-median solvers and the Theorem 2.1
//!   NP-hardness reductions;
//! * [`analysis`] — structure analyzers and the experiment framework
//!   regenerating every table and figure of the paper;
//! * [`scenario`] — the declarative scenario engine: spec files,
//!   perturbation events (churn, budget shocks, adversarial deletion),
//!   checkpoint/resume, streaming JSONL metric sinks;
//! * [`serve`] — the dependency-free HTTP job server: scenario/verify
//!   jobs over a bounded queue and worker pool, chunked JSONL result
//!   streams byte-identical to offline runs;
//! * [`par`] — the minimal parallel-execution substrate;
//! * [`obs`] — zero-cost-when-off observability: the sharded metrics
//!   registry behind `GET /metrics` and the span-tracing layer behind
//!   `--trace`.
//!
//! # Quickstart
//!
//! ```
//! use bbncg::constructions::spider_equilibrium;
//! use bbncg::game::{is_nash_equilibrium, CostModel};
//!
//! // The Theorem 3.2 spider with legs of length 3 (n = 10): a MAX
//! // equilibrium tree of diameter 2k = 6.
//! let eq = spider_equilibrium(3);
//! assert_eq!(eq.realization.diameter().unwrap(), 6);
//!
//! // Verify no player can improve by deviating (exact check).
//! assert!(is_nash_equilibrium(&eq.realization, CostModel::Max));
//! ```

pub use bbncg_analysis as analysis;
pub use bbncg_constructions as constructions;
pub use bbncg_core as game;
pub use bbncg_directed as directed;
pub use bbncg_facility as facility;
pub use bbncg_graph as graph;
pub use bbncg_obs as obs;
pub use bbncg_par as par;
pub use bbncg_scenario as scenario;
pub use bbncg_serve as serve;
