#!/usr/bin/env bash
# Emit a BENCH_dynamics.json perf baseline: dynamics steps/sec (engine
# vs. the rebuild-per-candidate reference), batched Nash-verify
# throughput, the cost-kernel comparison, and scenario-engine
# steps/sec on the churn example (examples/scenarios/churn.toml).
# Later PRs re-run this to show a perf trajectory.
#
# Kernel-comparison fields (see `bbncg_core::kernel`):
#   kernel_workload_n256             — the workload description for the
#                                      n=256 columns (unit budgets,
#                                      exact best response, capped
#                                      rounds so the queue side stays
#                                      affordable)
#   kernel_steps_per_sec_queue_n32   — queue kernel, existing n=32
#   kernel_steps_per_sec_bitset_n32  — bitset kernel, existing n=32
#   kernel_steps_per_sec_queue_n256  — queue kernel, n=256 workload
#   kernel_steps_per_sec_bitset_n256 — bitset kernel, n=256 workload
#   kernel_bitset_speedup_n256       — bitset/queue ratio at n=256; the
#                                      binary asserts >= 2.0 (the PR 3
#                                      acceptance bar)
#   kernel_total_steps_n256          — applied deviations (identical
#                                      across kernels by construction;
#                                      asserted)
#
# Also emits BENCH_serve.json via the `loadgen` bin: an in-process
# bbncg-serve instance (4 workers, bounded queue) hammered by 64
# concurrent TCP clients, each stream verified byte-for-byte against
# the offline reference. Fields:
#   clients / requests_per_client / server_workers / queue_capacity
#                        — the load shape
#   requests_total       — completed submit+stream round trips
#   requests_per_sec     — round trips per wall-clock second
#   latency_p50_ms, latency_p99_ms
#                        — per-request submit→stream-complete latency
#   retries_429          — backpressure bounces absorbed by retry
#   dropped_streams, corrupted_streams
#                        — must both be 0 (the binary asserts)
#
# Usage: scripts/bench_snapshot.sh [output.json] [serve-output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_dynamics.json}"
serve_out="${2:-BENCH_serve.json}"
cargo run --release -q -p bbncg-bench --features naive-ref --bin bench_snapshot -- "$out"
cargo run --release -q -p bbncg-bench --bin loadgen -- "$serve_out"
