#!/usr/bin/env bash
# Emit a BENCH_dynamics.json perf baseline: dynamics steps/sec (engine
# vs. the rebuild-per-candidate reference), batched Nash-verify
# throughput, the cost-kernel comparison, and scenario-engine
# steps/sec on the churn example (examples/scenarios/churn.toml).
# Later PRs re-run this to show a perf trajectory.
#
# Kernel-comparison fields (see `bbncg_core::kernel`):
#   kernel_workload_n256             — the workload description for the
#                                      n=256 columns (unit budgets,
#                                      exact best response, capped
#                                      rounds so the queue side stays
#                                      affordable)
#   kernel_steps_per_sec_queue_n32   — queue kernel, existing n=32
#   kernel_steps_per_sec_bitset_n32  — bitset kernel, existing n=32
#   kernel_steps_per_sec_queue_n256  — queue kernel, n=256 workload
#   kernel_steps_per_sec_bitset_n256 — bitset kernel, n=256 workload
#   kernel_bitset_speedup_n256       — bitset/queue ratio at n=256; the
#                                      binary asserts >= 2.0 (the PR 3
#                                      acceptance bar)
#   kernel_total_steps_n256          — applied deviations (identical
#                                      across kernels by construction;
#                                      asserted)
#
# Kernel scale fields (the sparse-kernel series — unit-budget
# best-swap *partial activations*: each kernel prices the same
# round-robin activation stream from the same start, stopping at 8
# activations or a 20s leg budget, whichever first (never fewer than
# one); committed move sequences are asserted identical over the
# common prefix, so the ratios stay workload-fair even where full
# trajectories are unaffordable. Rates carry >=3 significant digits —
# the n=100000 leg runs at activations per *minute*):
#   kernel_scale_workload            — the workload description
#   kernel_steps_per_sec_{queue,bitset,sparse}_n1024
#                                    — three-way comparison inside the
#                                      bitset Auto band
#   kernel_steps_per_sec_{queue,sparse}_n16384
#                                    — the sparse acceptance size; the
#                                      binary warns below 3x (the
#                                      cross-activation-retention bar)
#   kernel_sparse_speedup_n16384     — sparse/queue ratio at n=16384
#   kernel_steps_per_sec_sparse_n100000
#                                    — the large-n soak regime (sparse
#                                      only; one queue activation is
#                                      already seconds there)
#   peak_rss_mib                     — VmHWM of the snapshot process
#                                      (dominated by the n=100000
#                                      sparse leg; the soak must fit in
#                                      O(n + m) memory, no bit mirror)
#
# Round-executor fields (see `bbncg_core::round` — sequential vs
# speculative-parallel rounds; executors are step-identical, so the
# seq/spec step counts are asserted equal and every ratio is
# workload-fair):
#   rounds_workload                  — the two workload shapes (n=256
#                                      and n=1024, unit budgets, exact
#                                      best response, capped rounds)
#   rounds_host_cpus                 — std::thread::available_parallelism
#                                      at snapshot time; speculative
#                                      speedups are only meaningful
#                                      (and the >=2x n=1024/t8 bar only
#                                      enforced) when this is >= 2 —
#                                      single-core hosts record the
#                                      honest ~1x numbers instead
#   rounds_seq_steps_per_sec_n{256,1024}
#                                    — sequential executor, 1 thread
#   rounds_spec_steps_per_sec_n{256,1024}_t{1,2,8}
#                                    — speculative executor at a pinned
#                                      worker-thread cap (the scaling
#                                      curve tracked per-PR)
#   rounds_spec_speedup_n{256,1024}_t8
#                                    — speculative t8 / sequential t1
#   rounds_total_steps_n{256,1024}   — applied deviations (identical
#                                      across executors; asserted)
#
# Speculation / pruning health (read from the `bbncg_obs` registry,
# which the binary enables only after every timed measurement so the
# perf series keeps measuring the disabled, zero-cost configuration):
#   rounds_commit_rate               — speculative commits / evals on
#                                      the n=1024 rounds workload
#                                      (wasted-work complement:
#                                      1 - commit - discard is window
#                                      positions invalidated/unused)
#   rounds_discard_rate              — speculative evals discarded
#                                      after an earlier commit / evals
#   prune_hit_rate_{queue,bitset,sparse}
#                                    — Lemma 2.2 lower-bound skips /
#                                      (skips + priced candidates) per
#                                      kernel on the n=1024 scale
#                                      workload. The three rates were
#                                      byte-identical through PR 7
#                                      because the skip decision is
#                                      bound-based and kernel-agnostic;
#                                      the sparse rate now genuinely
#                                      diverges — in-flight incumbent
#                                      aborts and overshoot-ball skips
#                                      (candidates pre-certified by a
#                                      neighbouring abort's bound)
#                                      count as skips there
#   repair_workload                  — the two counter-health legs for
#                                      the fields below
#   kernel_base_repair_rate          — commits absorbed by the
#                                      retained-base repair path /
#                                      all base resolutions, on a
#                                      same-source re-audit trace at
#                                      n=4096 (perf_guard.rs enforces
#                                      the same shape in CI)
#   kernel_repair_affected_p90       — p90 affected-set size per repair
#   kernel_prune_abort_rate_sparse   — in-flight incumbent aborts /
#                                      priced candidates on a budget-2
#                                      best-swap leg at n=1024
#   kernel_bound_cache_hit_rate      — per-target bound-cache hits /
#                                      lookups on the same leg (budget
#                                      1 never reuses a target's bound
#                                      within a session, hence the
#                                      dedicated budget-2 leg)
#
# Both JSON files carry a schema_version field (bumped on any
# field add/rename/remove) and are published atomically
# (write temp + rename), so concurrent readers never see a torn
# snapshot. The separate `obs_guard` bin (cargo run -p bbncg-bench
# --bin obs_guard) enforces the zero-cost-when-off promise:
# enabled-registry throughput must stay within a few percent of
# disabled on the n=1024 speculative workload.
#
# Also emits BENCH_serve.json via the `loadgen` bin: an in-process
# bbncg-serve instance (epoll front end, 4 workers, bounded queue)
# hammered by 640 concurrent keep-alive TCP clients (one persistent
# connection each), every stream verified byte-for-byte against the
# offline reference, plus a cache leg and a sharded-sweep leg. Fields:
#   clients / requests_per_client / keep_alive / server_workers /
#   queue_capacity       — the load shape
#   requests_total       — completed submit+stream round trips
#   requests_per_sec     — round trips per wall-clock second
#   baseline_req_per_sec / req_per_sec_vs_baseline
#                        — PR 9's thread-per-connection number and the
#                          keep-alive front end's ratio against it
#   latency_p50_ms, latency_p99_ms
#                        — per-request submit→stream-complete latency
#   retries_429          — backpressure bounces absorbed by retry
#   dropped_streams, corrupted_streams
#                        — must both be 0 (the binary asserts)
#   cache_sweep_seeds / cache_recompute_p50_us / cache_hit_p50_us /
#   cache_replay_p50_us / cache_speedup
#                        — churn-sweep recompute (submit -> last byte)
#                          vs content-addressed cache hit (submit ->
#                          202 receipt naming the completed job; the
#                          byte-verified replay is timed separately);
#                          the binary asserts the speedup is >= 100x
#   shard_merge_match    — coordinator + two peers merged stream is
#                          byte-identical to the offline reference
#                          (the binary asserts)
#   server_rejected_429, server_p99_us
#                        — the server's own accounting from /metrics
#
# Usage: scripts/bench_snapshot.sh [output.json] [serve-output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_dynamics.json}"
serve_out="${2:-BENCH_serve.json}"
cargo run --release -q -p bbncg-bench --features naive-ref --bin bench_snapshot -- "$out"
cargo run --release -q -p bbncg-bench --bin loadgen -- "$serve_out"
