#!/usr/bin/env bash
# Emit a BENCH_dynamics.json perf baseline: dynamics steps/sec (engine
# vs. the rebuild-per-candidate reference), batched Nash-verify
# throughput, and scenario-engine steps/sec on the churn example
# (examples/scenarios/churn.toml). Later PRs re-run this to show a
# perf trajectory.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_dynamics.json}"
cargo run --release -q -p bbncg-bench --features naive-ref --bin bench_snapshot -- "$out"
