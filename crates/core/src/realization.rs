//! Realizations: strategy profiles as graphs.
//!
//! A strategy profile `(S₁,…,Sₙ)` of `(b₁,…,bₙ)-BG` *is* an ownership
//! digraph — vertex `i` owns an arc to each member of `Sᵢ`. A
//! [`Realization`] bundles that digraph with the derived undirected CSR
//! view and component count, keeping them consistent across deviations.

use crate::budget::BudgetVector;
use crate::cost::{c_inf, CostModel};
use bbncg_graph::{components, BfsScratch, Components, Csr, NodeId, OwnedDigraph};

/// A strategy profile of the game, with cached undirected view.
#[derive(Clone, Debug)]
pub struct Realization {
    g: OwnedDigraph,
    csr: Csr,
    comps: Components,
}

impl Realization {
    /// Wrap an ownership digraph as a realization (of the instance whose
    /// budget vector is the digraph's out-degree sequence).
    pub fn new(g: OwnedDigraph) -> Self {
        let csr = Csr::from_digraph(&g);
        let comps = components(&csr);
        Realization { g, csr, comps }
    }

    /// Number of players.
    #[inline]
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// The ownership digraph.
    #[inline]
    pub fn graph(&self) -> &OwnedDigraph {
        &self.g
    }

    /// The undirected underlying graph `U(G)`.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Connected-component structure of `U(G)`.
    #[inline]
    pub fn components(&self) -> &Components {
        &self.comps
    }

    /// Number of connected components κ.
    #[inline]
    pub fn kappa(&self) -> usize {
        self.comps.count
    }

    /// The instance's budget vector (out-degree sequence).
    pub fn budgets(&self) -> BudgetVector {
        BudgetVector::of_realization(&self.g)
    }

    /// Strategy of player `u` (targets of its owned arcs).
    #[inline]
    pub fn strategy(&self, u: NodeId) -> &[NodeId] {
        self.g.out(u)
    }

    /// Replace player `u`'s strategy and refresh the cached views.
    ///
    /// # Panics
    /// Panics if the new strategy has the wrong size for `u`'s budget
    /// (strategies must spend the whole budget), contains `u`, or
    /// contains duplicates.
    pub fn set_strategy(&mut self, u: NodeId, targets: Vec<NodeId>) {
        assert_eq!(
            targets.len(),
            self.g.out_degree(u),
            "strategy size must equal the budget of {u}"
        );
        self.g.set_out(u, targets);
        self.csr = Csr::from_digraph(&self.g);
        self.comps = components(&self.csr);
    }

    /// A copy of this realization with `u` deviating to `targets`.
    pub fn with_strategy(&self, u: NodeId, targets: Vec<NodeId>) -> Realization {
        let mut other = self.clone();
        other.set_strategy(u, targets);
        other
    }

    /// Is `U(G)` connected?
    pub fn is_connected(&self) -> bool {
        self.kappa() <= 1 || self.n() <= 1
    }

    /// The social cost: `diam(U(G))`, or `C_inf = n²` when disconnected
    /// (consistent with the game's distance convention).
    pub fn social_diameter(&self) -> u64 {
        match bbncg_graph::diameter(&self.csr) {
            bbncg_graph::Diameter::Finite(d) => d as u64,
            bbncg_graph::Diameter::Disconnected => c_inf(self.n()),
        }
    }

    /// Finite diameter of `U(G)` if connected.
    pub fn diameter(&self) -> Option<u32> {
        bbncg_graph::diameter(&self.csr).finite()
    }

    /// Cost of player `u` under `model` (fresh scratch; see
    /// [`Realization::cost_with`] for the allocation-free variant).
    pub fn cost(&self, u: NodeId, model: CostModel) -> u64 {
        let mut scratch = BfsScratch::new(self.n());
        self.cost_with(u, model, &mut scratch)
    }

    /// Cost of player `u` under `model`, reusing `scratch`.
    pub fn cost_with(&self, u: NodeId, model: CostModel, scratch: &mut BfsScratch) -> u64 {
        crate::cost::vertex_cost(model, &self.csr, self.kappa(), u, scratch)
    }

    /// Costs of all players (parallel over vertices).
    pub fn costs(&self, model: CostModel) -> Vec<u64> {
        let n = self.n();
        let kappa = self.kappa();
        let mut out = vec![0u64; n];
        bbncg_par::par_chunks_mut(&mut out, |start, chunk| {
            let mut scratch = BfsScratch::new(n);
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = crate::cost::vertex_cost(
                    model,
                    &self.csr,
                    kappa,
                    NodeId::new(start + off),
                    &mut scratch,
                );
            }
        });
        out
    }
}

impl PartialEq for Realization {
    fn eq(&self, other: &Self) -> bool {
        self.g == other.g
    }
}

impl Eq for Realization {}

impl std::hash::Hash for Realization {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.g.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn caches_stay_consistent_across_deviation() {
        let g = OwnedDigraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut r = Realization::new(g);
        assert!(r.is_connected());
        assert_eq!(r.diameter(), Some(3));
        // Player 2 rewires 2->3 to 2->0: graph 0-1-2 triangle-ish path + 3 isolated.
        r.set_strategy(v(2), vec![v(0)]);
        assert!(!r.is_connected());
        assert_eq!(r.kappa(), 2);
        assert_eq!(r.social_diameter(), 16);
        assert_eq!(r.diameter(), None);
    }

    #[test]
    fn with_strategy_leaves_original_untouched() {
        let g = OwnedDigraph::from_arcs(3, &[(0, 1), (1, 2)]);
        let r = Realization::new(g);
        let r2 = r.with_strategy(v(1), vec![v(0)]);
        assert_eq!(r.diameter(), Some(2));
        assert_eq!(r2.kappa(), 2);
        assert_ne!(r, r2);
    }

    #[test]
    #[should_panic(expected = "strategy size")]
    fn strategy_must_spend_budget() {
        let g = OwnedDigraph::from_arcs(3, &[(0, 1), (1, 2)]);
        let mut r = Realization::new(g);
        r.set_strategy(v(0), vec![]);
    }

    #[test]
    fn costs_match_manual_path() {
        let g = OwnedDigraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = Realization::new(g);
        assert_eq!(r.costs(CostModel::Sum), vec![6, 4, 4, 6]);
        assert_eq!(r.costs(CostModel::Max), vec![3, 2, 2, 3]);
        assert_eq!(r.cost(v(0), CostModel::Sum), 6);
    }

    #[test]
    fn budgets_roundtrip() {
        let g = OwnedDigraph::from_arcs(3, &[(0, 1), (0, 2)]);
        let r = Realization::new(g);
        assert_eq!(r.budgets().as_slice(), &[2, 0, 0]);
        assert_eq!(r.strategy(v(0)), &[v(1), v(2)]);
    }
}
