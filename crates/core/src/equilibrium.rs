//! Nash equilibrium verification and certificates.
//!
//! A profile is a (pure) Nash equilibrium when *no* player can strictly
//! decrease its cost by any unilateral strategy change. Verification is
//! exact — each player's full deviation space is searched (with early
//! exit on the first improvement) — and runs players in parallel.
//!
//! For large structured instances where exact search is infeasible the
//! paper's own certificates are implemented: [`lemma22_certifies`]
//! (local diameter ≤ 2 without braces, or = 1, implies best response in
//! both versions) and the swap-equilibrium relaxation
//! ([`is_swap_equilibrium`]) matching Alon et al.'s move set.

use crate::best_response::{best_swap_response_with, exact_best_response_cost_with};
use crate::cost::CostModel;
use crate::deviation::DeviationScratch;
use crate::kernel::CostKernel;
use crate::realization::Realization;
use bbncg_graph::{BfsScratch, NodeId};
use std::sync::atomic::{AtomicBool, Ordering};

/// A profitable unilateral deviation, refuting equilibrium.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The player that can improve.
    pub player: NodeId,
    /// Its current cost.
    pub current_cost: u64,
    /// The cost of its best response.
    pub best_cost: u64,
}

/// Is player `u` playing a best response? Exact (enumerates deviations,
/// early-exits on the first strict improvement).
pub fn is_best_response(r: &Realization, u: NodeId, model: CostModel) -> bool {
    is_best_response_with(&mut DeviationScratch::new(r), r, u, model)
}

/// [`is_best_response`] reusing a caller-held [`DeviationScratch`].
pub fn is_best_response_with(
    scratch: &mut DeviationScratch,
    r: &Realization,
    u: NodeId,
    model: CostModel,
) -> bool {
    if r.graph().out_degree(u) == 0 {
        return true; // the empty strategy is the only strategy
    }
    scratch.begin(r, u, model);
    let current = scratch.cost_of(r.strategy(u));
    let best = exact_best_response_cost_with(scratch, r, u, model, Some(current));
    best >= current
}

/// Is the profile a Nash equilibrium under `model`? Exact; players are
/// verified in parallel, with a shared flag to stop early once any
/// violation is found.
///
/// ```
/// use bbncg_core::{is_nash_equilibrium, CostModel, Realization};
/// use bbncg_graph::generators;
///
/// // A star is an equilibrium in both versions; a long directed path
/// // is not.
/// let star = Realization::new(generators::star(6));
/// assert!(is_nash_equilibrium(&star, CostModel::Sum));
/// let path = Realization::new(generators::path(6));
/// assert!(!is_nash_equilibrium(&path, CostModel::Sum));
/// ```
pub fn is_nash_equilibrium(r: &Realization, model: CostModel) -> bool {
    is_nash_equilibrium_with_kernel(r, model, CostKernel::Auto)
}

/// [`is_nash_equilibrium`] with an explicit [`CostKernel`] (each worker
/// builds its own kernel state through `par_map_init`). Kernels are
/// move-for-move equivalent, so the verdict is kernel-independent.
pub fn is_nash_equilibrium_with_kernel(
    r: &Realization,
    model: CostModel,
    kernel: CostKernel,
) -> bool {
    let n = r.n();
    let refuted = AtomicBool::new(false);
    let flags = bbncg_par::par_map_init(
        n,
        || DeviationScratch::with_kernel(r, kernel),
        |scratch, i| {
            if refuted.load(Ordering::Relaxed) {
                return true; // skip work; overall answer already false
            }
            let ok = is_best_response_with(scratch, r, NodeId::new(i), model);
            if !ok {
                refuted.store(true, Ordering::Relaxed);
            }
            ok
        },
    );
    flags.into_iter().all(|ok| ok)
}

/// First player (in id order) with a profitable deviation, with its
/// current and best costs. Deterministic; `None` means equilibrium.
pub fn find_violation(r: &Realization, model: CostModel) -> Option<Violation> {
    find_violation_with_kernel(r, model, CostKernel::Auto)
}

/// [`find_violation`] with an explicit [`CostKernel`].
pub fn find_violation_with_kernel(
    r: &Realization,
    model: CostModel,
    kernel: CostKernel,
) -> Option<Violation> {
    let mut scratch = DeviationScratch::with_kernel(r, kernel);
    for i in 0..r.n() {
        let u = NodeId::new(i);
        if r.graph().out_degree(u) == 0 {
            continue;
        }
        scratch.begin(r, u, model);
        let current = scratch.cost_of(r.strategy(u));
        let best = exact_best_response_cost_with(&mut scratch, r, u, model, Some(current));
        if best < current {
            return Some(Violation {
                player: u,
                current_cost: current,
                best_cost: best,
            });
        }
    }
    None
}

/// Is the profile a **swap equilibrium**: no player can improve by
/// replacing a single owned arc's target? This is the coarser
/// equilibrium notion of Alon et al.'s basic network creation games;
/// every Nash equilibrium of the budget game is also a swap equilibrium.
pub fn is_swap_equilibrium(r: &Realization, model: CostModel) -> bool {
    is_swap_equilibrium_with_kernel(r, model, CostKernel::Auto)
}

/// [`is_swap_equilibrium`] with an explicit [`CostKernel`].
pub fn is_swap_equilibrium_with_kernel(
    r: &Realization,
    model: CostModel,
    kernel: CostKernel,
) -> bool {
    let n = r.n();
    let refuted = AtomicBool::new(false);
    let flags = bbncg_par::par_map_init(
        n,
        || DeviationScratch::with_kernel(r, kernel),
        |scratch, i| {
            if refuted.load(Ordering::Relaxed) {
                return true;
            }
            let u = NodeId::new(i);
            let ok = match best_swap_response_with(scratch, r, u, model) {
                None => true,
                Some(best) => {
                    scratch.begin(r, u, model);
                    best.cost >= scratch.cost_of(r.strategy(u))
                }
            };
            if !ok {
                refuted.store(true, Ordering::Relaxed);
            }
            ok
        },
    );
    flags.into_iter().all(|ok| ok)
}

/// How far the profile is from equilibrium: the largest cost
/// improvement any single player could realize (0 iff Nash). Exact,
/// parallel over players — the "best-response gap" used by convergence
/// experiments as a progress measure.
pub fn best_response_gap(r: &Realization, model: CostModel) -> u64 {
    audit_equilibrium(r, model).gap()
}

/// Per-player equilibrium audit: every player's current cost and exact
/// best-response cost, computed in one batched parallel pass with one
/// [`DeviationScratch`] per worker. This is **the** Nash-verification
/// entry point — `is_nash`, the best-response gap, and the violation
/// list are all views over the same pass, so analysis, benches and the
/// CLI share one engine instead of re-running ad-hoc per-player loops.
#[derive(Clone, Debug)]
pub struct NashAudit {
    /// The audited cost model.
    pub model: CostModel,
    /// Each player's cost under its current strategy.
    pub current: Vec<u64>,
    /// Each player's exact best-response cost.
    pub best: Vec<u64>,
}

impl NashAudit {
    /// No player can strictly improve.
    pub fn is_nash(&self) -> bool {
        self.current.iter().zip(&self.best).all(|(&c, &b)| b >= c)
    }

    /// The largest single-player improvement (0 iff Nash) — the
    /// convergence experiments' progress measure.
    pub fn gap(&self) -> u64 {
        self.current
            .iter()
            .zip(&self.best)
            .map(|(&c, &b)| c.saturating_sub(b))
            .max()
            .unwrap_or(0)
    }

    /// All profitable deviations, in player order.
    pub fn violations(&self) -> Vec<Violation> {
        self.current
            .iter()
            .zip(&self.best)
            .enumerate()
            .filter(|&(_, (&c, &b))| b < c)
            .map(|(i, (&c, &b))| Violation {
                player: NodeId::new(i),
                current_cost: c,
                best_cost: b,
            })
            .collect()
    }
}

/// Run the batched parallel equilibrium audit (see [`NashAudit`]).
pub fn audit_equilibrium(r: &Realization, model: CostModel) -> NashAudit {
    audit_equilibrium_with_kernel(r, model, CostKernel::Auto)
}

/// [`audit_equilibrium`] with an explicit [`CostKernel`]: one engine
/// (and one kernel state) per worker, threaded through `par_map_init`.
pub fn audit_equilibrium_with_kernel(
    r: &Realization,
    model: CostModel,
    kernel: CostKernel,
) -> NashAudit {
    // The audit has no intra-batch commits to speculate over, so the
    // parallel path is always sound; keep the historical always-
    // parallel behaviour for the kernel-only entry point.
    audit_equilibrium_with_opts(r, model, kernel, crate::round::RoundExecutor::Speculative)
}

/// [`audit_equilibrium`] with both the [`CostKernel`] and the
/// [`RoundExecutor`](crate::round::RoundExecutor) chosen. The audit is
/// a read-only sweep, so "speculative" simply means *batched parallel
/// over players* (the same worker-local-engine discipline dynamics
/// rounds use) and "sequential" prices everyone through one engine on
/// the calling thread; `Auto` resolves by instance size and thread
/// budget exactly like dynamics rounds. The verdict, gap and violation
/// list are executor-independent — this knob exists so services can
/// pin one execution discipline end-to-end and report it.
pub fn audit_equilibrium_with_opts(
    r: &Realization,
    model: CostModel,
    kernel: CostKernel,
    executor: crate::round::RoundExecutor,
) -> NashAudit {
    let n = r.n();
    let price = |scratch: &mut DeviationScratch, i: usize| {
        let u = NodeId::new(i);
        scratch.begin(r, u, model);
        let current = scratch.cost_of(r.strategy(u));
        if r.graph().out_degree(u) == 0 {
            // The empty strategy is the only strategy: best = current.
            return (current, current);
        }
        let best = exact_best_response_cost_with(scratch, r, u, model, None);
        (current, best)
    };
    let per_player = match executor.resolve(n) {
        crate::round::RoundExecutor::Sequential => {
            let mut scratch = DeviationScratch::with_kernel(r, kernel);
            (0..n).map(|i| price(&mut scratch, i)).collect::<Vec<_>>()
        }
        _ => bbncg_par::par_map_init(n, || DeviationScratch::with_kernel(r, kernel), price),
    };
    let (current, best) = per_player.into_iter().unzip();
    NashAudit {
        model,
        current,
        best,
    }
}

/// Lemma 2.2 certificate for one player: if `c_MAX(u) = 1`, or
/// `c_MAX(u) ≤ 2` and `u` is in no brace, then `u` is playing a best
/// response in **both** versions. Returns whether the certificate
/// applies (false means "no certificate", not "not a best response").
pub fn lemma22_certifies(r: &Realization, u: NodeId) -> bool {
    if !r.is_connected() {
        return false; // local diameter is n², certificate never applies
    }
    let mut scratch = BfsScratch::new(r.n());
    let ecc = scratch.run(r.csr(), u).max_dist;
    if ecc <= 1 {
        return true;
    }
    if ecc == 2 {
        let in_brace = r.graph().out(u).iter().any(|&t| r.graph().has_arc(t, u));
        return !in_brace;
    }
    false
}

/// Do all players carry the Lemma 2.2 certificate? If so the profile is
/// a Nash equilibrium in both versions without any search.
pub fn lemma22_certifies_all(r: &Realization) -> bool {
    let n = r.n();
    let flags = bbncg_par::par_map_index(n, |i| lemma22_certifies(r, NodeId::new(i)));
    flags.into_iter().all(|ok| ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::OwnedDigraph;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn star_is_equilibrium_in_both_versions() {
        // Center 0 owns arcs to everyone: local diameter 1 for center,
        // 2 for leaves (no braces, leaves have no budget).
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let r = Realization::new(g);
        assert!(lemma22_certifies_all(&r));
        assert!(is_nash_equilibrium(&r, CostModel::Sum));
        assert!(is_nash_equilibrium(&r, CostModel::Max));
    }

    #[test]
    fn long_path_is_not_an_equilibrium() {
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = Realization::new(g);
        for model in CostModel::ALL {
            assert!(!is_nash_equilibrium(&r, model));
            let viol = find_violation(&r, model).unwrap();
            assert!(viol.best_cost < viol.current_cost);
        }
    }

    #[test]
    fn directed_triangle_is_equilibrium() {
        // Cycle on 3 vertices, each with budget 1: diameter 1 graph.
        let g = OwnedDigraph::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = Realization::new(g);
        assert!(lemma22_certifies_all(&r));
        assert!(is_nash_equilibrium(&r, CostModel::Sum));
        assert!(is_nash_equilibrium(&r, CostModel::Max));
    }

    #[test]
    fn brace_blocks_lemma22_but_not_equilibrium_check() {
        // Two vertices with a brace: local diameter 1 -> certificate by
        // the ecc = 1 clause despite the brace.
        let g = OwnedDigraph::from_arcs(2, &[(0, 1), (1, 0)]);
        let r = Realization::new(g);
        assert!(lemma22_certifies(&r, v(0)));
        assert!(is_nash_equilibrium(&r, CostModel::Sum));
    }

    #[test]
    fn brace_with_distance_two_vertex_is_refutable() {
        // 0 <-> 1 brace plus 2 -> 1: vertex 0 would rather link v2.
        let g = OwnedDigraph::from_arcs(3, &[(0, 1), (1, 0), (2, 1)]);
        let r = Realization::new(g);
        assert!(!lemma22_certifies(&r, v(0)));
        // Theorem 4.1's argument: swapping the brace arc to v2 gives 0
        // distance-1 access to both others.
        assert!(!is_nash_equilibrium(&r, CostModel::Sum));
    }

    #[test]
    fn swap_equilibrium_is_implied_by_nash() {
        let g = OwnedDigraph::from_arcs(4, &[(0, 1), (0, 2), (0, 3)]);
        let r = Realization::new(g);
        assert!(is_nash_equilibrium(&r, CostModel::Sum));
        assert!(is_swap_equilibrium(&r, CostModel::Sum));
    }

    #[test]
    fn gap_is_zero_exactly_at_equilibrium() {
        let star = Realization::new(OwnedDigraph::from_arcs(
            5,
            &[(0, 1), (0, 2), (0, 3), (0, 4)],
        ));
        assert_eq!(best_response_gap(&star, CostModel::Sum), 0);
        let path = Realization::new(OwnedDigraph::from_arcs(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
        ));
        let gap = best_response_gap(&path, CostModel::Sum);
        assert!(gap > 0);
        // The gap equals the best single player's improvement.
        let viol = find_violation(&path, CostModel::Sum).unwrap();
        assert!(gap >= viol.current_cost - viol.best_cost);
    }

    #[test]
    fn disconnected_profile_is_never_an_equilibrium_when_connectable() {
        // Lemma 3.1: with sum of budgets >= n-1, equilibria are
        // connected. Two 2-cycles: any owner can rewire across.
        let g = OwnedDigraph::from_arcs(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let r = Realization::new(g);
        assert!(!is_nash_equilibrium(&r, CostModel::Sum));
        assert!(!is_nash_equilibrium(&r, CostModel::Max));
    }
}
