//! The deviation oracle: evaluating candidate strategies cheaply.
//!
//! To decide whether player `u` is playing a best response we must price
//! every alternative strategy `S` (there are `C(n−1, bᵤ)` of them —
//! Theorem 2.1 says this problem is NP-hard, and exhaustive search over
//! this space is exactly what the exact solver does). The oracle makes
//! each evaluation O(n + m) with **zero allocation**:
//!
//! 1. build, once per player, the CSR of the graph with `u`'s owned arcs
//!    removed, plus its connected components;
//! 2. price a candidate `S` with one *patched* BFS (the removed-arc CSR
//!    plus virtual edges `{u, s}` for `s ∈ S`);
//! 3. recover the component count after the deviation from the
//!    precomputed labels: the components touched by `{u} ∪ S` merge into
//!    one.

use crate::cost::CostModel;
use crate::deviation::DeviationScratch;
use crate::realization::Realization;
use bbncg_graph::NodeId;

/// Prices candidate strategies for one fixed player.
///
/// This is a single-session convenience wrapper over
/// [`DeviationScratch`]: construction opens one pricing session and
/// every evaluation runs through the engine's in-place-patched graph.
/// Code that prices deviations for *many* players (dynamics, Nash
/// verification) should hold a [`DeviationScratch`] directly and call
/// [`DeviationScratch::begin`] per player, amortizing the engine
/// across activations.
#[derive(Debug)]
pub struct DeviationOracle {
    u: NodeId,
    scratch: DeviationScratch,
}

impl DeviationOracle {
    /// Build the oracle for player `u` of `r` under `model`.
    pub fn new(r: &Realization, u: NodeId, model: CostModel) -> Self {
        let mut scratch = DeviationScratch::new(r);
        scratch.begin(r, u, model);
        DeviationOracle { u, scratch }
    }

    /// The player this oracle prices deviations for.
    pub fn player(&self) -> NodeId {
        self.u
    }

    /// Cost to `u` of playing the strategy `targets` (everything else
    /// fixed). `targets` need not have full budget size — the oracle is
    /// also used mid-construction by the greedy heuristic.
    pub fn cost_of(&mut self, targets: &[NodeId]) -> u64 {
        self.scratch.cost_of(targets)
    }

    /// A lower bound on the cost of *any* strategy of size `b` for this
    /// player, used for early exit: once a candidate attains it, no
    /// better one exists. Derived from the Lemma 2.2 argument — a player
    /// has distance 1 to at most (budget + distinct in-neighbours)
    /// vertices and at least 2 to the rest.
    pub fn cost_lower_bound(&self, b: usize) -> u64 {
        self.scratch.cost_lower_bound(b)
    }
}

/// Number of `b`-subsets of an `m`-element pool, saturating at
/// `u64::MAX`. Used to guard exact enumeration.
pub fn enumeration_count(m: usize, b: usize) -> u64 {
    if b > m {
        return 0;
    }
    let b = b.min(m - b);
    let mut acc: u64 = 1;
    for i in 0..b {
        // acc * (m - i) / (i + 1), with overflow saturation.
        match acc.checked_mul((m - i) as u64) {
            Some(x) => acc = x / (i as u64 + 1),
            None => return u64::MAX,
        }
    }
    acc
}

/// Lexicographic odometer over `k`-subsets of `0..m`, lending-style:
/// call [`CombinationOdometer::indices`] to read the current subset and
/// [`CombinationOdometer::advance`] to step. Starts at `{0,1,…,k−1}`.
#[derive(Debug)]
pub struct CombinationOdometer {
    m: usize,
    idx: Vec<usize>,
}

impl CombinationOdometer {
    /// First `k`-subset of `0..m`.
    ///
    /// # Panics
    /// Panics if `k > m`.
    pub fn new(m: usize, k: usize) -> Self {
        assert!(k <= m, "cannot choose {k} from {m}");
        CombinationOdometer {
            m,
            idx: (0..k).collect(),
        }
    }

    /// The current subset, strictly increasing.
    pub fn indices(&self) -> &[usize] {
        &self.idx
    }

    /// Step to the next subset in lexicographic order; `false` when
    /// exhausted.
    pub fn advance(&mut self) -> bool {
        let k = self.idx.len();
        if k == 0 {
            return false;
        }
        let mut i = k;
        while i > 0 {
            i -= 1;
            if self.idx[i] != i + self.m - k {
                self.idx[i] += 1;
                for j in i + 1..k {
                    self.idx[j] = self.idx[j - 1] + 1;
                }
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::OwnedDigraph;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn oracle_matches_full_recomputation() {
        // Path 0->1->2->3; player 1 deviates to {3}.
        let g = OwnedDigraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = Realization::new(g);
        for model in CostModel::ALL {
            let mut oracle = DeviationOracle::new(&r, v(1), model);
            // Current strategy must price identically to the realization.
            assert_eq!(oracle.cost_of(&[v(2)]), r.cost(v(1), model));
            // Deviation {3}: graph edges 0-1, 2-3, 1-3.
            let deviated = r.with_strategy(v(1), vec![v(3)]);
            assert_eq!(oracle.cost_of(&[v(3)]), deviated.cost(v(1), model));
            // Deviation {0}: creates brace {0,1}, disconnects 2-3 from it.
            let deviated = r.with_strategy(v(1), vec![v(0)]);
            assert_eq!(oracle.cost_of(&[v(0)]), deviated.cost(v(1), model));
        }
    }

    #[test]
    fn oracle_kappa_accounting_across_components() {
        // Three components: {0,1}, {2}, {3,4}. Player 0 owns one arc.
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (3, 4)]);
        let r = Realization::new(g);
        for model in CostModel::ALL {
            let mut oracle = DeviationOracle::new(&r, v(0), model);
            for target in [1usize, 2, 3] {
                let deviated = r.with_strategy(v(0), vec![v(target)]);
                assert_eq!(
                    oracle.cost_of(&[v(target)]),
                    deviated.cost(v(0), model),
                    "target {target} model {model:?}"
                );
            }
        }
    }

    #[test]
    fn lower_bound_is_sound_on_small_graphs() {
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = Realization::new(g);
        for model in CostModel::ALL {
            for u in 0..5 {
                let u = v(u);
                let b = r.graph().out_degree(u);
                let mut oracle = DeviationOracle::new(&r, u, model);
                let lb = oracle.cost_lower_bound(b);
                // Enumerate all strategies of size b and check the bound.
                if b == 0 {
                    assert!(oracle.cost_of(&[]) >= lb);
                    continue;
                }
                let pool: Vec<NodeId> = (0..5).map(v).filter(|&t| t != u).collect();
                let mut od = CombinationOdometer::new(pool.len(), b);
                loop {
                    let targets: Vec<NodeId> = od.indices().iter().map(|&i| pool[i]).collect();
                    assert!(oracle.cost_of(&targets) >= lb);
                    if !od.advance() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn enumeration_count_small_values() {
        assert_eq!(enumeration_count(5, 0), 1);
        assert_eq!(enumeration_count(5, 2), 10);
        assert_eq!(enumeration_count(5, 5), 1);
        assert_eq!(enumeration_count(5, 6), 0);
        assert_eq!(enumeration_count(50, 25), 126_410_606_437_752);
        assert_eq!(enumeration_count(200, 100), u64::MAX); // saturates
    }

    #[test]
    fn odometer_enumerates_all_subsets_in_lex_order() {
        let mut od = CombinationOdometer::new(4, 2);
        let mut seen = vec![od.indices().to_vec()];
        while od.advance() {
            seen.push(od.indices().to_vec());
        }
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3],
            ]
        );
    }

    #[test]
    fn odometer_empty_subset() {
        let mut od = CombinationOdometer::new(3, 0);
        assert!(od.indices().is_empty());
        assert!(!od.advance());
    }

    #[test]
    fn odometer_full_subset() {
        let mut od = CombinationOdometer::new(3, 3);
        assert_eq!(od.indices(), &[0, 1, 2]);
        assert!(!od.advance());
    }
}
