//! Plain-text serialization of game profiles.
//!
//! A tiny line-oriented format so equilibria found by experiments can
//! be saved, diffed, and reloaded without external dependencies:
//!
//! ```text
//! bbncg v1
//! n 4
//! budgets 1 1 1 1
//! arcs
//! 0 1
//! 1 2
//! 2 3
//! 3 0
//! ```
//!
//! Arc lines are `owner target`. Budgets are implied by the arcs but
//! written explicitly so a truncated file fails loudly.

use crate::realization::Realization;
use bbncg_graph::OwnedDigraph;
use std::fmt;

/// Errors from [`parse_realization`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or wrong `bbncg v1` header.
    BadHeader,
    /// Structurally invalid line, with its 1-based number.
    BadLine(usize, String),
    /// The arc list does not realize the declared budgets.
    BudgetMismatch {
        /// Player whose arc count differs.
        player: usize,
        /// Budget declared in the header.
        declared: usize,
        /// Arcs actually listed.
        actual: usize,
    },
    /// A vertex index ≥ n, a self-loop, or a duplicate arc.
    BadArc(usize, usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing `bbncg v1` header"),
            ParseError::BadLine(ln, s) => write!(f, "line {ln}: cannot parse {s:?}"),
            ParseError::BudgetMismatch {
                player,
                declared,
                actual,
            } => write!(
                f,
                "player {player}: declared budget {declared} but {actual} arcs listed"
            ),
            ParseError::BadArc(u, v) => write!(f, "invalid arc {u} -> {v}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a realization (stable output: arcs in owner order).
pub fn write_realization(r: &Realization) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "bbncg v1");
    let _ = writeln!(out, "n {}", r.n());
    let budgets: Vec<String> = r
        .budgets()
        .as_slice()
        .iter()
        .map(|b| b.to_string())
        .collect();
    let _ = writeln!(out, "budgets {}", budgets.join(" "));
    let _ = writeln!(out, "arcs");
    for (u, v) in r.graph().arcs() {
        let _ = writeln!(out, "{} {}", u.index(), v.index());
    }
    out
}

/// Parse a realization written by [`write_realization`].
pub fn parse_realization(text: &str) -> Result<Realization, ParseError> {
    let mut lines = text.lines().enumerate();
    let header = lines.next().map(|(_, l)| l.trim());
    if header != Some("bbncg v1") {
        return Err(ParseError::BadHeader);
    }
    let (ln, nline) = lines.next().ok_or(ParseError::BadHeader)?;
    let n: usize = nline
        .trim()
        .strip_prefix("n ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| ParseError::BadLine(ln + 1, nline.to_string()))?;
    let (ln, bline) = lines.next().ok_or(ParseError::BadHeader)?;
    let budgets: Vec<usize> = bline
        .trim()
        .strip_prefix("budgets ")
        .map(|s| {
            s.split_whitespace()
                .map(|t| t.parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
        })
        .transpose()
        .ok()
        .flatten()
        .ok_or_else(|| ParseError::BadLine(ln + 1, bline.to_string()))?;
    if budgets.len() != n {
        return Err(ParseError::BadLine(ln + 1, bline.to_string()));
    }
    let (ln, aline) = lines.next().ok_or(ParseError::BadHeader)?;
    if aline.trim() != "arcs" {
        return Err(ParseError::BadLine(ln + 1, aline.to_string()));
    }
    let mut arcs: Vec<(usize, usize)> = Vec::new();
    for (ln, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (u, v) = match (it.next(), it.next(), it.next()) {
            (Some(u), Some(v), None) => (
                u.parse::<usize>()
                    .map_err(|_| ParseError::BadLine(ln + 1, line.to_string()))?,
                v.parse::<usize>()
                    .map_err(|_| ParseError::BadLine(ln + 1, line.to_string()))?,
            ),
            _ => return Err(ParseError::BadLine(ln + 1, line.to_string())),
        };
        if u >= n || v >= n || u == v || arcs.contains(&(u, v)) {
            return Err(ParseError::BadArc(u, v));
        }
        arcs.push((u, v));
    }
    // Check budgets before building (so mismatches report nicely).
    let mut counts = vec![0usize; n];
    for &(u, _) in &arcs {
        counts[u] += 1;
    }
    for (player, (&declared, &actual)) in budgets.iter().zip(&counts).enumerate() {
        if declared != actual {
            return Err(ParseError::BudgetMismatch {
                player,
                declared,
                actual,
            });
        }
    }
    Ok(Realization::new(OwnedDigraph::from_arcs(n, &arcs)))
}

/// A mid-run snapshot: a realization frozen together with the exact
/// 256-bit RNG stream position and orchestrator metadata. This is the
/// persistence format behind scenario checkpoint/resume — restoring the
/// snapshot and replaying from it is bit-identical to never stopping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The frozen profile.
    pub realization: Realization,
    /// The RNG state words (see `rand::rngs::StdRng::state`).
    pub rng_state: [u64; 4],
    /// Ordered key/value metadata (keys must be single tokens; values
    /// may contain spaces but not newlines).
    pub meta: Vec<(String, String)>,
}

/// Serialize a [`Snapshot`]:
///
/// ```text
/// bbncg-snapshot v1
/// rng 1 2 3 4
/// meta phase 3
/// profile
/// bbncg v1
/// …
/// ```
pub fn write_snapshot(s: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "bbncg-snapshot v1");
    let [a, b, c, d] = s.rng_state;
    let _ = writeln!(out, "rng {a} {b} {c} {d}");
    for (k, v) in &s.meta {
        debug_assert!(!k.contains(char::is_whitespace), "meta key {k:?}");
        debug_assert!(!v.contains('\n'), "meta value {v:?}");
        let _ = writeln!(out, "meta {k} {v}");
    }
    let _ = writeln!(out, "profile");
    out.push_str(&write_realization(&s.realization));
    out
}

/// Parse a snapshot written by [`write_snapshot`]. Errors reuse the
/// [`ParseError`] vocabulary: a wrong magic line is [`ParseError::BadHeader`],
/// structural damage is [`ParseError::BadLine`] with the offending line
/// number, and the embedded profile is validated by
/// [`parse_realization`] (line numbers restart inside the profile).
///
/// **Forward compatibility:** unknown header fields — lines of the form
/// `<bare-key> …` before the `profile` marker, where `<bare-key>` is
/// ASCII alphanumeric plus `_`/`-` — are skipped, so binaries at this
/// version keep reading checkpoints written by future versions that
/// append new fields (they must append fields, not reshape existing
/// ones). Lines that are not even field-shaped still fail loudly.
pub fn parse_snapshot(text: &str) -> Result<Snapshot, ParseError> {
    let mut lines = text.lines().enumerate();
    let header = lines.next().map(|(_, l)| l.trim());
    if header != Some("bbncg-snapshot v1") {
        return Err(ParseError::BadHeader);
    }
    let (ln, rline) = lines.next().ok_or(ParseError::BadHeader)?;
    let words: Vec<u64> = rline
        .trim()
        .strip_prefix("rng ")
        .map(|s| {
            s.split_whitespace()
                .map(|t| t.parse::<u64>())
                .collect::<Result<Vec<_>, _>>()
        })
        .transpose()
        .ok()
        .flatten()
        .filter(|w| w.len() == 4)
        .ok_or_else(|| ParseError::BadLine(ln + 1, rline.to_string()))?;
    let rng_state = [words[0], words[1], words[2], words[3]];
    let mut meta = Vec::new();
    for (ln, line) in lines.by_ref() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "profile" {
            let body: String = text.lines().skip(ln + 1).collect::<Vec<_>>().join("\n");
            let realization = parse_realization(&body)?;
            return Ok(Snapshot {
                realization,
                rng_state,
                meta,
            });
        }
        if let Some(rest) = line.strip_prefix("meta ") {
            let (k, v) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError::BadLine(ln + 1, line.to_string()))?;
            meta.push((k.to_string(), v.trim().to_string()));
            continue;
        }
        // Unknown field: skip if the line is field-shaped (a bare key,
        // optionally followed by a value) so old binaries read new
        // checkpoints; anything else is damage. A *known* field name
        // that failed its own parse (a bare `meta` with no key/value,
        // a stray `rng`, `profile` with trailing junk) is damage too —
        // forward compatibility must not swallow corrupted known
        // fields.
        let key = line.split_whitespace().next().unwrap_or("");
        let is_bare_key = !key.is_empty()
            && key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
        if !is_bare_key || matches!(key, "meta" | "rng" | "profile") {
            return Err(ParseError::BadLine(ln + 1, line.to_string()));
        }
    }
    // Ran out of lines without a `profile` marker.
    Err(ParseError::BadHeader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_random_realizations() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 5, 12] {
            let budgets: Vec<usize> = (0..n).map(|i| i % 3).collect();
            let r = Realization::new(generators::random_realization(&budgets, &mut rng));
            let text = write_realization(&r);
            let back = parse_realization(&text).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(parse_realization("nope"), Err(ParseError::BadHeader));
        assert_eq!(parse_realization(""), Err(ParseError::BadHeader));
    }

    #[test]
    fn rejects_garbled_counts() {
        let text = "bbncg v1\nn x\nbudgets 1\narcs\n";
        assert!(matches!(
            parse_realization(text),
            Err(ParseError::BadLine(2, _))
        ));
        let text = "bbncg v1\nn 2\nbudgets 1\narcs\n"; // wrong length
        assert!(matches!(
            parse_realization(text),
            Err(ParseError::BadLine(3, _))
        ));
    }

    #[test]
    fn rejects_budget_mismatch() {
        let text = "bbncg v1\nn 2\nbudgets 1 1\narcs\n0 1\n";
        assert_eq!(
            parse_realization(text),
            Err(ParseError::BudgetMismatch {
                player: 1,
                declared: 1,
                actual: 0
            })
        );
    }

    #[test]
    fn rejects_bad_arcs() {
        let text = "bbncg v1\nn 2\nbudgets 1 0\narcs\n0 5\n";
        assert_eq!(parse_realization(text), Err(ParseError::BadArc(0, 5)));
        let text = "bbncg v1\nn 2\nbudgets 2 0\narcs\n0 1\n0 1\n";
        assert_eq!(parse_realization(text), Err(ParseError::BadArc(0, 1)));
        let text = "bbncg v1\nn 2\nbudgets 1 0\narcs\n1 1\n";
        assert_eq!(parse_realization(text), Err(ParseError::BadArc(1, 1)));
    }

    #[test]
    fn error_messages_render() {
        let e = ParseError::BudgetMismatch {
            player: 3,
            declared: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("player 3"));
        assert!(ParseError::BadHeader.to_string().contains("header"));
    }

    #[test]
    fn snapshot_roundtrips() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = Realization::new(generators::random_realization(&[1, 2, 0, 1], &mut rng));
        let snap = Snapshot {
            realization: r,
            rng_state: rng.state(),
            meta: vec![
                ("phase".into(), "3".into()),
                ("scenario".into(), "churn test".into()),
            ],
        };
        let text = write_snapshot(&snap);
        assert_eq!(parse_snapshot(&text).unwrap(), snap);
    }

    #[test]
    fn snapshot_rejects_damage() {
        assert_eq!(parse_snapshot("bbncg v1"), Err(ParseError::BadHeader));
        assert!(matches!(
            parse_snapshot("bbncg-snapshot v1\nrng 1 2 3\nprofile\n"),
            Err(ParseError::BadLine(2, _))
        ));
        // Not even field-shaped (no bare key): damage, not an unknown
        // field to skip.
        assert!(matches!(
            parse_snapshot("bbncg-snapshot v1\nrng 1 2 3 4\n??? ???\n"),
            Err(ParseError::BadLine(3, _))
        ));
        // Corrupted *known* fields are damage too — the unknown-field
        // skip must not swallow a truncated `meta` or a stray `rng`.
        for damaged in ["meta\n", "meta onlykey\n", "rng 9 9\n", "profile now\n"] {
            assert!(
                matches!(
                    parse_snapshot(&format!("bbncg-snapshot v1\nrng 1 2 3 4\n{damaged}")),
                    Err(ParseError::BadLine(3, _))
                ),
                "{damaged:?} must be rejected"
            );
        }
        // Truncated before the profile marker.
        assert_eq!(
            parse_snapshot("bbncg-snapshot v1\nrng 1 2 3 4\nmeta a b\n"),
            Err(ParseError::BadHeader)
        );
        // Embedded profile is validated too.
        let text =
            "bbncg-snapshot v1\nrng 1 2 3 4\nprofile\nbbncg v1\nn 2\nbudgets 1 1\narcs\n0 1\n";
        assert!(matches!(
            parse_snapshot(text),
            Err(ParseError::BudgetMismatch { player: 1, .. })
        ));
    }

    #[test]
    fn snapshot_skips_unknown_fields_for_forward_compat() {
        // A "future" writer appends fields this version has never heard
        // of; parsing must skip them and still recover everything it
        // does understand, bit-for-bit.
        let mut rng = StdRng::seed_from_u64(3);
        let r = Realization::new(generators::random_realization(&[1, 1, 2], &mut rng));
        let snap = Snapshot {
            realization: r,
            rng_state: rng.state(),
            meta: vec![("seed".into(), "9".into())],
        };
        let text = write_snapshot(&snap);
        // Inject extra fields after the rng line (i.e. before `profile`),
        // in the shapes a future version would plausibly add.
        let injected = text.replacen(
            "meta seed 9\n",
            "shard-count 16\nmeta seed 9\ncompression none v2\nepoch 1234\n\n",
            1,
        );
        assert_ne!(injected, text);
        assert_eq!(parse_snapshot(&injected).unwrap(), snap);
    }

    #[test]
    fn whitespace_and_blank_lines_tolerated() {
        let text = "bbncg v1\nn 3\nbudgets 1 1 1\narcs\n0 1\n\n1 2\n  2 0  \n";
        let r = parse_realization(text).unwrap();
        assert_eq!(r.n(), 3);
        assert_eq!(r.graph().total_arcs(), 3);
    }
}
