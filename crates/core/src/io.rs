//! Plain-text serialization of game profiles.
//!
//! A tiny line-oriented format so equilibria found by experiments can
//! be saved, diffed, and reloaded without external dependencies:
//!
//! ```text
//! bbncg v1
//! n 4
//! budgets 1 1 1 1
//! arcs
//! 0 1
//! 1 2
//! 2 3
//! 3 0
//! ```
//!
//! Arc lines are `owner target`. Budgets are implied by the arcs but
//! written explicitly so a truncated file fails loudly.

use crate::realization::Realization;
use bbncg_graph::OwnedDigraph;
use std::fmt;

/// Errors from [`parse_realization`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or wrong `bbncg v1` header.
    BadHeader,
    /// Structurally invalid line, with its 1-based number.
    BadLine(usize, String),
    /// The arc list does not realize the declared budgets.
    BudgetMismatch {
        /// Player whose arc count differs.
        player: usize,
        /// Budget declared in the header.
        declared: usize,
        /// Arcs actually listed.
        actual: usize,
    },
    /// A vertex index ≥ n, a self-loop, or a duplicate arc.
    BadArc(usize, usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing `bbncg v1` header"),
            ParseError::BadLine(ln, s) => write!(f, "line {ln}: cannot parse {s:?}"),
            ParseError::BudgetMismatch {
                player,
                declared,
                actual,
            } => write!(
                f,
                "player {player}: declared budget {declared} but {actual} arcs listed"
            ),
            ParseError::BadArc(u, v) => write!(f, "invalid arc {u} -> {v}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a realization (stable output: arcs in owner order).
pub fn write_realization(r: &Realization) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "bbncg v1");
    let _ = writeln!(out, "n {}", r.n());
    let budgets: Vec<String> = r
        .budgets()
        .as_slice()
        .iter()
        .map(|b| b.to_string())
        .collect();
    let _ = writeln!(out, "budgets {}", budgets.join(" "));
    let _ = writeln!(out, "arcs");
    for (u, v) in r.graph().arcs() {
        let _ = writeln!(out, "{} {}", u.index(), v.index());
    }
    out
}

/// Parse a realization written by [`write_realization`].
pub fn parse_realization(text: &str) -> Result<Realization, ParseError> {
    let mut lines = text.lines().enumerate();
    let header = lines.next().map(|(_, l)| l.trim());
    if header != Some("bbncg v1") {
        return Err(ParseError::BadHeader);
    }
    let (ln, nline) = lines.next().ok_or(ParseError::BadHeader)?;
    let n: usize = nline
        .trim()
        .strip_prefix("n ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| ParseError::BadLine(ln + 1, nline.to_string()))?;
    let (ln, bline) = lines.next().ok_or(ParseError::BadHeader)?;
    let budgets: Vec<usize> = bline
        .trim()
        .strip_prefix("budgets ")
        .map(|s| {
            s.split_whitespace()
                .map(|t| t.parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
        })
        .transpose()
        .ok()
        .flatten()
        .ok_or_else(|| ParseError::BadLine(ln + 1, bline.to_string()))?;
    if budgets.len() != n {
        return Err(ParseError::BadLine(ln + 1, bline.to_string()));
    }
    let (ln, aline) = lines.next().ok_or(ParseError::BadHeader)?;
    if aline.trim() != "arcs" {
        return Err(ParseError::BadLine(ln + 1, aline.to_string()));
    }
    let mut arcs: Vec<(usize, usize)> = Vec::new();
    for (ln, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (u, v) = match (it.next(), it.next(), it.next()) {
            (Some(u), Some(v), None) => (
                u.parse::<usize>()
                    .map_err(|_| ParseError::BadLine(ln + 1, line.to_string()))?,
                v.parse::<usize>()
                    .map_err(|_| ParseError::BadLine(ln + 1, line.to_string()))?,
            ),
            _ => return Err(ParseError::BadLine(ln + 1, line.to_string())),
        };
        if u >= n || v >= n || u == v || arcs.contains(&(u, v)) {
            return Err(ParseError::BadArc(u, v));
        }
        arcs.push((u, v));
    }
    // Check budgets before building (so mismatches report nicely).
    let mut counts = vec![0usize; n];
    for &(u, _) in &arcs {
        counts[u] += 1;
    }
    for (player, (&declared, &actual)) in budgets.iter().zip(&counts).enumerate() {
        if declared != actual {
            return Err(ParseError::BudgetMismatch {
                player,
                declared,
                actual,
            });
        }
    }
    Ok(Realization::new(OwnedDigraph::from_arcs(n, &arcs)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_random_realizations() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 5, 12] {
            let budgets: Vec<usize> = (0..n).map(|i| i % 3).collect();
            let r = Realization::new(generators::random_realization(&budgets, &mut rng));
            let text = write_realization(&r);
            let back = parse_realization(&text).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(parse_realization("nope"), Err(ParseError::BadHeader));
        assert_eq!(parse_realization(""), Err(ParseError::BadHeader));
    }

    #[test]
    fn rejects_garbled_counts() {
        let text = "bbncg v1\nn x\nbudgets 1\narcs\n";
        assert!(matches!(
            parse_realization(text),
            Err(ParseError::BadLine(2, _))
        ));
        let text = "bbncg v1\nn 2\nbudgets 1\narcs\n"; // wrong length
        assert!(matches!(
            parse_realization(text),
            Err(ParseError::BadLine(3, _))
        ));
    }

    #[test]
    fn rejects_budget_mismatch() {
        let text = "bbncg v1\nn 2\nbudgets 1 1\narcs\n0 1\n";
        assert_eq!(
            parse_realization(text),
            Err(ParseError::BudgetMismatch {
                player: 1,
                declared: 1,
                actual: 0
            })
        );
    }

    #[test]
    fn rejects_bad_arcs() {
        let text = "bbncg v1\nn 2\nbudgets 1 0\narcs\n0 5\n";
        assert_eq!(parse_realization(text), Err(ParseError::BadArc(0, 5)));
        let text = "bbncg v1\nn 2\nbudgets 2 0\narcs\n0 1\n0 1\n";
        assert_eq!(parse_realization(text), Err(ParseError::BadArc(0, 1)));
        let text = "bbncg v1\nn 2\nbudgets 1 0\narcs\n1 1\n";
        assert_eq!(parse_realization(text), Err(ParseError::BadArc(1, 1)));
    }

    #[test]
    fn error_messages_render() {
        let e = ParseError::BudgetMismatch {
            player: 3,
            declared: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("player 3"));
        assert!(ParseError::BadHeader.to_string().contains("header"));
    }

    #[test]
    fn whitespace_and_blank_lines_tolerated() {
        let text = "bbncg v1\nn 3\nbudgets 1 1 1\narcs\n0 1\n\n1 2\n  2 0  \n";
        let r = parse_realization(text).unwrap();
        assert_eq!(r.n(), 3);
        assert_eq!(r.graph().total_arcs(), 3);
    }
}
