//! Round executors: how one dynamics round turns activations into
//! committed moves.
//!
//! A round activates every player once in the configured order. The
//! classic executor does this **sequentially** — each activation prices
//! its whole candidate space against the profile left by the previous
//! one — so `--threads` never helps inside a round, only across
//! seeds/jobs. The **speculative** executor evaluates a window of
//! upcoming activations in parallel against the window's start state
//! (one worker-local [`DeviationScratch`] per worker via
//! [`bbncg_par::par_map_init`], any [`CostKernel`]), then commits the
//! proposals sequentially in activation order, discarding and
//! re-evaluating exactly the proposals an earlier commit invalidated.
//!
//! # The step-identity invariant
//!
//! Speculative rounds are **step-identical** to sequential rounds for
//! every rule/order/kernel combination: same moves in the same order,
//! same step and round counts, same [`DynamicsReport`], bit-identical
//! checkpoints and scenario record streams at any thread count. The
//! invariant holds by construction, not by luck:
//!
//! * every committed proposal was evaluated against a state whose
//!   undirected **edge presence** equals the commit-time state's, and
//! * a player's decision under any rule is a pure function of the
//!   presence graph minus its own arcs, its own strategy, and its
//!   budget — costs come from BFS distances, component structure and
//!   deduplicated in-neighbour counts, all presence functions, and
//!   candidate enumeration order is state-independent.
//!
//! A commit that changes presence therefore invalidates every later
//! proposal in the window (they are discarded and re-evaluated in the
//! next window — wasted work, never wrong answers), while a commit
//! that only shuffles brace multiplicities invalidates nothing
//! ([`OwnedDigraph::move_changes_presence`], mirrored by
//! [`PatchableCsr::presence_epoch`](bbncg_graph::PatchableCsr::presence_epoch)
//! on patch sessions). Nothing weaker than presence equality is sound
//! here: a presence change even in a *different component* moves the
//! cost of candidates linking into that component, so component-based
//! affected sets cannot certify an unchanged best response.
//!
//! The window width adapts to the observed invalidation density —
//! halving when commits land early in the window, doubling after a
//! clean window — so dense early rounds degrade gracefully toward
//! sequential cost while quiet late rounds (and the final convergence
//! check, which every run pays) evaluate all players in one parallel
//! sweep. Enforced by `tests/round_parity.rs` and the CI byte-diff of
//! `--threads 1` vs `--threads 8` scenario record streams.

use crate::best_response::{
    best_swap_response_with, exact_best_response_with, first_improving_response_with,
    greedy_best_response_with,
};
use crate::deviation::DeviationScratch;
use crate::dynamics::{DynamicsConfig, ResponseRule};
use crate::kernel::CostKernel;
use crate::realization::Realization;
use bbncg_graph::NodeId;
use bbncg_obs::{Counter, Histogram};
use std::sync::Mutex;

/// How activations inside one dynamics round are executed. Executors
/// are **step-identical**: the choice can never change a trajectory, a
/// report, a checkpoint or a record stream — only wall-clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RoundExecutor {
    /// One activation at a time, each against the latest profile.
    Sequential,
    /// Windowed parallel proposal evaluation with presence-based
    /// revalidation at commit time (see the module docs).
    Speculative,
    /// Resolve by instance size and thread budget: speculative when
    /// `n ≥ AUTO_SPECULATIVE_MIN_N`, more than one worker thread is
    /// available, **and** the run is not already inside a parallel
    /// worker (a seed-sweep or serve-job worker — nesting a fan-out
    /// there would oversubscribe the machine quadratically);
    /// sequential otherwise.
    #[default]
    Auto,
}

impl RoundExecutor {
    /// Instance size at which [`RoundExecutor::Auto`] goes speculative
    /// (given > 1 worker thread). Below it a round is too cheap for
    /// the fork/join and per-worker engine builds to pay off.
    pub const AUTO_SPECULATIVE_MIN_N: usize = 64;

    /// The concrete executor used for an `n`-player instance (never
    /// returns [`RoundExecutor::Auto`]). Auto consults
    /// [`bbncg_par::max_threads`], the host's
    /// [`std::thread::available_parallelism`] and the nesting flag at
    /// call time, so it is resolved once per dynamics run, at run
    /// start.
    pub fn resolve(self, n: usize) -> RoundExecutor {
        let host_cpus = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        self.resolve_with(
            n,
            bbncg_par::max_threads(),
            host_cpus,
            bbncg_par::in_parallel_worker(),
        )
    }

    /// Pure core of [`RoundExecutor::resolve`]: the verdict as a
    /// function of instance size, configured thread budget, host CPU
    /// count and nesting — no ambient state, so every branch is
    /// testable on any machine.
    pub fn resolve_with(
        self,
        n: usize,
        threads: usize,
        host_cpus: usize,
        nested: bool,
    ) -> RoundExecutor {
        match self {
            RoundExecutor::Auto => {
                // Never nest by default: inside an outer fan-out (a
                // sweep's seed worker, a serve job worker) the thread
                // budget is already spent across runs, so an intra-
                // round fan-out would multiply threads, not speed.
                // And a thread *budget* above 1 (`--threads 8`,
                // `BBNCG_THREADS`) on a single-CPU host buys no
                // intra-round parallelism either — the workers would
                // time-slice one core and pay the fork/join and window
                // bookkeeping for nothing, so Auto also requires real
                // host parallelism. An *explicit* `Speculative` still
                // honours the ask in both cases.
                if n >= Self::AUTO_SPECULATIVE_MIN_N && threads > 1 && host_cpus > 1 && !nested {
                    RoundExecutor::Speculative
                } else {
                    RoundExecutor::Sequential
                }
            }
            k => k,
        }
    }

    /// Spec/CLI label (`"sequential"`, `"speculative"`, `"auto"`).
    pub fn label(self) -> &'static str {
        match self {
            RoundExecutor::Sequential => "sequential",
            RoundExecutor::Speculative => "speculative",
            RoundExecutor::Auto => "auto",
        }
    }

    /// Parse a spec/CLI label.
    pub fn parse(s: &str) -> Result<RoundExecutor, String> {
        match s {
            "sequential" => Ok(RoundExecutor::Sequential),
            "speculative" => Ok(RoundExecutor::Speculative),
            "auto" => Ok(RoundExecutor::Auto),
            other => Err(format!(
                "unknown round executor {other:?} (sequential|speculative|auto)"
            )),
        }
    }
}

impl std::fmt::Display for RoundExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The decision one activation of player `u` makes against `state`:
/// `Some(targets)` iff the player moves (rule dispatch plus the
/// strict-improvement gate). This is **the** per-activation body — the
/// sequential loop and the speculative proposal evaluator both call
/// it, so the two executors cannot drift apart.
pub(crate) fn respond(
    scratch: &mut DeviationScratch,
    state: &Realization,
    u: NodeId,
    cfg: &DynamicsConfig,
) -> Option<Vec<NodeId>> {
    if state.graph().out_degree(u) == 0 {
        return None;
    }
    let candidate = match cfg.rule {
        ResponseRule::ExactBest => Some(exact_best_response_with(scratch, state, u, cfg.model)),
        ResponseRule::FirstImproving => first_improving_response_with(scratch, state, u, cfg.model),
        ResponseRule::Greedy => Some(greedy_best_response_with(scratch, state, u, cfg.model)),
        ResponseRule::BestSwap => best_swap_response_with(scratch, state, u, cfg.model),
    }?;
    // FirstImproving only returns strictly improving strategies; the
    // other rules may hand back the current cost, so price the
    // incumbent through the still-open session to compare.
    let improved = cfg.rule == ResponseRule::FirstImproving
        || candidate.cost < scratch.cost_of(state.strategy(u));
    improved.then_some(candidate.targets)
}

/// A worker's checked-out engine: popped from the round's shared pool
/// at worker start (or built fresh on a pool miss) and pushed back on
/// drop, so windows and rounds reuse warm engines instead of
/// rebuilding per `par_map_init` call. Reuse is sound because
/// [`DeviationScratch::begin`] re-syncs its mirror to the passed
/// profile by diffing — a pooled engine that is several commits behind
/// pays exactly the diff, nothing more. For the sparse kernel the
/// pooled engine also carries its retained base-distance tree and the
/// repair journal that records those diffs: when a worker's next
/// activation lands on the same source (re-evaluation after an
/// invalidated window, revalidation sweeps), the base is *repaired*
/// from the journalled presence deltas instead of re-BFS'd, and any
/// unjournalled or oversized damage falls back to a full rebase — so
/// pooling changes cost, never pricing.
pub(crate) struct PooledEngine<'a> {
    pool: &'a Mutex<Vec<DeviationScratch>>,
    engine: Option<DeviationScratch>,
}

impl<'a> PooledEngine<'a> {
    pub(crate) fn checkout(
        pool: &'a Mutex<Vec<DeviationScratch>>,
        basis: &Realization,
        kernel: CostKernel,
    ) -> Self {
        let engine = pool
            .lock()
            .expect("engine pool poisoned")
            .pop()
            .unwrap_or_else(|| DeviationScratch::with_kernel(basis, kernel));
        PooledEngine {
            pool,
            engine: Some(engine),
        }
    }

    pub(crate) fn engine(&mut self) -> &mut DeviationScratch {
        self.engine.as_mut().expect("engine checked out")
    }
}

impl Drop for PooledEngine<'_> {
    fn drop(&mut self) {
        if let Some(engine) = self.engine.take() {
            if let Ok(mut pool) = self.pool.lock() {
                pool.push(engine);
            }
        }
    }
}

/// One speculative round over `order`: evaluate windows of upcoming
/// activations in parallel against the window's start state, commit in
/// activation order, and discard the window tail the moment a commit
/// changes edge presence. Returns the number of applied moves.
///
/// The committed trajectory is identical to the sequential executor's
/// at any thread count and any window schedule; window width only
/// moves wasted work. `window_hint` carries the adapted width across
/// rounds (dense rounds shrink it toward the thread count, quiet
/// rounds grow it toward `n`), and `pool` carries warm worker engines
/// across windows and rounds.
pub(crate) fn run_round_speculative(
    state: &mut Realization,
    cfg: &DynamicsConfig,
    order: &[usize],
    kernel: CostKernel,
    window_hint: &mut usize,
    pool: &Mutex<Vec<DeviationScratch>>,
) -> usize {
    let len = order.len();
    if len == 0 {
        return 0;
    }
    let min_w = bbncg_par::max_threads().clamp(1, len);
    let mut window = (*window_hint).clamp(min_w, len);
    let mut improvements = 0usize;
    let mut pos = 0usize;
    while pos < len {
        let w = window.min(len - pos);
        let batch = &order[pos..pos + w];
        // Window-granularity observability (a handful of relaxed
        // loads per window — noise next to the w parallel BFS below).
        bbncg_obs::counter_inc(Counter::RoundsWindows);
        bbncg_obs::counter_add(Counter::RoundsEvals, w as u64);
        bbncg_obs::observe(Histogram::WindowWidth, w as u64);
        // Parallel proposal evaluation against the window-start state;
        // one pooled engine per worker, re-synced to the basis by
        // diffing on first use.
        let proposals = {
            let basis: &Realization = state;
            bbncg_par::par_map_init(
                w,
                || PooledEngine::checkout(pool, basis, kernel),
                |slot, j| respond(slot.engine(), basis, NodeId::new(batch[j]), cfg),
            )
        };
        // Sequential commit scan: a `None` proposal (and any proposal
        // after presence-preserving commits only) is exactly what the
        // sequential executor would have decided; the first
        // presence-changing commit invalidates the rest of the window.
        let mut consumed = 0usize;
        let mut presence_commit = false;
        for (j, proposal) in proposals.into_iter().enumerate() {
            consumed = j + 1;
            let Some(targets) = proposal else { continue };
            let u = NodeId::new(batch[j]);
            let presence_changed = state.graph().move_changes_presence(u, &targets);
            state.set_strategy(u, targets);
            improvements += 1;
            bbncg_obs::counter_inc(Counter::RoundsCommits);
            if presence_changed {
                presence_commit = true;
                break;
            }
        }
        if presence_commit {
            // Everything evaluated past the presence-changing commit
            // is thrown away and re-evaluated in the next window.
            bbncg_obs::counter_inc(Counter::RoundsInvalidations);
            bbncg_obs::counter_add(Counter::RoundsDiscards, (w - consumed) as u64);
        }
        pos += consumed;
        // Width adaptation: grow only on evidence of quietness (a
        // whole window with no presence-changing commit), halve when a
        // commit killed the window in its first half. A window that
        // was fully consumed *because its last slot committed* is
        // dense, not quiet — growing on it makes dense rounds
        // oscillate and waste half their evaluations. Affects
        // throughput only — never outcomes.
        if presence_commit {
            if consumed * 2 <= w {
                window = (window / 2).max(min_w);
            }
        } else {
            window = (window * 2).min(len);
        }
    }
    *window_hint = window;
    improvements
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for e in [
            RoundExecutor::Sequential,
            RoundExecutor::Speculative,
            RoundExecutor::Auto,
        ] {
            assert_eq!(RoundExecutor::parse(e.label()), Ok(e));
            assert_eq!(format!("{e}"), e.label());
        }
        assert!(RoundExecutor::parse("warp").is_err());
    }

    #[test]
    fn auto_resolves_by_size_and_threads() {
        // Explicit choices are size-independent.
        assert_eq!(
            RoundExecutor::Sequential.resolve(10_000),
            RoundExecutor::Sequential
        );
        assert_eq!(
            RoundExecutor::Speculative.resolve(2),
            RoundExecutor::Speculative
        );
        // Auto never goes speculative below the size floor, whatever
        // the thread budget.
        assert_eq!(
            RoundExecutor::Auto.resolve(RoundExecutor::AUTO_SPECULATIVE_MIN_N - 1),
            RoundExecutor::Sequential
        );
        // At or above the floor the verdict depends on the thread
        // budget; both outcomes are legal, but it must never be Auto.
        let resolved = RoundExecutor::Auto.resolve(RoundExecutor::AUTO_SPECULATIVE_MIN_N);
        assert_ne!(resolved, RoundExecutor::Auto);
        let host_cpus = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if bbncg_par::max_threads() > 1 && host_cpus > 1 {
            assert_eq!(resolved, RoundExecutor::Speculative);
        } else {
            assert_eq!(resolved, RoundExecutor::Sequential);
        }
    }

    #[test]
    fn auto_requires_real_host_parallelism() {
        let n = RoundExecutor::AUTO_SPECULATIVE_MIN_N;
        let auto = RoundExecutor::Auto;
        // The happy path: big instance, budget, CPUs, not nested.
        assert_eq!(
            auto.resolve_with(n, 8, 8, false),
            RoundExecutor::Speculative
        );
        // A `--threads 8` budget on a single-CPU host must NOT go
        // speculative: the workers would time-slice one core and the
        // fan-out is pure overhead.
        assert_eq!(auto.resolve_with(n, 8, 1, false), RoundExecutor::Sequential);
        // Nor with a single-thread budget on a many-CPU host, nor
        // inside an outer parallel worker, nor below the size floor.
        assert_eq!(auto.resolve_with(n, 1, 8, false), RoundExecutor::Sequential);
        assert_eq!(auto.resolve_with(n, 8, 8, true), RoundExecutor::Sequential);
        assert_eq!(
            auto.resolve_with(n - 1, 8, 8, false),
            RoundExecutor::Sequential
        );
        // Explicit choices ignore the environment entirely.
        assert_eq!(
            RoundExecutor::Speculative.resolve_with(2, 1, 1, true),
            RoundExecutor::Speculative
        );
        assert_eq!(
            RoundExecutor::Sequential.resolve_with(n, 8, 8, false),
            RoundExecutor::Sequential
        );
    }
}
