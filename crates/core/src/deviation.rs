//! The allocation-free deviation engine.
//!
//! Every best-response rule needs the same three ingredients for a
//! player `u`: the undirected graph with `u`'s owned arcs removed, its
//! component labelling (to price the disconnection penalty), and a BFS
//! per candidate strategy. The seed built all three from scratch per
//! *player activation* — a digraph clone plus a CSR rebuild plus
//! fresh component vectors — which dominates dynamics at large `n`.
//!
//! [`DeviationScratch`] owns all of it once and keeps it alive across
//! activations, moves and whole dynamics runs:
//!
//! * a [`PatchableCsr`] mirror of the current profile, edited **in
//!   place** as players move (cost ∝ the diff, not `n + m`);
//! * a [`BfsScratch`] reused by every candidate BFS;
//! * reusable component-label and candidate buffers.
//!
//! The result: pricing a candidate deviation performs **zero**
//! [`Csr::from_digraph`](bbncg_graph::Csr::from_digraph) rebuilds and
//! zero allocations — one patched
//! BFS, nothing else. The `rebuild-counter` feature on `bbncg-graph`
//! plus `tests/engine_invariants.rs` enforce this.
//!
//! # Session protocol
//!
//! ```text
//! let mut scratch = DeviationScratch::new(&r);
//! scratch.begin(&r, u, model);      // syncs the mirror, detaches u
//! let c = scratch.cost_of(&cand);   // any number of candidates
//! // ... r.set_strategy(u, best) by the caller; the next begin()
//! //     re-syncs the mirror by diffing, touching only what moved.
//! ```
//!
//! `begin` may be called for any player of any realization with the
//! same vertex count; the mirror diffs itself against the passed
//! profile, so the engine is always safe to reuse — just fastest when
//! successive profiles differ by single moves, which is exactly the
//! dynamics access pattern.

use crate::cost::{c_inf, cost_from_bfs, CostModel};
use crate::kernel::CostKernel;
use crate::realization::Realization;
use bbncg_graph::{
    Adjacency, BfsScratch, BitAdjacency, BitBfsScratch, CompactCsr, NodeId, OwnedDigraph,
    PatchableCsr, SparseSssp, UNREACHED,
};
use bbncg_obs::Counter;

/// Plain per-engine tallies of hot-path events, flushed to the global
/// `bbncg-obs` registry at session boundaries (and on drop). The
/// per-candidate path pays one `u64` add — no atomic, no branch on
/// the observability switch — so pricing throughput is identical
/// whether observability is on or off; only the flush consults
/// [`bbncg_obs::enabled`].
#[derive(Debug, Default)]
struct ObsTally {
    /// Candidates priced through the kernel (one BFS/repair each).
    priced: u64,
    /// Candidates skipped by the Lemma 2.2 lower bound (no BFS).
    prune_skips: u64,
    /// Candidates priced exactly from the bound (no BFS).
    prune_exact: u64,
    /// Base BFS/SSSP computations (sparse session rebases).
    base_bfs: u64,
    /// Pricing sessions opened.
    sessions: u64,
    /// Retained base profiles repaired in place (no base BFS).
    base_repaired: u64,
    /// Retained-base repair attempts abandoned (stale epoch, journal
    /// overflow, or damage over the threshold) — fell back to a BFS.
    repair_fallbacks: u64,
    /// Sparse pricings aborted mid-repair by the incumbent bound
    /// (each also counted in `prune_skips`).
    prune_aborts: u64,
    /// Per-target candidate-bound cache hits / misses.
    bound_hits: u64,
    bound_misses: u64,
}

/// Cross-activation retention bookkeeping for the sparse tier: while a
/// base profile is retained for some source `s`, every premise edit
/// (strategy diff by a player other than `s` — `s`'s own arcs are
/// never part of its premise graph) is journalled as raw arc deltas.
/// The next `begin(s)` nets the journal into presence transitions and
/// repairs the base in place instead of rerunning the O(n + m) BFS.
#[derive(Debug, Default)]
struct Retention {
    /// `(owner, target, ±1)` arc deltas since the retained rebase.
    pending: Vec<(NodeId, NodeId, i32)>,
    /// Journal gave up (too many edits to be worth netting); the next
    /// same-source session must rebase.
    overflow: bool,
    /// `CompactCsr::edge_epoch()` right after the last journalled edit
    /// (or rebase). A mismatch at repair time means an edit bypassed
    /// the journal, so the retained state cannot be trusted.
    epoch: u64,
}

/// Journal capacity before retention gives up: past this many raw arc
/// deltas a full base BFS is competitive with netting + repairing.
const RETENTION_CAP: usize = 256;

/// Overshoot radius for the abort-ball propagation (sparse tier, SUM
/// model): an incumbent abort keeps repairing until its certified
/// bound clears the incumbent by this many levels' worth of sum,
/// which prunes every later single-target candidate within that
/// premise-graph radius of the seed at O(1). Each extra level costs
/// one BFS level (~a frontier's width); each pruned candidate saves a
/// whole bounded repair — on long-diameter components the trade is
/// lopsidedly in the ball's favour.
const BALL_OVERSHOOT: u64 = 64;

/// The editable undirected mirror backing a deviation engine: the
/// queue/bitset tiers keep the slack-padded [`PatchableCsr`] (O(1)
/// in-block edits, bitset mirror alongside), the sparse tier the
/// zero-padding [`CompactCsr`] (O(n + m) memory at any scale). Both
/// expose the same strategy-diff edit surface, so every session
/// operation is written once against this enum.
#[derive(Debug)]
enum Backing {
    /// Slack-padded arena (queue and bitset kernels).
    Padded(PatchableCsr),
    /// Slack-free compact arena (sparse kernel).
    Compact(CompactCsr),
}

impl Backing {
    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        match self {
            Backing::Padded(p) => p.neighbors(u),
            Backing::Compact(c) => c.neighbors(u),
        }
    }

    fn replace_strategy(&mut self, owner: NodeId, old: &[NodeId], new: &[NodeId]) {
        match self {
            Backing::Padded(p) => p.replace_strategy(owner, old, new),
            Backing::Compact(c) => c.replace_strategy(owner, old, new),
        }
    }

    /// Arena re-layouts: full-arena rebuilds for the padded tier,
    /// compactions for the compact tier (its single-row relocations are
    /// O(deg) and not re-layouts).
    fn relayouts(&self) -> u64 {
        match self {
            Backing::Padded(p) => p.rebuilds(),
            Backing::Compact(c) => c.compactions(),
        }
    }

    /// Debug-assertion helper: does the backing match a ground-truth CSR?
    fn same_graph_as(&self, csr: &bbncg_graph::Csr) -> bool {
        match self {
            Backing::Padded(p) => p.same_graph_as(csr),
            Backing::Compact(c) => c.same_graph_as(csr),
        }
    }
}

impl Adjacency for Backing {
    #[inline]
    fn n(&self) -> usize {
        match self {
            Backing::Padded(p) => PatchableCsr::n(p),
            Backing::Compact(c) => CompactCsr::n(c),
        }
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        Backing::neighbors(self, u)
    }
}

/// Reusable engine state for pricing candidate deviations.
#[derive(Debug)]
pub struct DeviationScratch {
    /// The profile the patch currently reflects (minus the detached
    /// player's arcs).
    mirror: OwnedDigraph,
    /// In-place-editable undirected view of `mirror` (padded or
    /// compact, by resolved kernel).
    patch: Backing,
    bfs: BfsScratch,
    /// The kernel the caller asked for (`Auto` re-resolves when the
    /// engine is rebuilt for a different instance size).
    kernel: CostKernel,
    /// Word-parallel presence mirror of `patch`, maintained through the
    /// same strategy diffs; `Some` iff the resolved kernel is `Bitset`.
    bits: Option<BitAdjacency>,
    bitbfs: BitBfsScratch,
    /// Sparse-kernel session state: base distance profile of the active
    /// player over the detached graph plus per-candidate repair scratch.
    /// Kept zero-sized unless the resolved kernel is `Sparse`.
    sssp: SparseSssp,
    /// Landmark gain tables over the base-distance histogram (sparse
    /// sessions only): suffix counts, prefix counts and distance-
    /// weighted prefix sums, giving an O(1) upper bound on how much
    /// total distance a target at base distance `d` can save.
    lmk_cnt_ge: Vec<u64>,
    lmk_p1: Vec<u64>,
    lmk_p2: Vec<u64>,
    /// Component labels of the graph with the active player's arcs
    /// removed (valid while a session is active).
    comp_label: Vec<u32>,
    comp_count: usize,
    /// Size of each component, indexed by label (valid with
    /// `comp_label`; prices the disconnection terms of the per-
    /// candidate lower bound without a BFS).
    comp_sizes: Vec<usize>,
    /// Distinct in-neighbour count of the active player in the
    /// arcs-removed graph (for the Lemma 2.2 lower bound).
    distinct_in: usize,
    /// Active session: `(player, model)`; the player's arcs are
    /// currently lifted out of `patch`.
    active: Option<(NodeId, CostModel)>,
    /// Cross-activation retention journal (sparse tier; see
    /// [`Retention`]).
    retention: Retention,
    /// Per-target candidate-bound memo for the current base profile
    /// (sparse tier): `tb_stamp[t] == tb_epoch` makes `tb_gain[t]` (the
    /// landmark gain cap) and `tb_extra[t]` (target is not an
    /// in-neighbour) valid. Strategies share targets, so multi-slot
    /// searches hit this cache once per (target, base profile) instead
    /// of recomputing per candidate.
    tb_stamp: Vec<u32>,
    tb_gain: Vec<u64>,
    tb_extra: Vec<bool>,
    tb_epoch: u32,
    /// Per-target *cost* lower bounds propagated out of overshot
    /// incumbent aborts (sparse tier, single-target candidates): when
    /// a pricing of `[t]` aborts with a certified bound well over the
    /// incumbent, every vertex `v` the repair touched near `t` gets
    /// `tb_lb[v] = bound − reachable·d(t, v)` — a sound total-cost
    /// floor for the candidate `[v]` in this session (same component,
    /// same disconnection penalty). Candidates whose floor meets the
    /// incumbent skip their BFS entirely. `tb_lb_stamp` shares
    /// `tb_epoch` with the bound memo above.
    tb_lb_stamp: Vec<u32>,
    tb_lb: Vec<u64>,
    /// Reusable `(vertex, distance)` buffer for the overshoot ball.
    ball_buf: Vec<(NodeId, u32)>,
    /// Memoized cost of the player's *current* strategy this session
    /// (the improvement gate prices it after the rules already did).
    memo_current: Option<u64>,
    /// Net-diff scratch for the repair decision.
    diff_net: Vec<(NodeId, NodeId, i32)>,
    diff_removed: Vec<(NodeId, NodeId)>,
    diff_inserted: Vec<(NodeId, NodeId)>,
    label_buf: Vec<u32>,
    dedup_buf: Vec<NodeId>,
    /// Candidate-target pool, lent to best-response search loops.
    pub(crate) pool_buf: Vec<NodeId>,
    /// Candidate strategy buffer, lent to best-response search loops.
    pub(crate) cand_buf: Vec<NodeId>,
    /// Hot-path observability tallies (see [`ObsTally`]).
    tally: ObsTally,
}

/// Apply one player's strategy change to the patchable CSR **and** its
/// bit mirror. The mirror is a presence matrix over a multigraph, so a
/// removed arc clears its bit only when the patch (already updated)
/// lost the last occurrence of the edge — a brace owned from the other
/// side keeps the bit alive.
///
/// On the sparse tier this is also the single funnel every premise
/// edit flows through, so the retention journal is maintained here:
/// edits by players other than the retained source are recorded as
/// raw arc deltas (the source's own arcs are excluded from its premise
/// graph, so its edits — including the detach/attach session protocol
/// — are net zero and skipped), and the recorded edge epoch is
/// advanced so a bypassing edit is detectable at repair time.
fn apply_strategy_patch(
    patch: &mut Backing,
    bits: Option<&mut BitAdjacency>,
    retention: &mut Retention,
    retained_source: Option<NodeId>,
    owner: NodeId,
    old: &[NodeId],
    new: &[NodeId],
) {
    patch.replace_strategy(owner, old, new);
    if let Some(bits) = bits {
        for &t in old.iter().filter(|t| !new.contains(t)) {
            if !patch.neighbors(owner).contains(&t) {
                bits.clear_edge(owner, t);
            }
        }
        for &t in new.iter().filter(|t| !old.contains(t)) {
            bits.set_edge(owner, t);
        }
    }
    if let Backing::Compact(c) = patch {
        if let Some(s) = retained_source {
            if owner != s && !retention.overflow {
                if retention.pending.len() + old.len() + new.len() > RETENTION_CAP {
                    retention.overflow = true;
                    retention.pending.clear();
                } else {
                    for &t in old {
                        retention.pending.push((owner, t, -1));
                    }
                    for &t in new {
                        retention.pending.push((owner, t, 1));
                    }
                }
            }
            retention.epoch = c.edge_epoch();
        }
    }
}

impl DeviationScratch {
    /// Build the engine for `r`'s profile with the default
    /// ([`CostKernel::Auto`]) kernel. This is the one full
    /// construction; everything afterwards is incremental.
    pub fn new(r: &Realization) -> Self {
        Self::with_kernel(r, CostKernel::Auto)
    }

    /// Build the engine with an explicit cost kernel. Kernels are
    /// move-for-move equivalent; the choice only affects throughput.
    pub fn with_kernel(r: &Realization, kernel: CostKernel) -> Self {
        let mirror = r.graph().clone();
        let n = mirror.n();
        let resolved = kernel.resolve(n);
        let patch = match resolved {
            CostKernel::Sparse => Backing::Compact(CompactCsr::from_digraph(&mirror)),
            _ => Backing::Padded(PatchableCsr::from_digraph(&mirror)),
        };
        let bits = match resolved {
            CostKernel::Bitset => Some(BitAdjacency::from_adjacency(&patch)),
            _ => None,
        };
        DeviationScratch {
            mirror,
            patch,
            bfs: BfsScratch::new(n),
            kernel,
            bits,
            bitbfs: BitBfsScratch::new(n),
            // Zero-sized unless sparse; `rebase` sizes it on first use.
            sssp: SparseSssp::new(0),
            lmk_cnt_ge: Vec::new(),
            lmk_p1: Vec::new(),
            lmk_p2: Vec::new(),
            comp_label: vec![u32::MAX; n],
            comp_count: 0,
            comp_sizes: Vec::new(),
            distinct_in: 0,
            active: None,
            retention: Retention::default(),
            tb_stamp: Vec::new(),
            tb_gain: Vec::new(),
            tb_extra: Vec::new(),
            tb_epoch: 0,
            tb_lb_stamp: Vec::new(),
            tb_lb: Vec::new(),
            ball_buf: Vec::new(),
            memo_current: None,
            diff_net: Vec::new(),
            diff_removed: Vec::new(),
            diff_inserted: Vec::new(),
            label_buf: Vec::with_capacity(8),
            dedup_buf: Vec::with_capacity(8),
            pool_buf: Vec::with_capacity(n),
            cand_buf: Vec::with_capacity(8),
            tally: ObsTally::default(),
        }
    }

    /// Flush the local tallies into the global registry (attributed
    /// to the currently resolved kernel) and zero them. Called at
    /// session boundaries and on drop; tallies accumulated while
    /// observability is off are simply discarded, so counts always
    /// mean "since enable".
    fn flush_obs(&mut self) {
        let t = std::mem::take(&mut self.tally);
        if !bbncg_obs::enabled() {
            return;
        }
        let (priced, skips) = match self.resolved_kernel() {
            CostKernel::Bitset => (Counter::KernelPricedBitset, Counter::KernelPruneSkipBitset),
            CostKernel::Sparse => (Counter::KernelPricedSparse, Counter::KernelPruneSkipSparse),
            _ => (Counter::KernelPricedQueue, Counter::KernelPruneSkipQueue),
        };
        bbncg_obs::counter_add(priced, t.priced);
        bbncg_obs::counter_add(skips, t.prune_skips);
        bbncg_obs::counter_add(Counter::KernelPruneExact, t.prune_exact);
        bbncg_obs::counter_add(Counter::KernelBaseBfs, t.base_bfs);
        bbncg_obs::counter_add(Counter::KernelSessions, t.sessions);
        if matches!(self.patch, Backing::Compact(_)) {
            // Sparse pricing is one decrease-only repair per candidate.
            bbncg_obs::counter_add(Counter::KernelSsspRepairs, t.priced);
            bbncg_obs::counter_add(Counter::KernelBaseRepaired, t.base_repaired);
            bbncg_obs::counter_add(Counter::KernelRepairFallbacks, t.repair_fallbacks);
            bbncg_obs::counter_add(Counter::KernelPruneAbortSparse, t.prune_aborts);
            bbncg_obs::counter_add(Counter::KernelBoundCacheHits, t.bound_hits);
            bbncg_obs::counter_add(Counter::KernelBoundCacheMisses, t.bound_misses);
        }
    }

    /// The kernel this engine was built with (possibly `Auto`).
    #[inline]
    pub fn kernel(&self) -> CostKernel {
        self.kernel
    }

    /// The concrete kernel pricing candidates right now.
    #[inline]
    pub fn resolved_kernel(&self) -> CostKernel {
        match &self.patch {
            Backing::Compact(_) => CostKernel::Sparse,
            Backing::Padded(_) if self.bits.is_some() => CostKernel::Bitset,
            Backing::Padded(_) => CostKernel::Queue,
        }
    }

    /// Number of vertices the engine is sized for.
    #[inline]
    pub fn n(&self) -> usize {
        self.mirror.n()
    }

    /// The active session's player, if a session is open.
    #[inline]
    pub fn player(&self) -> Option<NodeId> {
        self.active.map(|(u, _)| u)
    }

    /// Arena re-layouts the underlying editable CSR has performed
    /// (0 for ordinary dynamics runs; [`PatchableCsr::rebuilds`] for
    /// the padded tiers, [`CompactCsr::compactions`] for sparse).
    #[inline]
    pub fn rebuilds(&self) -> u64 {
        self.patch.relayouts()
    }

    /// Re-attach the detached player's arcs, making `patch` mirror
    /// `mirror` exactly.
    fn close_session(&mut self) {
        if let Some((u, _)) = self.active.take() {
            apply_strategy_patch(
                &mut self.patch,
                self.bits.as_mut(),
                &mut self.retention,
                self.sssp.source(),
                u,
                &[],
                self.mirror.out(u),
            );
        }
    }

    /// Bring the mirror in line with `r` by diffing per-player
    /// strategies and patching only what changed.
    fn sync(&mut self, r: &Realization) {
        if self.mirror.n() != r.n() {
            // Different instance size: start over (not a hot path). The
            // requested kernel survives; `Auto` re-resolves for the new n.
            *self = DeviationScratch::with_kernel(r, self.kernel);
            return;
        }
        self.close_session();
        for u in 0..r.n() {
            let u = NodeId::new(u);
            let want = r.graph().out(u);
            let have = self.mirror.out(u);
            if have != want {
                apply_strategy_patch(
                    &mut self.patch,
                    self.bits.as_mut(),
                    &mut self.retention,
                    self.sssp.source(),
                    u,
                    have,
                    want,
                );
                self.mirror.set_out_from_slice(u, want);
            }
        }
        debug_assert!(self.patch.same_graph_as(r.csr()));
        debug_assert!(self.bits.as_ref().is_none_or(|b| b.mirrors(&self.patch)));
    }

    /// Open a pricing session for player `u` of `r` under `model`:
    /// sync the mirror to `r`, lift `u`'s owned arcs out of the patch,
    /// and recompute the component labelling the disconnection
    /// penalty needs. The session stays open (and candidate pricing
    /// valid) until the next `begin` or `sync`.
    ///
    /// Re-entrant: calling `begin` again for the same `(u, model)`
    /// while `r` still matches the mirror is a cheap no-op (one O(n)
    /// strategy-slice comparison), so layered helpers — e.g. a best-
    /// response solver on top of a verification loop that already
    /// opened the session — pay the detach + component relabel once.
    pub fn begin(&mut self, r: &Realization, u: NodeId, model: CostModel) {
        if self.active == Some((u, model)) && !self.mirror_differs(r) {
            return; // session already open for exactly this state
        }
        self.flush_obs();
        self.tally.sessions += 1;
        self.sync(r);
        apply_strategy_patch(
            &mut self.patch,
            self.bits.as_mut(),
            &mut self.retention,
            self.sssp.source(),
            u,
            self.mirror.out(u),
            &[],
        );
        self.active = Some((u, model));
        self.memo_current = None;
        self.recompute_components();
        self.recompute_distinct_in(u);
        if matches!(self.patch, Backing::Compact(_)) {
            self.rebase_sparse_session(u);
        }
    }

    /// Sparse-kernel session prep: fix the base distance profile every
    /// candidate repair starts from — by repairing the retained
    /// profile in place when this player was also the previous
    /// sparse source and the journalled premise diff is in-bounds,
    /// otherwise by a full BFS from `u` over the detached graph — and
    /// fold its histogram into the landmark gain tables that widen the
    /// per-candidate lower bound.
    fn rebase_sparse_session(&mut self, u: NodeId) {
        if !self.try_repair_retained(u) {
            let Backing::Compact(c) = &self.patch else {
                unreachable!("sparse session over padded backing");
            };
            self.tally.base_bfs += 1;
            self.sssp.rebase(c, u);
            self.retention.pending.clear();
            self.retention.overflow = false;
            let Backing::Compact(c) = &self.patch else {
                unreachable!();
            };
            self.retention.epoch = c.edge_epoch();
        }
        // Fresh base profile (either way) ⇒ new bound-cache epoch.
        self.tb_epoch = self.tb_epoch.wrapping_add(1);
        if self.tb_stamp.len() != self.n() {
            self.tb_stamp = vec![self.tb_epoch.wrapping_sub(1); self.n()];
            self.tb_gain = vec![0; self.n()];
            self.tb_extra = vec![false; self.n()];
            self.tb_lb_stamp = vec![self.tb_epoch.wrapping_sub(1); self.n()];
            self.tb_lb = vec![0; self.n()];
        }
        // gain_ub(bt) = Σ_v max(0, improvement cap of a target at base
        // distance bt on a vertex at base distance d), split by branch:
        //   d ≥ bt  → bt − 1          (suffix count × (bt−1))
        //   d < bt  → 2d − bt − 1     (weighted prefix sums)
        // Prefix/suffix arrays over the histogram make each lookup O(1).
        let hist = self.sssp.hist();
        let dmax = hist.len(); // base_max + 1 entries
        self.lmk_p1.clear();
        self.lmk_p2.clear();
        self.lmk_cnt_ge.clear();
        self.lmk_cnt_ge.resize(dmax + 1, 0);
        let (mut c1, mut c2) = (0u64, 0u64);
        for (d, &h) in hist.iter().enumerate() {
            c1 += h as u64;
            c2 += h as u64 * 2 * d as u64;
            self.lmk_p1.push(c1);
            self.lmk_p2.push(c2);
        }
        for d in (0..dmax).rev() {
            self.lmk_cnt_ge[d] = self.lmk_cnt_ge[d + 1] + hist[d] as u64;
        }
    }

    /// Attempt to reuse the retained base profile for a new session of
    /// the same source: net the journalled arc deltas into presence
    /// transitions against the current premise graph (the player is
    /// already detached here, so `patch` *is* the premise) and run the
    /// bounded dynamic-SSSP repair. Returns `false` — caller must
    /// rebase — when the source differs, the journal overflowed, the
    /// edge epoch shows an unjournalled edit, or the deletion damage
    /// exceeded the n/4 threshold.
    fn try_repair_retained(&mut self, u: NodeId) -> bool {
        if self.sssp.source() != Some(u) {
            return false;
        }
        let Backing::Compact(c) = &self.patch else {
            return false;
        };
        if self.retention.overflow || c.edge_epoch() != self.retention.epoch {
            self.tally.repair_fallbacks += 1;
            self.sssp.invalidate();
            return false;
        }
        // Net the raw arc deltas per undirected edge.
        self.diff_net.clear();
        for &(a, b, d) in &self.retention.pending {
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            self.diff_net.push((a, b, d));
        }
        self.diff_net.sort_unstable_by_key(|&(a, b, _)| (a, b));
        self.diff_removed.clear();
        self.diff_inserted.clear();
        let mut i = 0;
        while i < self.diff_net.len() {
            let (a, b, _) = self.diff_net[i];
            let mut delta = 0i32;
            while i < self.diff_net.len() && (self.diff_net[i].0, self.diff_net[i].1) == (a, b) {
                delta += self.diff_net[i].2;
                i += 1;
            }
            if delta == 0 {
                continue;
            }
            // Presence transition: multiplicity now (in the premise —
            // the source's own arcs are detached and were never
            // journalled, so the units agree) vs before the journal.
            let now = c.neighbors(a).iter().filter(|&&x| x == b).count() as i64;
            let before = now - delta as i64;
            if before < 0 {
                // Journal out of step with the graph — never expected;
                // fail safe into a rebase.
                self.tally.repair_fallbacks += 1;
                self.sssp.invalidate();
                return false;
            }
            if before > 0 && now == 0 {
                self.diff_removed.push((a, b));
            } else if before == 0 && now > 0 {
                self.diff_inserted.push((a, b));
            }
        }
        let threshold = (self.n() / 4).max(16);
        match self
            .sssp
            .repair_batch(c, u, &self.diff_removed, &self.diff_inserted, threshold)
        {
            bbncg_graph::RepairOutcome::Repaired(touched) => {
                self.tally.base_repaired += 1;
                bbncg_obs::observe(bbncg_obs::Histogram::RepairAffected, touched as u64);
                self.retention.pending.clear();
                true
            }
            bbncg_graph::RepairOutcome::TooDamaged => {
                self.tally.repair_fallbacks += 1;
                false
            }
        }
    }

    /// Upper bound on the total base-distance decrease a single target
    /// at finite base distance `bt` can cause over the source's base
    /// component (triangle inequality against the source-as-landmark:
    /// `d₀(t, v) ≥ |base(v) − base(t)|`). O(1) per call.
    fn landmark_gain_ub(&self, bt: usize) -> u64 {
        if bt <= 1 {
            return 0; // distance-1 targets cannot improve anything
        }
        let dmax = self.lmk_p1.len(); // base_max + 1
        let t1 = (bt as u64 - 1) * self.lmk_cnt_ge[bt.min(dmax)];
        // d < bt branch: positive only for d > (bt+1)/2; terms at the
        // low edge are zero, so the simpler floor is safe.
        let lo = bt / 2 + 1;
        let hi = (bt - 1).min(dmax - 1);
        let mut t2 = 0;
        if lo <= hi {
            let cnt = self.lmk_p1[hi] - self.lmk_p1[lo - 1];
            let w = self.lmk_p2[hi] - self.lmk_p2[lo - 1];
            t2 = w - (bt as u64 + 1) * cnt;
        }
        t1 + t2
    }

    /// Does any player's strategy in `r` differ from the mirror?
    /// (The mirror keeps the detached player's arcs, so this is a
    /// plain profile comparison.)
    fn mirror_differs(&self, r: &Realization) -> bool {
        self.mirror.n() != r.n()
            || (0..r.n()).any(|v| {
                let v = NodeId::new(v);
                self.mirror.out(v) != r.graph().out(v)
            })
    }

    fn recompute_components(&mut self) {
        self.comp_count =
            bbncg_graph::components_into(&self.patch, &mut self.bfs, &mut self.comp_label);
        self.comp_sizes.clear();
        self.comp_sizes.resize(self.comp_count, 0);
        for &l in &self.comp_label {
            self.comp_sizes[l as usize] += 1;
        }
    }

    fn recompute_distinct_in(&mut self, u: NodeId) {
        self.dedup_buf.clear();
        self.dedup_buf.extend_from_slice(self.patch.neighbors(u));
        self.dedup_buf.sort_unstable();
        self.dedup_buf.dedup();
        self.distinct_in = self.dedup_buf.len();
    }

    /// Component structure of the graph if the active player plays
    /// `targets`: the components touched by `{u} ∪ targets` merge.
    /// Returns `(κ after the move, vertices reachable from u)` — both
    /// exact, computed from the cached labelling without a BFS.
    fn merge_stats(&mut self, u: NodeId, targets: &[NodeId]) -> (usize, usize) {
        self.label_buf.clear();
        self.label_buf.push(self.comp_label[u.index()]);
        for &t in targets {
            self.label_buf.push(self.comp_label[t.index()]);
        }
        self.label_buf.sort_unstable();
        self.label_buf.dedup();
        let reachable: usize = self
            .label_buf
            .iter()
            .map(|&l| self.comp_sizes[l as usize])
            .sum();
        (self.comp_count - (self.label_buf.len() - 1), reachable)
    }

    /// Price the candidate strategy `targets` for the active player —
    /// one patched BFS (through the selected kernel), zero allocation,
    /// zero rebuilds. `targets` need not have full budget size (the
    /// greedy rule prices prefixes).
    ///
    /// # Panics
    /// Panics if no session is open.
    pub fn cost_of(&mut self, targets: &[NodeId]) -> u64 {
        let (u, _) = self.active.expect("no deviation session open");
        // Rules price the player's current strategy and the
        // improvement gate prices it again; one memo slot kills the
        // second BFS (session state is fixed, so the cost is too).
        let is_current = targets == self.mirror.out(u);
        if is_current {
            if let Some(c) = self.memo_current {
                return c;
            }
        }
        let (kappa, _) = self.merge_stats(u, targets);
        let cost = self.cost_with_kappa(targets, kappa);
        if is_current {
            self.memo_current = Some(cost);
        }
        cost
    }

    /// Kernel-dispatched pricing with the component count already in
    /// hand (so the pruned path computes merge stats exactly once).
    fn cost_with_kappa(&mut self, targets: &[NodeId], kappa: usize) -> u64 {
        let (u, model) = self.active.expect("no deviation session open");
        self.tally.priced += 1;
        let stats = match (&self.patch, &self.bits) {
            // Sparse: decrease-only repair of the session's base
            // profile — cost ∝ improved region, not n.
            (Backing::Compact(c), _) => self.sssp.price(c, u, targets),
            (Backing::Padded(_), Some(bits)) => self.bitbfs.run_patched(bits, u, u, targets),
            (Backing::Padded(p), None) => self.bfs.run_patched(p, u, u, targets),
        };
        cost_from_bfs(
            model,
            self.n(),
            kappa,
            stats.visited,
            stats.max_dist,
            stats.sum_dist,
        )
    }

    /// Price `targets` only if its Lemma 2.2-style lower bound beats
    /// `incumbent`: returns `None` (no BFS run) when the bound already
    /// meets or exceeds the incumbent — such a candidate can never
    /// *strictly* improve on it, so every search loop can skip it
    /// without changing its result or its tie-breaking. In the MAX
    /// model a candidate that leaves the graph disconnected is priced
    /// exactly from the component structure alone (`κ'·n²`), also
    /// without a BFS.
    ///
    /// # Panics
    /// Panics if no session is open.
    pub fn cost_of_pruned(&mut self, targets: &[NodeId], incumbent: u64) -> Option<u64> {
        let (bound, exact, kappa, reachable) = self.candidate_bound(targets);
        if bound >= incumbent {
            self.tally.prune_skips += 1;
            return None;
        }
        if exact {
            debug_assert_eq!(bound, self.cost_of(targets));
            self.tally.prune_exact += 1;
            return Some(bound);
        }
        // Sparse tier: price with a mid-repair incumbent abort — a
        // candidate whose final cost provably meets the incumbent is
        // abandoned part-way and reported as a prune skip (it can
        // never be *strictly* better, so tie-breaking is unchanged).
        if matches!(self.patch, Backing::Compact(_)) {
            // Ball floor first: an earlier overshot abort may have
            // already certified this single-target candidate at or
            // over the incumbent — same skip semantics, zero BFS.
            if let [t] = targets {
                let ti = t.index();
                if self.tb_lb_stamp[ti] == self.tb_epoch && self.tb_lb[ti] >= incumbent {
                    self.tally.prune_skips += 1;
                    return None;
                }
            }
            return match self.cost_bounded(targets, kappa, reachable, incumbent) {
                Some(cost) => Some(cost),
                None => {
                    self.tally.prune_skips += 1;
                    self.tally.prune_aborts += 1;
                    None
                }
            };
        }
        Some(self.cost_with_kappa(targets, kappa))
    }

    /// Sparse pricing through [`SparseSssp::price_bounded`]: exact
    /// stats unless the incumbent is provably unbeatable mid-repair.
    fn cost_bounded(
        &mut self,
        targets: &[NodeId],
        kappa: usize,
        reachable: usize,
        incumbent: u64,
    ) -> Option<u64> {
        let (u, model) = self.active.expect("no deviation session open");
        let n = self.n();
        let cinf = c_inf(n);
        self.tally.priced += 1;
        let budget = match model {
            // SUM: cost = sum + (n − reachable)·C_inf, so the sum may
            // not reach incumbent − penalty. `max_dist` is never read.
            CostModel::Sum => bbncg_graph::PriceBudget {
                sum: incumbent.saturating_sub((n - reachable) as u64 * cinf),
                max: u32::MAX,
                reachable,
                need_max: false,
            },
            // MAX: disconnected candidates were priced exactly by the
            // bound, so reachable == n and cost = eccentricity +
            // (κ − 1)·C_inf.
            CostModel::Max => bbncg_graph::PriceBudget {
                sum: u64::MAX,
                max: incumbent
                    .saturating_sub((kappa as u64 - 1) * cinf)
                    .min(u32::MAX as u64) as u32,
                reachable,
                need_max: true,
            },
        };
        let Backing::Compact(c) = &self.patch else {
            unreachable!("bounded pricing over padded backing");
        };
        // Single-target SUM candidates overshoot their abort so the
        // certified bound clears the incumbent by BALL_OVERSHOOT
        // levels' worth of sum — every vertex the repair touched
        // within that radius inherits a total-cost floor at or over
        // the incumbent and skips its own BFS later this session
        // (see `tb_lb`).
        let ball = matches!(model, CostModel::Sum) && targets.len() == 1 && budget.sum < u64::MAX;
        let overshoot = if ball { BALL_OVERSHOOT } else { 0 };
        let mut buf = std::mem::take(&mut self.ball_buf);
        let res = self
            .sssp
            .price_bounded_ball(c, u, targets, &budget, overshoot, &mut buf);
        match res {
            Ok(stats) => {
                self.ball_buf = buf;
                Some(cost_from_bfs(
                    model,
                    n,
                    kappa,
                    stats.visited,
                    stats.max_dist,
                    stats.sum_dist,
                ))
            }
            Err(lb_sum) => {
                if ball && lb_sum > 0 {
                    let penalty = (n - reachable) as u64 * cinf;
                    let floor = lb_sum + penalty;
                    let reach = reachable as u64;
                    for &(v, d) in &buf {
                        let vi = v.index();
                        let vlb = floor.saturating_sub(reach * (d as u64 - 1));
                        if self.tb_lb_stamp[vi] == self.tb_epoch {
                            self.tb_lb[vi] = self.tb_lb[vi].max(vlb);
                        } else {
                            self.tb_lb_stamp[vi] = self.tb_epoch;
                            self.tb_lb[vi] = vlb;
                        }
                    }
                    buf.clear();
                }
                self.ball_buf = buf;
                None
            }
        }
    }

    /// Lower bound on the cost of the *specific* candidate `targets`
    /// for the active player, from component structure and distance-1
    /// counting only (no BFS). Tighter than [`Self::cost_lower_bound`]:
    /// the vertices at distance 1 are exactly
    /// `targets ∪ in-neighbours`, reachability is exactly the merged
    /// components, and everything else reached is at distance ≥ 2.
    ///
    /// # Panics
    /// Panics if no session is open.
    pub fn candidate_lower_bound(&mut self, targets: &[NodeId]) -> u64 {
        self.candidate_bound(targets).0
    }

    /// `(bound, is_exact, κ after the move, reachable)` for
    /// [`Self::candidate_lower_bound`]; `is_exact` holds when the
    /// bound equals the true cost (every reached vertex provably at
    /// distance 1, or a MAX-model candidate that leaves the graph
    /// disconnected). κ and the reachable count ride along so the
    /// pruned pricing path never recomputes the merge stats.
    fn candidate_bound(&mut self, targets: &[NodeId]) -> (u64, bool, usize, usize) {
        let (u, model) = self.active.expect("no deviation session open");
        let (kappa, reachable) = self.merge_stats(u, targets);
        let n = self.n();
        if n <= 1 {
            return (0, false, kappa, reachable);
        }
        let cinf = c_inf(n);
        let sparse = matches!(self.patch, Backing::Compact(_));
        // |targets ∪ in-neighbours(u)|: targets are tiny, so dedup by
        // scan; in-neighbour membership via binary search in the sorted
        // distinct-in list `dedup_buf` built at session open. Sparse
        // sessions fold the landmark accumulators into the same pass,
        // memoized per (target, base profile) — strategies share
        // targets, so multi-slot searches pay each target once.
        let mut extra = 0usize;
        let mut gain: u64 = 0; // Σ landmark gain caps, in-component targets
        let mut out_targets = 0usize; // distinct targets outside the base component
        let mut max_bt: u32 = 0; // deepest finite base distance among targets
        for (i, &t) in targets.iter().enumerate() {
            if t == u || targets[..i].contains(&t) {
                continue;
            }
            if sparse {
                let ti = t.index();
                let (t_gain, t_extra) = if self.tb_stamp[ti] == self.tb_epoch {
                    self.tally.bound_hits += 1;
                    (self.tb_gain[ti], self.tb_extra[ti])
                } else {
                    self.tally.bound_misses += 1;
                    let bd = self.sssp.base_dist(t);
                    let g = if bd == UNREACHED {
                        0
                    } else {
                        self.landmark_gain_ub(bd as usize)
                    };
                    let e = self.dedup_buf.binary_search(&t).is_err();
                    self.tb_stamp[ti] = self.tb_epoch;
                    self.tb_gain[ti] = g;
                    self.tb_extra[ti] = e;
                    (g, e)
                };
                if t_extra {
                    extra += 1;
                }
                let bd = self.sssp.base_dist(t);
                if bd == UNREACHED {
                    out_targets += 1;
                } else {
                    gain += t_gain;
                    if bd > max_bt {
                        max_bt = bd;
                    }
                }
            } else if self.dedup_buf.binary_search(&t).is_err() {
                extra += 1;
            }
        }
        let d1 = (self.distinct_in + extra).min(reachable - 1);
        // d1 is the exact distance-1 count, so when it covers every
        // reached vertex the bound *is* the cost in both models (the
        // landmark widening is skipped there: it can never exceed an
        // exact bound, only lose the exactness certificate).
        let all_at_one = d1 == reachable - 1;
        match model {
            CostModel::Sum => {
                let mut bound =
                    d1 as u64 + 2 * (reachable - 1 - d1) as u64 + (n - reachable) as u64 * cinf;
                if sparse && !all_at_one {
                    // Landmark widening: distances inside the base
                    // component shrink by at most the targets' summed
                    // gain caps (triangle inequality against u), newly
                    // merged vertices sit at ≥ 2 except the targets
                    // themselves, unreached components price at C_inf.
                    let base = self.sssp.base_stats();
                    let in_r0 = base
                        .sum_dist
                        .saturating_sub(gain)
                        .max(base.visited as u64 - 1);
                    let m_new = reachable - base.visited;
                    let new_part = (2 * m_new - out_targets.min(m_new)) as u64;
                    let widened = in_r0 + new_part + (n - reachable) as u64 * cinf;
                    bound = bound.max(widened);
                }
                (bound, all_at_one, kappa, reachable)
            }
            CostModel::Max => {
                if reachable == n {
                    let mut bound = if d1 == n - 1 { 1 } else { 2 };
                    if sparse && !all_at_one {
                        // The base component's deepest vertex stays at
                        // least one hop beyond the deepest target
                        // (`ecc ≥ base_max + 1 − max_t base(t)`, by the
                        // triangle inequality through u); with no
                        // in-component target the base depths are not
                        // touched at all.
                        let base_max = self.sssp.base_max() as u64;
                        let widened = if max_bt > 0 {
                            base_max + 1 - max_bt as u64
                        } else {
                            base_max
                        };
                        bound = bound.max(widened);
                    }
                    (bound, all_at_one, kappa, reachable)
                } else {
                    // Disconnected MAX cost is κ'·n² regardless of the
                    // BFS: the local-diameter term saturates at n².
                    (kappa as u64 * cinf, true, kappa, reachable)
                }
            }
        }
    }

    /// Lower bound on the cost of *any* size-`b` strategy for the
    /// active player (Lemma 2.2 argument: at most
    /// `b + distinct in-neighbours` vertices at distance 1, the rest
    /// at ≥ 2). Candidates attaining it are provably optimal.
    ///
    /// # Panics
    /// Panics if no session is open.
    pub fn cost_lower_bound(&self, b: usize) -> u64 {
        let (_, model) = self.active.expect("no deviation session open");
        let n = self.n();
        if n <= 1 {
            return 0;
        }
        let at_dist_1 = (b + self.distinct_in).min(n - 1);
        let farther = n - 1 - at_dist_1;
        match model {
            CostModel::Sum => at_dist_1 as u64 + 2 * farther as u64,
            CostModel::Max => {
                if farther == 0 {
                    1
                } else {
                    2
                }
            }
        }
    }
}

impl Drop for DeviationScratch {
    fn drop(&mut self) {
        // The final session's tallies would otherwise never reach the
        // registry (begin() flushes the *previous* session).
        self.flush_obs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::OwnedDigraph;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn session_prices_like_full_recompute() {
        let g = OwnedDigraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = Realization::new(g);
        let mut scratch = DeviationScratch::new(&r);
        for model in CostModel::ALL {
            scratch.begin(&r, v(1), model);
            assert_eq!(scratch.cost_of(&[v(2)]), r.cost(v(1), model));
            for target in [0usize, 2, 3] {
                let dev = r.with_strategy(v(1), vec![v(target)]);
                assert_eq!(
                    scratch.cost_of(&[v(target)]),
                    dev.cost(v(1), model),
                    "target {target} {model:?}"
                );
            }
        }
    }

    #[test]
    fn sessions_reuse_across_players_and_moves() {
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut r = Realization::new(g);
        let mut scratch = DeviationScratch::new(&r);
        // Player 0 deviates; the applied move must be visible to the
        // next session via diff-sync, not a rebuild.
        scratch.begin(&r, v(0), CostModel::Sum);
        let c = scratch.cost_of(&[v(2)]);
        r.set_strategy(v(0), vec![v(2)]);
        assert_eq!(c, r.cost(v(0), CostModel::Sum));
        for u in 0..5 {
            scratch.begin(&r, v(u), CostModel::Max);
            let b = r.graph().out_degree(v(u));
            if b == 1 {
                for t in 0..5 {
                    if t == u {
                        continue;
                    }
                    let dev = r.with_strategy(v(u), vec![v(t)]);
                    assert_eq!(scratch.cost_of(&[v(t)]), dev.cost(v(u), CostModel::Max));
                }
            }
        }
        assert_eq!(scratch.rebuilds(), 0);
    }

    #[test]
    fn kappa_accounting_across_components() {
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (3, 4)]);
        let r = Realization::new(g);
        let mut scratch = DeviationScratch::new(&r);
        for model in CostModel::ALL {
            scratch.begin(&r, v(0), model);
            for target in [1usize, 2, 3] {
                let dev = r.with_strategy(v(0), vec![v(target)]);
                assert_eq!(
                    scratch.cost_of(&[v(target)]),
                    dev.cost(v(0), model),
                    "target {target} model {model:?}"
                );
            }
        }
    }

    #[test]
    fn lower_bound_is_sound() {
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = Realization::new(g);
        let mut scratch = DeviationScratch::new(&r);
        for model in CostModel::ALL {
            for u in 0..5 {
                let u = v(u);
                let b = r.graph().out_degree(u);
                scratch.begin(&r, u, model);
                let lb = scratch.cost_lower_bound(b);
                let pool: Vec<NodeId> = (0..5).map(v).filter(|&t| t != u).collect();
                if b == 0 {
                    assert!(scratch.cost_of(&[]) >= lb);
                    continue;
                }
                let mut od = crate::oracle::CombinationOdometer::new(pool.len(), b);
                loop {
                    let targets: Vec<NodeId> = od.indices().iter().map(|&i| pool[i]).collect();
                    assert!(scratch.cost_of(&targets) >= lb);
                    if !od.advance() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no deviation session open")]
    fn pricing_without_session_panics() {
        let r = Realization::new(OwnedDigraph::from_arcs(2, &[(0, 1)]));
        let mut scratch = DeviationScratch::new(&r);
        scratch.cost_of(&[v(1)]);
    }

    #[test]
    fn bitset_kernel_prices_identically() {
        // Forced bitset kernel on a small instance (Auto would pick
        // queue here): every candidate's cost matches the queue kernel
        // and the full recompute, including across components.
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2), (3, 4)]);
        let r = Realization::new(g);
        let mut queue = DeviationScratch::with_kernel(&r, CostKernel::Queue);
        let mut bitset = DeviationScratch::with_kernel(&r, CostKernel::Bitset);
        assert_eq!(queue.resolved_kernel(), CostKernel::Queue);
        assert_eq!(bitset.resolved_kernel(), CostKernel::Bitset);
        for model in CostModel::ALL {
            for u in 0..5 {
                let u = v(u);
                if r.graph().out_degree(u) != 1 {
                    continue;
                }
                queue.begin(&r, u, model);
                bitset.begin(&r, u, model);
                for t in (0..5).filter(|&t| t != u.index()) {
                    let want = r.with_strategy(u, vec![v(t)]).cost(u, model);
                    assert_eq!(queue.cost_of(&[v(t)]), want, "queue {u}->{t} {model:?}");
                    assert_eq!(bitset.cost_of(&[v(t)]), want, "bitset {u}->{t} {model:?}");
                }
            }
        }
    }

    #[test]
    fn bitset_mirror_survives_braces_and_moves() {
        // 0 <-> 1 brace: detaching player 0 must keep the {0,1} bit
        // alive (player 1's arc remains), and re-attaching restores it.
        let g = OwnedDigraph::from_arcs(3, &[(0, 1), (1, 0), (2, 0)]);
        let mut r = Realization::new(g);
        let mut scratch = DeviationScratch::with_kernel(&r, CostKernel::Bitset);
        scratch.begin(&r, v(0), CostModel::Sum);
        // In the detached graph, 0 still neighbours 1 (brace) and 2.
        assert_eq!(scratch.cost_of(&[v(2)]), {
            let dev = r.with_strategy(v(0), vec![v(2)]);
            dev.cost(v(0), CostModel::Sum)
        });
        // Apply a move and keep pricing through the diff-synced mirror.
        r.set_strategy(v(0), vec![v(2)]);
        for u in 0..3 {
            let u = v(u);
            if r.graph().out_degree(u) == 0 {
                continue;
            }
            scratch.begin(&r, u, CostModel::Max);
            for t in (0..3).filter(|&t| t != u.index()) {
                let dev = r.with_strategy(u, vec![v(t)]);
                assert_eq!(scratch.cost_of(&[v(t)]), dev.cost(u, CostModel::Max));
            }
        }
    }

    #[test]
    fn candidate_lower_bound_is_sound_and_pruning_is_lossless() {
        // Disconnected instance: the bound's cross-component pricing
        // (C_inf per unreached vertex in SUM, κ'·n² in MAX) must stay
        // below every candidate's true cost.
        let g = OwnedDigraph::from_arcs(6, &[(0, 1), (1, 2), (3, 4)]);
        let r = Realization::new(g);
        for kernel in [CostKernel::Queue, CostKernel::Bitset, CostKernel::Sparse] {
            let mut scratch = DeviationScratch::with_kernel(&r, kernel);
            for model in CostModel::ALL {
                for u in 0..6 {
                    let u = v(u);
                    scratch.begin(&r, u, model);
                    for t in (0..6).filter(|&t| t != u.index()) {
                        let cost = scratch.cost_of(&[v(t)]);
                        let lb = scratch.candidate_lower_bound(&[v(t)]);
                        assert!(lb <= cost, "bound {lb} > cost {cost} ({u}->{t} {model:?})");
                        // cost_of_pruned is exact below the incumbent…
                        assert_eq!(scratch.cost_of_pruned(&[v(t)], u64::MAX), Some(cost));
                        // …never skips a candidate that strictly beats
                        // the incumbent (pruning + in-flight aborts are
                        // lossless)…
                        assert_eq!(scratch.cost_of_pruned(&[v(t)], cost + 1), Some(cost));
                        // …and at incumbent == cost may skip (a tie
                        // cannot strictly improve), but never misprices.
                        if let Some(c) = scratch.cost_of_pruned(&[v(t)], cost) {
                            assert_eq!(c, cost);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_survives_instance_resize() {
        let r5 = Realization::new(OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2)]));
        let r3 = Realization::new(OwnedDigraph::from_arcs(3, &[(0, 1)]));
        for kernel in [CostKernel::Bitset, CostKernel::Sparse] {
            let mut scratch = DeviationScratch::with_kernel(&r5, kernel);
            scratch.begin(&r3, v(0), CostModel::Sum); // size change → rebuild
            assert_eq!(scratch.kernel(), kernel);
            assert_eq!(scratch.resolved_kernel(), kernel);
            assert_eq!(scratch.cost_of(&[v(1)]), r3.cost(v(0), CostModel::Sum));
        }
    }

    #[test]
    fn sparse_kernel_prices_identically() {
        // Forced sparse kernel on a small instance (Auto would pick
        // queue here): every candidate's cost matches the full
        // recompute across components, moves and both models, with the
        // incremental base surviving diff-synced moves.
        let g = OwnedDigraph::from_arcs(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let mut r = Realization::new(g);
        let mut scratch = DeviationScratch::with_kernel(&r, CostKernel::Sparse);
        assert_eq!(scratch.resolved_kernel(), CostKernel::Sparse);
        for model in CostModel::ALL {
            for u in 0..6 {
                let u = v(u);
                if r.graph().out_degree(u) != 1 {
                    continue;
                }
                scratch.begin(&r, u, model);
                for t in (0..6).filter(|&t| t != u.index()) {
                    let want = r.with_strategy(u, vec![v(t)]).cost(u, model);
                    assert_eq!(scratch.cost_of(&[v(t)]), want, "sparse {u}->{t} {model:?}");
                    assert_eq!(scratch.cost_of_pruned(&[v(t)], u64::MAX), Some(want));
                }
            }
        }
        // Apply a move; pricing must keep matching through diff-sync.
        r.set_strategy(v(0), vec![v(3)]);
        scratch.begin(&r, v(4), CostModel::Sum);
        for t in 0..4 {
            let want = r.with_strategy(v(4), vec![v(t)]).cost(v(4), CostModel::Sum);
            assert_eq!(scratch.cost_of(&[v(t)]), want);
        }
        assert_eq!(scratch.rebuilds(), 0);
    }

    #[test]
    fn sparse_degenerate_sessions() {
        // Single vertex: the lone empty strategy prices to zero.
        let one = Realization::new(OwnedDigraph::empty(1));
        let mut scratch = DeviationScratch::with_kernel(&one, CostKernel::Sparse);
        for model in CostModel::ALL {
            scratch.begin(&one, v(0), model);
            assert_eq!(scratch.cost_of(&[]), 0, "{model:?}");
            assert_eq!(scratch.cost_of_pruned(&[], u64::MAX), Some(0));
        }
        // Duplicate and self targets agree with the deduplicated cost.
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = Realization::new(g);
        let mut queue = DeviationScratch::with_kernel(&r, CostKernel::Queue);
        let mut sparse = DeviationScratch::with_kernel(&r, CostKernel::Sparse);
        for model in CostModel::ALL {
            queue.begin(&r, v(0), model);
            sparse.begin(&r, v(0), model);
            let want = queue.cost_of(&[v(3)]);
            assert_eq!(sparse.cost_of(&[v(3)]), want, "{model:?}");
            assert_eq!(sparse.cost_of(&[v(3), v(3), v(0)]), want, "messy {model:?}");
        }
    }
}
