//! The allocation-free deviation engine.
//!
//! Every best-response rule needs the same three ingredients for a
//! player `u`: the undirected graph with `u`'s owned arcs removed, its
//! component labelling (to price the disconnection penalty), and a BFS
//! per candidate strategy. The seed built all three from scratch per
//! *player activation* — a digraph clone plus a CSR rebuild plus
//! fresh component vectors — which dominates dynamics at large `n`.
//!
//! [`DeviationScratch`] owns all of it once and keeps it alive across
//! activations, moves and whole dynamics runs:
//!
//! * a [`PatchableCsr`] mirror of the current profile, edited **in
//!   place** as players move (cost ∝ the diff, not `n + m`);
//! * a [`BfsScratch`] reused by every candidate BFS;
//! * reusable component-label and candidate buffers.
//!
//! The result: pricing a candidate deviation performs **zero**
//! [`Csr::from_digraph`](bbncg_graph::Csr::from_digraph) rebuilds and
//! zero allocations — one patched
//! BFS, nothing else. The `rebuild-counter` feature on `bbncg-graph`
//! plus `tests/engine_invariants.rs` enforce this.
//!
//! # Session protocol
//!
//! ```text
//! let mut scratch = DeviationScratch::new(&r);
//! scratch.begin(&r, u, model);      // syncs the mirror, detaches u
//! let c = scratch.cost_of(&cand);   // any number of candidates
//! // ... r.set_strategy(u, best) by the caller; the next begin()
//! //     re-syncs the mirror by diffing, touching only what moved.
//! ```
//!
//! `begin` may be called for any player of any realization with the
//! same vertex count; the mirror diffs itself against the passed
//! profile, so the engine is always safe to reuse — just fastest when
//! successive profiles differ by single moves, which is exactly the
//! dynamics access pattern.

use crate::cost::{cost_from_bfs, CostModel};
use crate::realization::Realization;
use bbncg_graph::{BfsScratch, NodeId, OwnedDigraph, PatchableCsr};

/// Reusable engine state for pricing candidate deviations.
#[derive(Debug)]
pub struct DeviationScratch {
    /// The profile the patch currently reflects (minus the detached
    /// player's arcs).
    mirror: OwnedDigraph,
    /// In-place-editable undirected view of `mirror`.
    patch: PatchableCsr,
    bfs: BfsScratch,
    /// Component labels of the graph with the active player's arcs
    /// removed (valid while a session is active).
    comp_label: Vec<u32>,
    comp_count: usize,
    /// Distinct in-neighbour count of the active player in the
    /// arcs-removed graph (for the Lemma 2.2 lower bound).
    distinct_in: usize,
    /// Active session: `(player, model)`; the player's arcs are
    /// currently lifted out of `patch`.
    active: Option<(NodeId, CostModel)>,
    label_buf: Vec<u32>,
    dedup_buf: Vec<NodeId>,
    /// Candidate-target pool, lent to best-response search loops.
    pub(crate) pool_buf: Vec<NodeId>,
    /// Candidate strategy buffer, lent to best-response search loops.
    pub(crate) cand_buf: Vec<NodeId>,
}

impl DeviationScratch {
    /// Build the engine for `r`'s profile. This is the one full
    /// construction; everything afterwards is incremental.
    pub fn new(r: &Realization) -> Self {
        let mirror = r.graph().clone();
        let patch = PatchableCsr::from_digraph(&mirror);
        let n = mirror.n();
        DeviationScratch {
            mirror,
            patch,
            bfs: BfsScratch::new(n),
            comp_label: vec![u32::MAX; n],
            comp_count: 0,
            distinct_in: 0,
            active: None,
            label_buf: Vec::with_capacity(8),
            dedup_buf: Vec::with_capacity(8),
            pool_buf: Vec::with_capacity(n),
            cand_buf: Vec::with_capacity(8),
        }
    }

    /// Number of vertices the engine is sized for.
    #[inline]
    pub fn n(&self) -> usize {
        self.mirror.n()
    }

    /// The active session's player, if a session is open.
    #[inline]
    pub fn player(&self) -> Option<NodeId> {
        self.active.map(|(u, _)| u)
    }

    /// Arena re-layouts the underlying patchable CSR has performed
    /// (0 for ordinary dynamics runs; see [`PatchableCsr::rebuilds`]).
    #[inline]
    pub fn rebuilds(&self) -> u64 {
        self.patch.rebuilds()
    }

    /// Re-attach the detached player's arcs, making `patch` mirror
    /// `mirror` exactly.
    fn close_session(&mut self) {
        if let Some((u, _)) = self.active.take() {
            self.patch.replace_strategy(u, &[], self.mirror.out(u));
        }
    }

    /// Bring the mirror in line with `r` by diffing per-player
    /// strategies and patching only what changed.
    fn sync(&mut self, r: &Realization) {
        if self.mirror.n() != r.n() {
            // Different instance size: start over (not a hot path).
            *self = DeviationScratch::new(r);
            return;
        }
        self.close_session();
        for u in 0..r.n() {
            let u = NodeId::new(u);
            let want = r.graph().out(u);
            let have = self.mirror.out(u);
            if have != want {
                self.patch.replace_strategy(u, have, want);
                self.mirror.set_out_from_slice(u, want);
            }
        }
        debug_assert!(self.patch.same_graph_as(r.csr()));
    }

    /// Open a pricing session for player `u` of `r` under `model`:
    /// sync the mirror to `r`, lift `u`'s owned arcs out of the patch,
    /// and recompute the component labelling the disconnection
    /// penalty needs. The session stays open (and candidate pricing
    /// valid) until the next `begin` or `sync`.
    ///
    /// Re-entrant: calling `begin` again for the same `(u, model)`
    /// while `r` still matches the mirror is a cheap no-op (one O(n)
    /// strategy-slice comparison), so layered helpers — e.g. a best-
    /// response solver on top of a verification loop that already
    /// opened the session — pay the detach + component relabel once.
    pub fn begin(&mut self, r: &Realization, u: NodeId, model: CostModel) {
        if self.active == Some((u, model)) && !self.mirror_differs(r) {
            return; // session already open for exactly this state
        }
        self.sync(r);
        self.patch.replace_strategy(u, self.mirror.out(u), &[]);
        self.active = Some((u, model));
        self.recompute_components();
        self.recompute_distinct_in(u);
    }

    /// Does any player's strategy in `r` differ from the mirror?
    /// (The mirror keeps the detached player's arcs, so this is a
    /// plain profile comparison.)
    fn mirror_differs(&self, r: &Realization) -> bool {
        self.mirror.n() != r.n()
            || (0..r.n()).any(|v| {
                let v = NodeId::new(v);
                self.mirror.out(v) != r.graph().out(v)
            })
    }

    fn recompute_components(&mut self) {
        self.comp_count =
            bbncg_graph::components_into(&self.patch, &mut self.bfs, &mut self.comp_label);
    }

    fn recompute_distinct_in(&mut self, u: NodeId) {
        self.dedup_buf.clear();
        self.dedup_buf.extend_from_slice(self.patch.neighbors(u));
        self.dedup_buf.sort_unstable();
        self.dedup_buf.dedup();
        self.distinct_in = self.dedup_buf.len();
    }

    /// Component count of the graph if the active player plays
    /// `targets`: the components touched by `{u} ∪ targets` merge.
    fn kappa_after(&mut self, u: NodeId, targets: &[NodeId]) -> usize {
        self.label_buf.clear();
        self.label_buf.push(self.comp_label[u.index()]);
        for &t in targets {
            self.label_buf.push(self.comp_label[t.index()]);
        }
        self.label_buf.sort_unstable();
        self.label_buf.dedup();
        self.comp_count - (self.label_buf.len() - 1)
    }

    /// Price the candidate strategy `targets` for the active player —
    /// one patched BFS, zero allocation, zero rebuilds. `targets` need
    /// not have full budget size (the greedy rule prices prefixes).
    ///
    /// # Panics
    /// Panics if no session is open.
    pub fn cost_of(&mut self, targets: &[NodeId]) -> u64 {
        let (u, model) = self.active.expect("no deviation session open");
        let kappa = self.kappa_after(u, targets);
        let stats = self.bfs.run_patched(&self.patch, u, u, targets);
        cost_from_bfs(
            model,
            self.n(),
            kappa,
            stats.visited,
            stats.max_dist,
            stats.sum_dist,
        )
    }

    /// Lower bound on the cost of *any* size-`b` strategy for the
    /// active player (Lemma 2.2 argument: at most
    /// `b + distinct in-neighbours` vertices at distance 1, the rest
    /// at ≥ 2). Candidates attaining it are provably optimal.
    ///
    /// # Panics
    /// Panics if no session is open.
    pub fn cost_lower_bound(&self, b: usize) -> u64 {
        let (_, model) = self.active.expect("no deviation session open");
        let n = self.n();
        if n <= 1 {
            return 0;
        }
        let at_dist_1 = (b + self.distinct_in).min(n - 1);
        let farther = n - 1 - at_dist_1;
        match model {
            CostModel::Sum => at_dist_1 as u64 + 2 * farther as u64,
            CostModel::Max => {
                if farther == 0 {
                    1
                } else {
                    2
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::OwnedDigraph;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn session_prices_like_full_recompute() {
        let g = OwnedDigraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = Realization::new(g);
        let mut scratch = DeviationScratch::new(&r);
        for model in CostModel::ALL {
            scratch.begin(&r, v(1), model);
            assert_eq!(scratch.cost_of(&[v(2)]), r.cost(v(1), model));
            for target in [0usize, 2, 3] {
                let dev = r.with_strategy(v(1), vec![v(target)]);
                assert_eq!(
                    scratch.cost_of(&[v(target)]),
                    dev.cost(v(1), model),
                    "target {target} {model:?}"
                );
            }
        }
    }

    #[test]
    fn sessions_reuse_across_players_and_moves() {
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut r = Realization::new(g);
        let mut scratch = DeviationScratch::new(&r);
        // Player 0 deviates; the applied move must be visible to the
        // next session via diff-sync, not a rebuild.
        scratch.begin(&r, v(0), CostModel::Sum);
        let c = scratch.cost_of(&[v(2)]);
        r.set_strategy(v(0), vec![v(2)]);
        assert_eq!(c, r.cost(v(0), CostModel::Sum));
        for u in 0..5 {
            scratch.begin(&r, v(u), CostModel::Max);
            let b = r.graph().out_degree(v(u));
            if b == 1 {
                for t in 0..5 {
                    if t == u {
                        continue;
                    }
                    let dev = r.with_strategy(v(u), vec![v(t)]);
                    assert_eq!(scratch.cost_of(&[v(t)]), dev.cost(v(u), CostModel::Max));
                }
            }
        }
        assert_eq!(scratch.rebuilds(), 0);
    }

    #[test]
    fn kappa_accounting_across_components() {
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (3, 4)]);
        let r = Realization::new(g);
        let mut scratch = DeviationScratch::new(&r);
        for model in CostModel::ALL {
            scratch.begin(&r, v(0), model);
            for target in [1usize, 2, 3] {
                let dev = r.with_strategy(v(0), vec![v(target)]);
                assert_eq!(
                    scratch.cost_of(&[v(target)]),
                    dev.cost(v(0), model),
                    "target {target} model {model:?}"
                );
            }
        }
    }

    #[test]
    fn lower_bound_is_sound() {
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = Realization::new(g);
        let mut scratch = DeviationScratch::new(&r);
        for model in CostModel::ALL {
            for u in 0..5 {
                let u = v(u);
                let b = r.graph().out_degree(u);
                scratch.begin(&r, u, model);
                let lb = scratch.cost_lower_bound(b);
                let pool: Vec<NodeId> = (0..5).map(v).filter(|&t| t != u).collect();
                if b == 0 {
                    assert!(scratch.cost_of(&[]) >= lb);
                    continue;
                }
                let mut od = crate::oracle::CombinationOdometer::new(pool.len(), b);
                loop {
                    let targets: Vec<NodeId> = od.indices().iter().map(|&i| pool[i]).collect();
                    assert!(scratch.cost_of(&targets) >= lb);
                    if !od.advance() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no deviation session open")]
    fn pricing_without_session_panics() {
        let r = Realization::new(OwnedDigraph::from_arcs(2, &[(0, 1)]));
        let mut scratch = DeviationScratch::new(&r);
        scratch.cost_of(&[v(1)]);
    }
}
