//! Exhaustive enumeration of the realization space.
//!
//! A `(b₁,…,bₙ)-BG` instance has `Π C(n−1, bᵢ)` strategy profiles. For
//! small instances we can enumerate them all, verify Nash for each,
//! and read off the **exact** price of anarchy and price of stability —
//! the quantities the paper bounds asymptotically in Table 1. The
//! profile space is indexed by a mixed-radix code (one combination rank
//! per player), so enumeration parallelizes by index range and any
//! profile can be decoded directly via combination unranking.

use crate::budget::BudgetVector;
use crate::cost::c_inf;
use crate::equilibrium::is_best_response;
use crate::oracle::enumeration_count;
use crate::realization::Realization;
use bbncg_graph::{NodeId, OwnedDigraph};

/// Default cap on exhaustive profile enumeration.
pub const MAX_PROFILES: u64 = 5_000_000;

/// Number of strategy profiles of the instance (saturating).
pub fn profile_count(b: &BudgetVector) -> u64 {
    let n = b.n();
    let mut total: u64 = 1;
    for i in 0..n {
        let c = enumeration_count(n - 1, b.get(i));
        total = match total.checked_mul(c) {
            Some(x) => x,
            None => return u64::MAX,
        };
    }
    total
}

/// Unrank the `r`-th `k`-subset of `0..m` in lexicographic order.
///
/// # Panics
/// Panics if `r ≥ C(m, k)` (callers stay below [`MAX_PROFILES`], far
/// from `u64` saturation).
fn unrank_combination(m: usize, k: usize, mut r: u64, out: &mut Vec<usize>) {
    out.clear();
    let mut x = 0usize;
    for j in 0..k {
        loop {
            // Number of k-subsets beginning with x given j slots filled.
            let count = enumeration_count(m - x - 1, k - j - 1);
            if r < count {
                out.push(x);
                x += 1;
                break;
            }
            r -= count;
            x += 1;
            assert!(x < m, "combination rank out of range");
        }
    }
}

/// Decode profile index `idx` into a realization of `b`.
///
/// The index is a mixed-radix number: the least-significant digit is
/// player 0's combination rank.
pub fn decode_profile(b: &BudgetVector, mut idx: u64) -> OwnedDigraph {
    let n = b.n();
    let mut out_lists: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    let mut scratch = Vec::new();
    for u in 0..n {
        let k = b.get(u);
        let radix = enumeration_count(n - 1, k);
        let rank = idx % radix;
        idx /= radix;
        unrank_combination(n - 1, k, rank, &mut scratch);
        // Pool for player u is 0..n minus u, in order: pool[j] = j for
        // j < u, else j + 1.
        let targets: Vec<NodeId> = scratch
            .iter()
            .map(|&j| NodeId::new(if j < u { j } else { j + 1 }))
            .collect();
        out_lists.push(targets);
    }
    OwnedDigraph::from_out_lists(out_lists)
}

/// Exact equilibrium statistics of an instance, from exhaustive
/// enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactGameStats {
    /// Profiles enumerated.
    pub profiles: u64,
    /// Profiles that are Nash equilibria.
    pub equilibria: u64,
    /// Minimum social diameter over **all** profiles (the OPT of the
    /// PoA/PoS denominators).
    pub opt_diameter: u64,
    /// Smallest equilibrium diameter (PoS numerator); `u64::MAX` if no
    /// equilibrium exists (never the case — Theorem 2.3).
    pub best_equilibrium_diameter: u64,
    /// Largest equilibrium diameter (PoA numerator); 0 if none.
    pub worst_equilibrium_diameter: u64,
}

impl ExactGameStats {
    /// Exact price of anarchy.
    pub fn poa(&self) -> f64 {
        self.worst_equilibrium_diameter as f64 / self.opt_diameter as f64
    }

    /// Exact price of stability.
    pub fn pos(&self) -> f64 {
        self.best_equilibrium_diameter as f64 / self.opt_diameter as f64
    }
}

/// Enumerate every profile of `b`, verify Nash for each, and return the
/// exact statistics. Parallel over the profile index space.
///
/// ```
/// use bbncg_core::{exact_game_stats, BudgetVector, CostModel};
///
/// // (1,1,1)-BG has 8 profiles; the two directed triangles are its
/// // equilibria and its optimum diameter is 1, so PoA = PoS = 1.
/// let stats = exact_game_stats(&BudgetVector::uniform(3, 1), CostModel::Sum, 1000);
/// assert_eq!(stats.profiles, 8);
/// assert_eq!(stats.opt_diameter, 1);
/// assert_eq!(stats.poa(), 1.0);
/// ```
///
/// # Panics
/// Panics if the profile space exceeds `limit` (pass
/// [`MAX_PROFILES`] for the default guard).
pub fn exact_game_stats(
    b: &BudgetVector,
    model: crate::cost::CostModel,
    limit: u64,
) -> ExactGameStats {
    let total = profile_count(b);
    assert!(
        total <= limit,
        "instance has {total} profiles (> limit {limit})"
    );
    let n = b.n();
    let identity = ExactGameStats {
        profiles: 0,
        equilibria: 0,
        opt_diameter: c_inf(n),
        best_equilibrium_diameter: u64::MAX,
        worst_equilibrium_diameter: 0,
    };
    let indices: Vec<u64> = (0..total).collect();
    bbncg_par::par_reduce(
        &indices,
        identity,
        |_, &idx| {
            let g = decode_profile(b, idx);
            let r = Realization::new(g);
            let diam = r.social_diameter();
            let is_eq = (0..n).all(|u| is_best_response(&r, NodeId::new(u), model));
            ExactGameStats {
                profiles: 1,
                equilibria: is_eq as u64,
                opt_diameter: diam,
                best_equilibrium_diameter: if is_eq { diam } else { u64::MAX },
                worst_equilibrium_diameter: if is_eq { diam } else { 0 },
            }
        },
        |a, x| ExactGameStats {
            profiles: a.profiles + x.profiles,
            equilibria: a.equilibria + x.equilibria,
            opt_diameter: a.opt_diameter.min(x.opt_diameter),
            best_equilibrium_diameter: a.best_equilibrium_diameter.min(x.best_equilibrium_diameter),
            worst_equilibrium_diameter: a
                .worst_equilibrium_diameter
                .max(x.worst_equilibrium_diameter),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::equilibrium::is_nash_equilibrium;

    #[test]
    fn profile_count_small() {
        assert_eq!(profile_count(&BudgetVector::uniform(3, 1)), 8); // 2^3
        assert_eq!(profile_count(&BudgetVector::uniform(4, 1)), 81); // 3^4
        assert_eq!(profile_count(&BudgetVector::new(vec![2, 0, 0])), 1); // C(2,2)
    }

    #[test]
    fn decode_enumerates_distinct_profiles() {
        let b = BudgetVector::uniform(4, 1);
        let total = profile_count(&b);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..total {
            let g = decode_profile(&b, idx);
            assert_eq!(g.out_degrees(), vec![1, 1, 1, 1]);
            assert!(seen.insert(g), "duplicate profile at index {idx}");
        }
        assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn unrank_matches_odometer() {
        use crate::oracle::CombinationOdometer;
        let (m, k) = (6usize, 3usize);
        let mut od = CombinationOdometer::new(m, k);
        let mut scratch = Vec::new();
        let mut rank = 0u64;
        loop {
            unrank_combination(m, k, rank, &mut scratch);
            assert_eq!(scratch.as_slice(), od.indices(), "rank {rank}");
            rank += 1;
            if !od.advance() {
                break;
            }
        }
        assert_eq!(rank, enumeration_count(m, k));
    }

    #[test]
    fn exact_stats_on_three_unit_players() {
        // (1,1,1)-BG: 8 profiles. Equilibria include the directed
        // triangle(s); OPT diameter is 1 (triangle).
        let b = BudgetVector::uniform(3, 1);
        for model in CostModel::ALL {
            let stats = exact_game_stats(&b, model, 1000);
            assert_eq!(stats.profiles, 8);
            assert!(stats.equilibria >= 2); // both triangle orientations
            assert_eq!(stats.opt_diameter, 1);
            assert_eq!(stats.best_equilibrium_diameter, 1);
            assert!(stats.pos() >= 1.0);
            assert!(stats.poa() >= stats.pos());
        }
    }

    #[test]
    fn exact_stats_agree_with_nash_checker() {
        // Spot-check: every profile the enumerator counts as an
        // equilibrium passes the public checker, and vice versa.
        let b = BudgetVector::new(vec![1, 1, 1, 0]);
        let total = profile_count(&b);
        let mut eq_count = 0;
        for idx in 0..total {
            let r = Realization::new(decode_profile(&b, idx));
            if is_nash_equilibrium(&r, CostModel::Sum) {
                eq_count += 1;
            }
        }
        let stats = exact_game_stats(&b, CostModel::Sum, 1000);
        assert_eq!(stats.equilibria, eq_count);
    }

    #[test]
    fn unit_budget_poa_is_small_exactly() {
        // Table 1's Θ(1) all-unit row, exactly, at n = 5: worst
        // equilibrium diameter ≤ 4 (SUM) / 7 (MAX).
        let b = BudgetVector::uniform(5, 1);
        let sum = exact_game_stats(&b, CostModel::Sum, 10_000);
        assert!(sum.worst_equilibrium_diameter < 5);
        let max = exact_game_stats(&b, CostModel::Max, 10_000);
        assert!(max.worst_equilibrium_diameter < 8);
        assert!(sum.equilibria > 0 && max.equilibria > 0);
    }

    #[test]
    #[should_panic(expected = "profiles")]
    fn limit_guard_trips() {
        let b = BudgetVector::uniform(10, 3);
        exact_game_stats(&b, CostModel::Sum, 10);
    }
}
