//! Cooperative cancellation for long-running computations.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between the
//! party running a computation (dynamics, a whole scenario timeline)
//! and the party that may want to stop it (a job server draining on
//! shutdown, a client hitting a cancel endpoint). Cancellation is
//! *cooperative*: the running side polls [`CancelToken::is_cancelled`]
//! at safe points (round boundaries, phase boundaries) and winds down
//! with its state intact, so a cancelled run can be checkpointed and
//! resumed rather than thrown away.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag; a token
/// that is never cancelled costs one relaxed atomic load per poll.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        assert!(!b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn crosses_threads() {
        let token = CancelToken::new();
        let t2 = token.clone();
        std::thread::spawn(move || t2.cancel()).join().unwrap();
        assert!(token.is_cancelled());
    }
}
