//! The bounded-budget network creation game (the paper's primary
//! contribution).
//!
//! Implements `(b₁,…,bₙ)-BG` of Ehsani et al. (SPAA 2011): each player
//! `i` owns exactly `bᵢ` arcs to other players and pays either its sum
//! of distances (SUM) or its local diameter (MAX) in the undirected
//! underlying graph, with cross-component distance `C_inf = n²`.
//!
//! Layer map:
//!
//! * [`budget`] — budget vectors and Table 1 instance classes;
//! * [`cost`] — the two cost functions;
//! * [`realization`] — strategy profiles as ownership digraphs with
//!   cached undirected views;
//! * [`cancel`] — cooperative cancellation tokens for long-running
//!   dynamics and the orchestrators/services built on them;
//! * [`oracle`] — O(n+m), allocation-free pricing of candidate
//!   deviations (the engine under everything else);
//! * [`kernel`] — pluggable cost kernels (queue vs word-parallel bitset
//!   BFS) behind the pricing path, plus the per-candidate Lemma 2.2
//!   lower-bound pruning;
//! * [`best_response`] — exact (NP-hard, Theorem 2.1), greedy, and
//!   swap-restricted solvers;
//! * [`equilibrium`] — exact Nash verification, swap equilibria, and the
//!   Lemma 2.2 certificate;
//! * [`dynamics`] — best-response dynamics with cycle detection (the §8
//!   convergence question);
//! * [`round`] — round executors: sequential vs speculative-parallel
//!   intra-round execution, step-identical by construction;
//! * [`poa`] — social cost and price-of-anarchy bookkeeping.

#![warn(missing_docs)]
// Index loops here typically walk several parallel arrays at once;
// the index form is clearer than zipped iterators in those spots.
#![allow(clippy::needless_range_loop)]

pub mod best_response;
pub mod budget;
pub mod cancel;
pub mod cost;
pub mod deviation;
pub mod dynamics;
pub mod enumerate;
pub mod equilibrium;
pub mod io;
pub mod kernel;
#[cfg(any(test, feature = "naive-ref"))]
pub mod naive;
pub mod oracle;
pub mod poa;
pub mod realization;
pub mod round;
pub mod weighted;

pub use best_response::{
    best_swap_response, best_swap_response_with, exact_best_response, exact_best_response_cost,
    exact_best_response_cost_with, exact_best_response_with, first_improving_response,
    first_improving_response_with, greedy_best_response, greedy_best_response_with, ScoredStrategy,
    MAX_EXACT_CANDIDATES,
};
pub use budget::{BudgetVector, InstanceClass};
pub use cancel::CancelToken;
pub use cost::{c_inf, vertex_cost, CostModel};
pub use deviation::DeviationScratch;
pub use dynamics::{
    run_dynamics, run_dynamics_traced, run_dynamics_with_kernel, run_dynamics_with_scratch,
    run_dynamics_with_scratch_cancellable, DynamicsConfig, DynamicsReport, PlayerOrder,
    ResponseRule, RoundTrace,
};
pub use enumerate::{
    decode_profile, exact_game_stats, profile_count, ExactGameStats, MAX_PROFILES,
};
pub use equilibrium::{
    audit_equilibrium, audit_equilibrium_with_kernel, audit_equilibrium_with_opts,
    best_response_gap, find_violation, find_violation_with_kernel, is_best_response,
    is_best_response_with, is_nash_equilibrium, is_nash_equilibrium_with_kernel,
    is_swap_equilibrium, is_swap_equilibrium_with_kernel, lemma22_certifies, lemma22_certifies_all,
    NashAudit, Violation,
};
pub use io::{
    parse_realization, parse_snapshot, write_realization, write_snapshot, ParseError, Snapshot,
};
pub use kernel::CostKernel;
pub use oracle::{enumeration_count, CombinationOdometer, DeviationOracle};
pub use poa::{opt_diameter_lower_bound, social_cost, PoAEstimate};
pub use realization::Realization;
pub use round::RoundExecutor;
pub use weighted::WeightedGraph;
