//! Pluggable cost kernels for candidate pricing.
//!
//! Every best-response step prices `O(C(n−1, b))` candidate strategies,
//! each via one single-source BFS, so BFS throughput *is* the
//! throughput of dynamics, Nash audits and scenario sweeps. The engine
//! therefore lets callers choose **how** that BFS runs:
//!
//! * [`CostKernel::Queue`] — the classic stamped queue BFS
//!   ([`BfsScratch`](bbncg_graph::BfsScratch)): `O(n + m)` per query,
//!   branchy but with no per-level overhead. Best for small instances.
//! * [`CostKernel::Bitset`] — the word-parallel frontier-bitset BFS
//!   ([`BitBfsScratch`](bbncg_graph::BitBfsScratch)) over a
//!   [`BitAdjacency`](bbncg_graph::BitAdjacency) mirror maintained
//!   incrementally through patch sessions: `O(n²/64)` word ops per
//!   query, branch-light and cache-linear. A large constant-factor win
//!   for the dense, repeated queries of larger instances.
//! * [`CostKernel::Sparse`] — incremental repair over a slack-free
//!   [`CompactCsr`](bbncg_graph::CompactCsr): the session's base BFS is
//!   computed once per activation and every candidate is priced by a
//!   decrease-only dynamic-SSSP repair
//!   ([`SparseSssp`](bbncg_graph::SparseSssp)), touching only the
//!   vertices the candidate actually improves, with landmark lower
//!   bounds (the base profile doubles as a free landmark) rejecting
//!   most candidates without touching the graph at all. No bitset
//!   mirror, no per-row padding: `O(n + m)` memory, per-candidate time
//!   ∝ improved region. The tier that takes dynamics to n ≈ 10⁵–10⁶.
//! * [`CostKernel::Auto`] — pick by instance size
//!   ([`CostKernel::AUTO_BITSET_MIN_N`] / [`CostKernel::AUTO_BITSET_MAX_N`]).
//!
//! The kernels are **move-for-move equivalent**: all produce identical
//! [`BfsStats`](bbncg_graph::BfsStats) for every candidate, hence
//! identical costs, identical tie-breaking, and bit-identical dynamics
//! trajectories, checkpoints and resumes (enforced by the parity
//! proptests in `crates/core/tests/kernel_parity.rs` and the graph
//! crate's property suite). Choosing a kernel is purely a performance
//! decision.

/// Which BFS machinery prices candidate deviations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CostKernel {
    /// Stamped queue BFS over the patchable CSR (`O(n + m)` per query).
    Queue,
    /// Word-parallel frontier-bitset BFS over a bit-matrix mirror
    /// (`O(n²/64)` word ops per query).
    Bitset,
    /// Decrease-only dynamic-SSSP repair over a slack-free compact CSR
    /// (per-candidate time ∝ improved region, `O(n + m)` memory).
    Sparse,
    /// Resolve by instance size: queue below
    /// [`CostKernel::AUTO_BITSET_MIN_N`], bitset up to
    /// [`CostKernel::AUTO_BITSET_MAX_N`], sparse above.
    #[default]
    Auto,
}

impl CostKernel {
    /// Instance size at which [`CostKernel::Auto`] switches to the
    /// bitset kernel. The direction-optimized bitset BFS beats the
    /// queue at every size the `bench_snapshot` crossover probe
    /// measured (n = 8 was already ~even, n ≥ 16 a clear win); below
    /// this the difference is noise and the queue avoids the mirror's
    /// footprint entirely.
    pub const AUTO_BITSET_MIN_N: usize = 16;

    /// Instance size past which [`CostKernel::Auto`] leaves the bitset
    /// tier: the bit mirror costs Θ(n²/8) bytes *per engine* (one per
    /// parallel worker) and a bitset level scan is Θ(n²/64) words, so
    /// for huge sparse instances the incremental-repair kernel wins on
    /// both memory and time.
    pub const AUTO_BITSET_MAX_N: usize = 8192;

    /// The concrete kernel used for an `n`-vertex instance
    /// (never returns [`CostKernel::Auto`]).
    pub fn resolve(self, n: usize) -> CostKernel {
        match self {
            CostKernel::Auto => {
                if n < Self::AUTO_BITSET_MIN_N {
                    CostKernel::Queue
                } else if n <= Self::AUTO_BITSET_MAX_N {
                    CostKernel::Bitset
                } else {
                    CostKernel::Sparse
                }
            }
            k => k,
        }
    }

    /// Spec/CLI label (`"queue"`, `"bitset"`, `"sparse"`, `"auto"`).
    pub fn label(self) -> &'static str {
        match self {
            CostKernel::Queue => "queue",
            CostKernel::Bitset => "bitset",
            CostKernel::Sparse => "sparse",
            CostKernel::Auto => "auto",
        }
    }

    /// Parse a spec/CLI label.
    pub fn parse(s: &str) -> Result<CostKernel, String> {
        match s {
            "queue" => Ok(CostKernel::Queue),
            "bitset" => Ok(CostKernel::Bitset),
            "sparse" => Ok(CostKernel::Sparse),
            "auto" => Ok(CostKernel::Auto),
            other => Err(format!(
                "unknown kernel {other:?} (queue|bitset|sparse|auto)"
            )),
        }
    }
}

impl std::fmt::Display for CostKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for k in [
            CostKernel::Queue,
            CostKernel::Bitset,
            CostKernel::Sparse,
            CostKernel::Auto,
        ] {
            assert_eq!(CostKernel::parse(k.label()), Ok(k));
            assert_eq!(format!("{k}"), k.label());
        }
        assert!(CostKernel::parse("warp").is_err());
    }

    #[test]
    fn auto_resolves_by_size() {
        assert_eq!(CostKernel::Auto.resolve(8), CostKernel::Queue);
        assert_eq!(
            CostKernel::Auto.resolve(CostKernel::AUTO_BITSET_MIN_N),
            CostKernel::Bitset
        );
        assert_eq!(
            CostKernel::Auto.resolve(CostKernel::AUTO_BITSET_MAX_N),
            CostKernel::Bitset
        );
        assert_eq!(
            CostKernel::Auto.resolve(CostKernel::AUTO_BITSET_MAX_N + 1),
            CostKernel::Sparse
        );
        assert_eq!(CostKernel::Auto.resolve(1_000_000), CostKernel::Sparse);
        // Explicit choices are size-independent.
        assert_eq!(CostKernel::Queue.resolve(10_000), CostKernel::Queue);
        assert_eq!(CostKernel::Bitset.resolve(2), CostKernel::Bitset);
        assert_eq!(CostKernel::Sparse.resolve(4), CostKernel::Sparse);
    }
}
