//! Social cost and price-of-anarchy accounting.
//!
//! The paper's social cost is the diameter of the created network
//! (`n²` when disconnected). The price of anarchy of an instance is
//! `max diam(equilibrium) / min diam(realization)`, the price of
//! stability the same with `min` on top. Minimum-diameter realizations
//! are produced constructively (Theorem 2.3) by the `constructions`
//! crate; this module provides the instance-level *lower* bound for the
//! denominator and the ratio bookkeeping.

use crate::budget::BudgetVector;
use crate::realization::Realization;

/// Social cost of a profile: `diam(U(G))`, or `C_inf = n²` when
/// disconnected.
pub fn social_cost(r: &Realization) -> u64 {
    r.social_diameter()
}

/// A lower bound on `min { diam(G) : G realizes budgets }`:
///
/// * if `Σb < n − 1` every realization is disconnected → `n²` (and the
///   bound is tight);
/// * if `Σb < n(n−1)/2` some pair is non-adjacent in any realization →
///   diameter ≥ 2;
/// * otherwise ≥ 1 (only `n ≤ 1` gives 0).
pub fn opt_diameter_lower_bound(b: &BudgetVector) -> u64 {
    let n = b.n();
    if n <= 1 {
        return 0;
    }
    let total = b.total() as u64;
    if total < (n as u64 - 1) {
        return b.c_inf();
    }
    if total < (n as u64) * (n as u64 - 1) / 2 {
        2
    } else {
        1
    }
}

/// Bookkeeping for an empirical price-of-anarchy estimate on one
/// instance: the worst and best equilibrium diameters observed and the
/// bracket `[opt_lower, opt_upper]` for the optimum diameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoAEstimate {
    /// Largest equilibrium social cost observed.
    pub worst_equilibrium: u64,
    /// Smallest equilibrium social cost observed.
    pub best_equilibrium: u64,
    /// Lower bound on the optimal diameter.
    pub opt_lower: u64,
    /// Upper bound on the optimal diameter (diameter of an explicit
    /// realization, e.g. the Theorem 2.3 construction).
    pub opt_upper: u64,
}

impl PoAEstimate {
    /// Lower bound on the instance's price of anarchy implied by the
    /// observations: `worst_equilibrium / opt_upper`.
    pub fn poa_lower(&self) -> f64 {
        self.worst_equilibrium as f64 / self.opt_upper as f64
    }

    /// Upper bound on the price of anarchy *restricted to the observed
    /// equilibria*: `worst_equilibrium / opt_lower`.
    pub fn poa_upper(&self) -> f64 {
        self.worst_equilibrium as f64 / self.opt_lower as f64
    }

    /// Lower bound on the price of stability implied by the
    /// observations: `best_equilibrium / opt_upper`.
    pub fn pos_lower(&self) -> f64 {
        self.best_equilibrium as f64 / self.opt_upper as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::{generators, OwnedDigraph};

    #[test]
    fn social_cost_matches_diameter() {
        let r = Realization::new(generators::path(5));
        assert_eq!(social_cost(&r), 4);
        let r = Realization::new(OwnedDigraph::from_arcs(4, &[(0, 1), (2, 3)]));
        assert_eq!(social_cost(&r), 16);
    }

    #[test]
    fn opt_lower_bound_cases() {
        // Disconnected instance.
        assert_eq!(
            opt_diameter_lower_bound(&BudgetVector::new(vec![0, 1, 0, 0])),
            16
        );
        // Connectable but sparse.
        assert_eq!(
            opt_diameter_lower_bound(&BudgetVector::new(vec![1, 1, 1, 0])),
            2
        );
        // Enough for a complete graph: K4 needs 6 arcs.
        assert_eq!(
            opt_diameter_lower_bound(&BudgetVector::new(vec![2, 2, 1, 1])),
            1
        );
        // Trivial instances.
        assert_eq!(opt_diameter_lower_bound(&BudgetVector::new(vec![0])), 0);
    }

    #[test]
    fn poa_estimate_ratios() {
        let e = PoAEstimate {
            worst_equilibrium: 8,
            best_equilibrium: 4,
            opt_lower: 2,
            opt_upper: 4,
        };
        assert_eq!(e.poa_lower(), 2.0);
        assert_eq!(e.poa_upper(), 4.0);
        assert_eq!(e.pos_lower(), 1.0);
    }
}
