//! Best-response dynamics.
//!
//! The paper's concluding section asks: *if the game starts from an
//! arbitrary position and players keep improving, does it converge to an
//! equilibrium, and how fast?* (Laoutaris et al. exhibit a best-response
//! loop in the directed variant.) This module implements the dynamics
//! lab used to study that question empirically: configurable player
//! order, response rule, and iteration budget, with state-hash cycle
//! detection.
//!
//! A **round** activates each player once (in the configured order); a
//! **step** is one applied deviation. The dynamics has *converged* when
//! a complete round passes with no player able to strictly improve —
//! which is exactly the Nash condition for the `Best`/`FirstImproving`
//! rules and the swap-equilibrium condition for `BestSwap`.

use crate::cancel::CancelToken;
use crate::cost::CostModel;
use crate::deviation::DeviationScratch;
use crate::realization::Realization;
use crate::round::{respond, run_round_speculative, RoundExecutor};
use bbncg_graph::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Order in which players are activated within a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlayerOrder {
    /// `0, 1, …, n−1` every round (deterministic).
    RoundRobin,
    /// A fresh uniform permutation each round.
    RandomPermutation,
}

/// What move an activated player makes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseRule {
    /// Exact best response (exponential per activation; small instances).
    ExactBest,
    /// First strictly improving strategy in lexicographic order
    /// ("better-response dynamics"; same convergence criterion as
    /// `ExactBest`, cheaper when improvements abound).
    FirstImproving,
    /// Greedy-heuristic response; applied only when it strictly improves.
    Greedy,
    /// Best single-arc swap (polynomial; the scalable rule).
    BestSwap,
}

/// Dynamics configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynamicsConfig {
    /// Cost model being played.
    pub model: CostModel,
    /// Activation order.
    pub order: PlayerOrder,
    /// Move rule.
    pub rule: ResponseRule,
    /// Stop after this many rounds even without convergence.
    pub max_rounds: usize,
    /// How activations inside a round are executed
    /// ([`RoundExecutor`]). Executors are step-identical — this knob
    /// moves wall-clock, never trajectories, reports or checkpoints.
    pub executor: RoundExecutor,
}

impl DynamicsConfig {
    /// Round-robin exact best response under `model`, bounded rounds.
    pub fn exact(model: CostModel, max_rounds: usize) -> Self {
        DynamicsConfig {
            model,
            order: PlayerOrder::RoundRobin,
            rule: ResponseRule::ExactBest,
            max_rounds,
            executor: RoundExecutor::Auto,
        }
    }

    /// Round-robin best-swap dynamics under `model`.
    pub fn swap(model: CostModel, max_rounds: usize) -> Self {
        DynamicsConfig {
            model,
            order: PlayerOrder::RoundRobin,
            rule: ResponseRule::BestSwap,
            max_rounds,
            executor: RoundExecutor::Auto,
        }
    }

    /// This config with a different [`RoundExecutor`].
    pub fn with_executor(mut self, executor: RoundExecutor) -> Self {
        self.executor = executor;
        self
    }
}

/// Outcome of a dynamics run.
#[derive(Clone, Debug)]
pub struct DynamicsReport {
    /// Final profile.
    pub state: Realization,
    /// Did a full round pass with no improving move?
    pub converged: bool,
    /// Number of applied deviations.
    pub steps: usize,
    /// Number of completed rounds.
    pub rounds: usize,
    /// Was a previously seen profile revisited? (Only tracked for
    /// deterministic round-robin order, where revisiting proves a cycle
    /// — the answer to the paper's §8 convergence question is "no" for
    /// that trajectory.)
    pub cycled: bool,
    /// Was the run stopped early by a [`CancelToken`]? A cancelled run
    /// reports `converged = false` and leaves `state` at the last
    /// completed round, so it can be checkpointed and resumed.
    pub cancelled: bool,
}

fn profile_hash(r: &Realization) -> u64 {
    let mut h = DefaultHasher::new();
    r.graph().hash(&mut h);
    h.finish()
}

/// One row of a dynamics trace: the state of the world after a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundTrace {
    /// Round number (1-based; round 0 records the initial state).
    pub round: usize,
    /// Social cost (diameter, `n²` when disconnected) after the round.
    pub social_diameter: u64,
    /// Sum of all players' costs after the round (utilitarian welfare;
    /// **not** guaranteed monotone — the game is not a potential game
    /// in any obvious sense, and the trace lets experiments watch it).
    pub total_cost: u64,
    /// Deviations applied during the round.
    pub improvements: usize,
}

/// Run the dynamics from `initial` until convergence, a detected cycle,
/// or `cfg.max_rounds`.
///
/// ```
/// use bbncg_core::dynamics::{run_dynamics, DynamicsConfig};
/// use bbncg_core::{is_nash_equilibrium, CostModel, Realization};
/// use bbncg_graph::generators;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let start = Realization::new(generators::path(6));
/// let report = run_dynamics(start, DynamicsConfig::exact(CostModel::Sum, 100), &mut rng);
/// assert!(report.converged);
/// assert!(is_nash_equilibrium(&report.state, CostModel::Sum));
/// ```
pub fn run_dynamics(
    initial: Realization,
    cfg: DynamicsConfig,
    rng: &mut impl Rng,
) -> DynamicsReport {
    let mut scratch = DeviationScratch::new(&initial);
    run_dynamics_impl(initial, cfg, rng, &mut scratch, None, None).0
}

/// [`run_dynamics`] with an explicit [`CostKernel`](crate::CostKernel)
/// pricing every candidate. Kernels are move-for-move equivalent, so
/// the trajectory, step count and final profile are kernel-independent
/// (enforced by `tests/kernel_parity.rs`); only throughput differs.
pub fn run_dynamics_with_kernel(
    initial: Realization,
    cfg: DynamicsConfig,
    rng: &mut impl Rng,
    kernel: crate::CostKernel,
) -> DynamicsReport {
    let mut scratch = DeviationScratch::with_kernel(&initial, kernel);
    run_dynamics_impl(initial, cfg, rng, &mut scratch, None, None).0
}

/// [`run_dynamics`] that also records a per-round [`RoundTrace`]
/// (including a row for the initial state).
pub fn run_dynamics_traced(
    initial: Realization,
    cfg: DynamicsConfig,
    rng: &mut impl Rng,
) -> (DynamicsReport, Vec<RoundTrace>) {
    let mut trace = Vec::new();
    let mut scratch = DeviationScratch::new(&initial);
    let report = run_dynamics_impl(initial, cfg, rng, &mut scratch, Some(&mut trace), None).0;
    (report, trace)
}

/// [`run_dynamics`] with a caller-owned deviation engine — the phase-
/// boundary hook for orchestrators that run many dynamics phases (or
/// many seeds per worker) over evolving state. The engine re-syncs to
/// `initial` by diffing on first use, so passing a scratch left over
/// from another same-`n` profile is both safe and cheap; a size change
/// triggers one transparent rebuild. Trajectories are identical to
/// [`run_dynamics`] for identical inputs.
pub fn run_dynamics_with_scratch(
    initial: Realization,
    cfg: DynamicsConfig,
    rng: &mut impl Rng,
    scratch: &mut DeviationScratch,
) -> DynamicsReport {
    run_dynamics_impl(initial, cfg, rng, scratch, None, None).0
}

/// [`run_dynamics_with_scratch`] that additionally polls a
/// [`CancelToken`] at every round boundary. When the token fires the
/// run stops after the round in flight, reporting
/// `cancelled = true, converged = false` with the state of the last
/// completed round — a consistent profile that can be frozen into a
/// checkpoint and resumed later. An un-cancelled token changes nothing:
/// the trajectory is identical to [`run_dynamics_with_scratch`].
pub fn run_dynamics_with_scratch_cancellable(
    initial: Realization,
    cfg: DynamicsConfig,
    rng: &mut impl Rng,
    scratch: &mut DeviationScratch,
    cancel: &CancelToken,
) -> DynamicsReport {
    run_dynamics_impl(initial, cfg, rng, scratch, None, Some(cancel)).0
}

fn snapshot(
    state: &Realization,
    cfg: DynamicsConfig,
    round: usize,
    improvements: usize,
) -> RoundTrace {
    RoundTrace {
        round,
        social_diameter: state.social_diameter(),
        total_cost: state.costs(cfg.model).iter().sum(),
        improvements,
    }
}

fn run_dynamics_impl(
    initial: Realization,
    cfg: DynamicsConfig,
    rng: &mut impl Rng,
    scratch: &mut DeviationScratch,
    mut trace: Option<&mut Vec<RoundTrace>>,
    cancel: Option<&CancelToken>,
) -> (DynamicsReport, ()) {
    let n = initial.n();
    let mut state = initial;
    let mut steps = 0usize;
    let mut rounds = 0usize;
    let mut seen: HashSet<u64> = HashSet::new();
    let track_cycles = cfg.order == PlayerOrder::RoundRobin;
    if track_cycles {
        seen.insert(profile_hash(&state));
    }
    if let Some(t) = trace.as_deref_mut() {
        t.push(snapshot(&state, cfg, 0, 0));
    }
    let mut order: Vec<usize> = (0..n).collect();
    // The executor is resolved once per run; Auto consults the thread
    // budget here, at run start. Either verdict traces the identical
    // trajectory (round executors are step-identical by construction —
    // see `crate::round`), so resolution timing is a perf detail.
    let executor = cfg.executor.resolve(n);
    // Speculative window width, adapted across rounds, plus the warm
    // worker-engine pool shared by every window (see
    // `run_round_speculative`); both unused by the sequential executor.
    let mut window_hint = bbncg_par::max_threads().saturating_mul(4).max(1);
    let engine_pool = std::sync::Mutex::new(Vec::new());
    // One deviation engine for the whole run: each activation syncs it
    // to `state` by diffing (one move at a time ⇒ O(1) edge patches),
    // so no candidate pricing ever rebuilds the undirected view. The
    // speculative executor instead builds one engine per worker per
    // window and re-syncs this one lazily at the next sequential use.
    while rounds < cfg.max_rounds {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return (
                DynamicsReport {
                    state,
                    converged: false,
                    steps,
                    rounds,
                    cycled: false,
                    cancelled: true,
                },
                (),
            );
        }
        if cfg.order == PlayerOrder::RandomPermutation {
            order.shuffle(rng);
        }
        let mut round_improvements = 0usize;
        match executor {
            RoundExecutor::Speculative => {
                round_improvements = run_round_speculative(
                    &mut state,
                    &cfg,
                    &order,
                    scratch.kernel(),
                    &mut window_hint,
                    &engine_pool,
                );
                steps += round_improvements;
            }
            _ => {
                for &i in &order {
                    let u = NodeId::new(i);
                    if let Some(targets) = respond(scratch, &state, u, &cfg) {
                        state.set_strategy(u, targets);
                        steps += 1;
                        round_improvements += 1;
                    }
                }
            }
        }
        rounds += 1;
        bbncg_obs::counter_inc(bbncg_obs::Counter::DynamicsRounds);
        bbncg_obs::counter_add(bbncg_obs::Counter::DynamicsSteps, round_improvements as u64);
        if let Some(t) = trace.as_deref_mut() {
            t.push(snapshot(&state, cfg, rounds, round_improvements));
        }
        if round_improvements == 0 {
            return (
                DynamicsReport {
                    state,
                    converged: true,
                    steps,
                    rounds,
                    cycled: false,
                    cancelled: false,
                },
                (),
            );
        }
        if track_cycles && !seen.insert(profile_hash(&state)) {
            return (
                DynamicsReport {
                    state,
                    converged: false,
                    steps,
                    rounds,
                    cycled: true,
                    cancelled: false,
                },
                (),
            );
        }
    }
    (
        DynamicsReport {
            state,
            converged: false,
            steps,
            rounds,
            cycled: false,
            cancelled: false,
        },
        (),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{is_nash_equilibrium, is_swap_equilibrium};
    use bbncg_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_converges_to_equilibrium_sum() {
        let initial = Realization::new(generators::path(6));
        let mut rng = StdRng::seed_from_u64(1);
        let report = run_dynamics(initial, DynamicsConfig::exact(CostModel::Sum, 50), &mut rng);
        assert!(report.converged);
        assert!(is_nash_equilibrium(&report.state, CostModel::Sum));
        assert!(report.steps > 0);
    }

    #[test]
    fn path_converges_to_equilibrium_max() {
        let initial = Realization::new(generators::path(6));
        let mut rng = StdRng::seed_from_u64(2);
        let report = run_dynamics(initial, DynamicsConfig::exact(CostModel::Max, 50), &mut rng);
        assert!(report.converged);
        assert!(is_nash_equilibrium(&report.state, CostModel::Max));
    }

    #[test]
    fn equilibrium_is_a_fixed_point() {
        // Star: already an equilibrium; dynamics must converge in one
        // round with zero steps.
        let initial = Realization::new(generators::star(6));
        let mut rng = StdRng::seed_from_u64(3);
        let report = run_dynamics(
            initial.clone(),
            DynamicsConfig::exact(CostModel::Sum, 10),
            &mut rng,
        );
        assert!(report.converged);
        assert_eq!(report.steps, 0);
        assert_eq!(report.rounds, 1);
        assert_eq!(report.state, initial);
    }

    #[test]
    fn swap_dynamics_reaches_swap_equilibrium() {
        let mut rng = StdRng::seed_from_u64(4);
        let budgets = vec![1usize; 8];
        let initial = Realization::new(generators::random_realization(&budgets, &mut rng));
        let report = run_dynamics(initial, DynamicsConfig::swap(CostModel::Sum, 100), &mut rng);
        assert!(report.converged);
        assert!(is_swap_equilibrium(&report.state, CostModel::Sum));
    }

    #[test]
    fn random_order_also_converges_on_unit_budgets() {
        let mut rng = StdRng::seed_from_u64(5);
        let budgets = vec![1usize; 7];
        let initial = Realization::new(generators::random_realization(&budgets, &mut rng));
        let cfg = DynamicsConfig {
            model: CostModel::Max,
            order: PlayerOrder::RandomPermutation,
            rule: ResponseRule::ExactBest,
            max_rounds: 100,
            executor: RoundExecutor::Auto,
        };
        let report = run_dynamics(initial, cfg, &mut rng);
        assert!(report.converged);
        assert!(is_nash_equilibrium(&report.state, CostModel::Max));
    }

    #[test]
    fn first_improving_rule_converges_to_nash() {
        let mut rng = StdRng::seed_from_u64(8);
        let budgets = vec![1usize; 8];
        let initial = Realization::new(generators::random_realization(&budgets, &mut rng));
        let cfg = DynamicsConfig {
            model: CostModel::Sum,
            order: PlayerOrder::RoundRobin,
            rule: ResponseRule::FirstImproving,
            max_rounds: 300,
            executor: RoundExecutor::Auto,
        };
        let report = run_dynamics(initial, cfg, &mut rng);
        assert!(report.converged);
        assert!(is_nash_equilibrium(&report.state, CostModel::Sum));
    }

    #[test]
    fn trace_records_rounds_and_final_state() {
        let initial = Realization::new(generators::path(6));
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = DynamicsConfig::exact(CostModel::Sum, 50);
        let (report, trace) = run_dynamics_traced(initial, cfg, &mut rng);
        assert!(report.converged);
        // One row per completed round plus the initial snapshot.
        assert_eq!(trace.len(), report.rounds + 1);
        assert_eq!(trace[0].round, 0);
        // Final snapshot matches the final state.
        let last = trace.last().unwrap();
        assert_eq!(last.social_diameter, report.state.social_diameter());
        assert_eq!(last.improvements, 0); // converged on a quiet round
                                          // Social diameter never gets worse than the start on this
                                          // instance (not a general law; a sanity anchor for the trace).
        assert!(last.social_diameter <= trace[0].social_diameter);
    }

    #[test]
    fn cancelled_token_stops_before_the_first_round() {
        let initial = Realization::new(generators::path(8));
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = DeviationScratch::new(&initial);
        let cancel = CancelToken::new();
        cancel.cancel();
        let report = run_dynamics_with_scratch_cancellable(
            initial.clone(),
            DynamicsConfig::exact(CostModel::Sum, 100),
            &mut rng,
            &mut scratch,
            &cancel,
        );
        assert!(report.cancelled);
        assert!(!report.converged);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.steps, 0);
        assert_eq!(report.state, initial, "state untouched on early cancel");
    }

    #[test]
    fn unfired_token_changes_nothing() {
        let initial = Realization::new(generators::path(6));
        let cfg = DynamicsConfig::exact(CostModel::Sum, 50);
        let mut rng_a = StdRng::seed_from_u64(1);
        let plain = run_dynamics(initial.clone(), cfg, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(1);
        let mut scratch = DeviationScratch::new(&initial);
        let tokened = run_dynamics_with_scratch_cancellable(
            initial,
            cfg,
            &mut rng_b,
            &mut scratch,
            &CancelToken::new(),
        );
        assert_eq!(plain.state, tokened.state);
        assert_eq!(plain.steps, tokened.steps);
        assert_eq!(plain.rounds, tokened.rounds);
        assert!(!tokened.cancelled);
    }

    #[test]
    fn max_rounds_bounds_work() {
        let initial = Realization::new(generators::path(8));
        let mut rng = StdRng::seed_from_u64(6);
        let report = run_dynamics(initial, DynamicsConfig::exact(CostModel::Sum, 0), &mut rng);
        assert!(!report.converged);
        assert_eq!(report.rounds, 0);
    }
}
