//! Best-response computation: exact, greedy, and swap-restricted.
//!
//! Theorem 2.1 of the paper: computing a best response is NP-hard in
//! both the MAX version (k-center in disguise) and the SUM version
//! (k-median). Accordingly:
//!
//! * [`exact_best_response`] enumerates all `C(n−1, b)` strategies with
//!   an early-exit lower bound — exponential in `b`, intended for the
//!   small-instance exact experiments and for verifying constructions;
//! * [`greedy_best_response`] builds a strategy by marginal improvement
//!   (the classic k-median/k-center greedy), polynomial and good in
//!   practice;
//! * [`best_swap_response`] searches only single-arc swaps (the move set
//!   of Alon et al.'s basic network creation games), polynomial; swap
//!   dynamics with this rule is the scalable dynamics used at large `n`.

use crate::cost::CostModel;
use crate::deviation::DeviationScratch;
use crate::oracle::{enumeration_count, CombinationOdometer};
use crate::realization::Realization;
use bbncg_graph::NodeId;

/// Hard guard on exact enumeration size; beyond this the exact solver
/// refuses rather than silently running for hours.
pub const MAX_EXACT_CANDIDATES: u64 = 50_000_000;

/// A strategy with its cost to the deviating player.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScoredStrategy {
    /// Arc targets (sorted ascending).
    pub targets: Vec<NodeId>,
    /// Cost to the player if it plays `targets`.
    pub cost: u64,
}

/// Exact best response of player `u`: the cheapest strategy over all
/// `C(n−1, b)` candidates, ties broken toward the lexicographically
/// smallest target set. Deterministic.
///
/// ```
/// use bbncg_core::{exact_best_response, CostModel, Realization};
/// use bbncg_graph::{generators, NodeId};
///
/// // On the directed path 0→1→2→3→4, player 0's best single arc under
/// // SUM points at the middle of the remaining path.
/// let r = Realization::new(generators::path(5));
/// let br = exact_best_response(&r, NodeId::new(0), CostModel::Sum);
/// assert_eq!(br.targets, vec![NodeId::new(2)]);
/// assert!(br.cost < r.cost(NodeId::new(0), CostModel::Sum));
/// ```
///
/// # Panics
/// Panics if the candidate space exceeds [`MAX_EXACT_CANDIDATES`].
pub fn exact_best_response(r: &Realization, u: NodeId, model: CostModel) -> ScoredStrategy {
    exact_best_response_with(&mut DeviationScratch::new(r), r, u, model)
}

/// [`exact_best_response`] reusing a caller-held [`DeviationScratch`]
/// — the form dynamics and batched verification use, so repeated
/// activations share one engine instead of rebuilding per player.
///
/// # Panics
/// Panics if the candidate space exceeds [`MAX_EXACT_CANDIDATES`].
pub fn exact_best_response_with(
    scratch: &mut DeviationScratch,
    r: &Realization,
    u: NodeId,
    model: CostModel,
) -> ScoredStrategy {
    let n = r.n();
    let b = r.graph().out_degree(u);
    let count = enumeration_count(n - 1, b);
    assert!(
        count <= MAX_EXACT_CANDIDATES,
        "exact best response would enumerate {count} candidates (player {u}, budget {b}, n {n}); \
         use greedy_best_response or best_swap_response instead"
    );
    scratch.begin(r, u, model);
    let lb = scratch.cost_lower_bound(b);
    let mut pool = std::mem::take(&mut scratch.pool_buf);
    let mut targets = std::mem::take(&mut scratch.cand_buf);
    pool.clear();
    pool.extend((0..n).map(NodeId::new).filter(|&t| t != u));
    let mut odometer = CombinationOdometer::new(pool.len(), b);
    let mut best: Option<ScoredStrategy> = None;
    loop {
        targets.clear();
        targets.extend(odometer.indices().iter().map(|&i| pool[i]));
        // Per-candidate pruning: when the candidate's own Lemma 2.2
        // bound cannot beat the incumbent, skip its BFS entirely. A
        // pruned candidate's true cost is ≥ the incumbent, so neither
        // the optimum nor the lexicographic tie-break can change.
        let incumbent = best.as_ref().map_or(u64::MAX, |s| s.cost);
        if let Some(cost) = scratch.cost_of_pruned(&targets, incumbent) {
            if cost < incumbent {
                best = Some(ScoredStrategy {
                    targets: targets.clone(),
                    cost,
                });
                if cost <= lb {
                    break; // provably optimal
                }
            }
        }
        if !odometer.advance() {
            break;
        }
    }
    scratch.pool_buf = pool;
    scratch.cand_buf = targets;
    best.expect("at least one strategy exists")
}

/// Cost of the cheapest strategy for `u` (see [`exact_best_response`]),
/// with an extra early exit: as soon as some candidate goes strictly
/// below `stop_below`, that candidate's cost is returned. Passing the
/// player's current cost turns this into an equilibrium refuter.
pub fn exact_best_response_cost(
    r: &Realization,
    u: NodeId,
    model: CostModel,
    stop_below: Option<u64>,
) -> u64 {
    exact_best_response_cost_with(&mut DeviationScratch::new(r), r, u, model, stop_below)
}

/// [`exact_best_response_cost`] reusing a caller-held
/// [`DeviationScratch`].
pub fn exact_best_response_cost_with(
    scratch: &mut DeviationScratch,
    r: &Realization,
    u: NodeId,
    model: CostModel,
    stop_below: Option<u64>,
) -> u64 {
    let n = r.n();
    let b = r.graph().out_degree(u);
    let count = enumeration_count(n - 1, b);
    assert!(
        count <= MAX_EXACT_CANDIDATES,
        "exact best response would enumerate {count} candidates (player {u}, budget {b}, n {n})"
    );
    scratch.begin(r, u, model);
    let lb = scratch.cost_lower_bound(b);
    let mut pool = std::mem::take(&mut scratch.pool_buf);
    let mut targets = std::mem::take(&mut scratch.cand_buf);
    pool.clear();
    pool.extend((0..n).map(NodeId::new).filter(|&t| t != u));
    let mut odometer = CombinationOdometer::new(pool.len(), b);
    let mut best = u64::MAX;
    loop {
        targets.clear();
        targets.extend(odometer.indices().iter().map(|&i| pool[i]));
        if let Some(cost) = scratch.cost_of_pruned(&targets, best) {
            if cost < best {
                best = cost;
                if best <= lb || stop_below.is_some_and(|s| best < s) {
                    break;
                }
            }
        }
        if !odometer.advance() {
            break;
        }
    }
    scratch.pool_buf = pool;
    scratch.cand_buf = targets;
    best
}

/// Greedy heuristic best response: grow the strategy one arc at a time,
/// each time adding the target that minimizes the intermediate cost
/// (ties toward the smallest id). Polynomial: `b · n` oracle calls.
pub fn greedy_best_response(r: &Realization, u: NodeId, model: CostModel) -> ScoredStrategy {
    greedy_best_response_with(&mut DeviationScratch::new(r), r, u, model)
}

/// [`greedy_best_response`] reusing a caller-held [`DeviationScratch`].
pub fn greedy_best_response_with(
    scratch: &mut DeviationScratch,
    r: &Realization,
    u: NodeId,
    model: CostModel,
) -> ScoredStrategy {
    let n = r.n();
    let b = r.graph().out_degree(u);
    scratch.begin(r, u, model);
    let mut trial = std::mem::take(&mut scratch.cand_buf);
    let mut chosen: Vec<NodeId> = Vec::with_capacity(b);
    for _ in 0..b {
        let mut best_t: Option<(u64, NodeId)> = None;
        for t in (0..n).map(NodeId::new) {
            if t == u || chosen.contains(&t) {
                continue;
            }
            trial.clear();
            trial.extend_from_slice(&chosen);
            trial.push(t);
            let incumbent = best_t.map_or(u64::MAX, |(c, _)| c);
            if let Some(cost) = scratch.cost_of_pruned(&trial, incumbent) {
                if cost < incumbent {
                    best_t = Some((cost, t));
                }
            }
        }
        let (_, t) = best_t.expect("pool cannot be empty while budget remains");
        chosen.push(t);
    }
    scratch.cand_buf = trial;
    chosen.sort_unstable();
    let cost = scratch.cost_of(&chosen);
    ScoredStrategy {
        targets: chosen,
        cost,
    }
}

/// First **better** response of player `u`: enumerate strategies in
/// lexicographic order and return the first one strictly cheaper than
/// the current strategy, or `None` if `u` is already best-responding.
/// This is the "better-response dynamics" move rule — cheaper per
/// activation than [`exact_best_response`] when improvements are
/// plentiful, identical convergence guarantees.
///
/// # Panics
/// Panics if the candidate space exceeds [`MAX_EXACT_CANDIDATES`].
pub fn first_improving_response(
    r: &Realization,
    u: NodeId,
    model: CostModel,
) -> Option<ScoredStrategy> {
    first_improving_response_with(&mut DeviationScratch::new(r), r, u, model)
}

/// [`first_improving_response`] reusing a caller-held
/// [`DeviationScratch`].
///
/// # Panics
/// Panics if the candidate space exceeds [`MAX_EXACT_CANDIDATES`].
pub fn first_improving_response_with(
    scratch: &mut DeviationScratch,
    r: &Realization,
    u: NodeId,
    model: CostModel,
) -> Option<ScoredStrategy> {
    let n = r.n();
    let b = r.graph().out_degree(u);
    if b == 0 {
        return None;
    }
    let count = enumeration_count(n - 1, b);
    assert!(
        count <= MAX_EXACT_CANDIDATES,
        "better-response search would enumerate {count} candidates (player {u}, budget {b}, n {n})"
    );
    scratch.begin(r, u, model);
    let current = scratch.cost_of(r.strategy(u));
    let mut pool = std::mem::take(&mut scratch.pool_buf);
    let mut targets = std::mem::take(&mut scratch.cand_buf);
    pool.clear();
    pool.extend((0..n).map(NodeId::new).filter(|&t| t != u));
    let mut odometer = CombinationOdometer::new(pool.len(), b);
    let mut found = None;
    loop {
        targets.clear();
        targets.extend(odometer.indices().iter().map(|&i| pool[i]));
        // Pruned candidates cost ≥ current, so they are never the
        // first improvement — the returned strategy is unchanged.
        if let Some(cost) = scratch.cost_of_pruned(&targets, current) {
            if cost < current {
                found = Some(ScoredStrategy {
                    targets: targets.clone(),
                    cost,
                });
                break;
            }
        }
        if !odometer.advance() {
            break;
        }
    }
    scratch.pool_buf = pool;
    scratch.cand_buf = targets;
    found
}

/// Best single-arc swap for `u`: over every owned arc `u → old` and
/// every non-target `new`, the cheapest strategy obtained by replacing
/// `old` with `new`. Returns `None` if `u` owns no arcs. The result may
/// be the current strategy (cost ties included) — callers that need a
/// strict improvement compare against the current cost.
pub fn best_swap_response(r: &Realization, u: NodeId, model: CostModel) -> Option<ScoredStrategy> {
    best_swap_response_with(&mut DeviationScratch::new(r), r, u, model)
}

/// [`best_swap_response`] reusing a caller-held [`DeviationScratch`].
pub fn best_swap_response_with(
    scratch: &mut DeviationScratch,
    r: &Realization,
    u: NodeId,
    model: CostModel,
) -> Option<ScoredStrategy> {
    let n = r.n();
    if r.strategy(u).is_empty() {
        return None;
    }
    scratch.begin(r, u, model);
    let mut current = std::mem::take(&mut scratch.pool_buf);
    let mut trial = std::mem::take(&mut scratch.cand_buf);
    current.clear();
    current.extend_from_slice(r.strategy(u));
    let mut best = ScoredStrategy {
        cost: scratch.cost_of(&current),
        targets: current.clone(),
    };
    for i in 0..current.len() {
        for new in (0..n).map(NodeId::new) {
            if new == u || current.contains(&new) {
                continue;
            }
            trial.clear();
            trial.extend_from_slice(&current);
            trial[i] = new;
            if let Some(cost) = scratch.cost_of_pruned(&trial, best.cost) {
                if cost < best.cost {
                    let mut targets = trial.clone();
                    targets.sort_unstable();
                    best = ScoredStrategy { targets, cost };
                }
            }
        }
    }
    scratch.pool_buf = current;
    scratch.cand_buf = trial;
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::OwnedDigraph;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Path 0->1->2->3->4: the middle is the best single target.
    fn path5() -> Realization {
        Realization::new(OwnedDigraph::from_arcs(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
        ))
    }

    #[test]
    fn exact_br_moves_leaf_to_center_sum() {
        // Player 0 owns 0->1. Its SUM-optimal single arc is to v2
        // (cost 1+1+2+2 = 6) rather than staying at v1 (1+1+2+3 = 7)?
        // Careful: the rest of the graph is the path 1-2-3-4.
        // Linking to v2: dists 2,1,2(?),... compute: 0-2 edge, so
        // d(0,2)=1, d(0,1)=2, d(0,3)=2, d(0,4)=3 -> 8. Linking v1:
        // 1,2,3,4 -> 10. Linking v2 is better; linking v3 (1,2,3(0-3=1!)):
        // d(0,3)=1, d(0,2)=2, d(0,4)=2, d(0,1)=3 -> 8 too. Lex tie-break
        // picks v2.
        let r = path5();
        let br = exact_best_response(&r, v(0), CostModel::Sum);
        assert_eq!(br.targets, vec![v(2)]);
        assert_eq!(br.cost, 8);
    }

    #[test]
    fn exact_br_max_prefers_center() {
        let r = path5();
        let br = exact_best_response(&r, v(0), CostModel::Max);
        // Linking the middle of the path 1-2-3-4: v2 gives ecc 3
        // (to v4: 0-2-3-4), v3 gives ecc(0)=... 0-3: d(0,1)=3? path
        // 1-2-3: d(0,1) = 1+2 = 3 -> ecc 3. Both give 3? v2: d(0,4)=3,
        // d(0,1)=2 -> ecc 3. Either way cost 3? Hmm: can u do better?
        // ecc >= 2 since u adjacent to at most 1 vertex. Any single arc
        // into the 4-path has ecc >= 2; arc to v2: max(1,2,2,3)=3; to
        // v3: max(3,2,1,2)=3. So best is 2? No strategy achieves 2.
        assert_eq!(br.cost, 3);
        assert_eq!(br.targets, vec![v(2)]);
    }

    #[test]
    fn exact_cost_matches_full_recompute() {
        let r = path5();
        for model in CostModel::ALL {
            for u in 0..5 {
                let br = exact_best_response(&r, v(u), model);
                let dev = r.with_strategy(v(u), br.targets.clone());
                assert_eq!(dev.cost(v(u), model), br.cost);
            }
        }
    }

    #[test]
    fn zero_budget_best_response_is_empty() {
        let r = path5();
        let br = exact_best_response(&r, v(4), CostModel::Sum);
        assert!(br.targets.is_empty());
        assert_eq!(br.cost, r.cost(v(4), CostModel::Sum));
    }

    #[test]
    fn greedy_matches_exact_on_small_instances() {
        // Greedy is a heuristic, but on a 5-path with budget 1 it must
        // agree with exact (single-arc choice is exhaustive).
        let r = path5();
        for model in CostModel::ALL {
            let g = greedy_best_response(&r, v(0), model);
            let e = exact_best_response(&r, v(0), model);
            assert_eq!(g.cost, e.cost);
        }
    }

    #[test]
    fn swap_response_finds_the_single_swap() {
        let r = path5();
        let s = best_swap_response(&r, v(0), CostModel::Sum).unwrap();
        let e = exact_best_response(&r, v(0), CostModel::Sum);
        // Budget 1: swap space == full space.
        assert_eq!(s.cost, e.cost);
        assert_eq!(s.targets, e.targets);
    }

    #[test]
    fn swap_response_none_for_zero_budget() {
        let r = path5();
        assert!(best_swap_response(&r, v(4), CostModel::Max).is_none());
    }

    #[test]
    fn stop_below_short_circuits() {
        let r = path5();
        let current = r.cost(v(0), CostModel::Sum); // 10
        let c = exact_best_response_cost(&r, v(0), CostModel::Sum, Some(current));
        assert!(c < current);
    }

    #[test]
    fn first_improving_improves_or_none() {
        let r = path5();
        for model in CostModel::ALL {
            for u in 0..5 {
                let u = v(u);
                match first_improving_response(&r, u, model) {
                    Some(s) => {
                        assert!(s.cost < r.cost(u, model));
                        let applied = r.with_strategy(u, s.targets.clone());
                        assert_eq!(applied.cost(u, model), s.cost);
                    }
                    None => {
                        // Must coincide with the exact verdict.
                        assert!(crate::equilibrium::is_best_response(&r, u, model));
                    }
                }
            }
        }
    }

    #[test]
    fn budget_two_exact_br() {
        // Star with center 0 owning nothing; vertex 1 has budget 2.
        // Graph: 1->0, 1->2, 3->0, 4->0. Player 1's options pair up.
        let g = OwnedDigraph::from_arcs(5, &[(1, 0), (1, 2), (3, 0), (4, 0)]);
        let r = Realization::new(g);
        let br = exact_best_response(&r, v(1), CostModel::Sum);
        // v1 must keep v2 connected (v2 has no other edge) and stay
        // near the star: {0, 2} gives d = 1,1,2,2 -> 6; {2, x} for
        // x in {3,4}: 1(2),1(x),2(0),3(other) -> 7. {0,2} optimal.
        assert_eq!(br.targets, vec![v(0), v(2)]);
        assert_eq!(br.cost, 6);
    }
}
