//! The SUM and MAX cost functions.
//!
//! For a vertex `u` of a realization `G` with underlying graph `U(G)`
//! having `κ` connected components (paper §1.2):
//!
//! * **SUM**: `c(u) = Σᵥ dist(u, v)` where cross-component distances are
//!   `C_inf = n²`;
//! * **MAX**: `c(u) = max_v dist(u, v) + (κ − 1)·n²`; when `U(G)` is
//!   disconnected the first term is `n²` for *every* vertex, so the MAX
//!   cost of any vertex in a κ-component graph is `κ·n²`.
//!
//! Both choices make every player strictly prefer reducing the number of
//! components, which is what drives the connectivity lemmas (3.1, 7.1).

use bbncg_graph::{BfsScratch, Csr, NodeId};

/// Which of the paper's two games is being played.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostModel {
    /// Cost = sum of distances (paper's SUM version).
    Sum,
    /// Cost = local diameter + disconnection penalty (paper's MAX
    /// version).
    Max,
}

impl CostModel {
    /// Both models, for experiment sweeps.
    pub const ALL: [CostModel; 2] = [CostModel::Sum, CostModel::Max];

    /// Short label used in experiment tables ("SUM" / "MAX").
    pub fn label(self) -> &'static str {
        match self {
            CostModel::Sum => "SUM",
            CostModel::Max => "MAX",
        }
    }
}

/// `C_inf = n²` as used by both cost functions.
#[inline]
pub fn c_inf(n: usize) -> u64 {
    (n as u64) * (n as u64)
}

/// Cost of vertex `u` given a BFS from `u` already run in `scratch`,
/// and the total component count `kappa` of the graph.
///
/// Factoring the cost out of the BFS lets the best-response oracle reuse
/// one patched BFS for either model.
pub fn cost_from_bfs(
    model: CostModel,
    n: usize,
    kappa: usize,
    visited: usize,
    max_dist: u32,
    sum_dist: u64,
) -> u64 {
    let cinf = c_inf(n);
    match model {
        CostModel::Sum => sum_dist + (n - visited) as u64 * cinf,
        CostModel::Max => {
            let local_diameter = if visited == n { max_dist as u64 } else { cinf };
            local_diameter + (kappa as u64 - 1) * cinf
        }
    }
}

/// Cost of vertex `u` in the graph `csr` with `kappa` components,
/// running a fresh BFS in `scratch`.
pub fn vertex_cost(
    model: CostModel,
    csr: &Csr,
    kappa: usize,
    u: NodeId,
    scratch: &mut BfsScratch,
) -> u64 {
    let stats = scratch.run(csr, u);
    cost_from_bfs(
        model,
        csr.n(),
        kappa,
        stats.visited,
        stats.max_dist,
        stats.sum_dist,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sum_cost_on_path() {
        let csr = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut s = BfsScratch::new(4);
        assert_eq!(vertex_cost(CostModel::Sum, &csr, 1, v(0), &mut s), 6);
        assert_eq!(vertex_cost(CostModel::Sum, &csr, 1, v(1), &mut s), 4);
    }

    #[test]
    fn max_cost_on_path() {
        let csr = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut s = BfsScratch::new(4);
        assert_eq!(vertex_cost(CostModel::Max, &csr, 1, v(0), &mut s), 3);
        assert_eq!(vertex_cost(CostModel::Max, &csr, 1, v(2), &mut s), 2);
    }

    #[test]
    fn disconnected_sum_pays_cinf_per_missing_vertex() {
        let csr = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let mut s = BfsScratch::new(4);
        // From v0: dist 1 to v1, two unreachable vertices at 16 each.
        assert_eq!(vertex_cost(CostModel::Sum, &csr, 2, v(0), &mut s), 1 + 32);
    }

    #[test]
    fn disconnected_max_is_kappa_cinf() {
        let csr = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let mut s = BfsScratch::new(4);
        // κ = 2, n² = 16: every vertex costs 2·16 = 32.
        for u in 0..4 {
            assert_eq!(vertex_cost(CostModel::Max, &csr, 2, v(u), &mut s), 32);
        }
    }

    #[test]
    fn max_cost_strictly_prefers_fewer_components() {
        // Paper's design requirement: merging components always wins.
        // 5 isolated vertices (κ=5) vs a path on 5 vertices (κ=1).
        let iso = Csr::from_edges(5, &[]);
        let path = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut s = BfsScratch::new(5);
        let worst_connected = vertex_cost(CostModel::Max, &path, 1, v(0), &mut s);
        let best_isolated = vertex_cost(CostModel::Max, &iso, 5, v(0), &mut s);
        assert!(worst_connected < best_isolated);
    }

    #[test]
    fn labels() {
        assert_eq!(CostModel::Sum.label(), "SUM");
        assert_eq!(CostModel::Max.label(), "MAX");
        assert_eq!(CostModel::ALL.len(), 2);
    }
}
