//! The Section 6 machinery: weighted graphs, weak equilibria, and
//! poor-leaf folding.
//!
//! The proof of the 2^O(√log n) SUM bound (Theorem 6.9) rests on
//! Theorem 6.1, whose proof introduces:
//!
//! * **vertex weights** `w : V → Z⁺` with cost
//!   `c(u) = Σ_v w(v)·dist(u,v)`;
//! * **weak equilibria** — no vertex can improve by swapping *one* of
//!   its arcs (every Nash equilibrium is a weak equilibrium);
//! * **poor leaves** (degree-1, out-degree 0) which can be **folded**
//!   into their neighbour — transferring their weight — while
//!   preserving weak equilibrium;
//! * **rich leaves** (degree-1, out-degree 1), any two of which are
//!   within distance 2 in a weak equilibrium (Lemma 6.4);
//! * **Lemma 6.2**: an induced subtree of a weak equilibrium hanging
//!   off the rest of the graph has height ≤ 1 + log₂ w(T).
//!
//! Everything here is executable and checked in tests on the paper's
//! own objects: folding a SUM equilibrium's leaves must preserve weak
//! equilibrium (the key step of Corollary 6.3), and the folded trees
//! must satisfy the height/weight bound.
//!
//! Hot-path note: the only remaining [`Csr::from_digraph`] here is the
//! constructor's one-time build of the cached view. Swap pricing
//! ([`WeightedGraph::is_weak_equilibrium`]) and leaf folding
//! ([`WeightedGraph::fold_poor_leaves`]) edit a [`PatchableCsr`] in
//! place, per the deviation-engine discipline.

use crate::cost::c_inf;
use bbncg_graph::{Adjacency, BfsScratch, Csr, NodeId, OwnedDigraph, PatchableCsr};

/// A vertex-weighted ownership digraph for the SUM game (Section 6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedGraph {
    g: OwnedDigraph,
    csr: Csr,
    weight: Vec<u64>,
}

impl WeightedGraph {
    /// Wrap a digraph with unit weights (the unweighted game).
    pub fn unit(g: OwnedDigraph) -> Self {
        let n = g.n();
        Self::with_weights(g, vec![1; n])
    }

    /// Wrap a digraph with the given positive weights.
    ///
    /// # Panics
    /// Panics if a weight is zero or the lengths mismatch.
    pub fn with_weights(g: OwnedDigraph, weight: Vec<u64>) -> Self {
        assert_eq!(g.n(), weight.len(), "one weight per vertex");
        assert!(weight.iter().all(|&w| w > 0), "weights must be positive");
        let csr = Csr::from_digraph(&g);
        WeightedGraph { g, csr, weight }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// The underlying digraph.
    pub fn graph(&self) -> &OwnedDigraph {
        &self.g
    }

    /// Weight of a vertex.
    pub fn weight(&self, u: NodeId) -> u64 {
        self.weight[u.index()]
    }

    /// Total weight `w(G)` — invariant under folding.
    pub fn total_weight(&self) -> u64 {
        self.weight.iter().sum()
    }

    /// Weighted SUM cost of `u`: `Σ_v w(v)·dist(u, v)`, with
    /// cross-component distance `C_inf = n²` (n = current vertex count).
    pub fn cost(&self, u: NodeId, scratch: &mut BfsScratch) -> u64 {
        self.cost_over(&self.csr, u, scratch)
    }

    /// Weighted SUM cost of `u` over any adjacency (shared by the
    /// cached view and the in-place swap evaluation).
    fn cost_over<A: Adjacency + ?Sized>(
        &self,
        adj: &A,
        u: NodeId,
        scratch: &mut BfsScratch,
    ) -> u64 {
        scratch.run(adj, u);
        let cinf = c_inf(self.n());
        let mut total = 0u64;
        for v in 0..self.n() {
            let v = NodeId::new(v);
            let d = match scratch.dist(v) {
                Some(d) => d as u64,
                None => cinf,
            };
            total += d * self.weight[v.index()];
        }
        total
    }

    /// Cost of `u` if the arc `u → old` is replaced by `u → new`
    /// (single-swap deviation — the weak-equilibrium move set). The
    /// swap is applied to `patch` in place and reverted before
    /// returning: no graph rebuild per candidate.
    fn swap_cost(
        &self,
        patch: &mut PatchableCsr,
        u: NodeId,
        old: NodeId,
        new: NodeId,
        scratch: &mut BfsScratch,
    ) -> u64 {
        patch.remove_edge(u, old);
        patch.add_edge(u, new);
        let total = self.cost_over(patch, u, scratch);
        patch.remove_edge(u, new);
        patch.add_edge(u, old);
        total
    }

    /// Is this a **weak equilibrium**: no single-arc swap strictly
    /// decreases any owner's weighted cost? Candidate swaps are priced
    /// through one in-place-patched adjacency (the deviation-engine
    /// discipline), not per-swap rebuilds.
    pub fn is_weak_equilibrium(&self) -> bool {
        let n = self.n();
        let mut scratch = BfsScratch::new(n);
        let mut patch = PatchableCsr::from_digraph(&self.g);
        for u in 0..n {
            let u = NodeId::new(u);
            if self.g.out_degree(u) == 0 {
                continue;
            }
            let current = self.cost(u, &mut scratch);
            for &old in self.g.out(u) {
                for new in 0..n {
                    let new = NodeId::new(new);
                    if new == u || self.g.has_arc(u, new) {
                        continue;
                    }
                    if self.swap_cost(&mut patch, u, old, new, &mut scratch) < current {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Degree-1 vertices with out-degree 0 (their single edge is owned
    /// by the neighbour): the paper's **poor leaves**.
    pub fn poor_leaves(&self) -> Vec<NodeId> {
        (0..self.n())
            .map(NodeId::new)
            .filter(|&u| self.csr.degree(u) == 1 && self.g.out_degree(u) == 0)
            .collect()
    }

    /// Degree-1 vertices with out-degree 1: the paper's **rich leaves**.
    pub fn rich_leaves(&self) -> Vec<NodeId> {
        (0..self.n())
            .map(NodeId::new)
            .filter(|&u| self.csr.degree(u) == 1 && self.g.out_degree(u) == 1)
            .collect()
    }

    /// Fold every poor leaf into its neighbour, repeatedly, until none
    /// remain (Corollary 6.3's preprocessing). Folding leaf `l` with
    /// supporting arc `u → l` removes `l` and adds `w(l)` to `w(u)`.
    /// Total weight is preserved; the paper shows weak equilibrium is
    /// too (asserted in tests, not here).
    ///
    /// Returns the folded graph and, for each surviving old vertex, its
    /// new id (`None` for folded-away vertices).
    pub fn fold_poor_leaves(&self) -> (WeightedGraph, Vec<Option<NodeId>>) {
        let n = self.n();
        let mut weight = self.weight.clone();
        let mut alive = vec![true; n];
        // Work on adjacencies we can edit in place: owner -> targets,
        // plus the live undirected view (degrees stay current across
        // folds, so no rebuild between iterations).
        let mut g = self.g.clone();
        let mut patch = PatchableCsr::from_digraph(&g);
        loop {
            let mut folded_any = false;
            for l in 0..n {
                let l = NodeId::new(l);
                if !alive[l.index()] || patch.degree(l) != 1 || g.out_degree(l) != 0 {
                    continue;
                }
                // The unique neighbour owns the supporting arc.
                let u = patch.neighbors(l)[0];
                g.remove_arc(u, l);
                patch.remove_edge(u, l);
                weight[u.index()] += weight[l.index()];
                alive[l.index()] = false;
                folded_any = true;
            }
            if !folded_any {
                break;
            }
        }
        // Compact to the surviving vertices.
        let mut mapping: Vec<Option<NodeId>> = vec![None; n];
        let mut next = 0usize;
        for v in 0..n {
            if alive[v] {
                mapping[v] = Some(NodeId::new(next));
                next += 1;
            }
        }
        let mut out_lists: Vec<Vec<NodeId>> = vec![Vec::new(); next];
        for (u, v) in g.arcs() {
            let nu = mapping[u.index()].expect("owner alive");
            let nv = mapping[v.index()].expect("target alive");
            out_lists[nu.index()].push(nv);
        }
        let new_weights: Vec<u64> = (0..n).filter(|&v| alive[v]).map(|v| weight[v]).collect();
        let folded =
            WeightedGraph::with_weights(OwnedDigraph::from_out_lists(out_lists), new_weights);
        (folded, mapping)
    }

    /// Lemma 6.5 preprocessing: count the edges `uv` of a path whose
    /// endpoints **both** have degree 2 — the edges the Theorem 6.1
    /// proof contracts. The lemma: on any unique-shortest path of a
    /// weak equilibrium there are at most `O(log w(P))` such edges, so
    /// contracting them shrinks distances by at most a log factor.
    ///
    /// Returns `(contractible_edges, lemma_bound)` for the tree path
    /// from `a` to `b`, where the bound is `2·(log₂ w(P) + 2)`.
    /// `None` if the graph is not a connected tree (paths in trees are
    /// automatically unique shortest paths, which is the lemma's
    /// hypothesis).
    pub fn path_contraction_stats(&self, a: NodeId, b: NodeId) -> Option<(usize, usize)> {
        let n = self.n();
        if n == 0 || self.csr.m() != n - 1 {
            return None;
        }
        let mut scratch = BfsScratch::new(n);
        let stats = scratch.run(&self.csr, a);
        if !stats.spanned(n) {
            return None;
        }
        // Trace the a-b tree path.
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            let d = scratch.dist(cur)?;
            let parent = self
                .csr
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&w| scratch.dist(w) == Some(d - 1))?;
            path.push(parent);
            cur = parent;
        }
        path.reverse();
        let path_weight: u64 = path.iter().map(|&v| self.weight(v)).sum();
        let contractible = path
            .windows(2)
            .filter(|w| self.csr.degree(w[0]) == 2 && self.csr.degree(w[1]) == 2)
            .count();
        let bound = 2 * ((path_weight as f64).log2().ceil() as usize + 2);
        Some((contractible, bound))
    }

    /// Largest pairwise distance between rich leaves, or `None` when
    /// fewer than two exist. Lemma 6.4: ≤ 2 in any weak equilibrium.
    pub fn max_rich_leaf_distance(&self) -> Option<u32> {
        let rich = self.rich_leaves();
        if rich.len() < 2 {
            return None;
        }
        let mut scratch = BfsScratch::new(self.n());
        let mut best = 0;
        for (i, &a) in rich.iter().enumerate() {
            scratch.run(&self.csr, a);
            for &b in &rich[i + 1..] {
                match scratch.dist(b) {
                    Some(d) => best = best.max(d),
                    None => return Some(u32::MAX),
                }
            }
        }
        Some(best)
    }

    /// Height of the tree rooted at `root` (`None` if the graph is not
    /// a connected tree), together with the Lemma 6.2 bound
    /// `1 + log₂ w(G)`. In a weak equilibrium tree with all arcs
    /// pointing away from the root, height ≤ bound must hold.
    pub fn tree_height_and_lemma62_bound(&self, root: NodeId) -> Option<(u32, u32)> {
        let n = self.n();
        if n == 0 || self.csr.m() != n - 1 {
            return None;
        }
        let mut scratch = BfsScratch::new(n);
        let stats = scratch.run(&self.csr, root);
        if !stats.spanned(n) {
            return None;
        }
        let bound = 1 + (self.total_weight() as f64).log2().floor() as u32;
        Some((stats.max_dist, bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::generators;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn unit_weights_cost_matches_realization() {
        let g = generators::path(5);
        let r = crate::realization::Realization::new(g.clone());
        let wg = WeightedGraph::unit(g);
        let mut scratch = BfsScratch::new(5);
        for u in 0..5 {
            assert_eq!(
                wg.cost(v(u), &mut scratch),
                r.cost(v(u), crate::cost::CostModel::Sum)
            );
        }
    }

    #[test]
    fn nash_implies_weak_equilibrium() {
        // The binary tree SUM equilibrium must also be a weak
        // equilibrium (swap moves are a subset of deviations).
        let wg = WeightedGraph::unit(generators::perfect_binary_tree(2));
        assert!(wg.is_weak_equilibrium());
    }

    #[test]
    fn directed_path_is_not_weak_equilibrium() {
        let wg = WeightedGraph::unit(generators::path(6));
        assert!(!wg.is_weak_equilibrium());
    }

    #[test]
    fn leaf_classification() {
        // 0 -> 1 -> 2 and 3 -> 2: leaves are 0 (rich: owns its edge)
        // and 3 (rich). Add 1 -> 4 to create a poor leaf 4.
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2), (3, 2), (1, 4)]);
        let wg = WeightedGraph::unit(g);
        assert_eq!(wg.poor_leaves(), vec![v(4)]);
        assert_eq!(wg.rich_leaves(), vec![v(0), v(3)]);
    }

    #[test]
    fn folding_transfers_weight_and_preserves_total() {
        // Star: hub 0 owns arcs to 4 poor leaves.
        let wg = WeightedGraph::unit(generators::star(5));
        assert_eq!(wg.poor_leaves().len(), 4);
        let (folded, mapping) = wg.fold_poor_leaves();
        assert_eq!(folded.n(), 1);
        assert_eq!(folded.total_weight(), 5);
        assert_eq!(folded.weight(v(0)), 5);
        assert_eq!(mapping[0], Some(v(0)));
        assert_eq!(mapping[1], None);
    }

    #[test]
    fn folding_binary_tree_preserves_weak_equilibrium() {
        // The paper's key step (Corollary 6.3): folding a weak
        // equilibrium's poor leaves yields a weak equilibrium.
        let wg = WeightedGraph::unit(generators::perfect_binary_tree(3)); // n = 15
        assert!(wg.is_weak_equilibrium());
        let (folded, _) = wg.fold_poor_leaves();
        // All 8 leaves fold into their parents; then those parents
        // become poor leaves and fold too, and so on up to the root.
        assert_eq!(folded.n(), 1);
        assert_eq!(folded.total_weight(), 15);
    }

    #[test]
    fn folding_stops_at_rich_leaves() {
        // 1 -> 0, 2 -> 0: vertices 1, 2 are rich leaves (they own their
        // edges) — folding must not touch them.
        let g = OwnedDigraph::from_arcs(3, &[(1, 0), (2, 0)]);
        let wg = WeightedGraph::unit(g);
        assert!(wg.poor_leaves().is_empty());
        let (folded, _) = wg.fold_poor_leaves();
        assert_eq!(folded.n(), 3);
    }

    #[test]
    fn partially_folded_tree_is_weak_equilibrium_with_weights() {
        // Fold only the deepest layer of a binary tree by hand: parents
        // of leaves get weight 3 (self + 2 children). The resulting
        // weighted tree must still be a weak equilibrium (Lemma 6.2's
        // setting, mechanized).
        let h = 3u32;
        let n = (1usize << (h + 1)) - 1;
        let mut arcs = Vec::new();
        let internal = (1usize << h) - 1; // vertices with children
        for i in 0..internal {
            arcs.push((i, 2 * i + 1));
            arcs.push((i, 2 * i + 2));
        }
        let full = OwnedDigraph::from_arcs(n, &arcs);
        assert_eq!(full.n(), 15);
        // Drop the 8 leaves, weight their parents 1 + 2 = 3.
        let keep = internal; // 7 vertices
        let mut kept_arcs = Vec::new();
        for i in 0..(keep - 1) / 2 {
            kept_arcs.push((i, 2 * i + 1));
            kept_arcs.push((i, 2 * i + 2));
        }
        let g = OwnedDigraph::from_arcs(keep, &kept_arcs);
        let mut weights = vec![1u64; keep];
        for p in (keep - 1) / 2..keep {
            weights[p] = 3;
        }
        let wg = WeightedGraph::with_weights(g, weights);
        assert!(wg.is_weak_equilibrium());
        let (height, bound) = wg.tree_height_and_lemma62_bound(v(0)).unwrap();
        assert!(height <= bound, "height {height} > Lemma 6.2 bound {bound}");
    }

    #[test]
    fn lemma_6_5_contraction_stats_on_equilibria() {
        // Binary tree SUM equilibrium: no internal vertex of the
        // diametral path has degree 2 (root and internals have 3), so
        // nothing is contractible and the bound holds trivially.
        let wg = WeightedGraph::unit(generators::perfect_binary_tree(3));
        let leaf_a = NodeId::new(7);
        let leaf_b = NodeId::new(13);
        let (contractible, bound) = wg.path_contraction_stats(leaf_a, leaf_b).unwrap();
        assert!(contractible <= bound);
        assert_eq!(contractible, 0, "binary tree has no degree-2 chains");
        // A long path graph (not an equilibrium): almost every edge is
        // contractible, far beyond the equilibrium bound — exactly why
        // Lemma 6.5 certifies non-equilibrium shapes.
        let wg = WeightedGraph::unit(generators::path(40));
        let (contractible, bound) = wg
            .path_contraction_stats(NodeId::new(0), NodeId::new(39))
            .unwrap();
        assert!(contractible > bound);
        assert!(!wg.is_weak_equilibrium());
    }

    #[test]
    fn contraction_stats_rejects_non_trees() {
        let wg = WeightedGraph::unit(generators::cycle(5));
        assert!(wg
            .path_contraction_stats(NodeId::new(0), NodeId::new(2))
            .is_none());
    }

    #[test]
    fn rich_leaf_distance_lemma_6_4() {
        // Weak equilibrium with two rich leaves: both point at a hub.
        let g = OwnedDigraph::from_arcs(4, &[(1, 0), (2, 0), (0, 3)]);
        let wg = WeightedGraph::unit(g);
        // Leaves 1 and 2 are rich; their distance is 2.
        assert_eq!(wg.max_rich_leaf_distance(), Some(2));
        // Lemma 6.4 contrapositive: a weak equilibrium cannot have rich
        // leaves at distance > 2 — check an instance that does have
        // them and confirm it is NOT a weak equilibrium.
        let far = OwnedDigraph::from_arcs(4, &[(0, 1), (1, 2), (3, 2)]);
        // Rich leaves: 0 (owns 0->1) and 3 (owns 3->2), distance 3.
        let wg = WeightedGraph::unit(far);
        assert_eq!(wg.max_rich_leaf_distance(), Some(3));
        assert!(!wg.is_weak_equilibrium());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        WeightedGraph::with_weights(generators::path(2), vec![1, 0]);
    }
}
