//! Rebuild-per-candidate **reference** implementations.
//!
//! These price every candidate deviation the brute-force way — clone
//! the profile, apply the strategy, rebuild the undirected view, run a
//! fresh BFS — which is the behaviour the deviation engine
//! ([`DeviationScratch`](crate::DeviationScratch)) exists to eliminate.
//! They are compiled only for tests and for the `naive-ref` feature
//! (the bench snapshot measures the engine against them); production
//! paths never see them.
//!
//! Tie-breaking (lexicographic candidate order, strict improvement)
//! matches the engine-backed solvers exactly, so equivalence tests can
//! compare trajectories state-for-state, not just costs.

use crate::best_response::ScoredStrategy;
use crate::cost::CostModel;
use crate::oracle::{enumeration_count, CombinationOdometer};
use crate::realization::Realization;
use bbncg_graph::NodeId;

/// [`exact_best_response`](crate::exact_best_response), but pricing
/// each candidate with a full profile clone + CSR rebuild.
pub fn exact_best_response_rebuild(r: &Realization, u: NodeId, model: CostModel) -> ScoredStrategy {
    let n = r.n();
    let b = r.graph().out_degree(u);
    let count = enumeration_count(n - 1, b);
    assert!(
        count <= crate::best_response::MAX_EXACT_CANDIDATES,
        "naive exact best response would enumerate {count} candidates"
    );
    let pool: Vec<NodeId> = (0..n).map(NodeId::new).filter(|&t| t != u).collect();
    let mut odometer = CombinationOdometer::new(pool.len(), b);
    let mut best: Option<ScoredStrategy> = None;
    loop {
        let targets: Vec<NodeId> = odometer.indices().iter().map(|&i| pool[i]).collect();
        let cost = r.with_strategy(u, targets.clone()).cost(u, model);
        if best.as_ref().is_none_or(|s| cost < s.cost) {
            best = Some(ScoredStrategy { targets, cost });
        }
        if !odometer.advance() {
            break;
        }
    }
    best.expect("at least one strategy exists")
}

/// Round-robin exact-best-response dynamics on the rebuild-per-
/// candidate reference solver. Semantically identical to
/// [`run_dynamics`](crate::dynamics::run_dynamics) with
/// `DynamicsConfig::exact(model, max_rounds)` (same activation order,
/// same tie-breaking); only the pricing machinery differs.
/// Returns `(final_state, applied_steps, converged)`.
pub fn run_dynamics_rebuild(
    initial: Realization,
    model: CostModel,
    max_rounds: usize,
) -> (Realization, usize, bool) {
    let n = initial.n();
    let mut state = initial;
    let mut steps = 0usize;
    for _ in 0..max_rounds {
        let mut improved = 0usize;
        for u in (0..n).map(NodeId::new) {
            if state.graph().out_degree(u) == 0 {
                continue;
            }
            let current = state.cost(u, model);
            let best = exact_best_response_rebuild(&state, u, model);
            if best.cost < current {
                state.set_strategy(u, best.targets);
                steps += 1;
                improved += 1;
            }
        }
        if improved == 0 {
            return (state, steps, true);
        }
    }
    (state, steps, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{run_dynamics, DynamicsConfig};
    use crate::exact_best_response;
    use bbncg_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn engine_and_rebuild_reference_agree_on_best_responses() {
        let mut rng = StdRng::seed_from_u64(11);
        for seed in 0..12u64 {
            let _ = seed;
            let budgets: Vec<usize> = (0..7).map(|i| 1 + i % 2).collect();
            let r = Realization::new(generators::random_realization(&budgets, &mut rng));
            for model in CostModel::ALL {
                for u in (0..r.n()).map(bbncg_graph::NodeId::new) {
                    if r.graph().out_degree(u) == 0 {
                        continue;
                    }
                    let fast = exact_best_response(&r, u, model);
                    let slow = exact_best_response_rebuild(&r, u, model);
                    assert_eq!(fast, slow, "player {u} model {model:?}");
                }
            }
        }
    }

    #[test]
    fn engine_and_rebuild_reference_trace_identical_dynamics() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..4 {
            let budgets = vec![1usize; 8];
            let initial = Realization::new(generators::random_realization(&budgets, &mut rng));
            for model in CostModel::ALL {
                let fast = run_dynamics(
                    initial.clone(),
                    DynamicsConfig::exact(model, 100),
                    &mut StdRng::seed_from_u64(0),
                );
                let (state, steps, converged) = run_dynamics_rebuild(initial.clone(), model, 100);
                assert_eq!(fast.state, state, "final profiles diverge ({model:?})");
                assert_eq!(fast.steps, steps);
                assert_eq!(fast.converged, converged);
            }
        }
    }
}
