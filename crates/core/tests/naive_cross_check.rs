//! Cross-checks of the optimized game engine against a from-scratch
//! naive implementation written independently in this test file: costs
//! by Floyd–Warshall, Nash verification by materializing every deviated
//! profile. Any bug in the deviation oracle, the patched BFS, or the κ
//! bookkeeping shows up here.

use bbncg_core::oracle::CombinationOdometer;
use bbncg_core::{is_nash_equilibrium, BudgetVector, CostModel, Realization};
use bbncg_graph::{generators, NodeId, OwnedDigraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

const INF: u64 = u64::MAX / 4;

fn naive_distances(g: &OwnedDigraph) -> Vec<Vec<u64>> {
    let n = g.n();
    let mut d = vec![vec![INF; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for (u, v) in g.arcs() {
        d[u.index()][v.index()] = 1;
        d[v.index()][u.index()] = 1;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let alt = d[i][k] + d[k][j];
                if alt < d[i][j] {
                    d[i][j] = alt;
                }
            }
        }
    }
    d
}

fn naive_kappa(g: &OwnedDigraph) -> u64 {
    let d = naive_distances(g);
    let n = g.n();
    let mut label = vec![usize::MAX; n];
    let mut count = 0;
    for u in 0..n {
        if label[u] != usize::MAX {
            continue;
        }
        for (v, lv) in label.iter_mut().enumerate() {
            if d[u][v] < INF {
                *lv = count;
            }
        }
        count += 1;
    }
    count as u64
}

fn naive_cost(g: &OwnedDigraph, u: usize, model: CostModel) -> u64 {
    let n = g.n() as u64;
    let cinf = n * n;
    let d = naive_distances(g);
    match model {
        CostModel::Sum => (0..g.n())
            .map(|v| if d[u][v] >= INF { cinf } else { d[u][v] })
            .sum(),
        CostModel::Max => {
            let local = (0..g.n())
                .map(|v| if d[u][v] >= INF { cinf } else { d[u][v] })
                .max()
                .unwrap_or(0);
            // If anything is unreachable the local diameter is n².
            let local = if local >= cinf { cinf } else { local };
            local + (naive_kappa(g) - 1) * cinf
        }
    }
}

fn naive_is_nash(g: &OwnedDigraph, model: CostModel) -> bool {
    let n = g.n();
    for u in 0..n {
        let b = g.out_degree(NodeId::new(u));
        if b == 0 {
            continue;
        }
        let current = naive_cost(g, u, model);
        let pool: Vec<usize> = (0..n).filter(|&t| t != u).collect();
        let mut od = CombinationOdometer::new(pool.len(), b);
        loop {
            let targets: Vec<NodeId> = od.indices().iter().map(|&i| NodeId::new(pool[i])).collect();
            let mut dev = g.clone();
            dev.set_out(NodeId::new(u), targets);
            if naive_cost(&dev, u, model) < current {
                return false;
            }
            if !od.advance() {
                break;
            }
        }
    }
    true
}

#[test]
fn costs_match_naive_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(42);
    for trial in 0..30 {
        let n = 3 + (trial % 6);
        let budgets: Vec<usize> = (0..n).map(|i| (i + trial) % 3 % n.max(1)).collect();
        let g = generators::random_realization(&budgets, &mut rng);
        let r = Realization::new(g.clone());
        for model in CostModel::ALL {
            for u in 0..n {
                assert_eq!(
                    r.cost(NodeId::new(u), model),
                    naive_cost(&g, u, model),
                    "trial {trial}, model {model:?}, player {u}, budgets {budgets:?}"
                );
            }
        }
    }
}

#[test]
fn nash_verdicts_match_naive_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..20 {
        let n = 3 + (trial % 4);
        let budgets: Vec<usize> = (0..n)
            .map(|i| [1, 0, 2][(i + trial) % 3].min(n - 1))
            .collect();
        let g = generators::random_realization(&budgets, &mut rng);
        let r = Realization::new(g.clone());
        for model in CostModel::ALL {
            assert_eq!(
                is_nash_equilibrium(&r, model),
                naive_is_nash(&g, model),
                "trial {trial}, model {model:?}, budgets {budgets:?}"
            );
        }
    }
}

#[test]
fn nash_verdicts_match_naive_on_all_unit_profiles_n4() {
    // Exhaustive: every profile of (1,1,1,1)-BG, both models, both
    // engines. 81 profiles x 2 models.
    let b = BudgetVector::uniform(4, 1);
    let total = bbncg_core::profile_count(&b);
    for idx in 0..total {
        let g = bbncg_core::decode_profile(&b, idx);
        let r = Realization::new(g.clone());
        for model in CostModel::ALL {
            assert_eq!(
                is_nash_equilibrium(&r, model),
                naive_is_nash(&g, model),
                "profile {idx}, model {model:?}"
            );
        }
    }
}
