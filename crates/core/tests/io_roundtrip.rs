//! Property tests for the `bbncg v1` / snapshot serialization layer:
//! `parse ∘ write = id` over arbitrary realizations, and every
//! [`ParseError`] variant renders an actionable message.

use bbncg_core::{
    parse_realization, parse_snapshot, write_realization, write_snapshot, ParseError, Realization,
    Snapshot,
};
use bbncg_graph::generators;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary realization: a random budget vector realized at random
/// (n in 1..=16, budgets 0..min(n, 5)).
fn realization() -> impl Strategy<Value = Realization> {
    ((1usize..=16), (0u64..u64::MAX)).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets: Vec<usize> = (0..n)
            .map(|i| (seed.rotate_left(i as u32) as usize) % n.min(5))
            .collect();
        Realization::new(generators::random_realization(&budgets, &mut rng))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `write_realization ∘ parse_realization` is the identity.
    #[test]
    fn realization_roundtrip_is_identity(r in realization()) {
        let text = write_realization(&r);
        let back = parse_realization(&text).unwrap();
        prop_assert_eq!(&back, &r);
        // And writing the parse is byte-stable (canonical form).
        prop_assert_eq!(write_realization(&back), text);
    }

    /// The snapshot envelope round-trips realization + RNG position +
    /// metadata exactly.
    #[test]
    fn snapshot_roundtrip_is_identity(r in realization(), wseed in 0u64..u64::MAX, tag in 0usize..1000) {
        // An arbitrary mid-stream RNG position, reached by seeding.
        let snap = Snapshot {
            realization: r.clone(),
            rng_state: StdRng::seed_from_u64(wseed).state(),
            meta: vec![
                ("phase".into(), tag.to_string()),
                ("label".into(), format!("run {tag} of sweep")),
            ],
        };
        let back = parse_snapshot(&write_snapshot(&snap)).unwrap();
        prop_assert_eq!(back, snap);
    }
}

#[test]
fn every_parse_error_variant_renders_its_evidence() {
    // BadHeader: names the expected magic.
    let e = parse_realization("not a profile").unwrap_err();
    assert_eq!(e, ParseError::BadHeader);
    assert!(e.to_string().contains("bbncg v1"), "{e}");

    // BadLine: carries the 1-based line number and the offending text.
    let e = parse_realization("bbncg v1\nn x\nbudgets \narcs\n").unwrap_err();
    assert_eq!(e, ParseError::BadLine(2, "n x".into()));
    assert!(e.to_string().contains("line 2"), "{e}");
    assert!(e.to_string().contains("n x"), "{e}");

    // BadArc: names both endpoints.
    let e = parse_realization("bbncg v1\nn 3\nbudgets 1 0 0\narcs\n0 7\n").unwrap_err();
    assert_eq!(e, ParseError::BadArc(0, 7));
    assert!(e.to_string().contains("0 -> 7"), "{e}");

    // BudgetMismatch: names the player and both counts.
    let e = parse_realization("bbncg v1\nn 2\nbudgets 2 0\narcs\n0 1\n").unwrap_err();
    assert_eq!(
        e,
        ParseError::BudgetMismatch {
            player: 0,
            declared: 2,
            actual: 1
        }
    );
    let msg = e.to_string();
    assert!(msg.contains("player 0"), "{msg}");
    assert!(msg.contains('2') && msg.contains('1'), "{msg}");
}

#[test]
fn snapshot_errors_reuse_the_same_vocabulary() {
    assert_eq!(parse_snapshot("wrong magic"), Err(ParseError::BadHeader));
    let e = parse_snapshot("bbncg-snapshot v1\nrng one two\nprofile\n").unwrap_err();
    assert!(matches!(e, ParseError::BadLine(2, _)), "{e}");
    assert!(e.to_string().contains("line 2"), "{e}");
}
