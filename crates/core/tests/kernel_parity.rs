//! Kernel parity and pruning-soundness enforcement.
//!
//! The tentpole invariant of the pluggable-kernel refactor, enforced
//! the same way PR 1 enforced patch ≡ rebuild:
//!
//! * **Cost parity** — queue, bitset and sparse kernels return
//!   identical costs for every candidate on random realizations,
//!   connected and disconnected alike.
//! * **Trajectory parity** — whole dynamics runs are *step-identical*
//!   across kernels (same final profile, steps, rounds, verdicts) and
//!   against the rebuild-per-candidate reference
//!   (`bbncg_core::naive`), so kernel choice can never change a
//!   result, a checkpoint, or a resumed trajectory.
//! * **Pruning soundness** — the per-candidate Lemma 2.2 lower bound
//!   never skips the true optimum: best responses with pruning equal a
//!   brute-force enumeration that prices every candidate by full
//!   profile recompute, including on disconnected states where the
//!   bound mixes "rest at distance ≥ 2" with `C_inf = n²`
//!   cross-component pricing.
//! * **Degenerate inputs** — zero-vertex scratches, single-vertex
//!   graphs, and duplicate/self patch targets behave identically
//!   across kernels (mirrors PR 2's degenerate-generator hardening).

use bbncg_core::dynamics::{run_dynamics_with_kernel, DynamicsConfig};
use bbncg_core::naive::run_dynamics_rebuild;
use bbncg_core::oracle::CombinationOdometer;
use bbncg_core::{
    audit_equilibrium_with_kernel, exact_best_response_with, first_improving_response_with,
    greedy_best_response_with, CostKernel, CostModel, DeviationScratch, Realization,
};
use bbncg_graph::{generators, BfsScratch, BitAdjacency, BitBfsScratch, NodeId, OwnedDigraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn v(i: usize) -> NodeId {
    NodeId::new(i)
}

/// Random realization whose budget vector includes zeros, so a healthy
/// fraction of draws is disconnected.
fn random_instance(n: usize, seed: u64) -> Realization {
    let mut rng = StdRng::seed_from_u64(seed);
    let budgets: Vec<usize> = (0..n).map(|i| (i + seed as usize) % 3).collect();
    Realization::new(generators::random_realization(&budgets, &mut rng))
}

/// Brute-force best response: price every candidate by full profile
/// recompute (no engine, no kernel, no pruning), ties toward the
/// lexicographically smallest target set — the ground truth both
/// kernels and the pruned search must reproduce exactly.
fn brute_force_best(r: &Realization, u: NodeId, model: CostModel) -> (Vec<NodeId>, u64) {
    let n = r.n();
    let b = r.graph().out_degree(u);
    let pool: Vec<NodeId> = (0..n).map(NodeId::new).filter(|&t| t != u).collect();
    let mut od = CombinationOdometer::new(pool.len(), b);
    let mut best: Option<(Vec<NodeId>, u64)> = None;
    loop {
        let targets: Vec<NodeId> = od.indices().iter().map(|&i| pool[i]).collect();
        let cost = r.with_strategy(u, targets.clone()).cost(u, model);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((targets, cost));
        }
        if !od.advance() {
            break;
        }
    }
    best.expect("at least one strategy exists")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Queue, bitset and sparse kernels price every candidate
    /// identically on random (often disconnected) realizations,
    /// through all four engine-backed rules.
    #[test]
    fn kernels_agree_on_all_candidates(n in 3usize..12, seed in 0u64..400) {
        let r = random_instance(n, seed);
        let mut queue = DeviationScratch::with_kernel(&r, CostKernel::Queue);
        let mut bitset = DeviationScratch::with_kernel(&r, CostKernel::Bitset);
        let mut sparse = DeviationScratch::with_kernel(&r, CostKernel::Sparse);
        for model in CostModel::ALL {
            for u in (0..n).map(NodeId::new) {
                if r.graph().out_degree(u) == 0 {
                    continue;
                }
                let q = exact_best_response_with(&mut queue, &r, u, model);
                let b = exact_best_response_with(&mut bitset, &r, u, model);
                let s = exact_best_response_with(&mut sparse, &r, u, model);
                prop_assert_eq!(&q, &b);
                prop_assert_eq!(&q, &s);
                let q = greedy_best_response_with(&mut queue, &r, u, model);
                let b = greedy_best_response_with(&mut bitset, &r, u, model);
                let s = greedy_best_response_with(&mut sparse, &r, u, model);
                prop_assert_eq!(&q, &b);
                prop_assert_eq!(&q, &s);
                let q = first_improving_response_with(&mut queue, &r, u, model);
                let b = first_improving_response_with(&mut bitset, &r, u, model);
                let s = first_improving_response_with(&mut sparse, &r, u, model);
                prop_assert_eq!(&q, &b);
                prop_assert_eq!(&q, &s);
                let q = bbncg_core::best_swap_response_with(&mut queue, &r, u, model);
                let b = bbncg_core::best_swap_response_with(&mut bitset, &r, u, model);
                let s = bbncg_core::best_swap_response_with(&mut sparse, &r, u, model);
                prop_assert_eq!(&q, &b);
                prop_assert_eq!(&q, &s);
            }
        }
    }

    /// The pruned, engine-backed exact best response equals brute-force
    /// enumeration (cost *and* lexicographic tie-break) on random
    /// instances, disconnected states included — pruning never skips
    /// the true optimum.
    #[test]
    fn pruning_never_skips_the_optimum(n in 3usize..8, seed in 0u64..600) {
        let r = random_instance(n, seed);
        for kernel in [CostKernel::Queue, CostKernel::Bitset, CostKernel::Sparse] {
            let mut scratch = DeviationScratch::with_kernel(&r, kernel);
            for model in CostModel::ALL {
                for u in (0..n).map(NodeId::new) {
                    if r.graph().out_degree(u) == 0 {
                        continue;
                    }
                    let engine = exact_best_response_with(&mut scratch, &r, u, model);
                    let (targets, cost) = brute_force_best(&r, u, model);
                    prop_assert_eq!(engine.cost, cost);
                    prop_assert_eq!(&engine.targets, &targets);
                }
            }
        }
    }

    /// Cross-activation retention is exact: a persistent sparse scratch
    /// re-auditing the same player across committed moves (diff-synced
    /// through the patch journal, base *repaired* rather than rebuilt
    /// where the damage allows) prices every candidate identically to a
    /// queue scratch built fresh at each step — across move sequences
    /// produced by all four rules and both models.
    #[test]
    fn retained_sparse_base_prices_exactly_across_commits(
        n in 4usize..10, moves in 2usize..8, seed in 0u64..300,
    ) {
        let r0 = random_instance(n, seed);
        for model in CostModel::ALL {
            let mut r = r0.clone();
            let watcher = v(0);
            let mut sparse = DeviationScratch::with_kernel(&r, CostKernel::Sparse);
            let mut mover_scratch = DeviationScratch::with_kernel(&r, CostKernel::Queue);
            for step in 0..moves {
                // Audit the watcher on the retained base.
                sparse.begin(&r, watcher, model);
                let mut fresh = DeviationScratch::with_kernel(&r, CostKernel::Queue);
                fresh.begin(&r, watcher, model);
                for t in (0..n).map(NodeId::new).filter(|&t| t != watcher) {
                    let want = fresh.cost_of(&[t]);
                    prop_assert_eq!(sparse.cost_of(&[t]), want);
                    prop_assert!(sparse.candidate_lower_bound(&[t]) <= want);
                    // A strictly larger incumbent must price exactly
                    // (in-flight aborts are lossless).
                    prop_assert_eq!(sparse.cost_of_pruned(&[t], want + 1), Some(want));
                }
                // Commit another player's move, rotating the rule.
                let mover = v(1 + step % (n - 1));
                if r.graph().out_degree(mover) == 0 {
                    continue;
                }
                let resp = match step % 4 {
                    0 => Some(exact_best_response_with(&mut mover_scratch, &r, mover, model)),
                    1 => Some(greedy_best_response_with(&mut mover_scratch, &r, mover, model)),
                    2 => first_improving_response_with(&mut mover_scratch, &r, mover, model),
                    _ => bbncg_core::best_swap_response_with(&mut mover_scratch, &r, mover, model),
                };
                if let Some(resp) = resp {
                    r.set_strategy(mover, resp.targets);
                }
            }
        }
    }

    /// The candidate lower bound itself is sound: never above the true
    /// cost of the candidate it bounds.
    /// Soundness must hold for every kernel: the sparse kernel widens
    /// the bound with landmark terms from its base distance profile, so
    /// it is checked against the same exhaustive candidate sweep.
    #[test]
    fn candidate_bound_is_sound(n in 3usize..9, seed in 0u64..400) {
        let r = random_instance(n, seed);
        for kernel in [CostKernel::Queue, CostKernel::Sparse] {
            let mut scratch = DeviationScratch::with_kernel(&r, kernel);
            for model in CostModel::ALL {
                for u in (0..n).map(NodeId::new) {
                    let b = r.graph().out_degree(u).clamp(1, 2);
                    scratch.begin(&r, u, model);
                    let pool: Vec<NodeId> = (0..n).map(NodeId::new).filter(|&t| t != u).collect();
                    let mut od = CombinationOdometer::new(pool.len(), b);
                    loop {
                        let targets: Vec<NodeId> =
                            od.indices().iter().map(|&i| pool[i]).collect();
                        let lb = scratch.candidate_lower_bound(&targets);
                        let cost = scratch.cost_of(&targets);
                        prop_assert!(
                            lb <= cost,
                            "bound {} > cost {} for {:?} ({} {:?})", lb, cost, targets, u, model
                        );
                        if !od.advance() {
                            break;
                        }
                    }
                }
            }
        }
    }
}

/// Full dynamics traces are step-identical across kernels and against
/// the rebuild-per-candidate reference: same final profile, same step
/// count, same convergence verdict, for both models.
#[test]
fn dynamics_traces_are_step_identical_across_kernels() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets = vec![1usize; 8];
        let initial = Realization::new(generators::random_realization(&budgets, &mut rng));
        for model in CostModel::ALL {
            let cfg = DynamicsConfig::exact(model, 100);
            let queue = run_dynamics_with_kernel(
                initial.clone(),
                cfg,
                &mut StdRng::seed_from_u64(0),
                CostKernel::Queue,
            );
            let bitset = run_dynamics_with_kernel(
                initial.clone(),
                cfg,
                &mut StdRng::seed_from_u64(0),
                CostKernel::Bitset,
            );
            let sparse = run_dynamics_with_kernel(
                initial.clone(),
                cfg,
                &mut StdRng::seed_from_u64(0),
                CostKernel::Sparse,
            );
            assert_eq!(
                queue.state, bitset.state,
                "final profiles diverge (seed {seed}, {model:?})"
            );
            assert_eq!(queue.steps, bitset.steps);
            assert_eq!(queue.rounds, bitset.rounds);
            assert_eq!(queue.converged, bitset.converged);
            assert_eq!(
                queue.state, sparse.state,
                "sparse diverges (seed {seed}, {model:?})"
            );
            assert_eq!(queue.steps, sparse.steps);
            assert_eq!(queue.rounds, sparse.rounds);
            assert_eq!(queue.converged, sparse.converged);
            let (naive_state, naive_steps, naive_converged) =
                run_dynamics_rebuild(initial.clone(), model, 100);
            assert_eq!(bitset.state, naive_state, "bitset diverges from naive");
            assert_eq!(bitset.steps, naive_steps);
            assert_eq!(bitset.converged, naive_converged);
            assert_eq!(sparse.state, naive_state, "sparse diverges from naive");
            assert_eq!(sparse.steps, naive_steps);
            assert_eq!(sparse.converged, naive_converged);
        }
    }
}

/// The batched parallel Nash audit is kernel-independent.
#[test]
fn audits_agree_across_kernels() {
    for seed in [3u64, 17] {
        let r = random_instance(9, seed);
        for model in CostModel::ALL {
            let q = audit_equilibrium_with_kernel(&r, model, CostKernel::Queue);
            for kernel in [CostKernel::Bitset, CostKernel::Sparse] {
                let b = audit_equilibrium_with_kernel(&r, model, kernel);
                assert_eq!(q.current, b.current, "{kernel:?}");
                assert_eq!(q.best, b.best, "{kernel:?}");
                assert_eq!(q.is_nash(), b.is_nash());
                assert_eq!(q.gap(), b.gap());
            }
        }
    }
}

/// Degenerate BFS inputs behave identically across kernels: zero-sized
/// scratches are constructible and resizable, single-vertex graphs
/// price to zero, and duplicate/self targets in `run_patched` are
/// no-ops in both traversals.
#[test]
fn degenerate_inputs_match_across_kernels() {
    // Zero-sized scratches: constructible, resizable, unusable only
    // for out-of-range sources (both kernels panic there).
    let _ = BfsScratch::new(0);
    let _ = BitBfsScratch::new(0);
    let mut q = BfsScratch::new(0);
    q.resize(3);
    let mut b = BitBfsScratch::new(0);
    b.resize_words(1);

    // Single-vertex graph: the lone strategy is empty; both kernels
    // price it as cost 0 in both models.
    let one = Realization::new(OwnedDigraph::empty(1));
    for kernel in [CostKernel::Queue, CostKernel::Bitset, CostKernel::Sparse] {
        let mut scratch = DeviationScratch::with_kernel(&one, kernel);
        for model in CostModel::ALL {
            scratch.begin(&one, v(0), model);
            assert_eq!(scratch.cost_of(&[]), 0, "{kernel:?} {model:?}");
            assert_eq!(scratch.cost_of_pruned(&[], u64::MAX), Some(0));
        }
    }

    // Duplicate and self targets through the full pricing path: both
    // kernels agree with the deduplicated strategy's cost.
    let g = OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
    let r = Realization::new(g);
    for model in CostModel::ALL {
        let mut queue = DeviationScratch::with_kernel(&r, CostKernel::Queue);
        let mut bitset = DeviationScratch::with_kernel(&r, CostKernel::Bitset);
        let mut sparse = DeviationScratch::with_kernel(&r, CostKernel::Sparse);
        queue.begin(&r, v(0), model);
        bitset.begin(&r, v(0), model);
        sparse.begin(&r, v(0), model);
        let clean = [v(3)];
        let messy = [v(3), v(3), v(0)];
        let want = queue.cost_of(&clean);
        assert_eq!(queue.cost_of(&messy), want, "queue {model:?}");
        assert_eq!(bitset.cost_of(&clean), want, "bitset {model:?}");
        assert_eq!(bitset.cost_of(&messy), want, "bitset messy {model:?}");
        assert_eq!(sparse.cost_of(&clean), want, "sparse {model:?}");
        assert_eq!(sparse.cost_of(&messy), want, "sparse messy {model:?}");
    }

    // Patched BFS over an explicit graph: duplicate/self targets give
    // identical stats in both kernels (raw traversal level).
    let csr = bbncg_graph::Csr::from_edges(4, &[(0, 1), (2, 3)]);
    let bits = BitAdjacency::from_adjacency(&csr);
    let mut qs = BfsScratch::new(4);
    let mut bs = BitBfsScratch::new(4);
    for targets in [&[v(2)][..], &[v(2), v(2)][..], &[v(2), v(1)][..]] {
        for src in (0..4).map(NodeId::new) {
            assert_eq!(
                qs.run_patched(&csr, src, v(1), targets),
                bs.run_patched(&bits, src, v(1), targets),
                "src {src} targets {targets:?}"
            );
        }
    }
}
