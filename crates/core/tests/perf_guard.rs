//! Counter-based perf guard for cross-activation base retention.
//!
//! No wall clock: the guard asserts the *shape* of the work, via the
//! `bbncg-obs` repair/rebuild counters, on a fixed scripted dynamics
//! trace at n = 4096. A persistent sparse engine re-audits one fixed
//! player after every commit; each commit reaches the engine as a raw
//! arc delta through the patch journal, so the engine must absorb it
//! with the commit-time repair path instead of a full base BFS.
//!
//! This file holds exactly one `#[test]` on purpose: the obs registry
//! is process-global and integration-test binaries run their tests in
//! parallel threads, so a second test here could race the counters.

use bbncg_core::{CostKernel, CostModel, DeviationScratch, Realization};
use bbncg_graph::{generators, NodeId};
use bbncg_obs::Counter;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn retained_base_avoids_full_rebuilds_on_dynamics_trace() {
    const N: usize = 4096;
    const COMMITS: usize = 32;

    let mut rng = StdRng::seed_from_u64(7);
    let budgets = vec![1usize; N];
    let mut r = Realization::new(generators::random_realization(&budgets, &mut rng));
    let watcher = NodeId::new(0);

    bbncg_obs::enable();
    bbncg_obs::reset();

    {
        let mut engine = DeviationScratch::with_kernel(&r, CostKernel::Sparse);
        let mut oracle = DeviationScratch::with_kernel(&r, CostKernel::Queue);
        for commit in 0..COMMITS {
            // Scripted commit: one player retargets its single arc —
            // exactly the delta shape a dynamics step produces.
            let mover = NodeId::new(1 + commit % 8);
            let new_t = NodeId::new(16 + (commit * 37) % (N - 16));
            if new_t != mover {
                r.set_strategy(mover, vec![new_t]);
            }
            // Re-audit the watcher on the retained (now repaired) base.
            let model = if commit % 2 == 0 {
                CostModel::Sum
            } else {
                CostModel::Max
            };
            engine.begin(&r, watcher, model);
            oracle.begin(&r, watcher, model);
            for probe in 0..3usize {
                let t = NodeId::new(1 + (commit * 11 + probe * 101) % (N - 1));
                let want = oracle.cost_of(&[t]);
                assert_eq!(engine.cost_of(&[t]), want, "commit {commit} probe {probe}");
                // A strictly larger incumbent must price exactly
                // (aborts are lossless).
                assert_eq!(engine.cost_of_pruned(&[t], want + 1), Some(want));
            }
        }
        // Engines drop here, flushing their tallies to the registry.
    }

    let full = bbncg_obs::counter_value(Counter::KernelBaseBfs);
    let repaired = bbncg_obs::counter_value(Counter::KernelBaseRepaired);
    let fallbacks = bbncg_obs::counter_value(Counter::KernelRepairFallbacks);

    // The very first session has no retained base (one honest BFS);
    // after that, at most one commit in eight may damage the base past
    // the repair threshold.
    assert!(
        full <= 1 + (COMMITS as u64) / 8,
        "retained base rebuilt too often: {full} full BFS over {COMMITS} commits \
         (repaired {repaired}, fallbacks {fallbacks})"
    );
    // And the repair path must be doing the work, not a loophole.
    assert!(
        repaired >= (COMMITS as u64) * 3 / 4,
        "repair path underused: {repaired} repairs over {COMMITS} commits \
         (full {full}, fallbacks {fallbacks})"
    );
    // Every sparse session resolved its base exactly one way: a
    // successful repair or a full BFS (fallbacks are a subset of the
    // latter).
    assert_eq!(full + repaired, COMMITS as u64);
    assert!(fallbacks < full);
}
