//! Round-executor parity enforcement.
//!
//! The tentpole invariant of the speculative-rounds refactor, enforced
//! the way PR 3 enforced kernel parity: the speculative executor is
//! **step-identical** to the sequential executor for every
//! rule/order/kernel/model combination — same moves, same step and
//! round counts, same convergence/cycle verdicts, same final profile,
//! same per-round traces — and both match the rebuild-per-candidate
//! reference (`bbncg_core::naive`). Window scheduling and thread count
//! may only move wall-clock, never an answer.

use bbncg_core::dynamics::{
    run_dynamics_traced, run_dynamics_with_kernel, DynamicsConfig, PlayerOrder, ResponseRule,
};
use bbncg_core::naive::run_dynamics_rebuild;
use bbncg_core::{audit_equilibrium_with_opts, CostKernel, CostModel, Realization, RoundExecutor};
use bbncg_graph::generators;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random realization whose budget vector includes zeros and twos, so
/// draws mix budget sizes, braces, and (often) disconnection.
fn random_instance(n: usize, seed: u64) -> Realization {
    let mut rng = StdRng::seed_from_u64(seed);
    let budgets: Vec<usize> = (0..n).map(|i| (i + seed as usize) % 3).collect();
    Realization::new(generators::random_realization(&budgets, &mut rng))
}

const RULES: [ResponseRule; 4] = [
    ResponseRule::ExactBest,
    ResponseRule::FirstImproving,
    ResponseRule::Greedy,
    ResponseRule::BestSwap,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Speculative ≡ sequential for all four rules × all three kernels
    /// × both models × both activation orders, on random (often
    /// disconnected, brace-rich) instances. Random permutations use
    /// the same seeded RNG on both sides, so the executors see the
    /// identical order stream. The sparse kernel matters here: pooled
    /// worker engines carry a retained base + repair journal across
    /// windows, and presence-changing commits must flow into it as
    /// journalled deltas without perturbing the committed trajectory.
    #[test]
    fn speculative_rounds_are_step_identical(n in 3usize..12, seed in 0u64..200) {
        let initial = random_instance(n, seed);
        for model in CostModel::ALL {
            for rule in RULES {
                for order in [PlayerOrder::RoundRobin, PlayerOrder::RandomPermutation] {
                    for kernel in [CostKernel::Queue, CostKernel::Bitset, CostKernel::Sparse] {
                        let cfg = DynamicsConfig {
                            rule,
                            order,
                            ..DynamicsConfig::exact(model, 80)
                        };
                        let seq = run_dynamics_with_kernel(
                            initial.clone(),
                            cfg.with_executor(RoundExecutor::Sequential),
                            &mut StdRng::seed_from_u64(7),
                            kernel,
                        );
                        let spec = run_dynamics_with_kernel(
                            initial.clone(),
                            cfg.with_executor(RoundExecutor::Speculative),
                            &mut StdRng::seed_from_u64(7),
                            kernel,
                        );
                        prop_assert_eq!(&seq.state, &spec.state);
                        prop_assert_eq!(seq.steps, spec.steps);
                        prop_assert_eq!(seq.rounds, spec.rounds);
                        prop_assert_eq!(seq.converged, spec.converged);
                        prop_assert_eq!(seq.cycled, spec.cycled);
                        prop_assert_eq!(seq.cancelled, spec.cancelled);
                    }
                }
            }
        }
    }

    /// The parallel batched audit and the serial single-engine audit
    /// return identical per-player numbers (hence identical verdicts,
    /// gaps and violation lists) under both kernels.
    #[test]
    fn audit_is_executor_independent(n in 3usize..10, seed in 0u64..200) {
        let r = random_instance(n, seed);
        for model in CostModel::ALL {
            for kernel in [CostKernel::Queue, CostKernel::Bitset] {
                let serial =
                    audit_equilibrium_with_opts(&r, model, kernel, RoundExecutor::Sequential);
                let batched =
                    audit_equilibrium_with_opts(&r, model, kernel, RoundExecutor::Speculative);
                prop_assert_eq!(&serial.current, &batched.current);
                prop_assert_eq!(&serial.best, &batched.best);
                prop_assert_eq!(serial.is_nash(), batched.is_nash());
                prop_assert_eq!(serial.gap(), batched.gap());
            }
        }
    }
}

/// Speculative exact-best dynamics matches the rebuild-per-candidate
/// reference move for move — the same anchor the engine and the
/// kernels are pinned to, extended to the new executor.
#[test]
fn speculative_dynamics_match_naive_reference() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets = vec![1usize; 8];
        let initial = Realization::new(generators::random_realization(&budgets, &mut rng));
        for model in CostModel::ALL {
            let cfg = DynamicsConfig::exact(model, 100).with_executor(RoundExecutor::Speculative);
            let spec = run_dynamics_with_kernel(
                initial.clone(),
                cfg,
                &mut StdRng::seed_from_u64(0),
                CostKernel::Auto,
            );
            let (naive_state, naive_steps, naive_converged) =
                run_dynamics_rebuild(initial.clone(), model, 100);
            assert_eq!(spec.state, naive_state, "seed {seed} {model:?}");
            assert_eq!(spec.steps, naive_steps);
            assert_eq!(spec.converged, naive_converged);
        }
    }
}

/// Per-round traces are executor-independent too: every round commits
/// the same number of moves and lands on the same social cost, so the
/// executors agree round by round, not only at the end.
#[test]
fn traces_agree_round_by_round() {
    for seed in [2u64, 9, 23] {
        let initial = random_instance(10, seed);
        for model in CostModel::ALL {
            let cfg = DynamicsConfig::exact(model, 60);
            let (seq_rep, seq_trace) = run_dynamics_traced(
                initial.clone(),
                cfg.with_executor(RoundExecutor::Sequential),
                &mut StdRng::seed_from_u64(1),
            );
            let (spec_rep, spec_trace) = run_dynamics_traced(
                initial.clone(),
                cfg.with_executor(RoundExecutor::Speculative),
                &mut StdRng::seed_from_u64(1),
            );
            assert_eq!(seq_rep.state, spec_rep.state, "seed {seed} {model:?}");
            assert_eq!(seq_trace, spec_trace, "seed {seed} {model:?}");
        }
    }
}

/// A medium instance above the Auto size floor, swap rule (the
/// scalable large-n configuration): step-identity holds where the
/// speculative executor is actually meant to run, and `Auto` — however
/// it resolves on this host — lands on one of the two identical
/// trajectories.
#[test]
fn medium_swap_instance_is_step_identical() {
    let mut rng = StdRng::seed_from_u64(5);
    let budgets = vec![1usize; 72];
    let initial = Realization::new(generators::random_realization(&budgets, &mut rng));
    let cfg = DynamicsConfig::swap(CostModel::Sum, 40);
    let seq = run_dynamics_with_kernel(
        initial.clone(),
        cfg.with_executor(RoundExecutor::Sequential),
        &mut StdRng::seed_from_u64(0),
        CostKernel::Auto,
    );
    let spec = run_dynamics_with_kernel(
        initial.clone(),
        cfg.with_executor(RoundExecutor::Speculative),
        &mut StdRng::seed_from_u64(0),
        CostKernel::Auto,
    );
    let auto = run_dynamics_with_kernel(
        initial,
        cfg.with_executor(RoundExecutor::Auto),
        &mut StdRng::seed_from_u64(0),
        CostKernel::Auto,
    );
    assert_eq!(seq.state, spec.state);
    assert_eq!(seq.steps, spec.steps);
    assert_eq!(seq.rounds, spec.rounds);
    assert_eq!(seq.converged, spec.converged);
    assert_eq!(seq.state, auto.state);
    assert_eq!(seq.steps, auto.steps);
}

/// Brace-dense instances stress the presence-preservation fast path:
/// commits that only shuffle brace multiplicities must not invalidate
/// later proposals, and the trajectory must still be identical.
#[test]
fn brace_rich_instances_stay_identical() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        // Budget-2 everywhere: plenty of braces, plenty of
        // multiplicity-only rewires under the swap rule.
        let budgets = vec![2usize; 9];
        let initial = Realization::new(generators::random_realization(&budgets, &mut rng));
        for model in CostModel::ALL {
            for rule in [ResponseRule::BestSwap, ResponseRule::Greedy] {
                let cfg = DynamicsConfig {
                    rule,
                    ..DynamicsConfig::exact(model, 60)
                };
                let seq = run_dynamics_with_kernel(
                    initial.clone(),
                    cfg.with_executor(RoundExecutor::Sequential),
                    &mut StdRng::seed_from_u64(3),
                    CostKernel::Queue,
                );
                let spec = run_dynamics_with_kernel(
                    initial.clone(),
                    cfg.with_executor(RoundExecutor::Speculative),
                    &mut StdRng::seed_from_u64(3),
                    CostKernel::Queue,
                );
                assert_eq!(seq.state, spec.state, "seed {seed} {model:?} {rule:?}");
                assert_eq!(seq.steps, spec.steps);
                assert_eq!(seq.rounds, spec.rounds);
            }
        }
    }
}
