//! Integration tests: every dynamics rule drives small games to the
//! stability notion it targets, and dynamics outcomes agree with
//! exhaustive enumeration.

use bbncg_core::dynamics::{run_dynamics, run_dynamics_traced, DynamicsConfig, ResponseRule};
use bbncg_core::{
    exact_game_stats, is_nash_equilibrium, is_swap_equilibrium, BudgetVector, CostModel,
    Realization,
};
use bbncg_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_start(budgets: &BudgetVector, seed: u64) -> Realization {
    let mut rng = StdRng::seed_from_u64(seed);
    Realization::new(generators::random_realization(budgets.as_slice(), &mut rng))
}

#[test]
fn every_rule_reaches_its_stability_notion() {
    let budgets = BudgetVector::new(vec![1, 1, 2, 1, 1, 0, 2]);
    for model in CostModel::ALL {
        for rule in [
            ResponseRule::ExactBest,
            ResponseRule::FirstImproving,
            ResponseRule::Greedy,
            ResponseRule::BestSwap,
        ] {
            for seed in 0..3u64 {
                let mut rng = StdRng::seed_from_u64(100 + seed);
                let cfg = DynamicsConfig {
                    rule,
                    ..DynamicsConfig::exact(model, 500)
                };
                let rep = run_dynamics(random_start(&budgets, seed), cfg, &mut rng);
                assert!(rep.converged, "{model:?} {rule:?} seed {seed}");
                match rule {
                    // Exact and better-response convergence == Nash.
                    ResponseRule::ExactBest | ResponseRule::FirstImproving => {
                        assert!(
                            is_nash_equilibrium(&rep.state, model),
                            "{model:?} {rule:?} seed {seed}"
                        );
                    }
                    // Swap convergence == swap equilibrium (weaker).
                    ResponseRule::BestSwap => {
                        assert!(is_swap_equilibrium(&rep.state, model));
                    }
                    // Greedy convergence means greedy found no strict
                    // improvement; it is at least swap-stable in
                    // practice but carries no guarantee — only check
                    // convergence itself.
                    ResponseRule::Greedy => {}
                }
            }
        }
    }
}

#[test]
fn dynamics_outcomes_lie_in_the_enumerated_equilibrium_range() {
    // Cross-validation of two independent components: the dynamics
    // engine and the exhaustive enumerator.
    let budgets = BudgetVector::uniform(5, 1);
    for model in CostModel::ALL {
        let stats = exact_game_stats(&budgets, model, 100_000);
        assert!(stats.equilibria > 0);
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let rep = run_dynamics(
                random_start(&budgets, seed),
                DynamicsConfig::exact(model, 300),
                &mut rng,
            );
            assert!(rep.converged);
            let d = rep.state.social_diameter();
            assert!(
                d >= stats.best_equilibrium_diameter && d <= stats.worst_equilibrium_diameter,
                "dynamics produced diameter {d} outside enumerated range \
                 [{}, {}] ({model:?})",
                stats.best_equilibrium_diameter,
                stats.worst_equilibrium_diameter
            );
        }
    }
}

#[test]
fn traced_and_untraced_dynamics_agree() {
    let budgets = BudgetVector::uniform(8, 1);
    for model in CostModel::ALL {
        let mut rng1 = StdRng::seed_from_u64(4);
        let mut rng2 = StdRng::seed_from_u64(4);
        let cfg = DynamicsConfig::exact(model, 200);
        let plain = run_dynamics(random_start(&budgets, 4), cfg, &mut rng1);
        let (traced, trace) = run_dynamics_traced(random_start(&budgets, 4), cfg, &mut rng2);
        assert_eq!(plain.state, traced.state);
        assert_eq!(plain.steps, traced.steps);
        assert_eq!(trace.len(), traced.rounds + 1);
    }
}

#[test]
fn zero_budget_players_never_block_convergence() {
    let budgets = BudgetVector::new(vec![0, 0, 0, 3, 3]);
    for model in CostModel::ALL {
        let mut rng = StdRng::seed_from_u64(12);
        let rep = run_dynamics(
            random_start(&budgets, 12),
            DynamicsConfig::exact(model, 200),
            &mut rng,
        );
        assert!(rep.converged);
        assert!(is_nash_equilibrium(&rep.state, model));
    }
}
