//! Integration test: the full Section 6 pipeline on *dynamics-found*
//! SUM equilibria (not just the textbook constructions) — every
//! equilibrium must survive each proof step.

use bbncg_core::dynamics::{run_dynamics, DynamicsConfig};
use bbncg_core::{BudgetVector, CostModel, Realization, WeightedGraph};
use bbncg_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sum_equilibrium(budgets: &[usize], seed: u64) -> Option<Realization> {
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = Realization::new(generators::random_realization(budgets, &mut rng));
    let rep = run_dynamics(
        initial,
        DynamicsConfig::exact(CostModel::Sum, 300),
        &mut rng,
    );
    rep.converged.then_some(rep.state)
}

#[test]
fn sampled_sum_equilibria_are_weak_equilibria() {
    // Nash ⟹ weak equilibrium: must hold for every sampled profile.
    for seed in 0..4u64 {
        let budgets = BudgetVector::random_tree(8, &mut StdRng::seed_from_u64(seed));
        if let Some(eq) = sum_equilibrium(budgets.as_slice(), seed) {
            let wg = WeightedGraph::unit(eq.graph().clone());
            assert!(
                wg.is_weak_equilibrium(),
                "seed {seed}: Nash equilibrium is not weak-stable?!"
            );
        }
    }
}

#[test]
fn folding_sampled_tree_equilibria_preserves_weak_equilibrium() {
    // The Corollary 6.3 step on real equilibria: fold poor leaves and
    // re-check weak stability of the weighted remainder.
    let mut checked = 0;
    for seed in 10..18u64 {
        let budgets = BudgetVector::random_tree(9, &mut StdRng::seed_from_u64(seed));
        let Some(eq) = sum_equilibrium(budgets.as_slice(), seed) else {
            continue;
        };
        let wg = WeightedGraph::unit(eq.graph().clone());
        let (folded, _) = wg.fold_poor_leaves();
        assert_eq!(folded.total_weight(), wg.total_weight());
        if folded.n() > 1 {
            assert!(
                folded.is_weak_equilibrium(),
                "seed {seed}: folding broke weak equilibrium (n' = {})",
                folded.n()
            );
        }
        checked += 1;
    }
    assert!(checked >= 4, "too few equilibria sampled");
}

#[test]
fn rich_leaves_of_sampled_equilibria_obey_lemma_6_4() {
    for seed in 30..38u64 {
        let budgets = BudgetVector::random_tree(10, &mut StdRng::seed_from_u64(seed));
        let Some(eq) = sum_equilibrium(budgets.as_slice(), seed) else {
            continue;
        };
        let wg = WeightedGraph::unit(eq.graph().clone());
        if let Some(d) = wg.max_rich_leaf_distance() {
            assert!(d <= 2, "seed {seed}: rich leaves at distance {d} > 2");
        }
    }
}

#[test]
fn contraction_counts_of_sampled_equilibria_respect_lemma_6_5() {
    use bbncg_graph::NodeId;
    for seed in 50..58u64 {
        let budgets = BudgetVector::random_tree(10, &mut StdRng::seed_from_u64(seed));
        let Some(eq) = sum_equilibrium(budgets.as_slice(), seed) else {
            continue;
        };
        if eq.graph().total_arcs() != eq.n() - 1 {
            continue; // not a tree (shouldn't happen for tree instances)
        }
        let wg = WeightedGraph::unit(eq.graph().clone());
        // Check a few endpoint pairs.
        for (a, b) in [(0usize, eq.n() - 1), (1, eq.n() / 2)] {
            if a == b {
                continue;
            }
            if let Some((contractible, bound)) =
                wg.path_contraction_stats(NodeId::new(a), NodeId::new(b))
            {
                assert!(
                    contractible <= bound,
                    "seed {seed}: {contractible} contractible edges > Lemma 6.5 bound {bound}"
                );
            }
        }
    }
}
