//! The tentpole invariant of the deviation engine, enforced: the
//! best-response/dynamics hot path performs **zero** `Csr::from_digraph`
//! rebuilds per candidate deviation.
//!
//! `bbncg-graph` is pulled in with the `rebuild-counter` feature (see
//! `[dev-dependencies]`), which makes every `Csr::from_digraph` bump a
//! process-global counter. A dynamics run evaluates orders of magnitude
//! more candidates than it applies moves; if any candidate pricing
//! rebuilt the undirected view, the counter delta would exceed the
//! applied-step count and these tests would fail.
//!
//! The counter is process-global and `cargo test` runs one process per
//! integration-test binary with tests in parallel threads, so every
//! assertion here measures *deltas* around a serial section and the
//! binary holds exactly one test per measurement concern.

use bbncg_core::dynamics::{run_dynamics, DynamicsConfig};
use bbncg_core::{
    audit_equilibrium, exact_best_response_with, CostModel, DeviationScratch, Realization,
};
use bbncg_graph::csr::rebuild_counter;
use bbncg_graph::{generators, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn hot_paths_never_rebuild_per_candidate() {
    // --- Dynamics: rebuilds == applied moves (Realization::set_strategy
    // refreshes its cached view once per move), never per candidate.
    let mut rng = StdRng::seed_from_u64(5);
    let budgets = vec![1usize; 12];
    let initial = Realization::new(generators::random_realization(&budgets, &mut rng));
    // Each activation of a unit-budget player prices n-1 = 11
    // candidates, so a per-candidate rebuild would show up ~11x.
    let before = rebuild_counter::count();
    let report = run_dynamics(
        initial,
        DynamicsConfig::exact(CostModel::Sum, 200),
        &mut rng,
    );
    let delta = rebuild_counter::count() - before;
    assert!(report.converged);
    assert!(report.steps > 0, "want a run that actually moves");
    assert_eq!(
        delta, report.steps as u64,
        "dynamics must rebuild the cached view once per applied move and never per candidate"
    );

    // --- Single-player search: an open engine session prices every
    // candidate with zero rebuilds.
    let r = &report.state;
    let mut scratch = DeviationScratch::new(r);
    let before = rebuild_counter::count();
    for u in (0..r.n()).map(NodeId::new) {
        if r.graph().out_degree(u) > 0 {
            let _ = exact_best_response_with(&mut scratch, r, u, CostModel::Max);
        }
    }
    assert_eq!(
        rebuild_counter::count() - before,
        0,
        "engine-backed best-response search must not rebuild at all"
    );
    assert_eq!(scratch.rebuilds(), 0, "no arena re-layouts expected either");

    // --- Batched parallel Nash audit: one engine per worker, zero
    // rebuilds for the whole pass.
    let before = rebuild_counter::count();
    let audit = audit_equilibrium(r, CostModel::Sum);
    assert!(audit.is_nash(), "dynamics converged, so the audit agrees");
    assert_eq!(
        rebuild_counter::count() - before,
        0,
        "batched verification must price all players without rebuilds"
    );
}
