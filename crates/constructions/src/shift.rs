//! The Theorem 5.3 / Lemma 5.2 shift-graph equilibrium.
//!
//! The paper's most surprising construction: instances where **every**
//! player has a positive budget yet MAX equilibria with diameter
//! `√(log n)` exist — so giving everyone budget (vs. the all-unit game,
//! whose equilibria have diameter O(1)) can *hurt* the network, a
//! Braess-like non-monotonicity.
//!
//! Lemma 5.2: let `U` be the shift graph on `{0,…,t−1}^k` (see
//! [`bbncg_graph::generators::shift_graph`]). If `(2t)^k − 1 <
//! t^k(2t−1)` then *any* orientation `G` with `U(G) = U` is a MAX
//! equilibrium — the argument is purely expansion-based (Lemma 5.1): no
//! single player's ≤ 2t incident edges can bring every vertex within
//! distance `k − 1`, so no deviation reduces any local diameter below
//! `k`. Theorem 5.3 instantiates `t = 2^k`, giving `n = 2^(k²)` and
//! diameter `k = √(log n)`.
//!
//! To realize the theorem we must orient every edge so each vertex owns
//! at least one arc (all budgets positive). This module does so with a
//! vertex-to-edge matching (greedy pass + Kuhn augmentation), which
//! always succeeds because every vertex has degree ≥ t − 1 ≥ 2 and the
//! graph has more edges than vertices.

use bbncg_core::Realization;
use bbncg_graph::generators::shift_graph_edges;
use bbncg_graph::{NodeId, OwnedDigraph};

/// Output of [`shift_equilibrium`].
#[derive(Clone, Debug)]
pub struct ShiftEquilibrium {
    /// The oriented shift graph — a MAX equilibrium with all budgets ≥ 1.
    pub realization: Realization,
    /// Alphabet size `t`.
    pub t: usize,
    /// Word length `k` (= the graph's diameter).
    pub k: u32,
}

/// Does the Lemma 5.2 hypothesis `(2t)^k − 1 < t^k(2t − 1)` hold?
/// Computed in `u128`; `false` on overflow (the hypothesis concerns
/// sizes far below that).
pub fn lemma52_condition(t: usize, k: u32) -> bool {
    let lhs = match (2 * t as u128).checked_pow(k) {
        Some(x) => x - 1,
        None => return false,
    };
    let rhs = match (t as u128)
        .checked_pow(k)
        .and_then(|x| x.checked_mul(2 * t as u128 - 1))
    {
        Some(x) => x,
        None => return false,
    };
    lhs < rhs
}

/// Orient every undirected edge so that each vertex owns at least one
/// arc. Panics if impossible (some component has fewer edges than
/// vertices — never the case for shift graphs).
fn orient_all_positive(n: usize, edges: &[(usize, usize)]) -> OwnedDigraph {
    // Vertex-edge incidence.
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (e, &(u, v)) in edges.iter().enumerate() {
        incident[u].push(e as u32);
        incident[v].push(e as u32);
    }
    // owner[e] = vertex matched to edge e (the arc's tail), or NONE.
    const NONE: u32 = u32::MAX;
    let mut owner = vec![NONE; edges.len()];
    let mut matched_edge = vec![NONE; n];

    // Greedy pass: claim any unclaimed incident edge.
    for v in 0..n {
        for &e in &incident[v] {
            if owner[e as usize] == NONE {
                owner[e as usize] = v as u32;
                matched_edge[v] = e;
                break;
            }
        }
    }
    // Kuhn augmentation for the (rare) leftovers.
    fn augment(
        v: usize,
        incident: &[Vec<u32>],
        owner: &mut [u32],
        matched_edge: &mut [u32],
        visited: &mut [bool],
    ) -> bool {
        const NONE: u32 = u32::MAX;
        for &e in &incident[v] {
            let e = e as usize;
            if visited[e] {
                continue;
            }
            visited[e] = true;
            let holder = owner[e];
            if holder == NONE || augment(holder as usize, incident, owner, matched_edge, visited) {
                owner[e] = v as u32;
                matched_edge[v] = e as u32;
                return true;
            }
        }
        false
    }
    for v in 0..n {
        if matched_edge[v] == NONE {
            let mut visited = vec![false; edges.len()];
            let ok = augment(v, &incident, &mut owner, &mut matched_edge, &mut visited);
            assert!(
                ok,
                "no all-positive orientation exists (vertex {v} cannot be matched)"
            );
        }
    }
    // Matched edges are owned by their matched vertex; the rest go from
    // the smaller to the larger endpoint.
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (e, &(u, v)) in edges.iter().enumerate() {
        let tail = if matched_edge[u] == e as u32 && owner[e] == u as u32 {
            u
        } else if matched_edge[v] == e as u32 && owner[e] == v as u32 {
            v
        } else {
            u.min(v)
        };
        let head = if tail == u { v } else { u };
        out[tail].push(NodeId::new(head));
    }
    OwnedDigraph::from_out_lists(out)
}

/// The Theorem 5.3 equilibrium for word length `k`: the shift graph with
/// `t = 2^k`, `n = 2^(k²)` vertices, oriented all-positive. A MAX
/// equilibrium with diameter `k = √(log₂ n)`.
///
/// Sizes: k=2 → n=16, k=3 → n=512, k=4 → n=65 536. Keep `k ≤ 4`.
pub fn shift_equilibrium(k: u32) -> ShiftEquilibrium {
    shift_equilibrium_with(1usize << k, k)
}

/// Lemma 5.2 equilibrium for general `(t, k)` satisfying the lemma's
/// hypothesis.
///
/// # Panics
/// Panics if `(2t)^k − 1 < t^k(2t−1)` fails or `t ≤ k` (the diameter-k
/// argument requires more symbols than positions).
pub fn shift_equilibrium_with(t: usize, k: u32) -> ShiftEquilibrium {
    assert!(
        lemma52_condition(t, k),
        "Lemma 5.2 hypothesis fails for t={t}, k={k}"
    );
    assert!(t > k as usize, "need t > k for diameter exactly k");
    let (n, edges) = shift_graph_edges(t, k);
    let g = orient_all_positive(n, &edges);
    ShiftEquilibrium {
        realization: Realization::new(g),
        t,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_core::{is_nash_equilibrium, CostModel};

    #[test]
    fn condition_holds_for_theorem_53_parameters() {
        for k in 2..=6 {
            assert!(lemma52_condition(1usize << k, k), "t=2^k, k={k}");
        }
        // And fails when t is tiny relative to k.
        assert!(!lemma52_condition(2, 8));
    }

    #[test]
    fn k2_instance_shape() {
        let eq = shift_equilibrium(2);
        let r = &eq.realization;
        assert_eq!(r.n(), 16);
        assert_eq!(r.diameter(), Some(2));
        // All budgets positive (the point of Theorem 5.3).
        assert!(r.budgets().min_budget() >= 1);
        // Every edge oriented exactly once: arcs = edges of U.
        assert_eq!(r.graph().brace_count(), 0);
    }

    #[test]
    fn k2_instance_is_an_exact_max_equilibrium() {
        // n = 16, budgets ≤ 2t = 8: exhaustive Nash verification is
        // feasible and confirms Lemma 5.2 end to end.
        let eq = shift_equilibrium(2);
        assert!(is_nash_equilibrium(&eq.realization, CostModel::Max));
    }

    #[test]
    fn k3_instance_shape_and_certificate() {
        let eq = shift_equilibrium(3);
        let r = &eq.realization;
        assert_eq!(r.n(), 512);
        assert_eq!(r.diameter(), Some(3));
        assert!(r.budgets().min_budget() >= 1);
        // Lemma 5.2 certificate inputs: max degree ≤ 2t and the
        // counting condition — together they prove equilibrium without
        // search.
        assert!(r.csr().max_degree() <= 2 * eq.t);
        assert!(lemma52_condition(eq.t, eq.k));
    }

    #[test]
    fn k3_sampled_players_cannot_improve_by_swaps() {
        use bbncg_core::best_swap_response;
        let eq = shift_equilibrium(3);
        let r = &eq.realization;
        for u in [0usize, 17, 255, 511] {
            let u = NodeId::new(u);
            let current = r.cost(u, CostModel::Max);
            assert_eq!(current, 3);
            if let Some(best) = best_swap_response(r, u, CostModel::Max) {
                assert!(best.cost >= current, "player {u} improved by a swap");
            }
        }
    }

    #[test]
    fn general_t_k_instance() {
        // t = 5, k = 2: (10)^2 − 1 = 99 < 25·9 = 225.
        let eq = shift_equilibrium_with(5, 2);
        assert_eq!(eq.realization.n(), 25);
        assert_eq!(eq.realization.diameter(), Some(2));
        assert!(eq.realization.budgets().min_budget() >= 1);
        assert!(is_nash_equilibrium(&eq.realization, CostModel::Max));
    }

    #[test]
    #[should_panic(expected = "hypothesis fails")]
    fn rejects_bad_parameters() {
        shift_equilibrium_with(2, 8);
    }

    #[test]
    fn orientation_covers_every_edge_once() {
        let (n, edges) = bbncg_graph::generators::shift_graph_edges(4, 2);
        let g = orient_all_positive(n, &edges);
        assert_eq!(g.total_arcs(), edges.len());
        for &(u, v) in &edges {
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            assert!(g.has_arc(u, v) ^ g.has_arc(v, u));
        }
        for u in 0..n {
            assert!(g.out_degree(NodeId::new(u)) >= 1);
        }
    }
}
