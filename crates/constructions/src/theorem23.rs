//! The Theorem 2.3 equilibrium constructions.
//!
//! For **every** budget vector the paper constructs a Nash equilibrium
//! (in both SUM and MAX versions), proving existence and a price of
//! stability of O(1). Three cases, by `σ = Σbᵢ`, `z` = number of
//! zero-budget players, and `b_max`:
//!
//! * **Case 1** (`σ ≥ n−1`, `b_max ≥ z`): one high-budget hub links all
//!   zero-budget players; everyone else links the hub; leftover budget
//!   is spent on arbitrary non-adjacent targets; braces incident to
//!   local-diameter-2 vertices are swapped away. Result: diameter ≤ 2
//!   and every vertex carries the Lemma 2.2 certificate.
//! * **Case 2** (`σ ≥ n−1`, `b_max < z`): no single vertex can cover the
//!   zero-budget set, so the top-budget vertices `{v_t} ∪ C ∪ {v_n}`
//!   jointly cover it in four phases (the paper's Figure 1 shows the
//!   n = 22 instance). Result: diameter ≤ 4.
//! * **Case 3** (`σ < n−1`): connectivity is impossible; the unique
//!   maximal sub-instance that can span itself (which is exactly a
//!   Tree-BG sub-instance) is built as an equilibrium and the rest stay
//!   isolated.
//!
//! The construction works on budgets sorted nondecreasing and the result
//! is relabelled back to the caller's player order.

use bbncg_core::{BudgetVector, Realization};
use bbncg_graph::{BfsScratch, Csr, NodeId, OwnedDigraph};

/// Which case of Theorem 2.3 produced the equilibrium.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Theorem23Case {
    /// σ ≥ n−1 and the largest budget covers all zero-budget players.
    SingleCover,
    /// σ ≥ n−1 but the zero-budget players need several coverers.
    LayeredCover,
    /// σ < n−1: every realization is disconnected.
    Disconnected,
}

/// Output of [`theorem23_equilibrium`].
#[derive(Clone, Debug)]
pub struct Theorem23Construction {
    /// The constructed profile — a Nash equilibrium in both versions.
    pub realization: Realization,
    /// Which case applied.
    pub case: Theorem23Case,
    /// The diameter guarantee of that case: 2 for `SingleCover`, 4 for
    /// `LayeredCover`, `n²` (disconnected) for `Disconnected`.
    pub diameter_bound: u64,
}

/// Build the Theorem 2.3 equilibrium for an arbitrary budget vector.
///
/// The result realizes `budgets` exactly (player `i` owns `budgets[i]`
/// arcs) and is a pure Nash equilibrium in both the SUM and MAX
/// versions.
///
/// ```
/// use bbncg_constructions::theorem23_equilibrium;
/// use bbncg_core::{is_nash_equilibrium, BudgetVector, CostModel};
///
/// let c = theorem23_equilibrium(&BudgetVector::new(vec![0, 1, 1, 3]));
/// assert!(c.realization.social_diameter() <= 4);
/// assert!(is_nash_equilibrium(&c.realization, CostModel::Sum));
/// assert!(is_nash_equilibrium(&c.realization, CostModel::Max));
/// ```
pub fn theorem23_equilibrium(budgets: &BudgetVector) -> Theorem23Construction {
    let n = budgets.n();
    if n <= 1 {
        return Theorem23Construction {
            realization: Realization::new(OwnedDigraph::empty(n)),
            case: Theorem23Case::SingleCover,
            diameter_bound: 0,
        };
    }
    // Sort players by budget (nondecreasing), remembering positions.
    // `rank[r]` = original player at sorted position r (1-based ranks in
    // the paper; 0-based here).
    let mut rank: Vec<usize> = (0..n).collect();
    rank.sort_by_key(|&i| (budgets.get(i), i));
    let sorted: Vec<usize> = rank.iter().map(|&i| budgets.get(i)).collect();

    let sigma: usize = sorted.iter().sum();
    let z = sorted.iter().filter(|&&b| b == 0).count();
    let bmax = *sorted.last().unwrap();

    let (arcs_sorted, case, bound) = if sigma >= n.saturating_sub(1) {
        if bmax >= z {
            (case1_arcs(&sorted), Theorem23Case::SingleCover, 2)
        } else {
            (case2_arcs(&sorted), Theorem23Case::LayeredCover, 4)
        }
    } else {
        (
            case3_arcs(&sorted),
            Theorem23Case::Disconnected,
            (n as u64) * (n as u64),
        )
    };

    // Relabel sorted positions back to original player ids.
    let arcs: Vec<(usize, usize)> = arcs_sorted
        .into_iter()
        .map(|(u, v)| (rank[u], rank[v]))
        .collect();
    let g = OwnedDigraph::from_arcs(n, &arcs);
    debug_assert_eq!(
        BudgetVector::of_realization(&g).as_slice(),
        budgets.as_slice(),
        "construction must realize the requested budgets exactly"
    );
    Theorem23Construction {
        realization: Realization::new(g),
        case,
        diameter_bound: bound,
    }
}

/// Case 1 on sorted budgets (`b[0] ≤ … ≤ b[n−1]`, `σ ≥ n−1`,
/// `b[n−1] ≥ z`). Returns arcs over sorted positions.
fn case1_arcs(b: &[usize]) -> Vec<(usize, usize)> {
    let n = b.len();
    if n == 1 {
        return Vec::new();
    }
    let hub = n - 1;
    let bn = b[hub];
    let mut g = OwnedDigraph::empty(n);
    // Hub links the bn smallest-budget vertices (covers all zero-budget
    // players since bn ≥ z).
    for v in 0..bn {
        g.add_arc(NodeId::new(hub), NodeId::new(v));
    }
    // Everyone not already linked from the hub links the hub.
    for u in bn..n - 1 {
        g.add_arc(NodeId::new(u), NodeId::new(hub));
    }
    // Spend remaining budgets on arbitrary targets, preferring
    // non-adjacent ones so few braces appear.
    fill_remaining(&mut g, b);
    // Swap away braces at local-diameter-2 vertices (Lemma 2.2 repair).
    eliminate_braces(&mut g);
    g.arcs().map(|(u, v)| (u.index(), v.index())).collect()
}

/// Case 2 on sorted budgets (`σ ≥ n−1`, `b[n−1] < z`). The paper's
/// four-phase construction; see Figure 1 for the n = 22 example.
fn case2_arcs(b: &[usize]) -> Vec<(usize, usize)> {
    let n = b.len();
    let z = b.iter().filter(|&&x| x == 0).count();
    // t = largest (1-based) index with b_n + … + b_t ≥ z + n − t.
    // 0-based: largest t0 with sum(b[t0..]) ≥ z + n − (t0 + 1).
    let mut suffix = 0usize;
    let mut t0 = None;
    for i in (0..n).rev() {
        suffix += b[i];
        if suffix >= z + n - (i + 1) {
            t0 = Some(i);
            break;
        }
    }
    let t0 = t0.expect("t exists whenever sigma >= n-1");
    debug_assert!(t0 + 1 > z, "paper: t > z");
    debug_assert!(t0 + 1 < n, "paper: t < n");

    let hub = n - 1; // v_n; A = 0..z are the zero-budget players
    let b_set = z..t0 + 1; // v_{z+1} .. v_t
    let c_set = t0 + 1..n - 1; // v_{t+1} .. v_{n-1}
    let mut g = OwnedDigraph::empty(n);

    // Phase 1: every vertex in B ∪ C links the hub.
    for u in b_set.clone().chain(c_set.clone()) {
        g.add_arc(NodeId::new(u), NodeId::new(hub));
    }

    // Phase 2: {v_n} ∪ C ∪ {v_t} cover A.
    // Hub takes the first b_n vertices of A; then v_{n-1} the next
    // b_{n-1} − 1; … down to v_{t+1}; finally v_t takes the last s.
    let mut next_a = 0usize;
    for v in 0..b[hub] {
        g.add_arc(NodeId::new(hub), NodeId::new(v));
        next_a = v + 1;
    }
    for w in c_set.clone().rev() {
        for _ in 0..b[w].saturating_sub(1) {
            g.add_arc(NodeId::new(w), NodeId::new(next_a));
            next_a += 1;
        }
    }
    // s = z + n − (t + 1) − (b_n + … + b_{t+1})  [1-based t]
    let top_sum: usize = b[t0 + 1..].iter().sum();
    let s = z + n - (t0 + 2) - top_sum;
    debug_assert!(s >= 1, "paper: s positive by definition of t");
    debug_assert!(s < b[t0], "v_t must afford phase 1 + its s arcs");
    for _ in 0..s {
        g.add_arc(NodeId::new(t0), NodeId::new(next_a));
        next_a += 1;
    }
    debug_assert_eq!(next_a, z, "phase 2 covers A exactly");

    // Phase 3: B spends leftover budget on C ∪ {v_t}, in reverse order.
    for u in b_set.clone() {
        for w in (t0..n - 1).rev() {
            if g.out_degree(NodeId::new(u)) >= b[u] {
                break;
            }
            if w != u && !g.has_arc(NodeId::new(u), NodeId::new(w)) {
                g.add_arc(NodeId::new(u), NodeId::new(w));
            }
        }
    }

    // Phase 4: B spends any remaining budget on A, in order.
    for u in b_set {
        let mut v = 0usize;
        while g.out_degree(NodeId::new(u)) < b[u] {
            debug_assert!(v < z, "phase 4 must fit inside A");
            if !g.has_arc(NodeId::new(u), NodeId::new(v)) {
                g.add_arc(NodeId::new(u), NodeId::new(v));
            }
            v += 1;
        }
    }
    g.arcs().map(|(u, v)| (u.index(), v.index())).collect()
}

/// Case 3 on sorted budgets (`σ < n−1`): isolate the zero-prefix that
/// cannot be spanned and build the equilibrium on the maximal
/// self-spanning suffix, which is a Tree-BG sub-instance.
fn case3_arcs(b: &[usize]) -> Vec<(usize, usize)> {
    let n = b.len();
    // m = smallest (1-based) index with b_m + … + b_n ≥ n − m;
    // 0-based: smallest m0 with sum(b[m0..]) ≥ n − (m0 + 1).
    let mut m0 = n; // fallback: the last vertex alone (b_n ≥ 0 = n − n)
    let mut suffix = 0usize;
    let mut sums = vec![0usize; n + 1];
    for i in (0..n).rev() {
        suffix += b[i];
        sums[i] = suffix;
    }
    for i in 0..n {
        if sums[i] >= n - (i + 1) {
            m0 = i;
            break;
        }
    }
    // The sub-instance b[m0..] has σ' = n' − 1 exactly (see module doc);
    // recurse on it (it lands in case 1 or 2).
    let sub: Vec<usize> = b[m0..].to_vec();
    let sub_budgets = BudgetVector::new(sub.clone());
    debug_assert!(sub_budgets.is_tree_instance());
    let sub_eq = theorem23_equilibrium(&sub_budgets);
    sub_eq
        .realization
        .graph()
        .arcs()
        .map(|(u, v)| (u.index() + m0, v.index() + m0))
        .collect()
}

/// Spend any remaining budget: for each vertex in sorted order, add arcs
/// to the smallest-id vertices it is not yet adjacent to (avoiding
/// braces when possible), falling back to brace-creating targets only
/// when every non-target is already an in-neighbour.
fn fill_remaining(g: &mut OwnedDigraph, b: &[usize]) {
    let n = g.n();
    for u in 0..n {
        let uid = NodeId::new(u);
        while g.out_degree(uid) < b[u] {
            // Prefer targets with no adjacency at all.
            let pick = (0..n)
                .map(NodeId::new)
                .find(|&w| w != uid && !g.adjacent(uid, w))
                .or_else(|| {
                    (0..n)
                        .map(NodeId::new)
                        .find(|&w| w != uid && !g.has_arc(uid, w))
                });
            match pick {
                Some(w) => g.add_arc(uid, w),
                None => unreachable!("budget b_u < n guarantees a free target"),
            }
        }
    }
}

/// Lemma 2.2 repair: while some brace `{u, v}` has an endpoint `u` with
/// local diameter 2 and a non-adjacent vertex `w` exists, replace the
/// arc `u → v` with `u → w`. Each swap strictly decreases the number of
/// braces (the new target is non-adjacent, so no new brace appears).
fn eliminate_braces(g: &mut OwnedDigraph) {
    let n = g.n();
    let mut scratch = BfsScratch::new(n);
    loop {
        let csr = Csr::from_digraph(g);
        let mut swapped = false;
        'outer: for u in 0..n {
            let uid = NodeId::new(u);
            for &v in g.out(uid) {
                if !g.has_arc(v, uid) {
                    continue; // not a brace
                }
                let ecc = scratch.run(&csr, uid).max_dist;
                if ecc != 2 {
                    continue;
                }
                if let Some(w) = (0..n)
                    .map(NodeId::new)
                    .find(|&w| w != uid && !g.adjacent(uid, w))
                {
                    g.swap_arc(uid, v, w);
                    swapped = true;
                    break 'outer;
                }
            }
        }
        if !swapped {
            return;
        }
    }
}

/// The paper's Figure 1 instance: n = 22 with budgets
/// `(0×16, 2, 5, 5, 5, 5, 5)` — sixteen zero-budget players, one with
/// budget 2, five with budget 5. σ = 27 ≥ 21 and `b_max = 5 < z = 16`,
/// so Theorem 2.3's Case 2 (the layered cover) applies with `t = 19`.
pub fn figure1_budgets() -> BudgetVector {
    let mut b = vec![0usize; 16];
    b.push(2);
    b.extend_from_slice(&[5, 5, 5, 5, 5]);
    BudgetVector::new(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_core::{is_nash_equilibrium, lemma22_certifies_all, CostModel};

    fn check_equilibrium_both(budgets: Vec<usize>) {
        let b = BudgetVector::new(budgets.clone());
        let c = theorem23_equilibrium(&b);
        assert_eq!(
            c.realization.budgets().as_slice(),
            b.as_slice(),
            "budgets must be realized exactly: {budgets:?}"
        );
        assert!(
            c.realization.social_diameter() <= c.diameter_bound,
            "diameter bound violated for {budgets:?}: {} > {}",
            c.realization.social_diameter(),
            c.diameter_bound
        );
        for model in CostModel::ALL {
            assert!(
                is_nash_equilibrium(&c.realization, model),
                "{budgets:?} must be a {model:?} equilibrium (case {:?})",
                c.case
            );
        }
    }

    #[test]
    fn case1_simple_instances() {
        check_equilibrium_both(vec![0, 1]);
        check_equilibrium_both(vec![1, 1]);
        check_equilibrium_both(vec![0, 0, 2]);
        check_equilibrium_both(vec![1, 1, 1, 1]);
        check_equilibrium_both(vec![0, 1, 1, 3]);
        check_equilibrium_both(vec![2, 2, 2, 2, 2]);
    }

    #[test]
    fn case1_with_leftover_budget() {
        // σ = 10 > n−1 = 5; hub budget 3 ≥ z = 1; several vertices have
        // leftover budget after linking the hub.
        check_equilibrium_both(vec![0, 2, 2, 3, 3]);
    }

    #[test]
    fn case2_small_instances() {
        // b_max < z and σ ≥ n−1 forces the layered cover.
        // n = 7: z = 4, b_max = 2, σ = 6 = n−1.
        check_equilibrium_both(vec![0, 0, 0, 0, 2, 2, 2]);
        // n = 8: z = 5, σ = 8 > n−1 = 7.
        check_equilibrium_both(vec![0, 0, 0, 0, 0, 2, 3, 3]);
    }

    #[test]
    fn case2_classification() {
        let c = theorem23_equilibrium(&BudgetVector::new(vec![0, 0, 0, 0, 2, 2, 2]));
        assert_eq!(c.case, Theorem23Case::LayeredCover);
        assert!(c.realization.social_diameter() <= 4);
    }

    #[test]
    fn case3_disconnected_instances() {
        // σ < n−1: the suffix that can span itself is built, the rest
        // stay isolated; equilibrium in both versions.
        check_equilibrium_both(vec![0, 0, 0, 1, 1]); // σ = 2 < 4
        check_equilibrium_both(vec![0, 0, 0, 0, 1]); // σ = 1 < 4
        check_equilibrium_both(vec![0, 0, 0, 0, 0]); // empty graph
    }

    #[test]
    fn case3_classification_and_structure() {
        let c = theorem23_equilibrium(&BudgetVector::new(vec![0, 0, 0, 1, 1]));
        assert_eq!(c.case, Theorem23Case::Disconnected);
        // The self-spanning suffix is the Tree-BG sub-instance (0,1,1)
        // (a 3-vertex path); two isolated vertices remain.
        assert_eq!(c.realization.kappa(), 3);
    }

    #[test]
    fn figure1_instance_builds_with_case2() {
        let b = figure1_budgets();
        assert_eq!(b.n(), 22);
        assert_eq!(b.zero_count(), 16);
        assert_eq!(b.max_budget(), 5);
        let c = theorem23_equilibrium(&b);
        assert_eq!(c.case, Theorem23Case::LayeredCover);
        assert!(c.realization.is_connected());
        assert!(c.realization.social_diameter() <= 4);
        // Exact Nash verification: budgets ≤ 5, n = 22 → C(21,5) = 20349
        // candidates per player, fine.
        for model in CostModel::ALL {
            assert!(is_nash_equilibrium(&c.realization, model));
        }
    }

    #[test]
    fn case1_produces_lemma22_certificates() {
        for budgets in [vec![0, 0, 3, 3], vec![1, 1, 1, 1, 1], vec![0, 2, 2, 4, 4]] {
            let c = theorem23_equilibrium(&BudgetVector::new(budgets.clone()));
            assert_eq!(c.case, Theorem23Case::SingleCover);
            assert!(
                lemma22_certifies_all(&c.realization),
                "Lemma 2.2 must certify case-1 output for {budgets:?}"
            );
        }
    }

    #[test]
    fn price_of_stability_is_constant_for_connectable_instances() {
        // Theorem 2.3's corollary: PoS = O(1). Diameter ≤ 4 always.
        for budgets in [
            vec![0, 1, 1, 1],
            vec![0, 0, 0, 0, 2, 2, 2],
            vec![2, 2, 2, 2, 2, 2],
            vec![0, 0, 0, 0, 0, 2, 3, 3],
        ] {
            let c = theorem23_equilibrium(&BudgetVector::new(budgets));
            assert!(c.realization.social_diameter() <= 4);
        }
    }

    #[test]
    fn unsorted_budget_order_is_respected() {
        // Budgets given in arbitrary order: player ids keep their own
        // budgets in the output.
        let b = BudgetVector::new(vec![3, 0, 2, 0, 1]);
        let c = theorem23_equilibrium(&b);
        assert_eq!(c.realization.budgets().as_slice(), &[3, 0, 2, 0, 1]);
        for model in CostModel::ALL {
            assert!(is_nash_equilibrium(&c.realization, model));
        }
    }
}
