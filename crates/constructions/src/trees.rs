//! Tree equilibria: the Theorem 3.2 spider and the Theorem 3.4 perfect
//! binary tree.
//!
//! Both are Tree-BG instances (Σb = n − 1). The spider is a MAX
//! equilibrium of diameter `2k = Θ(n)` — the witness for the Θ(n) price
//! of anarchy of MAX tree instances (Table 1, row "Trees", MAX; Figure
//! 2). The perfect binary tree is a SUM equilibrium of diameter
//! `2·height = Θ(log n)` — the matching lower bound for the O(log n)
//! upper bound of Theorem 3.3 (Table 1, row "Trees", SUM).

use bbncg_core::Realization;
use bbncg_graph::generators;

/// A construction together with the diameter the paper guarantees for
/// it.
#[derive(Clone, Debug)]
pub struct ConstructedEquilibrium {
    /// The equilibrium profile.
    pub realization: Realization,
    /// Its exact diameter (proved, and asserted in tests).
    pub diameter: u32,
}

/// The Theorem 3.2 spider with legs of length `k` (`n = 3k + 1`): a MAX
/// equilibrium with diameter `2k`.
///
/// Why it is an equilibrium (paper's argument): the hub and leg tips
/// have no budget; an interior leg vertex that rewires its single arc
/// within its own leg changes nothing and rewiring elsewhere
/// disconnects the graph; a leg head (budget 2) must keep one arc into
/// its own leg and its best second arc is the middle of the remaining
/// path — which is exactly the hub.
pub fn spider_equilibrium(k: usize) -> ConstructedEquilibrium {
    ConstructedEquilibrium {
        realization: Realization::new(generators::spider(k)),
        diameter: 2 * k as u32,
    }
}

/// The Theorem 3.4 perfect binary tree of the given height
/// (`n = 2^(height+1) − 1`): a SUM equilibrium with diameter
/// `2·height = Θ(log n)`.
///
/// Why it is an equilibrium: each internal vertex must keep one arc
/// into each of its two child subtrees (connectivity), and within a
/// subtree the root of that subtree minimizes the total distance to the
/// subtree — so pointing at the two children is optimal; leaves have no
/// budget.
pub fn binary_tree_equilibrium(height: u32) -> ConstructedEquilibrium {
    ConstructedEquilibrium {
        realization: Realization::new(generators::perfect_binary_tree(height)),
        diameter: 2 * height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_core::{is_nash_equilibrium, CostModel};

    #[test]
    fn spider_diameter_is_2k() {
        for k in 1..=6 {
            let c = spider_equilibrium(k);
            assert_eq!(c.realization.diameter(), Some(c.diameter));
            assert!(c.realization.budgets().is_tree_instance());
        }
    }

    #[test]
    fn spider_is_max_equilibrium_exact() {
        // Exact Nash verification for k up to 5 (n = 16).
        for k in 1..=5 {
            let c = spider_equilibrium(k);
            assert!(
                is_nash_equilibrium(&c.realization, CostModel::Max),
                "spider k={k} must be a MAX equilibrium"
            );
        }
    }

    #[test]
    fn spider_is_not_a_sum_equilibrium_for_large_k() {
        // The Θ(n) diameter is a MAX phenomenon: under SUM, a long leg
        // violates Theorem 3.3's O(log n) bound, so some vertex must
        // want to deviate.
        let c = spider_equilibrium(5);
        assert!(!is_nash_equilibrium(&c.realization, CostModel::Sum));
    }

    #[test]
    fn binary_tree_diameter_is_2h() {
        for h in 0..=4 {
            let c = binary_tree_equilibrium(h);
            assert_eq!(c.realization.diameter(), Some(c.diameter));
            assert!(c.realization.budgets().is_tree_instance());
        }
    }

    #[test]
    fn binary_tree_is_sum_equilibrium_exact() {
        for h in 1..=3 {
            let c = binary_tree_equilibrium(h);
            assert!(
                is_nash_equilibrium(&c.realization, CostModel::Sum),
                "binary tree h={h} must be a SUM equilibrium"
            );
        }
    }
}
