//! Explicit equilibrium constructions from Ehsani et al. (SPAA 2011).
//!
//! Each construction returns a concrete [`Realization`] whose
//! equilibrium property is verified in this crate's tests — exactly
//! (exhaustive deviation search) for small instances, and by the
//! paper's own certificates (Lemma 2.2, Lemma 5.2) for the large ones.
//!
//! * [`theorem23_equilibrium`] — a Nash equilibrium (both versions) for
//!   **every** budget vector; proves existence and PoS = O(1). Includes
//!   the paper's Figure 1 instance ([`figure1_budgets`]).
//! * [`spider_equilibrium`] — Theorem 3.2 / Figure 2: MAX tree
//!   equilibrium with diameter Θ(n).
//! * [`binary_tree_equilibrium`] — Theorem 3.4: SUM tree equilibrium
//!   with diameter Θ(log n).
//! * [`shift_equilibrium`] — Theorem 5.3: MAX equilibrium with all
//!   budgets positive and diameter √(log n) (Braess-like
//!   non-monotonicity).
//!
//! [`Realization`]: bbncg_core::Realization

#![warn(missing_docs)]
// Index loops here typically walk several parallel arrays at once;
// the index form is clearer than zipped iterators in those spots.
#![allow(clippy::needless_range_loop)]

pub mod shift;
pub mod theorem23;
pub mod trees;

pub use shift::{lemma52_condition, shift_equilibrium, shift_equilibrium_with, ShiftEquilibrium};
pub use theorem23::{figure1_budgets, theorem23_equilibrium, Theorem23Case, Theorem23Construction};
pub use trees::{binary_tree_equilibrium, spider_equilibrium, ConstructedEquilibrium};
