//! End-to-end `/metrics` scrape: boot a server with observability on,
//! run a job, and check the Prometheus exposition is syntactically
//! valid and covers the families the dashboard needs.

use bbncg_serve::{client, spawn, ServerConfig};
use std::time::{Duration, Instant};

const SPEC: &str = r#"
[scenario]
name = "scrape"
seed = 3

[init]
family = "uniform"
n = 16
budget = 1

[[phase]]
kind = "dynamics"

[[phase]]
kind = "arrive"
count = 2
budget = 1

[[phase]]
kind = "dynamics"
"#;

fn poll_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let server = spawn(ServerConfig {
        obs: true,
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // A scrape works before any job has run (all-zero registry).
    let cold = client::request(&addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(cold.status, 200);
    bbncg_obs::validate_exposition(&cold.text()).expect("cold scrape is valid");

    let resp = client::request(&addr, "POST", "/jobs", SPEC.as_bytes()).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = client::job_id(&resp.text()).unwrap();
    poll_until("job to complete", Duration::from_secs(60), || {
        let s = client::request(&addr, "GET", &format!("/jobs/{id}"), b"")
            .unwrap()
            .text();
        s.contains("\"state\":\"completed\"")
    });

    let page = client::request(&addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(page.status, 200);
    let text = page.text();
    bbncg_obs::validate_exposition(&text).expect("warm scrape is valid");

    // The families the acceptance names: queue depth, request
    // latencies, pruning hit rates, window commit/discard counts.
    for family in [
        "bbncg_serve_queue_depth",
        "bbncg_serve_inflight_jobs",
        "bbncg_http_requests_total",
        "bbncg_http_rejected_total",
        "bbncg_http_request_duration_us",
        "bbncg_kernel_candidates_priced_total",
        "bbncg_kernel_prune_skips_total",
        "bbncg_rounds_commits_total",
        "bbncg_rounds_discards_total",
        "bbncg_jobs_total",
    ] {
        assert!(text.contains(family), "scrape is missing {family}:\n{text}");
    }

    // The job actually moved the needle: it was submitted, completed,
    // and the scenario engine recorded its phases.
    let line = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .unwrap_or_else(|| panic!("no sample for {name}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse::<f64>()
            .unwrap() as u64
    };
    assert!(line("bbncg_jobs_total{state=\"submitted\"}") >= 1);
    assert!(line("bbncg_jobs_total{state=\"completed\"}") >= 1);
    assert!(line("bbncg_scenario_phases_total") >= 3);
    assert!(line("bbncg_http_requests_total") >= 3);

    // Job status carries the satellite's lifecycle timings.
    let status = client::request(&addr, "GET", &format!("/jobs/{id}"), b"")
        .unwrap()
        .text();
    assert!(status.contains("\"queue_wait_us\":"), "{status}");
    assert!(status.contains("\"run_us\":"), "{status}");
    assert!(status.contains("\"phase_us\":["), "{status}");

    server.shutdown(false);
    server.join();
}
