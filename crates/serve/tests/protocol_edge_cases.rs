//! Server protocol edge cases: malformed request lines, oversized
//! bodies, bad submissions, clients that vanish mid-stream, slow-loris
//! trickles, and keep-alive reuse/pipelining. The server must answer
//! 4xx where an answer is possible, and must never panic or leak a
//! queue/worker slot. The default front end here is the epoll
//! readiness loop; a backend matrix re-runs the key cases under
//! `poll` and `threads`.

use bbncg_serve::{client, spawn, ConnMode, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const TINY_SPEC: &str = "\
[scenario]
name = \"edge\"
seed = 1

[init]
family = \"uniform\"
n = 8
budget = 1

[[phase]]
kind = \"dynamics\"
";

/// A spec with many cheap phases: long enough to still be running when
/// the test pokes at it, cancellable at every phase boundary.
fn long_spec(pairs: usize) -> String {
    let mut s = String::from(
        "[scenario]\nname = \"long\"\nseed = 2\n\n[init]\nfamily = \"uniform\"\nn = 24\nbudget = 1\n",
    );
    for _ in 0..pairs {
        s.push_str("\n[[phase]]\nkind = \"reorient\"\n\n[[phase]]\nkind = \"dynamics\"\n");
    }
    s
}

fn poll_until(what: &str, deadline: Duration, f: impl Fn() -> bool) {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for: {what}");
}

/// Pull an integer field out of a flat JSON body.
fn json_int(body: &str, key: &str) -> i64 {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect::<String>()
        .parse()
        .unwrap()
}

fn raw_exchange(addr: &str, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(bytes).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn malformed_request_lines_get_400() {
    let server = spawn(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    for garbage in [
        "GARBAGE\r\n\r\n",
        "GET\r\n\r\n",
        "GET /healthz\r\n\r\n",
        "get /healthz HTTP/1.1\r\n\r\n",
        "GET healthz HTTP/1.1\r\n\r\n",
        "GET /healthz SPDY/9\r\n\r\n",
        "POST /jobs HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
        "POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        "GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n",
    ] {
        let resp = raw_exchange(&addr, garbage.as_bytes());
        assert!(
            resp.starts_with("HTTP/1.1 400"),
            "{garbage:?} answered {resp:?}"
        );
    }

    // The server is fully alive afterwards.
    let health = client::request(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    server.shutdown(false);
    server.join();
}

#[test]
fn oversized_bodies_get_413_before_buffering() {
    let server = spawn(ServerConfig {
        max_body: 4096,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // Declared oversize: rejected from the Content-Length header alone
    // (no 5 MiB ever crosses the wire, let alone the parser).
    let resp = raw_exchange(
        &addr,
        b"POST /jobs HTTP/1.1\r\nContent-Length: 5000000\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp:?}");

    // An over-long head is capped too.
    let huge_header = format!(
        "GET /healthz HTTP/1.1\r\nX-Padding: {}\r\n\r\n",
        "x".repeat(64 * 1024)
    );
    let resp = raw_exchange(&addr, huge_header.as_bytes());
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp:?}");

    // Within the cap still works.
    let ok = client::request(&addr, "POST", "/jobs", TINY_SPEC.as_bytes()).unwrap();
    assert_eq!(ok.status, 202, "{}", ok.text());
    server.shutdown(false);
    server.join();
}

#[test]
fn bad_submissions_and_unknown_routes() {
    let server = spawn(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // Unparseable spec: 400 with the parser's line-numbered message.
    let resp = client::request(&addr, "POST", "/jobs", b"[init]\nwat = \"???\"").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("spec"), "{}", resp.text());

    // Duplicate-key specs bounce at the door with the hardened parser.
    let dup = TINY_SPEC.replace("seed = 1\n", "seed = 1\nseed = 2\n");
    let resp = client::request(&addr, "POST", "/jobs", dup.as_bytes()).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("duplicate key"), "{}", resp.text());

    // Unknown job type, bad verify profile, unknown routes, bad ids.
    let resp = client::request(&addr, "POST", "/jobs?type=warp", b"").unwrap();
    assert_eq!(resp.status, 400);
    let resp = client::request(&addr, "POST", "/jobs?type=verify", b"not a profile").unwrap();
    assert_eq!(resp.status, 400);
    let resp = client::request(&addr, "GET", "/frobnicate", b"").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client::request(&addr, "GET", "/jobs/999", b"").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client::request(&addr, "GET", "/jobs/notanumber/stream", b"").unwrap();
    assert_eq!(resp.status, 404);
    server.shutdown(false);
    server.join();
}

#[test]
fn disconnect_mid_stream_leaks_nothing() {
    let server = spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    let resp = client::request(&addr, "POST", "/jobs", long_spec(300).as_bytes()).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());

    // Follow the stream briefly, then hang up mid-job.
    let mut seen = 0;
    client::stream_lines(&addr, "/jobs/1/stream", |_| {
        seen += 1;
        seen < 3
    })
    .unwrap();
    assert_eq!(seen, 3);

    // The job is untouched by the vanished client: still running (or
    // at least not failed), a fresh stream replays from the start, and
    // cancel + drain reclaim the worker.
    let status = client::request(&addr, "GET", "/jobs/1", b"").unwrap();
    assert!(
        !status.text().contains("failed"),
        "job damaged by client disconnect: {}",
        status.text()
    );
    let cancel = client::request(&addr, "POST", "/jobs/1/cancel", b"").unwrap();
    assert_eq!(cancel.status, 200);
    poll_until(
        "cancelled job to stop running",
        Duration::from_secs(30),
        || {
            let h = client::request(&addr, "GET", "/healthz", b"").unwrap();
            json_int(&h.text(), "running") == 0
        },
    );

    // The reclaimed worker happily runs the next job to completion.
    let resp = client::request(&addr, "POST", "/jobs", TINY_SPEC.as_bytes()).unwrap();
    assert_eq!(resp.status, 202);
    let mut lines = Vec::new();
    client::stream_lines(&addr, "/jobs/2/stream", |l| {
        lines.push(l.to_string());
        true
    })
    .unwrap();
    assert_eq!(lines.len(), 2, "1 phase + summary: {lines:?}");
    assert!(lines[1].contains("\"kind\":\"summary\""));
    let status = client::request(&addr, "GET", "/jobs/2", b"").unwrap();
    assert!(
        status.text().contains("\"state\":\"completed\""),
        "{}",
        status.text()
    );
    server.shutdown(true);
    server.join();
}

#[test]
fn slow_loris_trickles_are_culled_by_the_read_deadline() {
    let server = spawn(ServerConfig {
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // A partial request line that never completes: the server must cut
    // the connection (EOF, no response) instead of pinning a slot.
    let mut loris = TcpStream::connect(&addr).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    loris.write_all(b"GET /healthz HT").unwrap();
    let mut out = Vec::new();
    let n = loris.read_to_end(&mut out).unwrap_or(0);
    assert_eq!(n, 0, "culled mid-head, no response: {out:?}");

    // A connection that sends nothing at all is culled the same way.
    let mut silent = TcpStream::connect(&addr).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    let n = silent.read_to_end(&mut out).unwrap_or(0);
    assert_eq!(n, 0);

    // Honest clients are untouched before, during, and after.
    let health = client::request(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    server.shutdown(false);
    server.join();
}

#[test]
fn keep_alive_reuses_one_connection_and_honours_pipelining() {
    let server = spawn(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // One connection, many exchanges: status → submit → stream → status.
    let mut conn = client::Conn::new(&addr);
    let h = conn.request("GET", "/healthz", b"").unwrap();
    assert_eq!(h.status, 200);
    assert!(conn.is_connected(), "keep-alive retained after healthz");
    let resp = conn.request("POST", "/jobs", TINY_SPEC.as_bytes()).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = client::job_id(&resp.text()).unwrap();
    let mut lines = Vec::new();
    conn.stream_lines(&format!("/jobs/{id}/stream"), |l| {
        lines.push(l.to_string());
        true
    })
    .unwrap();
    assert_eq!(lines.len(), 2, "1 phase + summary: {lines:?}");
    assert!(
        conn.is_connected(),
        "a fully-followed stream keeps the connection"
    );
    let h = conn.request("GET", "/healthz", b"").unwrap();
    assert_eq!(h.status, 200);

    // Raw pipelining: two requests in one write, two in-order
    // responses on one connection (the second asks to close, which
    // bounds the read).
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        b"GET /healthz HTTP/1.1\r\nHost: a\r\n\r\nGET /jobs HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    let text = String::from_utf8_lossy(&out);
    assert_eq!(
        text.matches("HTTP/1.1 200").count(),
        2,
        "two pipelined responses: {text}"
    );
    // In-order: healthz doc first, then the jobs array as the final
    // body on the closed connection.
    let health_at = text.find("\"status\":\"ok\"").unwrap();
    let jobs_at = text.find("[{\"job\":").unwrap();
    assert!(health_at < jobs_at, "responses in request order: {text}");
    assert!(text.trim_end().ends_with("]"), "{text}");
    server.shutdown(false);
    server.join();
}

#[test]
fn key_protocol_cases_hold_under_poll_and_threads_backends() {
    // The readiness loop is the default; the poll fallback and the
    // legacy threads mode must answer the same protocol the same way.
    for (mode, label) in [(ConnMode::Poll, "poll"), (ConnMode::Threads, "threads")] {
        let server = spawn(ServerConfig {
            conn: mode,
            max_body: 4096,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.addr().to_string();
        client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

        let h = client::request(&addr, "GET", "/healthz", b"")
            .unwrap()
            .text();
        assert!(h.contains(&format!("\"conn\":\"{label}\"")), "{label}: {h}");

        let resp = raw_exchange(&addr, b"GARBAGE\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{label}: {resp:?}");
        let resp = raw_exchange(
            &addr,
            b"POST /jobs HTTP/1.1\r\nContent-Length: 5000000\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{label}: {resp:?}");

        let resp = client::request(&addr, "POST", "/jobs", TINY_SPEC.as_bytes()).unwrap();
        assert_eq!(resp.status, 202, "{label}: {}", resp.text());
        let id = client::job_id(&resp.text()).unwrap();
        let mut lines = Vec::new();
        client::stream_lines(&addr, &format!("/jobs/{id}/stream"), |l| {
            lines.push(l.to_string());
            true
        })
        .unwrap();
        assert_eq!(lines.len(), 2, "{label}: {lines:?}");
        assert!(lines[1].contains("\"kind\":\"summary\""), "{label}");

        server.shutdown(false);
        server.join();
    }
}

#[test]
fn cancel_is_idempotent_and_queued_jobs_cancel_instantly() {
    let server = spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // Occupy the single worker, then queue a second job behind it.
    let a = client::request(&addr, "POST", "/jobs", long_spec(300).as_bytes()).unwrap();
    assert_eq!(a.status, 202);
    poll_until("job 1 to start", Duration::from_secs(30), || {
        let h = client::request(&addr, "GET", "/healthz", b"").unwrap();
        json_int(&h.text(), "running") == 1
    });
    let b = client::request(&addr, "POST", "/jobs", TINY_SPEC.as_bytes()).unwrap();
    assert_eq!(b.status, 202);

    // Cancelling the queued job retires it without a worker ever
    // touching it; its stream is an immediate clean EOF.
    let resp = client::request(&addr, "POST", "/jobs/2/cancel", b"").unwrap();
    assert!(
        resp.text().contains("\"state\":\"cancelled\""),
        "{}",
        resp.text()
    );
    let mut got_lines = 0;
    client::stream_lines(&addr, "/jobs/2/stream", |_| {
        got_lines += 1;
        true
    })
    .unwrap();
    assert_eq!(
        got_lines, 0,
        "cancelled-while-queued job must stream nothing"
    );

    // Cancel the running one twice: same answer, no error.
    for _ in 0..2 {
        let resp = client::request(&addr, "POST", "/jobs/1/cancel", b"").unwrap();
        assert_eq!(resp.status, 200);
    }
    poll_until("job 1 to cancel", Duration::from_secs(30), || {
        let s = client::request(&addr, "GET", "/jobs/1", b"").unwrap();
        s.text().contains("\"state\":\"cancelled\"")
    });
    server.shutdown(false);
    server.join();
}
