//! The service-level contracts: served record streams are
//! byte-identical to offline runs (single seed and whole sweeps), a
//! full queue answers 429, and shutdown drains gracefully.

use bbncg_serve::{client, spawn, ServerConfig};
use std::time::{Duration, Instant};

const CHURN_SPEC: &str = "\
[scenario]
name = \"parity\"
seed = 11

[init]
family = \"uniform\"
n = 16
budget = 1

[dynamics]
model = \"sum\"
rule = \"exact\"
max_rounds = 200

[[phase]]
kind = \"dynamics\"

[[phase]]
kind = \"arrive\"
count = 2
budget = 1

[[phase]]
kind = \"dynamics\"

[[phase]]
kind = \"delete-edges\"
count = 2

[[phase]]
kind = \"dynamics\"
";

fn offline_lines(spec_text: &str) -> Vec<String> {
    use bbncg_scenario::{parse_spec, run_scenario, run_sweep, MemorySink};
    let spec = parse_spec(spec_text).unwrap();
    let mut sink = MemorySink::default();
    if spec.seeds > 1 {
        for o in run_sweep(&spec, &mut sink) {
            o.unwrap();
        }
    } else {
        run_scenario(&spec, spec.seed, None, &mut sink, None, |_| ()).unwrap();
    }
    sink.records.iter().map(|r| r.to_json()).collect()
}

fn served_lines(addr: &str, spec_text: &str, query: &str) -> Vec<String> {
    let resp =
        client::request(addr, "POST", &format!("/jobs{query}"), spec_text.as_bytes()).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = client::job_id(&resp.text()).unwrap();
    let mut lines = Vec::new();
    client::stream_lines(addr, &format!("/jobs/{id}/stream"), |l| {
        lines.push(l.to_string());
        true
    })
    .unwrap();
    lines
}

#[test]
fn served_stream_is_byte_identical_to_offline_run() {
    let server = spawn(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    let offline = offline_lines(CHURN_SPEC);
    assert_eq!(offline.len(), 6, "5 phases + summary");
    assert_eq!(served_lines(&addr, CHURN_SPEC, ""), offline);

    // A late stream (job already finished) replays the same bytes.
    let mut replay = Vec::new();
    client::stream_lines(&addr, "/jobs/1/stream", |l| {
        replay.push(l.to_string());
        true
    })
    .unwrap();
    assert_eq!(replay, offline);
    server.shutdown(false);
    server.join();
}

#[test]
fn sweep_jobs_stream_in_seed_order_byte_identically() {
    let server = spawn(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    let sweep_spec = CHURN_SPEC.replace("seed = 11", "seed = 11\nseeds = 5");
    let offline = offline_lines(&sweep_spec);
    assert_eq!(offline.len(), 30, "5 seeds × (5 phases + summary)");
    assert_eq!(served_lines(&addr, &sweep_spec, ""), offline);
    server.shutdown(false);
    server.join();
}

#[test]
fn submit_time_seed_and_kernel_overrides_apply() {
    let server = spawn(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // ?seed= must override the spec seed (and kernels never change
    // records, so ?kernel=queue vs bitset is byte-identical too).
    let reseeded = offline_lines(&CHURN_SPEC.replace("seed = 11", "seed = 77"));
    assert_eq!(served_lines(&addr, CHURN_SPEC, "?seed=77"), reseeded);
    assert_eq!(
        served_lines(&addr, CHURN_SPEC, "?seed=77&kernel=queue"),
        served_lines(&addr, CHURN_SPEC, "?seed=77&kernel=bitset"),
    );

    // ?model= overrides the spec's default model: submitting the sum
    // spec with ?model=max must reproduce the max-spec trajectory.
    let remodelled = offline_lines(&CHURN_SPEC.replace("model = \"sum\"", "model = \"max\""));
    assert_eq!(served_lines(&addr, CHURN_SPEC, "?model=max"), remodelled);
    let bad = client::request(&addr, "POST", "/jobs?model=warp", CHURN_SPEC.as_bytes()).unwrap();
    assert_eq!(bad.status, 400, "{}", bad.text());
    server.shutdown(false);
    server.join();
}

#[test]
fn healthz_reports_round_executor_mode_and_thread_cap() {
    // Loadgen runs are self-describing: /healthz names the round
    // executor jobs default to and the worker-thread cap every
    // parallel primitive obeys.
    let server = spawn(ServerConfig {
        default_executor: bbncg_core::RoundExecutor::Speculative,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();
    let h = client::request(&addr, "GET", "/healthz", b"")
        .unwrap()
        .text();
    assert!(h.contains("\"rounds\":\"speculative\""), "{h}");
    assert!(
        h.contains(&format!("\"threads\":{}", bbncg_par::max_threads())),
        "{h}"
    );

    // ?rounds= overrides per job — and executors are step-identical,
    // so the served stream is byte-identical to the offline run of the
    // unmodified spec whatever the mode. A bad mode is a 400 at the
    // door.
    let offline = offline_lines(CHURN_SPEC);
    assert_eq!(
        served_lines(&addr, CHURN_SPEC, "?rounds=sequential"),
        offline
    );
    assert_eq!(
        served_lines(&addr, CHURN_SPEC, "?rounds=speculative"),
        offline
    );
    let bad = client::request(&addr, "POST", "/jobs?rounds=warp", CHURN_SPEC.as_bytes()).unwrap();
    assert_eq!(bad.status, 400, "{}", bad.text());
    assert!(bad.text().contains("round executor"), "{}", bad.text());
    server.shutdown(false);
    server.join();
}

#[test]
fn verify_jobs_answer_with_a_verdict_line() {
    let server = spawn(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // A directed triangle of unit budgets is a Nash equilibrium; a path
    // is not.
    let triangle = "bbncg v1\nn 3\nbudgets 1 1 1\narcs\n0 1\n1 2\n2 0\n";
    let lines = served_lines(&addr, triangle, "?type=verify&model=sum");
    assert_eq!(lines.len(), 1);
    assert!(lines[0].contains("\"kind\":\"verify\""), "{}", lines[0]);
    assert!(lines[0].contains("\"nash\":true"), "{}", lines[0]);

    let path = "bbncg v1\nn 4\nbudgets 1 1 1 0\narcs\n0 1\n1 2\n2 3\n";
    let lines = served_lines(&addr, path, "?type=verify&model=sum");
    assert!(lines[0].contains("\"nash\":false"), "{}", lines[0]);
    server.shutdown(false);
    server.join();
}

/// A spec with many cheap phases — long enough to hold a worker while
/// the test queues behind it, cancellable at every phase boundary.
fn long_spec(pairs: usize) -> String {
    let mut s = String::from(
        "[scenario]\nname = \"hold\"\nseed = 3\n\n[init]\nfamily = \"uniform\"\nn = 24\nbudget = 1\n",
    );
    for _ in 0..pairs {
        s.push_str("\n[[phase]]\nkind = \"reorient\"\n\n[[phase]]\nkind = \"dynamics\"\n");
    }
    s
}

#[test]
fn full_queue_answers_429_backpressure() {
    let server = spawn(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // A: occupies the only worker.
    let a = client::request(&addr, "POST", "/jobs", long_spec(400).as_bytes()).unwrap();
    assert_eq!(a.status, 202);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let h = client::request(&addr, "GET", "/healthz", b"")
            .unwrap()
            .text();
        if h.contains("\"running\":1") && h.contains("\"queue_depth\":0") {
            break;
        }
        assert!(Instant::now() < deadline, "job A never started: {h}");
        std::thread::sleep(Duration::from_millis(20));
    }
    // B: fills the queue. C: bounced with 429.
    let b = client::request(&addr, "POST", "/jobs", long_spec(400).as_bytes()).unwrap();
    assert_eq!(b.status, 202);
    let c = client::request(&addr, "POST", "/jobs", long_spec(400).as_bytes()).unwrap();
    assert_eq!(c.status, 429, "{}", c.text());
    assert!(c.text().contains("queue full"), "{}", c.text());

    // Cancelling the *queued* job must free its slot immediately —
    // while A still occupies the worker, a fresh submission is
    // accepted the moment B's corpse leaves the queue.
    let resp = client::request(&addr, "POST", "/jobs/2/cancel", b"").unwrap();
    assert_eq!(resp.status, 200);
    let refill = client::request(&addr, "POST", "/jobs", long_spec(400).as_bytes()).unwrap();
    assert_eq!(
        refill.status,
        202,
        "queued-job cancel must release the queue slot at once: {}",
        refill.text()
    );

    // Backpressure is load, not lockout: cancel everything (the 429'd
    // submission never got an id, so the refill is job 3), and the
    // next submission is accepted again.
    for id in [1, 3] {
        let resp = client::request(&addr, "POST", &format!("/jobs/{id}/cancel"), b"").unwrap();
        assert_eq!(resp.status, 200);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let h = client::request(&addr, "GET", "/healthz", b"")
            .unwrap()
            .text();
        if h.contains("\"running\":0") && h.contains("\"queue_depth\":0") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cancellations never drained: {h}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let d = client::request(&addr, "POST", "/jobs", CHURN_SPEC.as_bytes()).unwrap();
    assert_eq!(d.status, 202);
    server.shutdown(true);
    server.join();
}

#[test]
fn shutdown_drains_gracefully() {
    let server = spawn(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // Three quick jobs land in the queue, then the drain begins.
    for _ in 0..3 {
        let resp = client::request(&addr, "POST", "/jobs", CHURN_SPEC.as_bytes()).unwrap();
        assert_eq!(resp.status, 202);
    }
    let resp = client::request(&addr, "POST", "/shutdown", b"").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("draining"), "{}", resp.text());

    // New submissions are refused while draining (the accept loop may
    // already be gone, in which case the connection itself fails —
    // both are valid refusals).
    if let Ok(refused) = client::request(&addr, "POST", "/jobs", CHURN_SPEC.as_bytes()) {
        assert_eq!(refused.status, 503, "{}", refused.text());
    }

    // join() returning proves the workers ran the queue dry; every
    // accepted job reached a terminal state with its full stream.
    let offline = offline_lines(CHURN_SPEC);
    for id in 1..=3 {
        let job = server.job(id).expect("accepted job retained");
        assert_eq!(
            job.wait_terminal(),
            bbncg_serve::JobStatus::Completed,
            "job {id}"
        );
        assert_eq!(job.lines.snapshot(), offline, "job {id}");
    }
    server.join();
}

#[test]
fn terminal_job_history_is_bounded() {
    let server = spawn(ServerConfig {
        workers: 1,
        history_limit: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // Five quick jobs, each run to completion before the next submit,
    // so every submission sees the previous ones terminal.
    for expect_id in 1..=5u64 {
        let lines = served_lines(&addr, CHURN_SPEC, "");
        assert_eq!(lines.len(), 6, "job {expect_id}");
    }
    // One more submission triggers eviction of everything beyond the
    // 2-job history; the newest terminal jobs and the fresh one stay.
    let resp = client::request(&addr, "POST", "/jobs", CHURN_SPEC.as_bytes()).unwrap();
    assert_eq!(resp.status, 202);
    let old = client::request(&addr, "GET", "/jobs/1", b"").unwrap();
    assert_eq!(old.status, 404, "evicted job must be gone: {}", old.text());
    let kept = client::request(&addr, "GET", "/jobs/5", b"").unwrap();
    assert_eq!(kept.status, 200, "{}", kept.text());
    server.shutdown(false);
    server.join();
}
