//! The content-addressed result cache, end to end: identical
//! submissions share one job (hit on completed, coalesce on running),
//! `?nocache=1` bypasses, override params key distinctly, and the LRU
//! bound holds under eviction pressure. Cache pressure is asserted via
//! `/healthz` (per-server stats, no global registry involved).

use bbncg_serve::{client, spawn, ServerConfig};
use std::time::Duration;

const SPEC: &str = "\
[scenario]
name = \"cacheable\"
seed = 11

[init]
family = \"uniform\"
n = 16
budget = 1

[dynamics]
model = \"sum\"
rule = \"exact\"
max_rounds = 200

[[phase]]
kind = \"dynamics\"

[[phase]]
kind = \"arrive\"
count = 2
budget = 1

[[phase]]
kind = \"dynamics\"
";

/// Pull a numeric field out of a flat JSON document.
fn json_u64(doc: &str, key: &str) -> u64 {
    let at = doc
        .find(&format!("\"{key}\":"))
        .unwrap_or_else(|| panic!("no {key} in {doc}"))
        + key.len()
        + 3;
    doc[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

fn submit(addr: &str, query: &str) -> (u64, bool) {
    let resp = client::request(addr, "POST", &format!("/jobs{query}"), SPEC.as_bytes()).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let text = resp.text();
    (
        client::job_id(&text).unwrap(),
        text.contains("\"cached\":true"),
    )
}

fn stream(addr: &str, id: u64) -> Vec<String> {
    let mut lines = Vec::new();
    client::stream_lines(addr, &format!("/jobs/{id}/stream"), |l| {
        lines.push(l.to_string());
        true
    })
    .unwrap();
    lines
}

fn healthz(addr: &str) -> String {
    client::request(addr, "GET", "/healthz", b"")
        .unwrap()
        .text()
}

#[test]
fn identical_submissions_share_one_job_byte_identically() {
    let server = spawn(ServerConfig {
        cache_capacity: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    let (first, cached) = submit(&addr, "");
    assert!(!cached, "first submission computes");
    let original = stream(&addr, first);
    assert_eq!(original.len(), 4, "3 phases + summary");

    // The duplicate answers with the *same* job — no recompute — and
    // its stream replays the same bytes.
    let (second, cached) = submit(&addr, "");
    assert!(cached, "duplicate must be served from cache");
    assert_eq!(second, first);
    assert_eq!(stream(&addr, second), original);

    // Different source text, same parsed scenario: still one job.
    let reformatted = format!("# a comment\n{SPEC}\n");
    let resp = client::request(&addr, "POST", "/jobs", reformatted.as_bytes()).unwrap();
    assert_eq!(resp.status, 202);
    assert_eq!(client::job_id(&resp.text()), Some(first));

    // /healthz carries the cache block and the connection mode.
    let h = healthz(&addr);
    assert!(
        h.contains(&format!("\"conn\":\"{}\"", server.conn_mode())),
        "{h}"
    );
    assert_eq!(json_u64(&h, "cache_capacity"), 8, "{h}");
    assert_eq!(json_u64(&h, "cache_size"), 1, "{h}");
    assert!(json_u64(&h, "cache_hits") >= 2, "{h}");
    assert_eq!(json_u64(&h, "cache_misses"), 1, "{h}");
    assert!(h.contains("\"cache_hit_rate\":"), "{h}");
    assert!(h.contains("\"shard_role\":\"single\""), "{h}");
    assert!(h.contains("\"shard_peers\":0"), "{h}");
    server.shutdown(false);
    server.join();
}

#[test]
fn concurrent_identical_posts_coalesce_onto_one_running_job() {
    // One worker and a slow job: duplicates arriving while it runs
    // must attach to the same job (in-flight coalescing), and every
    // follower sees the identical byte stream.
    let mut spec = String::from(
        "[scenario]\nname = \"slow\"\nseed = 3\n\n[init]\nfamily = \"uniform\"\nn = 24\nbudget = 1\n",
    );
    for _ in 0..12 {
        spec.push_str("\n[[phase]]\nkind = \"reorient\"\n\n[[phase]]\nkind = \"dynamics\"\n");
    }
    let server = spawn(ServerConfig {
        workers: 1,
        cache_capacity: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    let ids: Vec<(u64, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let spec = spec.as_str();
                scope.spawn(move || {
                    let resp = client::request(&addr, "POST", "/jobs", spec.as_bytes()).unwrap();
                    assert_eq!(resp.status, 202, "{}", resp.text());
                    let text = resp.text();
                    (
                        client::job_id(&text).unwrap(),
                        text.contains("\"cached\":true"),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly one submission computed; the other three coalesced or
    // hit — and all four share the job id (the guard held across
    // lookup→admit makes a double-admit impossible).
    let fresh: Vec<_> = ids.iter().filter(|(_, cached)| !cached).collect();
    assert_eq!(fresh.len(), 1, "{ids:?}");
    let the_id = fresh[0].0;
    assert!(ids.iter().all(|&(id, _)| id == the_id), "{ids:?}");

    let streams: Vec<Vec<String>> = (0..3).map(|_| stream(&addr, the_id)).collect();
    assert_eq!(streams[0].len(), 25, "24 phases + summary");
    assert!(streams.windows(2).all(|w| w[0] == w[1]));

    let h = healthz(&addr);
    assert_eq!(
        json_u64(&h, "cache_hits") + json_u64(&h, "cache_coalesced"),
        3,
        "{h}"
    );
    server.shutdown(false);
    server.join();
}

#[test]
fn nocache_bypasses_and_overrides_key_distinctly() {
    let server = spawn(ServerConfig {
        cache_capacity: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    let (first, _) = submit(&addr, "");
    let baseline = stream(&addr, first);

    // ?nocache=1 always recomputes — a fresh job, never a receipt with
    // "cached", and the recompute does not poison the cache entry.
    let (bypass, cached) = submit(&addr, "?nocache=1");
    assert_ne!(bypass, first);
    assert!(!cached);
    assert_eq!(stream(&addr, bypass), baseline, "recompute, same bytes");

    // Every override that changes the effective spec keys separately.
    let (reseeded, cached) = submit(&addr, "?seed=77");
    assert_ne!(reseeded, first);
    assert!(!cached);
    let (rekernelled, cached) = submit(&addr, "?kernel=queue");
    assert!(!cached);
    assert!(rekernelled != first && rekernelled != reseeded);

    // The original key still answers from cache.
    let (again, cached) = submit(&addr, "");
    assert_eq!(again, first);
    assert!(cached);

    let h = healthz(&addr);
    assert_eq!(json_u64(&h, "cache_size"), 3, "base + seed77 + queue: {h}");
    server.shutdown(false);
    server.join();
}

#[test]
fn lru_bound_holds_under_eviction_pressure() {
    let server = spawn(ServerConfig {
        cache_capacity: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    // Three distinct keys through a 2-slot cache.
    let (a, _) = submit(&addr, "?seed=1");
    stream(&addr, a);
    let (b, _) = submit(&addr, "?seed=2");
    stream(&addr, b);
    let (c, _) = submit(&addr, "?seed=3");
    stream(&addr, c);

    let h = healthz(&addr);
    assert_eq!(json_u64(&h, "cache_size"), 2, "{h}");
    assert!(json_u64(&h, "cache_evictions") >= 1, "{h}");

    // seed=1 was the coldest — evicted, so resubmitting computes a
    // fresh job; seed=3 is still resident and hits.
    let (a2, cached) = submit(&addr, "?seed=1");
    assert_ne!(a2, a);
    assert!(!cached);
    let (c2, cached) = submit(&addr, "?seed=3");
    assert_eq!(c2, c);
    assert!(cached);
    server.shutdown(false);
    server.join();
}
