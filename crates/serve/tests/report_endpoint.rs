//! `GET /jobs/{id}/report` contracts: the served HTML is
//! byte-identical to the offline stream report rendered from the same
//! record bytes, non-scenario jobs are refused, and unknown jobs 404.

use bbncg_serve::{client, spawn, ServerConfig};
use std::time::Duration;

const CHURN_SPEC: &str = "\
[scenario]
name = \"report-parity\"
seed = 11
seeds = 2

[init]
family = \"uniform\"
n = 12
budget = 1

[dynamics]
model = \"sum\"
rule = \"exact\"
max_rounds = 200

[[phase]]
kind = \"dynamics\"

[[phase]]
kind = \"arrive\"
count = 2
budget = 1

[[phase]]
kind = \"dynamics\"
";

fn submit(addr: &str, query: &str, body: &str) -> String {
    let resp = client::request(addr, "POST", &format!("/jobs{query}"), body.as_bytes()).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    client::job_id(&resp.text()).unwrap().to_string()
}

/// Drain the stream (blocks until the job is terminal) and return the
/// record lines — the exact bytes the report endpoint renders from.
fn drain(addr: &str, id: &str) -> Vec<String> {
    let mut lines = Vec::new();
    client::stream_lines(addr, &format!("/jobs/{id}/stream"), |l| {
        lines.push(l.to_string());
        true
    })
    .unwrap();
    lines
}

#[test]
fn served_report_is_byte_identical_to_offline_render() {
    let server = spawn(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    let id = submit(&addr, "", CHURN_SPEC);
    let lines = drain(&addr, &id);

    let resp = client::request(&addr, "GET", &format!("/jobs/{id}/report"), b"").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let served = resp.text();

    // The offline contract: `bbncg report --from captured.jsonl` goes
    // through the same pure renderer on the same bytes.
    let offline = bbncg_report::render_stream_report(&lines.join("\n")).unwrap();
    assert_eq!(served, offline, "served report must match offline render");
    assert!(served.contains("report-parity"), "scenario name in title");
    assert_eq!(bbncg_report::self_containment_violation(&served), None);

    // Fetching twice yields the same bytes (report is a pure function
    // of the completed job's record buffer).
    let again = client::request(&addr, "GET", &format!("/jobs/{id}/report"), b"")
        .unwrap()
        .text();
    assert_eq!(again, served);

    server.shutdown(false);
    server.join();
}

#[test]
fn report_refuses_verify_jobs_and_unknown_ids() {
    let server = spawn(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    let triangle = "bbncg v1\nn 3\nbudgets 1 1 1\narcs\n0 1\n1 2\n2 0\n";
    let id = submit(&addr, "?type=verify&model=sum", triangle);
    drain(&addr, &id);
    let resp = client::request(&addr, "GET", &format!("/jobs/{id}/report"), b"").unwrap();
    assert_eq!(resp.status, 409, "{}", resp.text());
    assert!(resp.text().contains("scenario"), "{}", resp.text());

    let resp = client::request(&addr, "GET", "/jobs/999/report", b"").unwrap();
    assert_eq!(resp.status, 404, "{}", resp.text());

    server.shutdown(false);
    server.join();
}
