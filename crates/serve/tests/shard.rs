//! Sweep sharding end to end: a coordinator with two peer processes
//! (here: two peer servers in-process — the protocol is identical)
//! must stream a sweep byte-identically to a single-process run, with
//! the seed range actually split across the fleet.

use bbncg_serve::{client, spawn, ServerConfig};
use std::time::Duration;

const SWEEP_SPEC: &str = "\
[scenario]
name = \"shardable\"
seed = 5
seeds = 9

[init]
family = \"uniform\"
n = 14
budget = 1

[dynamics]
model = \"sum\"
rule = \"exact\"
max_rounds = 200

[[phase]]
kind = \"dynamics\"

[[phase]]
kind = \"delete-edges\"
count = 2

[[phase]]
kind = \"dynamics\"
";

fn offline_lines(spec_text: &str) -> Vec<String> {
    use bbncg_scenario::{parse_spec, run_sweep, MemorySink};
    let spec = parse_spec(spec_text).unwrap();
    let mut sink = MemorySink::default();
    for o in run_sweep(&spec, &mut sink) {
        o.unwrap();
    }
    sink.records.iter().map(|r| r.to_json()).collect()
}

fn served_lines(addr: &str, spec_text: &str, query: &str) -> Vec<String> {
    let resp =
        client::request(addr, "POST", &format!("/jobs{query}"), spec_text.as_bytes()).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = client::job_id(&resp.text()).unwrap();
    let mut lines = Vec::new();
    client::stream_lines(addr, &format!("/jobs/{id}/stream"), |l| {
        lines.push(l.to_string());
        true
    })
    .unwrap();
    lines
}

#[test]
fn sharded_sweep_is_byte_identical_to_single_process() {
    let peer_a = spawn(ServerConfig::default()).unwrap();
    let peer_b = spawn(ServerConfig::default()).unwrap();
    let coordinator = spawn(ServerConfig {
        peers: vec![peer_a.addr().to_string(), peer_b.addr().to_string()],
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = coordinator.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();
    client::wait_ready(&peer_a.addr().to_string(), Duration::from_secs(10)).unwrap();
    client::wait_ready(&peer_b.addr().to_string(), Duration::from_secs(10)).unwrap();

    // The coordinator's merged stream is the exact byte sequence of an
    // unsharded run: 9 seeds × (3 phases + summary) = 36 lines.
    let offline = offline_lines(SWEEP_SPEC);
    assert_eq!(offline.len(), 36);
    assert_eq!(served_lines(&addr, SWEEP_SPEC, ""), offline);

    // The work was actually distributed: each peer ran one sub-job of
    // the sweep (3 seeds apiece with 3 processes over 9 seeds).
    for peer in [&peer_a, &peer_b] {
        let jobs = client::request(&peer.addr().to_string(), "GET", "/jobs", b"")
            .unwrap()
            .text();
        assert!(
            jobs.contains("\"state\":\"completed\""),
            "peer ran its chunk: {jobs}"
        );
    }

    // /healthz names the role and fleet size.
    let h = client::request(&addr, "GET", "/healthz", b"")
        .unwrap()
        .text();
    assert!(h.contains("\"shard_role\":\"coordinator\""), "{h}");
    assert!(h.contains("\"shard_peers\":2"), "{h}");

    // ?seeds= widens a single-seed spec into a sweep at submit time —
    // the coordinator shards that too, byte-identically.
    let single = SWEEP_SPEC.replace("seeds = 9\n", "");
    let widened = offline_lines(SWEEP_SPEC.replace("seeds = 9", "seeds = 5").as_str());
    assert_eq!(served_lines(&addr, &single, "?seeds=5"), widened);

    // Single-seed jobs never shard: they run locally even with peers
    // configured (nothing to split).
    let one = served_lines(&addr, &single, "");
    assert_eq!(one.len(), 4);

    coordinator.shutdown(false);
    coordinator.join();
    peer_a.shutdown(false);
    peer_a.join();
    peer_b.shutdown(false);
    peer_b.join();
}

#[test]
fn coordinator_fails_loudly_when_a_peer_is_unreachable() {
    // A dead peer must fail the sweep job (no silent truncation), and
    // the job must reach a terminal state so nothing leaks.
    let coordinator = spawn(ServerConfig {
        peers: vec!["127.0.0.1:1".into()], // nothing listens there
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = coordinator.addr().to_string();
    client::wait_ready(&addr, Duration::from_secs(10)).unwrap();

    let resp = client::request(&addr, "POST", "/jobs", SWEEP_SPEC.as_bytes()).unwrap();
    assert_eq!(resp.status, 202);
    let id = client::job_id(&resp.text()).unwrap();
    let job = coordinator.job(id).unwrap();
    let status = job.wait_terminal();
    assert!(
        matches!(status, bbncg_serve::JobStatus::Failed(_)),
        "{status:?}"
    );
    let doc = client::request(&addr, "GET", &format!("/jobs/{id}"), b"")
        .unwrap()
        .text();
    assert!(doc.contains("\"state\":\"failed\""), "{doc}");
    assert!(doc.contains("peer"), "error names the peer: {doc}");

    coordinator.shutdown(false);
    coordinator.join();
}
