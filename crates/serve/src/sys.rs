//! Vendored readiness-notification shim: raw `extern "C"` bindings to
//! `epoll(7)` and `poll(2)`, in the workspace's no-dependency
//! tradition (std already links libc, so the symbols are there — this
//! module just declares them instead of pulling in the `libc` crate).
//!
//! The surface is the minimum the event loop needs: a [`Poller`] that
//! registers file descriptors with read/write interest and blocks
//! until some are ready. Two backends:
//!
//! * **epoll** (Linux): O(ready) wakeups, level-triggered — the
//!   production path;
//! * **poll** (any Unix): O(registered) scans per wakeup — the
//!   portable fallback, also selectable explicitly (`--conn poll`)
//!   so CI can exercise both against the same protocol tests.
//!
//! Level-triggered everywhere: a readiness the loop does not fully
//! consume simply reports again, which keeps the connection state
//! machines simple (no starvation bookkeeping for edge-triggered
//! semantics).

#![cfg(unix)]

use std::io;
use std::os::raw::{c_int, c_ulong};

/// Readiness interest for a registered descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or has hung up).
    pub read: bool,
    /// Wake when the descriptor is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness event: the registered token plus what fired.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Readable (includes peer hang-up: a read will observe EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hang-up condition (the connection should be culled
    /// after a final read attempt drains whatever is left).
    pub error: bool,
}

// ---------------------------------------------------------------- epoll

#[cfg(target_os = "linux")]
mod epoll_sys {
    use super::*;

    // The kernel packs epoll_event on x86-64 only (a 12-byte struct);
    // every other architecture uses natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// An `epoll(7)` instance (Linux only).
#[cfg(target_os = "linux")]
pub struct Epoll {
    epfd: c_int,
    buf: Vec<epoll_sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall; a negative return is errno.
        let epfd = unsafe { epoll_sys::epoll_create1(epoll_sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            epfd,
            buf: vec![epoll_sys::EpollEvent { events: 0, data: 0 }; Poller::MAX_EVENTS_PER_WAIT],
        })
    }

    fn ctl(&self, op: c_int, fd: c_int, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = epoll_sys::EpollEvent {
            events: interest_bits(interest),
            data: token,
        };
        // SAFETY: `ev` outlives the call; DEL ignores the event ptr.
        let rc = unsafe { epoll_sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: epfd came from epoll_create1 and is owned here.
        unsafe { epoll_sys::close(self.epfd) };
    }
}

#[cfg(target_os = "linux")]
fn interest_bits(interest: Interest) -> u32 {
    let mut bits = 0;
    if interest.read {
        bits |= epoll_sys::EPOLLIN;
    }
    if interest.write {
        bits |= epoll_sys::EPOLLOUT;
    }
    bits
}

// ----------------------------------------------------------------- poll

mod poll_sys {
    use super::*;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
}

extern "C" {
    fn listen(sockfd: c_int, backlog: c_int) -> c_int;
}

/// Widen a listening socket's accept backlog. `std::net::TcpListener`
/// hard-codes `listen(fd, 128)`; with `tcp_syncookies` enabled, a
/// connect burst that overflows the queue gets RST at the final ACK —
/// so a server sized for hundreds of concurrent clients re-listens
/// with a deeper queue. Calling `listen(2)` again on an already
/// listening socket just adjusts the backlog.
pub fn set_backlog(fd: c_int, backlog: c_int) -> io::Result<()> {
    match unsafe { listen(fd, backlog) } {
        0 => Ok(()),
        _ => Err(io::Error::last_os_error()),
    }
}

/// A `poll(2)` set: the registration table is rebuilt into a `pollfd`
/// array on every wait (O(n) per call — the portable fallback).
pub struct PollSet {
    registered: Vec<(c_int, u64, Interest)>,
}

/// The readiness backend behind the event loop.
pub enum Poller {
    /// Linux epoll.
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    /// Portable poll(2).
    Poll(PollSet),
}

impl Poller {
    /// Upper bound on events reported per [`Poller::wait`] call.
    pub const MAX_EVENTS_PER_WAIT: usize = 1024;

    /// The production backend: epoll where available, else poll.
    pub fn new_auto() -> Poller {
        #[cfg(target_os = "linux")]
        if let Ok(ep) = Epoll::new() {
            return Poller::Epoll(ep);
        }
        Poller::Poll(PollSet {
            registered: Vec::new(),
        })
    }

    /// Explicit epoll backend (errors where unsupported).
    pub fn new_epoll() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller::Epoll(Epoll::new()?))
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll is Linux-only; use the poll backend",
            ))
        }
    }

    /// Explicit poll(2) backend.
    pub fn new_poll() -> Poller {
        Poller::Poll(PollSet {
            registered: Vec::new(),
        })
    }

    /// Backend label as reported by `/healthz`.
    pub fn label(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    /// Register `fd` under `token` with `interest`.
    pub fn register(&mut self, fd: c_int, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.ctl(epoll_sys::EPOLL_CTL_ADD, fd, token, interest),
            Poller::Poll(ps) => {
                ps.registered.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Change the interest of a registered descriptor.
    pub fn modify(&mut self, fd: c_int, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.ctl(epoll_sys::EPOLL_CTL_MOD, fd, token, interest),
            Poller::Poll(ps) => {
                for slot in ps.registered.iter_mut() {
                    if slot.0 == fd {
                        slot.1 = token;
                        slot.2 = interest;
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
        }
    }

    /// Remove a descriptor from the set. Call *before* closing the fd
    /// (epoll auto-deregisters on close, poll would report POLLNVAL,
    /// but being explicit keeps both backends identical).
    pub fn deregister(&mut self, fd: c_int) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.ctl(epoll_sys::EPOLL_CTL_DEL, fd, 0, Interest::READ),
            Poller::Poll(ps) => {
                ps.registered.retain(|&(f, _, _)| f != fd);
                Ok(())
            }
        }
    }

    /// Block until readiness or `timeout_ms` (`-1` = forever); append
    /// events to `out`. Returns the number of events delivered.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => {
                // SAFETY: buf is sized MAX_EVENTS_PER_WAIT and outlives
                // the call.
                let n = unsafe {
                    epoll_sys::epoll_wait(
                        ep.epfd,
                        ep.buf.as_mut_ptr(),
                        ep.buf.len() as c_int,
                        timeout_ms,
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(err);
                }
                for ev in &ep.buf[..n as usize] {
                    // Copy out of the (possibly packed) struct before
                    // taking references.
                    let events = ev.events;
                    let data = ev.data;
                    out.push(Event {
                        token: data,
                        readable: events & (epoll_sys::EPOLLIN | epoll_sys::EPOLLHUP) != 0,
                        writable: events & epoll_sys::EPOLLOUT != 0,
                        error: events & (epoll_sys::EPOLLERR | epoll_sys::EPOLLHUP) != 0,
                    });
                }
                Ok(n as usize)
            }
            Poller::Poll(ps) => {
                let mut fds: Vec<poll_sys::PollFd> = ps
                    .registered
                    .iter()
                    .map(|&(fd, _, interest)| poll_sys::PollFd {
                        fd,
                        events: {
                            let mut e = 0;
                            if interest.read {
                                e |= poll_sys::POLLIN;
                            }
                            if interest.write {
                                e |= poll_sys::POLLOUT;
                            }
                            e
                        },
                        revents: 0,
                    })
                    .collect();
                if fds.is_empty() {
                    // Nothing registered: honour the timeout as a sleep
                    // so the caller's deadline bookkeeping still runs.
                    if timeout_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
                    }
                    return Ok(0);
                }
                // SAFETY: fds is a live, correctly sized array.
                let n =
                    unsafe { poll_sys::poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(err);
                }
                let mut delivered = 0;
                for (slot, fd) in ps.registered.iter().zip(fds.iter()) {
                    if fd.revents == 0 {
                        continue;
                    }
                    delivered += 1;
                    out.push(Event {
                        token: slot.1,
                        readable: fd.revents & (poll_sys::POLLIN | poll_sys::POLLHUP) != 0,
                        writable: fd.revents & poll_sys::POLLOUT != 0,
                        error: fd.revents
                            & (poll_sys::POLLERR | poll_sys::POLLHUP | poll_sys::POLLNVAL)
                            != 0,
                    });
                }
                Ok(delivered)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn exercise(mut poller: Poller) {
        let (mut a, b) = socket_pair();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 42, Interest::READ).unwrap();

        // Nothing readable yet: a zero-timeout wait delivers nothing.
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 42 || !e.readable));

        a.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        // Bounded retries: delivery is fast but not synchronous.
        for _ in 0..100 {
            poller.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 42 && e.readable) {
                break;
            }
        }
        assert!(
            events.iter().any(|e| e.token == 42 && e.readable),
            "readable event for the ping"
        );
        let mut buf = [0u8; 4];
        (&b).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Write interest on an idle socket reports writable.
        poller
            .modify(b.as_raw_fd(), 42, Interest::READ_WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.writable));

        poller.deregister(b.as_raw_fd()).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn poll_backend_reports_readiness() {
        exercise(Poller::new_poll());
        assert_eq!(Poller::new_poll().label(), "poll");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_readiness() {
        let poller = Poller::new_epoll().expect("epoll available on linux");
        assert_eq!(poller.label(), "epoll");
        exercise(poller);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn auto_prefers_epoll_on_linux() {
        assert_eq!(Poller::new_auto().label(), "epoll");
    }
}
