//! The non-blocking connection front end: one thread, an epoll/poll
//! readiness loop ([`crate::sys`]), and per-connection state machines.
//!
//! Why this exists: the legacy threads front end spends one OS thread
//! per connection, so hundreds of keep-alive clients mean hundreds of
//! stacks and a scheduler fight with the worker pool that does the
//! actual dynamics. Here *all* connections share one loop thread;
//! workers stay the only compute parallelism. Concretely:
//!
//! * **reads** are non-blocking: bytes accumulate per connection and
//!   [`crate::http::parse_request`] retries until a request completes
//!   — a slow-loris client trickling bytes costs one buffer, not a
//!   thread, and a per-request read deadline culls it;
//! * **writes** are interest-driven: responses and stream chunks queue
//!   on a per-connection write buffer; write interest is registered
//!   only while bytes are pending, so level-triggered readiness never
//!   spins on idle sockets, and a stalled reader backpressures only
//!   its own connection (the stream fill stops at a high-water mark);
//! * **streams** follow jobs via [`LineBuffer`] wakers
//!   ([`crate::stream::Waker`]): a worker pushing a record (or closing
//!   the buffer) marks the connection's token pending and nudges the
//!   loop over a loopback wake socket — no thread ever parks on a
//!   condvar per connection;
//! * **keep-alive**: after each response the connection returns to
//!   idle and parses the next (possibly already pipelined) request
//!   from its buffer, with responses strictly in request order.
//!
//! Drain (`/shutdown` or [`ServerHandle::shutdown`]) closes the
//! listener, lets every in-flight response and stream finish (abort
//! mode cancels jobs, which closes their buffers and so ends their
//! streams), force-closes idle connections, and exits the loop when
//! the last connection is gone — so `join()` still guarantees every
//! accepted request got its bytes.
//!
//! [`LineBuffer`]: crate::stream::LineBuffer
//! [`ServerHandle::shutdown`]: crate::server::ServerHandle::shutdown

#![cfg(unix)]

use crate::http::{self, ParseStatus};
use crate::job::Job;
use crate::server::{render_job_report, route_request, Routed, Shared};
use crate::sys::{Interest, Poller};
use bbncg_obs::{Counter, Histogram};
use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Registration token of the accept listener.
const TOKEN_LISTENER: u64 = 0;
/// Registration token of the wake-socket read end.
const TOKEN_WAKE: u64 = 1;
/// First connection token.
const TOKEN_FIRST_CONN: u64 = 2;

/// Stop pulling stream lines into a connection's write buffer beyond
/// this many pending bytes; readiness refills once the client drains.
const HIGH_WATER: usize = 256 * 1024;
/// Lines per [`LineBuffer::read_from`] pull (bounds per-pull cloning).
const PULL_BATCH: usize = 1024;
/// Loop tick in ms: the cadence of deadline culling and the drain
/// fallback when no readiness or wake arrives.
const TICK_MS: i32 = 500;

/// Cross-thread nudge: workers (via stream wakers) mark a connection
/// token pending and poke the loop's wake socket so its `wait` returns.
pub(crate) struct LoopWaker {
    pending: Mutex<HashSet<u64>>,
    writer: Mutex<TcpStream>,
}

impl LoopWaker {
    /// Mark `token` pending and nudge the loop. Deduplicated: a token
    /// already pending writes no second wake byte.
    fn wake(&self, token: u64) {
        let fresh = self.pending.lock().expect("waker poisoned").insert(token);
        if fresh {
            // Non-blocking best effort: a full pipe means wake bytes
            // are already in flight, so the loop is waking anyway.
            let _ = self.writer.lock().expect("waker poisoned").write(&[1]);
        }
    }

    fn drain(&self) -> Vec<u64> {
        self.pending
            .lock()
            .expect("waker poisoned")
            .drain()
            .collect()
    }
}

/// The loopback wake channel: a connected TCP pair on 127.0.0.1 (the
/// no-dependency stand-in for a pipe — std exposes no `pipe(2)`).
fn wake_channel() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let writer = TcpStream::connect(listener.local_addr()?)?;
    let (reader, _) = listener.accept()?;
    reader.set_nonblocking(true)?;
    writer.set_nonblocking(true)?;
    let _ = writer.set_nodelay(true);
    Ok((reader, writer))
}

/// What a connection is currently doing between readiness events.
enum ConnState {
    /// Waiting for (or mid-parse of) the next request.
    Idle,
    /// Following a job's line buffer as a chunked stream; `next` is the
    /// first line index not yet queued on the write buffer.
    Streaming { job: Arc<Job>, next: usize },
    /// Waiting for a job to reach a terminal status to render its
    /// report (woken by the buffer's on-close waker).
    AwaitReport { job: Arc<Job> },
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    state: ConnState,
    /// The in-flight request's keep-alive decision.
    keep_alive: bool,
    /// Close once the write buffer drains and the state is idle.
    close_after: bool,
    /// The peer sent EOF; no further requests can arrive.
    peer_closed: bool,
    reqs_served: u64,
    last_read: Instant,
    /// Request start + latency histogram, observed when the response
    /// (or stream trailer) is queued.
    t0: Option<(Instant, Histogram)>,
    /// Write interest currently registered with the poller.
    write_interest: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            state: ConnState::Idle,
            keep_alive: false,
            close_after: false,
            peer_closed: false,
            reqs_served: 0,
            last_read: Instant::now(),
            t0: None,
            write_interest: false,
        }
    }

    fn has_pending_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }
}

enum Flush {
    Drained,
    Blocked,
    Fatal,
}

fn flush_writes(conn: &mut Conn) -> Flush {
    while conn.has_pending_write() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return Flush::Fatal,
            Ok(n) => conn.write_pos += n,
            Err(ref e) if e.kind() == ErrorKind::WouldBlock => return Flush::Blocked,
            Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Flush::Fatal,
        }
    }
    Flush::Drained
}

/// Drain the socket into the connection's read buffer. Sets
/// `peer_closed` on EOF or a read error (either way, no more requests
/// are coming).
fn read_some(conn: &mut Conn) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_closed = true;
                return;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                conn.last_read = Instant::now();
            }
            Err(ref e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.peer_closed = true;
                return;
            }
        }
    }
}

/// Close out the in-flight request: observe its latency, reset the
/// read deadline for the next one, and schedule a close if the request
/// asked for it.
fn finish_request(conn: &mut Conn) {
    if let Some((t0, hist)) = conn.t0.take() {
        bbncg_obs::observe(hist, t0.elapsed().as_micros() as u64);
    }
    conn.last_read = Instant::now();
    if !conn.keep_alive {
        conn.close_after = true;
    }
}

/// Register the loop as a waker on `job`'s line buffer. `false` means
/// the buffer is already closed — the caller can act on final state
/// immediately (and no waker was retained).
fn register_job_waker(job: &Job, waker: &Arc<LoopWaker>, token: u64) -> bool {
    let w = Arc::clone(waker);
    job.lines.register_waker(Arc::new(move || w.wake(token)))
}

/// Drive one connection's state machine as far as it will go without
/// blocking. Returns `false` when the connection should be dropped.
fn drive(shared: &Arc<Shared>, conn: &mut Conn, token: u64, waker: &Arc<LoopWaker>) -> bool {
    loop {
        match flush_writes(conn) {
            Flush::Fatal => return false,
            Flush::Blocked => return true,
            Flush::Drained => {}
        }
        conn.write_buf.clear();
        conn.write_pos = 0;
        match std::mem::replace(&mut conn.state, ConnState::Idle) {
            ConnState::Idle => {
                if conn.close_after {
                    return false;
                }
                if conn.read_buf.is_empty() {
                    return !conn.peer_closed;
                }
                match http::parse_request(&conn.read_buf, shared.cfg.max_body) {
                    Ok(ParseStatus::Partial) => return !conn.peer_closed,
                    Ok(ParseStatus::Complete(req, used)) => {
                        conn.read_buf.drain(..used);
                        conn.reqs_served += 1;
                        if conn.reqs_served > 1 {
                            bbncg_obs::counter_inc(Counter::HttpKeepaliveReuses);
                        }
                        conn.keep_alive = req.keep_alive;
                        conn.t0 = Some((Instant::now(), Histogram::HttpOtherMicros));
                        let (routed, hist) = route_request(shared, &req);
                        conn.t0 = Some((conn.t0.take().expect("t0 set").0, hist));
                        match routed {
                            Routed::Full {
                                status,
                                reason,
                                content_type,
                                body,
                            } => {
                                conn.write_buf = http::response_bytes(
                                    status,
                                    reason,
                                    content_type,
                                    &body,
                                    conn.keep_alive,
                                );
                                finish_request(conn);
                            }
                            Routed::Stream { job } => {
                                conn.write_buf = http::chunked_head_bytes(
                                    200,
                                    "OK",
                                    "application/x-ndjson",
                                    conn.keep_alive,
                                );
                                // Register *before* the first pull so a
                                // line landing in between cannot be a
                                // lost wakeup (worst case: one spurious
                                // wake). A refused registration means
                                // the buffer is closed — the pull will
                                // see it and finish straight away.
                                let _ = register_job_waker(&job, waker, token);
                                conn.state = ConnState::Streaming { job, next: 0 };
                            }
                            Routed::Report { job } => {
                                // set_status publishes the terminal
                                // status *before* closing the buffer,
                                // so: registration refused ⇒ status is
                                // already terminal ⇒ render now; else
                                // the on-close waker fires after the
                                // status is readable.
                                if register_job_waker(&job, waker, token) {
                                    conn.state = ConnState::AwaitReport { job };
                                } else {
                                    let (status, reason, ct, body) = render_job_report(&job);
                                    conn.write_buf = http::response_bytes(
                                        status,
                                        reason,
                                        ct,
                                        &body,
                                        conn.keep_alive,
                                    );
                                    finish_request(conn);
                                }
                            }
                        }
                    }
                    Err(e) => {
                        let (status, reason) = e.status();
                        let body = format!("{{\"error\":\"{}\"}}", http::json_escape(e.detail()));
                        conn.write_buf = http::response_bytes(
                            status,
                            reason,
                            "application/json",
                            body.as_bytes(),
                            false,
                        );
                        // The buffer is poisoned by the malformed
                        // request — nothing after it can be trusted.
                        conn.read_buf.clear();
                        conn.close_after = true;
                    }
                }
            }
            ConnState::Streaming { job, mut next } => {
                let mut finished = false;
                while conn.write_buf.len() < HIGH_WATER {
                    let (lines, closed) = job.lines.read_from(next, PULL_BATCH);
                    if lines.is_empty() {
                        if closed {
                            conn.write_buf.extend_from_slice(http::CHUNKED_TRAILER);
                            finished = true;
                        }
                        break;
                    }
                    for line in lines {
                        next += 1;
                        let mut data = line.into_bytes();
                        data.push(b'\n');
                        conn.write_buf.extend_from_slice(&http::chunk_bytes(&data));
                    }
                }
                if finished {
                    finish_request(conn);
                } else {
                    let waiting = conn.write_buf.is_empty();
                    conn.state = ConnState::Streaming { job, next };
                    if waiting {
                        // Nothing new and not closed: the registered
                        // waker will bring us back.
                        return true;
                    }
                }
            }
            ConnState::AwaitReport { job } => {
                if job.status().is_terminal() {
                    let (status, reason, ct, body) = render_job_report(&job);
                    conn.write_buf =
                        http::response_bytes(status, reason, ct, &body, conn.keep_alive);
                    finish_request(conn);
                } else {
                    conn.state = ConnState::AwaitReport { job };
                    return true;
                }
            }
        }
    }
}

/// The readiness loop. Runs on the server's accept thread until drain
/// completes; owns every connection.
pub(crate) fn run(shared: Arc<Shared>, listener: TcpListener, mut poller: Poller) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let listener_fd = listener.as_raw_fd();
    if poller
        .register(listener_fd, TOKEN_LISTENER, Interest::READ)
        .is_err()
    {
        return;
    }
    let Ok((wake_reader, wake_writer)) = wake_channel() else {
        return;
    };
    let wake_fd = wake_reader.as_raw_fd();
    if poller
        .register(wake_fd, TOKEN_WAKE, Interest::READ)
        .is_err()
    {
        return;
    }
    let waker = Arc::new(LoopWaker {
        pending: Mutex::new(HashSet::new()),
        writer: Mutex::new(wake_writer),
    });

    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events = Vec::new();
    let mut wake_reader = wake_reader;

    loop {
        if shared.draining.load(Ordering::SeqCst) {
            if listener.is_some() {
                let _ = poller.deregister(listener_fd);
                listener = None; // drop closes: no further accepts
            }
            // Idle connections with nothing in flight close now; the
            // rest finish their current response/stream and then
            // close (keep-alive revoked).
            conns.retain(|_, c| {
                let droppable = matches!(c.state, ConnState::Idle) && !c.has_pending_write();
                if droppable {
                    let _ = poller.deregister(c.stream.as_raw_fd());
                }
                !droppable
            });
            for c in conns.values_mut() {
                c.keep_alive = false;
                c.close_after = true;
            }
            if conns.is_empty() {
                return;
            }
        }

        events.clear();
        if poller.wait(&mut events, TICK_MS).is_err() {
            // A broken poller cannot recover; bail rather than spin.
            return;
        }

        let mut touched: Vec<u64> = Vec::new();
        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => {
                    let Some(l) = listener.as_ref() else { continue };
                    loop {
                        match l.accept() {
                            Ok((stream, _)) => {
                                if shared.draining.load(Ordering::SeqCst) {
                                    continue; // dropped: refused at the door
                                }
                                if stream.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                let _ = stream.set_nodelay(true);
                                let token = next_token;
                                next_token += 1;
                                if poller
                                    .register(stream.as_raw_fd(), token, Interest::READ)
                                    .is_ok()
                                {
                                    conns.insert(token, Conn::new(stream));
                                }
                            }
                            Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
                            Err(_) => break,
                        }
                    }
                }
                TOKEN_WAKE => {
                    let mut sink = [0u8; 64];
                    while matches!(wake_reader.read(&mut sink), Ok(n) if n > 0) {}
                    touched.extend(waker.drain());
                }
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if ev.readable || ev.error {
                            read_some(conn);
                        }
                        touched.push(token);
                    }
                }
            }
        }

        for token in touched {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if drive(&shared, conn, token, &waker) {
                // Re-register write interest only while bytes wait.
                let want_write = conn.has_pending_write();
                if want_write != conn.write_interest {
                    conn.write_interest = want_write;
                    let interest = if want_write {
                        Interest::READ_WRITE
                    } else {
                        Interest::READ
                    };
                    let _ = poller.modify(conn.stream.as_raw_fd(), token, interest);
                }
            } else {
                let _ = poller.deregister(conn.stream.as_raw_fd());
                conns.remove(&token);
            }
        }

        // Slow-loris sweep: an idle connection that has not delivered
        // a byte within the read deadline is culled. In-flight
        // responses and streams are exempt — their pace is the job's
        // and the client's to negotiate.
        let deadline = shared.cfg.read_timeout;
        conns.retain(|_, c| {
            let expired = matches!(c.state, ConnState::Idle)
                && !c.has_pending_write()
                && c.last_read.elapsed() > deadline;
            if expired {
                let _ = poller.deregister(c.stream.as_raw_fd());
            }
            !expired
        });
    }
}
