//! Content-addressed result cache: identical scenario submissions
//! answer with the *same job* instead of recomputing.
//!
//! Why this is trivially correct: the serve crate's load-bearing
//! invariant (CI-enforced) is that a job's record stream is
//! byte-identical to the offline run of the same effective spec. Two
//! submissions with the same canonical spec therefore produce the same
//! byte stream — so the cache does not copy results anywhere, it just
//! hands the duplicate submission the original job's id. Streaming,
//! replay, status, and reports all fall out of the existing job
//! machinery, and **in-flight coalescing is free**: a duplicate POST
//! while the first run is still executing attaches to the same
//! [`LineBuffer`](crate::LineBuffer) and follows it live.
//!
//! The key is an FNV-1a hash of the parsed spec *after* submit-time
//! overrides (`?seed=`, `?seeds=`, `?kernel=`, `?model=`, `?rounds=`)
//! are applied, with the raw-source `spec_hash` field zeroed — so two
//! texts that parse to the same scenario share an entry, and an
//! override changing anything observable changes the key. Executors
//! and kernels are stream-neutral, but they are deliberately part of
//! the key: a cached hit must also reproduce the *performance* shape
//! the caller asked to measure (`?nocache=1` exists for benchmarking
//! the compute path itself).
//!
//! Concurrency: one mutex guards the whole map, and the submit path
//! holds it across lookup → queue admission → insert (the
//! [`CacheGuard`] API), so two racing identical POSTs can never both
//! admit a job — one inserts, the other coalesces. Lock order is
//! cache → queue → jobs, everywhere. Failed and cancelled jobs are
//! evicted on retirement (a transient failure must not be replayed
//! forever), and history eviction drops cache entries so a cached id
//! can never dangle.

use crate::job::{Job, JobStatus};
use bbncg_obs::Counter;
use bbncg_scenario::{fnv1a, ScenarioSpec};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Cache key for a scenario spec with all overrides applied: FNV-1a
/// over the canonical (Debug) form, source-text hash excluded.
pub(crate) fn scenario_cache_key(spec: &ScenarioSpec) -> u64 {
    let mut canon = spec.clone();
    canon.spec_hash = 0;
    fnv1a(format!("{canon:?}").as_bytes())
}

#[derive(Default)]
struct CacheState {
    map: HashMap<u64, Arc<Job>>,
    /// LRU order: front = coldest. Touched entries move to the back.
    lru: VecDeque<u64>,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
}

/// Point-in-time cache statistics for `/healthz`.
pub(crate) struct CacheStats {
    pub size: usize,
    pub hits: u64,
    pub misses: u64,
    pub coalesced: u64,
    pub evictions: u64,
}

/// The bounded LRU job cache. `capacity == 0` disables it entirely
/// (every lookup misses without counting, every insert is a no-op).
pub(crate) struct ResultCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

impl ResultCache {
    pub(crate) fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            state: Mutex::new(CacheState::default()),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lock the cache for an atomic lookup-or-admit sequence. Acquire
    /// *before* the queue lock (the one ordering rule).
    pub(crate) fn lock(&self) -> CacheGuard<'_> {
        CacheGuard {
            capacity: self.capacity,
            st: self.state.lock().expect("result cache poisoned"),
        }
    }

    /// Drop `key` if it still maps to job `id` — the retirement path
    /// for failed/cancelled jobs, called without any other lock held.
    pub(crate) fn forget(&self, key: u64, id: u64) {
        self.lock().forget(key, id);
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let st = self.state.lock().expect("result cache poisoned");
        CacheStats {
            size: st.map.len(),
            hits: st.hits,
            misses: st.misses,
            coalesced: st.coalesced,
            evictions: st.evictions,
        }
    }
}

/// Exclusive access to the cache across a submit critical section.
pub(crate) struct CacheGuard<'a> {
    capacity: usize,
    st: MutexGuard<'a, CacheState>,
}

impl CacheGuard<'_> {
    /// Look up `key`, counting the outcome. Live entries (queued,
    /// running, or completed) return their job; failed/cancelled
    /// entries are dropped and report as a miss, so a transient
    /// failure is recomputed rather than replayed.
    pub(crate) fn lookup(&mut self, key: u64) -> Option<Arc<Job>> {
        let job = self.st.map.get(&key).cloned();
        match job {
            Some(job) => match job.status() {
                JobStatus::Failed(_) | JobStatus::Cancelled => {
                    self.forget(key, job.id);
                    self.count_miss();
                    None
                }
                JobStatus::Completed => {
                    self.touch(key);
                    self.st.hits += 1;
                    bbncg_obs::counter_inc(Counter::ServeCacheHits);
                    Some(job)
                }
                JobStatus::Queued | JobStatus::Running => {
                    self.touch(key);
                    self.st.coalesced += 1;
                    bbncg_obs::counter_inc(Counter::ServeCacheCoalesced);
                    Some(job)
                }
            },
            None => {
                self.count_miss();
                None
            }
        }
    }

    fn count_miss(&mut self) {
        self.st.misses += 1;
        bbncg_obs::counter_inc(Counter::ServeCacheMisses);
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.st.lru.iter().position(|&k| k == key) {
            self.st.lru.remove(pos);
            self.st.lru.push_back(key);
        }
    }

    /// Insert a freshly admitted job under `key`, evicting the
    /// least-recently-used entries beyond capacity.
    pub(crate) fn insert(&mut self, key: u64, job: &Arc<Job>) {
        if self.capacity == 0 {
            return;
        }
        if self.st.map.insert(key, Arc::clone(job)).is_none() {
            self.st.lru.push_back(key);
        } else {
            self.touch(key);
        }
        while self.st.map.len() > self.capacity {
            let Some(cold) = self.st.lru.pop_front() else {
                break;
            };
            self.st.map.remove(&cold);
            self.st.evictions += 1;
            bbncg_obs::counter_inc(Counter::ServeCacheEvictions);
        }
    }

    /// Drop `key` if it still maps to job `id` (identity-checked so a
    /// replacement entry under the same key survives a late forget of
    /// its predecessor).
    pub(crate) fn forget(&mut self, key: u64, id: u64) {
        if self.st.map.get(&key).is_some_and(|j| j.id == id) {
            self.st.map.remove(&key);
            self.st.lru.retain(|&k| k != key);
            self.st.evictions += 1;
            bbncg_obs::counter_inc(Counter::ServeCacheEvictions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn job(id: u64) -> Arc<Job> {
        let spec = bbncg_scenario::parse_spec(
            "[init]\nfamily = \"path\"\nparams = [4]\n[[phase]]\nkind = \"dynamics\"",
        )
        .unwrap();
        Job::new(
            id,
            JobKind::Scenario {
                spec: Box::new(spec),
                source: String::new(),
            },
        )
    }

    #[test]
    fn key_ignores_source_text_but_sees_overrides() {
        let a = bbncg_scenario::parse_spec(
            "[scenario]\nname = \"k\"\nseed = 3\n[init]\nfamily = \"path\"\nparams = [4]\n[[phase]]\nkind = \"dynamics\"",
        )
        .unwrap();
        // Same scenario, different formatting/comments → same key.
        let b = bbncg_scenario::parse_spec(
            "# comment\n[scenario]\nname = \"k\"\nseed = 3\n\n[init]\nfamily = \"path\"\nparams = [4]\n[[phase]]\nkind = \"dynamics\"\n",
        )
        .unwrap();
        assert_eq!(scenario_cache_key(&a), scenario_cache_key(&b));
        // A seed override changes the key.
        let mut c = a.clone();
        c.seed = 4;
        assert_ne!(scenario_cache_key(&a), scenario_cache_key(&c));
        // So does a kernel override (perf shape is part of the ask).
        let mut d = a.clone();
        d.kernel = bbncg_core::CostKernel::Queue;
        assert_ne!(scenario_cache_key(&a), scenario_cache_key(&d));
    }

    #[test]
    fn lru_bound_holds_and_coldest_goes_first() {
        let cache = ResultCache::new(2);
        let (j1, j2, j3) = (job(1), job(2), job(3));
        j1.set_status(JobStatus::Running);
        j1.set_status(JobStatus::Completed);
        j2.set_status(JobStatus::Running);
        j2.set_status(JobStatus::Completed);
        {
            let mut g = cache.lock();
            g.insert(10, &j1);
            g.insert(20, &j2);
            // Touch 10 so 20 is the LRU victim.
            assert!(g.lookup(10).is_some());
            g.insert(30, &j3);
        }
        let stats = cache.stats();
        assert_eq!(stats.size, 2);
        assert_eq!(stats.evictions, 1);
        let mut g = cache.lock();
        assert!(g.lookup(20).is_none(), "LRU victim evicted");
        assert!(g.lookup(10).is_some(), "recently used survives");
    }

    #[test]
    fn dead_jobs_fall_out_on_lookup() {
        let cache = ResultCache::new(4);
        let j = job(9);
        cache.lock().insert(7, &j);
        j.set_status(JobStatus::Failed("boom".into()));
        assert!(cache.lock().lookup(7).is_none());
        assert_eq!(cache.stats().size, 0);
        // forget() is identity-checked: a successor entry survives a
        // stale forget of its predecessor.
        let j2 = job(10);
        cache.lock().insert(7, &j2);
        cache.forget(7, 9);
        assert_eq!(cache.stats().size, 1);
        cache.forget(7, 10);
        assert_eq!(cache.stats().size, 0);
    }
}
