//! Sweep sharding: fan a sweep's seed range out to peer worker
//! processes and merge their streams back into one byte-identical
//! result.
//!
//! A coordinator started with `--peers host:port,...` splits every
//! sweep job (`seeds > 1`) into contiguous seed chunks — one per
//! process, remainder spread over the leading chunks. Chunk 0 runs
//! locally on the worker thread that owns the job (preserving the
//! one-engine-per-worker discipline); each peer chunk is submitted
//! over the existing HTTP job protocol (`client.rs`) as the original
//! spec text plus `?seed=&seeds=` overrides, and its JSONL stream is
//! consumed live by a forwarding thread.
//!
//! **Why the merge is byte-identical to a single-process run:** a
//! sweep's stream is the per-seed record batches in ascending seed
//! order, each record depending only on the spec content and its
//! absolute seed (CI-enforced serve parity). Every seed emits exactly
//! `phases + 1` records (one per phase, one summary), so each line of
//! the merged stream has a computable global index — chunk-start
//! offset × lines-per-seed plus arrival position — and the scenario
//! crate's [`Reorderer`] (the same primitive behind parallel sweep
//! merging) re-serializes lines in that order while streaming the
//! frontier chunk live. Coordinator output is therefore the exact
//! byte sequence of an unsharded run, which CI enforces with a
//! two-process diff.
//!
//! Failure containment: a peer that refuses a chunk, disconnects, or
//! returns a short stream fails the coordinator job loudly (the
//! merged stream closes; no silent truncation). Cancellation
//! propagates — the coordinator cancels each peer sub-job and drops
//! its stream at the next line boundary.

use crate::client;
use crate::job::{Job, JobStatus};
use crate::stream::LineBuffer;
use bbncg_obs::Counter;
use bbncg_scenario::{run_sweep_cancellable, MetricRecord, MetricSink, Reorderer, ScenarioSpec};
use std::sync::{Arc, Mutex};

/// One chunk of the seed range: `offset` seeds into the sweep, `len`
/// seeds long.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Chunk {
    pub offset: usize,
    pub len: usize,
}

/// Split `total` seeds into up to `nshards` contiguous chunks, sizes
/// as even as possible (remainder on the leading chunks). Chunks are
/// never empty — with fewer seeds than shards, trailing shards sit
/// out.
pub(crate) fn chunk_seeds(total: usize, nshards: usize) -> Vec<Chunk> {
    let nshards = nshards.max(1);
    let base = total / nshards;
    let rem = total % nshards;
    let mut chunks = Vec::new();
    let mut offset = 0;
    for i in 0..nshards {
        let len = base + usize::from(i < rem);
        if len == 0 {
            break;
        }
        chunks.push(Chunk { offset, len });
        offset += len;
    }
    chunks
}

/// The line-granular merge: producers push `(global line index, line)`
/// and the frontier streams straight into the job's buffer.
struct Merge<'a> {
    reorder: Mutex<Reorderer<String>>,
    lines: &'a LineBuffer,
}

impl Merge<'_> {
    fn push(&self, idx: usize, line: String) {
        self.reorder
            .lock()
            .expect("shard merge poisoned")
            .push(idx, line, |l| self.lines.push(l));
    }
}

/// `MetricSink` for the local chunk: records take their global line
/// index from the chunk base and flow through the merge.
struct MergeSink<'a, 'b> {
    merge: &'a Merge<'b>,
    next_idx: usize,
}

impl MetricSink for MergeSink<'_, '_> {
    fn record(&mut self, rec: &MetricRecord) {
        self.merge.push(self.next_idx, rec.to_json());
        self.next_idx += 1;
    }
}

/// Stream one peer chunk: submit, follow the stream into the merge,
/// verify the line count, propagate cancellation.
fn run_peer_chunk(
    peer: &str,
    source: &str,
    spec: &ScenarioSpec,
    chunk: Chunk,
    lines_per_seed: usize,
    merge: &Merge<'_>,
    job: &Job,
) -> Result<(), String> {
    bbncg_obs::counter_inc(Counter::ServeShardSubjobs);
    let target = format!(
        "/jobs?seed={}&seeds={}&kernel={}&model={}&rounds={}",
        spec.seed + chunk.offset as u64,
        chunk.len,
        spec.kernel.label(),
        spec.defaults.model.label(),
        spec.defaults.executor.label(),
    );
    let resp = client::request(peer, "POST", &target, source.as_bytes())
        .map_err(|e| format!("peer {peer}: {e}"))?;
    if resp.status != 202 {
        return Err(format!(
            "peer {peer} refused chunk ({}): {}",
            resp.status,
            resp.text()
        ));
    }
    let id = client::job_id(&resp.text())
        .ok_or_else(|| format!("peer {peer}: receipt without job id: {}", resp.text()))?;
    let base_idx = chunk.offset * lines_per_seed;
    let expected = chunk.len * lines_per_seed;
    let mut got = 0usize;
    let stream = client::stream_lines(peer, &format!("/jobs/{id}/stream"), |line| {
        if job.cancel.is_cancelled() {
            return false;
        }
        merge.push(base_idx + got, line.to_string());
        got += 1;
        true
    });
    if job.cancel.is_cancelled() {
        // Best-effort: stop the peer's compute too.
        let _ = client::request(peer, "POST", &format!("/jobs/{id}/cancel"), b"");
        return Ok(());
    }
    stream.map_err(|e| format!("peer {peer}: stream: {e}"))?;
    if got != expected {
        return Err(format!(
            "peer {peer} returned {got} of {expected} lines for seeds {}..{}",
            spec.seed + chunk.offset as u64,
            spec.seed + (chunk.offset + chunk.len) as u64,
        ));
    }
    Ok(())
}

/// Execute a sweep job as shard coordinator. Runs on the worker
/// thread that owns `job`; peer chunks get one forwarding I/O thread
/// each (network waiting, not compute). Sets the job's terminal
/// status.
pub(crate) fn run_sharded(peers: &[String], job: &Arc<Job>, spec: &ScenarioSpec, source: &str) {
    let chunks = chunk_seeds(spec.seeds, peers.len() + 1);
    let lines_per_seed = spec.phases.len() + 1;
    let merge = Merge {
        reorder: Mutex::new(Reorderer::new()),
        lines: &job.lines,
    };

    let mut errors: Vec<String> = Vec::new();
    let mut cancelled = false;
    std::thread::scope(|scope| {
        let peer_handles: Vec<_> = chunks
            .iter()
            .skip(1)
            .zip(peers.iter())
            .map(|(&chunk, peer)| {
                let merge = &merge;
                let job = Arc::clone(job);
                scope.spawn(move || {
                    run_peer_chunk(peer, source, spec, chunk, lines_per_seed, merge, &job)
                })
            })
            .collect();

        // Chunk 0 runs here, inline: this thread *is* a marked job
        // worker, so the sweep's internal parallelism keeps the same
        // discipline as an unsharded sweep.
        let local = chunks
            .first()
            .copied()
            .unwrap_or(Chunk { offset: 0, len: 0 });
        if local.len > 0 {
            let mut local_spec = spec.clone();
            local_spec.seeds = local.len;
            let mut sink = MergeSink {
                merge: &merge,
                next_idx: local.offset * lines_per_seed,
            };
            let outcomes = run_sweep_cancellable(&local_spec, &mut sink, &job.cancel);
            for (i, o) in outcomes.into_iter().enumerate() {
                match o {
                    Ok(o) => cancelled |= o.cancelled,
                    Err(e) => errors.push(format!("seed {}: {e}", spec.seed + i as u64)),
                }
            }
        }

        for h in peer_handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => errors.push(e),
                Err(_) => errors.push("peer forwarding thread panicked".into()),
            }
        }
    });
    cancelled |= job.cancel.is_cancelled();

    job.set_status(if cancelled {
        JobStatus::Cancelled
    } else if errors.is_empty() {
        JobStatus::Completed
    } else {
        JobStatus::Failed(errors.join("; "))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_the_range_contiguously() {
        for (total, shards) in [(16, 3), (5, 2), (7, 7), (3, 5), (1, 4), (100, 1)] {
            let chunks = chunk_seeds(total, shards);
            assert!(chunks.len() <= shards);
            let mut offset = 0;
            for c in &chunks {
                assert_eq!(c.offset, offset, "contiguous at {total}/{shards}");
                assert!(c.len > 0);
                offset += c.len;
            }
            assert_eq!(offset, total, "covers the range at {total}/{shards}");
            // Even split: sizes differ by at most one.
            let max = chunks.iter().map(|c| c.len).max().unwrap();
            let min = chunks.iter().map(|c| c.len).min().unwrap();
            assert!(max - min <= 1);
        }
    }
}
