//! A hand-rolled HTTP/1.1 subset.
//!
//! The workspace builds fully offline, so — in the `io.rs`/`toml.rs`
//! tradition — this is a small, strict parser over `std::net` rather
//! than a dependency. The accepted subset is exactly what the job
//! server needs: `Content-Length` bodies with a hard size cap, chunked
//! transfer encoding on responses for streaming JSONL, and HTTP/1.1
//! keep-alive (the event-loop front end reuses connections; the
//! legacy thread-per-connection mode stays one request per
//! connection).
//!
//! Two entry points share one grammar: [`read_request`] blocks on a
//! `BufReader` (threads mode), [`parse_request`] consumes a byte
//! buffer incrementally (the epoll/poll readiness loop feeds it
//! whatever has arrived and retries on [`ParseStatus::Partial`]).
//!
//! Anything outside the subset fails loudly with a 4xx so clients
//! never see silent misbehaviour: an over-long request line or header
//! block is `413`, a malformed request line or header is `400`, and a
//! body larger than the server's cap is `413` *before* the server
//! buffers it.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;

/// Default cap on request bodies (scenario specs are a few KiB; 1 MiB
/// leaves two orders of magnitude of headroom).
pub const DEFAULT_MAX_BODY: usize = 1 << 20;

/// Cap on the request line plus header block.
pub const MAX_HEAD: usize = 16 * 1024;

/// A parse failure that maps onto an HTTP status code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// 400 — the request is malformed.
    BadRequest(String),
    /// 413 — request line, header block, or body exceeds a cap.
    TooLarge(String),
    /// The peer vanished (or broke the connection) mid-request; there
    /// is nobody left to answer, so handlers drop these silently.
    Disconnected,
}

impl HttpError {
    /// The status line this error should be answered with (where
    /// answering is still possible).
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::TooLarge(_) => (413, "Payload Too Large"),
            HttpError::Disconnected => (400, "Bad Request"),
        }
    }

    /// Human detail for the error body.
    pub fn detail(&self) -> &str {
        match self {
            HttpError::BadRequest(s) | HttpError::TooLarge(s) => s,
            HttpError::Disconnected => "client disconnected",
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …) as sent.
    pub method: String,
    /// Path component of the target, query string stripped.
    pub path: String,
    /// `key=value` pairs from the query string, in order. No
    /// percent-decoding — the API surface is plain ASCII by design.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client may reuse this connection after the
    /// response: HTTP/1.1 unless `Connection: close`, HTTP/1.0 only
    /// with `Connection: keep-alive`. Only the event-loop front end
    /// honours it; threads mode always closes.
    pub keep_alive: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_get(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header value for `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one CRLF- (or LF-) terminated line, enforcing `remaining_head`
/// bytes of budget across the whole head.
fn read_head_line(
    r: &mut BufReader<TcpStream>,
    remaining_head: &mut usize,
) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::Disconnected);
                }
                break;
            }
            Ok(_) => {
                if *remaining_head == 0 {
                    return Err(HttpError::TooLarge("request head too large".into()));
                }
                *remaining_head -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpError::Disconnected),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::BadRequest("non-UTF-8 in request head".into()))
}

/// Parsed request line: `(method, path, query, is_http11)`.
type RequestLine = (String, String, Vec<(String, String)>, bool);

fn parse_request_line(request_line: &str) -> Result<RequestLine, HttpError> {
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !method
        .chars()
        .all(|c| c.is_ascii_alphabetic() && c.is_ascii_uppercase())
    {
        return Err(HttpError::BadRequest(format!("bad method {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest(format!("bad target {target:?}")));
    }
    let query: Vec<(String, String)> = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    Ok((
        method.to_string(),
        path.to_string(),
        query,
        version == "HTTP/1.1",
    ))
}

fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let (name, value) = line
        .split_once(':')
        .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// Validated body length from the header block (`413` beyond the cap,
/// `400` for chunked request bodies — the server never accepts them).
fn body_length(headers: &[(String, String)], max_body: usize) -> Result<usize, HttpError> {
    let content_length: usize = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))?,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {max_body}-byte cap"
        )));
    }
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest(
            "chunked request bodies are not supported".into(),
        ));
    }
    Ok(content_length)
}

fn wants_keep_alive(http11: bool, headers: &[(String, String)]) -> bool {
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.as_str());
    match connection {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => http11,
    }
}

/// Parse one request from `stream`, capping the body at `max_body`.
pub fn read_request(r: &mut BufReader<TcpStream>, max_body: usize) -> Result<Request, HttpError> {
    let mut head_budget = MAX_HEAD;
    let request_line = read_head_line(r, &mut head_budget)?;
    let (method, path, query, http11) = parse_request_line(&request_line)?;
    let mut headers = Vec::new();
    loop {
        let line = read_head_line(r, &mut head_budget)?;
        if line.is_empty() {
            break;
        }
        headers.push(parse_header_line(&line)?);
    }
    let content_length = body_length(&headers, max_body)?;
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)
        .map_err(|_| HttpError::Disconnected)?;
    let keep_alive = wants_keep_alive(http11, &headers);
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
    })
}

/// Outcome of one [`parse_request`] attempt over a byte buffer.
pub enum ParseStatus {
    /// A complete request, plus the number of buffer bytes it consumed
    /// (the caller drains them; any remainder is pipelined input for
    /// the next request on the connection).
    Complete(Box<Request>, usize),
    /// The buffer holds a valid prefix; feed more bytes and retry.
    Partial,
}

/// Incrementally parse a request from `buf` (the readiness-loop entry
/// point — same grammar and limits as [`read_request`], but
/// non-blocking). Over-cap bodies fail at head-complete time, before
/// the body has arrived, so a `413` goes out without buffering it.
pub fn parse_request(buf: &[u8], max_body: usize) -> Result<ParseStatus, HttpError> {
    // Walk '\n'-terminated head lines until the blank line.
    let mut lines: Vec<&[u8]> = Vec::new();
    let mut pos = 0;
    let head_len = loop {
        let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') else {
            if buf.len() > MAX_HEAD {
                return Err(HttpError::TooLarge("request head too large".into()));
            }
            return Ok(ParseStatus::Partial);
        };
        let mut line = &buf[pos..pos + nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        pos += nl + 1;
        if pos > MAX_HEAD {
            return Err(HttpError::TooLarge("request head too large".into()));
        }
        if line.is_empty() {
            break pos;
        }
        lines.push(line);
    };
    let mut lines = lines.into_iter().map(|l| {
        std::str::from_utf8(l)
            .map_err(|_| HttpError::BadRequest("non-UTF-8 in request head".into()))
    });
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request head".into()))??;
    let (method, path, query, http11) = parse_request_line(request_line)?;
    let headers = lines
        .map(|l| parse_header_line(l?))
        .collect::<Result<Vec<_>, _>>()?;
    let content_length = body_length(&headers, max_body)?;
    if buf.len() < head_len + content_length {
        return Ok(ParseStatus::Partial);
    }
    let body = buf[head_len..head_len + content_length].to_vec();
    let keep_alive = wants_keep_alive(http11, &headers);
    Ok(ParseStatus::Complete(
        Box::new(Request {
            method,
            path,
            query,
            headers,
            body,
            keep_alive,
        }),
        head_len + content_length,
    ))
}

fn connection_header(keep_alive: bool) -> &'static str {
    if keep_alive {
        "keep-alive"
    } else {
        "close"
    }
}

/// Encode a complete (non-streaming) response with a `Content-Length`
/// body. The event loop queues these bytes on the connection's write
/// buffer; `keep_alive` decides the `Connection:` header.
pub fn response_bytes(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        connection_header(keep_alive),
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Encode the head of a chunked streaming response; follow with
/// [`chunk_bytes`] per chunk and [`CHUNKED_TRAILER`] to terminate.
pub fn chunked_head_bytes(
    status: u16,
    reason: &str,
    content_type: &str,
    keep_alive: bool,
) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        connection_header(keep_alive),
    )
    .into_bytes()
}

/// Encode one chunk (empty data encodes to nothing — an empty chunk
/// would terminate the stream).
pub fn chunk_bytes(data: &[u8]) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut out = format!("{:x}\r\n", data.len()).into_bytes();
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminating zero chunk of a chunked stream.
pub const CHUNKED_TRAILER: &[u8] = b"0\r\n\r\n";

/// Write a complete (non-streaming) response with a `Content-Length`
/// body. Always `Connection: close` — threads mode is one request per
/// connection by design.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    w.write_all(&response_bytes(status, reason, content_type, body, false))?;
    w.flush()
}

/// Write the head of a chunked streaming response; follow with
/// [`write_chunk`] calls and one [`finish_chunked`].
pub fn start_chunked(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
) -> io::Result<()> {
    w.write_all(&chunked_head_bytes(status, reason, content_type, false))?;
    w.flush()
}

/// Write one chunk (flushed immediately so consumers see records as
/// they are produced, not when the job ends).
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(()); // an empty chunk would terminate the stream
    }
    w.write_all(&chunk_bytes(data))?;
    w.flush()
}

/// Terminate a chunked stream.
pub fn finish_chunked(w: &mut impl Write) -> io::Result<()> {
    w.write_all(CHUNKED_TRAILER)?;
    w.flush()
}

/// Minimal JSON string escaping for hand-built response bodies (the
/// same subset `bbncg_scenario::sink` emits).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
