//! `bbncg-serve` — a dependency-free job server that turns the
//! workspace into a long-running simulation service.
//!
//! BBC-style games are motivated by peer-to-peer and overlay networks
//! (Laoutaris et al., *Bounded Budget Connection Games*), where the
//! natural deployment is a **service** answering best-response and
//! equilibrium queries continuously — not a one-shot CLI run. This
//! crate is that service, built entirely on `std::net` in the
//! workspace's vendored-shim tradition: a hand-rolled HTTP/1.1 subset
//! with keep-alive ([`http`]), a non-blocking epoll/poll connection
//! front end over vendored readiness bindings ([`sys`],
//! `event_loop`), a bounded job queue with a worker pool that reuses
//! one deviation engine per worker across jobs ([`server`]), a
//! content-addressed result cache that coalesces duplicate
//! submissions (`cache`), sweep sharding across peer processes
//! (`shard`), and chunked JSONL result streaming backed by a
//! replay-and-follow line buffer ([`stream`]).
//!
//! The load-bearing invariant: **a served record stream is
//! byte-identical to the offline run.** Submitting a spec and
//! streaming `/jobs/{id}/stream` yields exactly the lines
//! `bbncg scenario run SPEC --out FILE` writes for the same spec and
//! seed — enforced end-to-end in CI, so the service can replace batch
//! invocations without any consumer noticing.
//!
//! ```no_run
//! use bbncg_serve::{client, spawn, ServerConfig};
//!
//! let server = spawn(ServerConfig::default()).unwrap();
//! let addr = server.addr().to_string();
//! let spec = "[init]\nfamily = \"uniform\"\nn = 8\nbudget = 1\n[[phase]]\nkind = \"dynamics\"";
//! let resp = client::request(&addr, "POST", "/jobs", spec.as_bytes()).unwrap();
//! assert_eq!(resp.status, 202);
//! client::stream_lines(&addr, "/jobs/1/stream", |line| {
//!     println!("{line}");
//!     true
//! })
//! .unwrap();
//! server.shutdown(false);
//! server.join();
//! ```

#![warn(missing_docs)]

mod cache;
pub mod client;
#[cfg(unix)]
mod event_loop;
pub mod http;
pub mod job;
pub mod server;
mod shard;
pub mod stream;
#[cfg(unix)]
pub mod sys;

pub use http::{HttpError, Request};
pub use job::{Job, JobKind, JobStatus};
pub use server::{spawn, ConnMode, ServerConfig, ServerHandle};
pub use stream::{BufferSink, LineBuffer};
