//! A minimal blocking HTTP/1.1 client for the server's own dialect —
//! what `bbncg submit`, the load generator, and the end-to-end tests
//! speak. Supports exactly what the server emits: `Content-Length`
//! bodies and chunked streaming responses.
//!
//! Two usage styles: the free functions ([`request`],
//! [`stream_lines`]) open one connection per exchange
//! (`Connection: close` — simple and always correct), while [`Conn`]
//! holds a keep-alive connection across exchanges and transparently
//! reconnects when the server has culled it — what the load generator
//! uses to measure the event loop's connection reuse.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A complete (non-streaming) response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// The body, chunked-decoded if need be.
    pub body: Vec<u8>,
}

impl Response {
    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    // A generous cap so a wedged server fails tests instead of hanging
    // them; streaming long jobs refreshes this per read.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    target: &str,
    body: &[u8],
    keep_alive: bool,
) -> Result<(), String> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: bbncg\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send: {e}"))
}

struct ResponseHead {
    status: u16,
    chunked: bool,
    content_length: Option<usize>,
    /// Server announced `Connection: close` — do not reuse.
    close: bool,
}

fn read_head(r: &mut BufReader<TcpStream>) -> Result<ResponseHead, String> {
    let mut status_line = String::new();
    r.read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut chunked = false;
    let mut content_length = None;
    let mut close = false;
    loop {
        let mut line = String::new();
        r.read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            } else if name == "content-length" {
                content_length = value.parse().ok();
            } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                close = true;
            }
        }
    }
    Ok(ResponseHead {
        status,
        chunked,
        content_length,
        close,
    })
}

/// Read one chunk; `Ok(None)` is the terminating zero chunk.
fn read_chunk(r: &mut BufReader<TcpStream>) -> Result<Option<Vec<u8>>, String> {
    let mut size_line = String::new();
    r.read_line(&mut size_line)
        .map_err(|e| format!("read chunk size: {e}"))?;
    let size = usize::from_str_radix(size_line.trim(), 16)
        .map_err(|_| format!("bad chunk size {size_line:?}"))?;
    let mut data = vec![0u8; size + 2]; // chunk + CRLF
    r.read_exact(&mut data)
        .map_err(|e| format!("read chunk: {e}"))?;
    data.truncate(size);
    if size == 0 {
        return Ok(None);
    }
    Ok(Some(data))
}

/// One request/response exchange. Chunked responses are fully drained
/// into `body` (use [`stream_lines`] to observe records as they land).
pub fn request(addr: &str, method: &str, target: &str, body: &[u8]) -> Result<Response, String> {
    let mut stream = connect(addr)?;
    send_request(&mut stream, method, target, body, false)?;
    let mut reader = BufReader::new(stream);
    let head = read_head(&mut reader)?;
    let mut body = Vec::new();
    if head.chunked {
        while let Some(chunk) = read_chunk(&mut reader)? {
            body.extend_from_slice(&chunk);
        }
    } else if let Some(len) = head.content_length {
        body.resize(len, 0);
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("read body: {e}"))?;
    } else {
        reader
            .read_to_end(&mut body)
            .map_err(|e| format!("read body: {e}"))?;
    }
    Ok(Response {
        status: head.status,
        body,
    })
}

/// Extract the job id from a `POST /jobs` submission receipt
/// (`{"job":N,…}`). The one place the receipt format is parsed —
/// every consumer (CLI, load generator, tests) goes through here.
pub fn job_id(receipt: &str) -> Option<u64> {
    let at = receipt.find("\"job\":")? + 6;
    receipt[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()
}

/// GET a chunked stream and hand each complete line (without its
/// newline) to `on_line` as it arrives. Return `false` from `on_line`
/// to drop the connection mid-stream (the server must tolerate this).
/// Returns the response status.
pub fn stream_lines(
    addr: &str,
    target: &str,
    mut on_line: impl FnMut(&str) -> bool,
) -> Result<u16, String> {
    let mut stream = connect(addr)?;
    send_request(&mut stream, "GET", target, b"", false)?;
    let mut reader = BufReader::new(stream);
    let head = read_head(&mut reader)?;
    // The head answered within the timeout, so the server is alive;
    // from here the stream is quiet for as long as the job's current
    // phase runs (records are emitted at phase boundaries only), which
    // can legitimately exceed any fixed timeout. Block indefinitely —
    // the server closes the stream when the job ends.
    let _ = reader.get_ref().set_read_timeout(None);
    if !head.chunked {
        // Error responses are plain bodies; drain and report status.
        let mut rest = Vec::new();
        let _ = reader.read_to_end(&mut rest);
        return Ok(head.status);
    }
    let mut pending = String::new();
    while let Some(chunk) = read_chunk(&mut reader)? {
        pending.push_str(&String::from_utf8_lossy(&chunk));
        while let Some(nl) = pending.find('\n') {
            let line: String = pending.drain(..=nl).collect();
            if !on_line(line.trim_end_matches('\n')) {
                return Ok(head.status); // deliberate early disconnect
            }
        }
    }
    Ok(head.status)
}

/// A keep-alive connection to the server: exchanges reuse one TCP
/// connection while the server allows it, and transparently reconnect
/// when it does not (server restarted, idle cull, `Connection: close`).
///
/// The retry discipline is deliberately narrow: an exchange on a
/// *reused* connection that fails before completing retries exactly
/// once on a fresh connection (the stale-keep-alive race every HTTP
/// client must handle — for idempotent GETs and for this server's
/// POSTs, whose submission is cheap and cache-coalesced, a replay is
/// safe). A failure on a fresh connection is reported, not retried.
pub struct Conn {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
}

impl Conn {
    /// A lazily-connected keep-alive client for `addr`.
    pub fn new(addr: &str) -> Conn {
        Conn {
            addr: addr.to_string(),
            stream: None,
        }
    }

    /// Is a connection currently held open for reuse?
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn take_or_connect(&mut self) -> Result<(bool, BufReader<TcpStream>), String> {
        match self.stream.take() {
            Some(r) => Ok((true, r)),
            None => Ok((false, BufReader::new(connect(&self.addr)?))),
        }
    }

    /// One request/response exchange over the held connection.
    pub fn request(&mut self, method: &str, target: &str, body: &[u8]) -> Result<Response, String> {
        let (reused, reader) = self.take_or_connect()?;
        match self.try_request(reader, method, target, body) {
            Err(_) if reused => {
                let (_, fresh) = self.take_or_connect()?;
                self.try_request(fresh, method, target, body)
            }
            done => done,
        }
    }

    fn try_request(
        &mut self,
        mut reader: BufReader<TcpStream>,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<Response, String> {
        send_request(reader.get_mut(), method, target, body, true)?;
        let head = read_head(&mut reader)?;
        let mut out = Vec::new();
        if head.chunked {
            while let Some(chunk) = read_chunk(&mut reader)? {
                out.extend_from_slice(&chunk);
            }
        } else if let Some(len) = head.content_length {
            out.resize(len, 0);
            reader
                .read_exact(&mut out)
                .map_err(|e| format!("read body: {e}"))?;
        } else {
            // No framing: the body runs to EOF, so the connection is
            // spent either way.
            reader
                .read_to_end(&mut out)
                .map_err(|e| format!("read body: {e}"))?;
            return Ok(Response {
                status: head.status,
                body: out,
            });
        }
        if !head.close {
            self.stream = Some(reader);
        }
        Ok(Response {
            status: head.status,
            body: out,
        })
    }

    /// GET a chunked stream over the held connection, handing each
    /// complete line to `on_line` (same contract as [`stream_lines`]).
    /// An early disconnect (`on_line` returning `false`) spends the
    /// connection; a stream followed to its trailer keeps it reusable.
    pub fn stream_lines(
        &mut self,
        target: &str,
        mut on_line: impl FnMut(&str) -> bool,
    ) -> Result<u16, String> {
        let (reused, reader) = self.take_or_connect()?;
        match self.try_stream(reader, target, &mut on_line) {
            Err(_) if reused => {
                let (_, fresh) = self.take_or_connect()?;
                self.try_stream(fresh, target, &mut on_line)
            }
            done => done,
        }
    }

    fn try_stream(
        &mut self,
        mut reader: BufReader<TcpStream>,
        target: &str,
        on_line: &mut impl FnMut(&str) -> bool,
    ) -> Result<u16, String> {
        send_request(reader.get_mut(), "GET", target, b"", true)?;
        let head = read_head(&mut reader)?;
        if !head.chunked {
            let mut out = Vec::new();
            if let Some(len) = head.content_length {
                out.resize(len, 0);
                reader
                    .read_exact(&mut out)
                    .map_err(|e| format!("read body: {e}"))?;
                if !head.close {
                    self.stream = Some(reader);
                }
            } else {
                let _ = reader.read_to_end(&mut out);
            }
            return Ok(head.status);
        }
        // Quiet for as long as the job's current phase runs; block
        // indefinitely like the one-shot helper does.
        let _ = reader.get_ref().set_read_timeout(None);
        let mut pending = String::new();
        let mut complete = true;
        'chunks: while let Some(chunk) = read_chunk(&mut reader)? {
            pending.push_str(&String::from_utf8_lossy(&chunk));
            while let Some(nl) = pending.find('\n') {
                let line: String = pending.drain(..=nl).collect();
                if !on_line(line.trim_end_matches('\n')) {
                    complete = false;
                    break 'chunks;
                }
            }
        }
        if complete && !head.close {
            let _ = reader
                .get_ref()
                .set_read_timeout(Some(Duration::from_secs(120)));
            self.stream = Some(reader);
        }
        Ok(head.status)
    }
}

/// Poll `GET /healthz` until the server answers 200 or the timeout
/// lapses — the "wait for the server to come up" helper CI and tests
/// lean on instead of sleeping.
pub fn wait_ready(addr: &str, timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    let mut last_err = String::from("never tried");
    while Instant::now() < deadline {
        match request(addr, "GET", "/healthz", b"") {
            Ok(resp) if resp.status == 200 => return Ok(()),
            Ok(resp) => last_err = format!("healthz returned {}", resp.status),
            Err(e) => last_err = e,
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    Err(format!("server at {addr} not ready: {last_err}"))
}
