//! The job server: connection front end, router, bounded queue,
//! result cache, worker pool, and shard coordination.
//!
//! Architecture (all `std`, no dependencies):
//!
//! * a **connection front end** in one of three modes (`/healthz`
//!   reports which): `epoll` — a non-blocking readiness loop over raw
//!   `epoll(7)` bindings ([`crate::sys`]), the production path;
//!   `poll` — the same loop on portable `poll(2)`; `threads` — the
//!   legacy one-thread-per-connection fallback. The readiness loop
//!   ([`crate::event_loop`]) speaks HTTP/1.1 keep-alive and drives
//!   chunked streaming by write interest, so a stalled reader can
//!   never pin a handler thread;
//! * a **bounded job queue** (`VecDeque` + condvar) decouples
//!   submission from execution — when it is full, `POST /jobs`
//!   answers `429` immediately instead of queueing unbounded work
//!   (backpressure the client can see and retry on);
//! * a **content-addressed result cache** ([`crate::cache`]): an
//!   identical re-submission answers with the original job's id —
//!   byte-identical streams make that trivially correct — and a
//!   duplicate POST racing a still-running job coalesces onto the
//!   same stream. `?nocache=1` bypasses; `cache_capacity: 0`
//!   disables;
//! * a **worker pool** of `workers` threads executes jobs; each worker
//!   owns one reusable [`DeviationScratch`] slot (the
//!   `par_map_init` discipline lifted to job granularity), so
//!   consecutive same-size jobs never rebuild the engine arena;
//! * with `peers` configured, sweep jobs run as **shard coordinator**
//!   ([`crate::shard`]): contiguous seed chunks fan out to peer
//!   processes over the same HTTP protocol and merge back
//!   byte-identically;
//! * every job streams its results through a [`LineBuffer`], which any
//!   number of `GET /jobs/{id}/stream` connections replay-and-follow;
//! * **graceful drain**: `POST /shutdown` (or
//!   [`ServerHandle::shutdown`], which a supervisor should call on
//!   SIGTERM) stops accepting connections and lets the queue run dry
//!   before the workers exit; `?mode=abort` additionally fires every
//!   job's [`CancelToken`](bbncg_core::CancelToken) so in-flight
//!   dynamics wind down at the next round boundary.
//!
//! Routes:
//!
//! | Method | Path                | Answer |
//! |--------|---------------------|--------|
//! | GET    | `/healthz`          | server + pool + cache + shard stats |
//! | POST   | `/jobs`             | submit (body = scenario spec TOML, or `?type=verify` + `bbncg v1` profile) |
//! | GET    | `/jobs`             | id + state of every job |
//! | GET    | `/jobs/{id}`        | one job's status document |
//! | GET    | `/jobs/{id}/stream` | chunked JSONL result stream |
//! | GET    | `/jobs/{id}/report` | self-contained HTML report of a completed scenario job |
//! | POST   | `/jobs/{id}/cancel` | fire the job's cancel token |
//! | POST   | `/shutdown`         | drain (finish queue) or `?mode=abort` |

use crate::cache::{scenario_cache_key, ResultCache};
use crate::http::{
    finish_chunked, json_escape, read_request, start_chunked, write_chunk, write_response,
    HttpError, Request, DEFAULT_MAX_BODY,
};
use crate::job::{Job, JobKind, JobStatus};
use crate::stream::BufferSink;
use bbncg_core::{
    audit_equilibrium_with_opts, parse_realization, CostKernel, CostModel, DeviationScratch,
    RoundExecutor,
};
use bbncg_obs::{Counter, Gauge, Histogram};
use bbncg_scenario::{parse_spec, run_scenario_with_engine, run_sweep_cancellable, Checkpoint};
use std::collections::{BTreeMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which connection front end to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnMode {
    /// Best available: epoll on Linux, else poll, else threads.
    Auto,
    /// The epoll readiness loop (Linux only; spawn errors elsewhere).
    Epoll,
    /// The same readiness loop on portable `poll(2)`.
    Poll,
    /// Legacy thread-per-connection handling (one request per
    /// connection, no keep-alive).
    Threads,
}

impl ConnMode {
    /// Parse a CLI label.
    pub fn parse(s: &str) -> Result<ConnMode, String> {
        match s {
            "auto" => Ok(ConnMode::Auto),
            "epoll" => Ok(ConnMode::Epoll),
            "poll" => Ok(ConnMode::Poll),
            "threads" => Ok(ConnMode::Threads),
            other => Err(format!(
                "unknown conn mode {other:?} (auto|epoll|poll|threads)"
            )),
        }
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the bound address is on
    /// the returned handle).
    pub addr: String,
    /// Worker-pool size; 0 means [`bbncg_par::max_threads`] (which the
    /// CLI's `--threads` flag pins).
    pub workers: usize,
    /// Bounded queue capacity: at most this many jobs wait; beyond it,
    /// submissions bounce with `429`.
    pub queue_capacity: usize,
    /// Request-body cap in bytes (`413` beyond it).
    pub max_body: usize,
    /// When set, single-seed scenario jobs write a `job-{id}.ck`
    /// checkpoint here after every completed phase, so long jobs
    /// survive a server crash (`bbncg scenario resume` picks them up).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// How many *terminal* (completed/failed/cancelled) jobs to retain
    /// for status queries and stream replay. Beyond it, the oldest
    /// terminal jobs are evicted at submission time, bounding the
    /// server's memory over an unbounded lifetime; queued and running
    /// jobs are never evicted. Evicted jobs leave the result cache
    /// too.
    pub history_limit: usize,
    /// Default round executor for jobs. Precedence per job:
    /// `?rounds=` query override, else a non-auto `[dynamics] rounds`
    /// in the posted spec, else this. Executors are step-identical, so
    /// the choice moves throughput only — streams never change.
    /// Reported by `/healthz` (with the worker-thread cap) so loadgen
    /// runs are self-describing.
    pub default_executor: RoundExecutor,
    /// Switch the process-wide `bbncg_obs` metrics registry on at
    /// startup (one-way for the process). `GET /metrics` serves the
    /// Prometheus exposition either way — with observability off it
    /// simply reads all-zero counters.
    pub obs: bool,
    /// Connection front end (see [`ConnMode`]). `/healthz` reports the
    /// effective mode as `conn`.
    pub conn: ConnMode,
    /// Result-cache capacity in jobs; 0 disables caching. The library
    /// default is 0 (a POST always creates a job — what embedding
    /// tests expect); the `bbncg serve` CLI defaults it on.
    pub cache_capacity: usize,
    /// Shard peers (`host:port`). Non-empty makes this server a sweep
    /// coordinator: sweep jobs split into contiguous seed chunks, one
    /// per process (self + peers), merged back byte-identically.
    pub peers: Vec<String>,
    /// How long a connection may take to deliver (each of) its
    /// requests before being dropped — the slow-loris bound. Applies
    /// per request, including between keep-alive requests.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 64,
            max_body: DEFAULT_MAX_BODY,
            checkpoint_dir: None,
            history_limit: 256,
            default_executor: RoundExecutor::Auto,
            obs: false,
            conn: ConnMode::Auto,
            cache_capacity: 0,
            peers: Vec::new(),
            read_timeout: Duration::from_secs(30),
        }
    }
}

pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) addr: SocketAddr,
    pub(crate) workers: usize,
    pub(crate) jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    pub(crate) next_id: AtomicU64,
    pub(crate) queue: Mutex<VecDeque<Arc<Job>>>,
    pub(crate) queue_cv: Condvar,
    pub(crate) running: AtomicUsize,
    pub(crate) draining: AtomicBool,
    /// In-flight connection handlers (threads mode); join() waits for
    /// zero so every response written during a drain (including
    /// /shutdown's own 200) reaches its client before the process
    /// exits. The event loop keeps this at zero — its conns close
    /// before the loop thread exits.
    pub(crate) open_conns: Mutex<usize>,
    pub(crate) conns_cv: Condvar,
    pub(crate) cache: ResultCache,
    /// Effective connection front end (`epoll`/`poll`/`threads`).
    pub(crate) conn_label: &'static str,
}

/// A running server: its bound address plus the accept/worker threads.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Worker-pool size.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Effective connection front end (`"epoll"`, `"poll"`, or
    /// `"threads"`).
    pub fn conn_mode(&self) -> &'static str {
        self.shared.conn_label
    }

    /// Begin a graceful drain: stop accepting connections and reject
    /// new submissions; workers finish the queue and exit. With
    /// `abort`, every job's cancel token fires first, so in-flight
    /// work winds down at its next cancellation point instead of
    /// running to completion. This is what a process supervisor should
    /// invoke on SIGTERM (std cannot install signal handlers without
    /// a libc dependency, so the hook is explicit).
    pub fn shutdown(&self, abort: bool) {
        begin_drain(&self.shared, abort);
    }

    /// Wait for the accept loop and every worker to exit. Call after
    /// [`ServerHandle::shutdown`] (or after something POSTs
    /// `/shutdown`); joining a server nobody is draining blocks
    /// forever by design.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        // Connection handlers are detached threads; wait for the last
        // of them so no response (the drain's own 200 in particular)
        // is cut off by process exit. Bounded: handlers either answer
        // promptly or hit the request read timeout, and by now
        // every job is terminal so no stream can follow forever.
        let mut open = self.shared.open_conns.lock().expect("conns poisoned");
        while *open > 0 {
            open = self.shared.conns_cv.wait(open).expect("conns poisoned");
        }
    }

    /// A job by id, if it exists (test/introspection hook).
    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.shared
            .jobs
            .lock()
            .expect("jobs poisoned")
            .get(&id)
            .cloned()
    }
}

pub(crate) fn begin_drain(shared: &Arc<Shared>, abort: bool) {
    shared.draining.store(true, Ordering::SeqCst);
    if abort {
        for job in shared.jobs.lock().expect("jobs poisoned").values() {
            job.cancel.cancel();
        }
    }
    shared.queue_cv.notify_all();
    // Wake the connection front end out of its blocking accept()/wait()
    // with a throwaway connection; it re-checks the drain flag before
    // handling anything. (The event loop also re-checks on its
    // periodic tick, so a refused connect — listener already closed —
    // is harmless.)
    let _ = TcpStream::connect(shared.addr);
}

/// Bind, spawn the worker pool and connection front end, and return
/// the handle.
pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    if cfg.obs {
        bbncg_obs::enable();
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    // std hard-codes a backlog of 128; with syncookies on, a connect
    // burst beyond that gets RST instead of queued. Deepen the queue
    // to ride out many-hundred-client bursts (best effort).
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        let _ = crate::sys::set_backlog(listener.as_raw_fd(), 1024);
    }
    let addr = listener.local_addr()?;
    let workers = if cfg.workers == 0 {
        bbncg_par::max_threads()
    } else {
        cfg.workers
    };

    // Resolve the connection front end up front so /healthz can report
    // it and an impossible explicit ask (epoll off-Linux) fails the
    // spawn, not the first request.
    #[cfg(unix)]
    let poller = match cfg.conn {
        ConnMode::Threads => None,
        ConnMode::Epoll => Some(crate::sys::Poller::new_epoll()?),
        ConnMode::Poll => Some(crate::sys::Poller::new_poll()),
        ConnMode::Auto => Some(crate::sys::Poller::new_auto()),
    };
    #[cfg(not(unix))]
    let poller: Option<()> = match cfg.conn {
        ConnMode::Threads | ConnMode::Auto => None,
        ConnMode::Epoll | ConnMode::Poll => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "readiness front ends need a Unix host; use conn=threads",
            ))
        }
    };

    #[cfg(unix)]
    let conn_label = poller.as_ref().map_or("threads", |p| p.label());
    #[cfg(not(unix))]
    let conn_label = "threads";

    let cache_capacity = cfg.cache_capacity;
    let shared = Arc::new(Shared {
        cfg,
        addr,
        workers,
        jobs: Mutex::new(BTreeMap::new()),
        next_id: AtomicU64::new(0),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        running: AtomicUsize::new(0),
        draining: AtomicBool::new(false),
        open_conns: Mutex::new(0),
        conns_cv: Condvar::new(),
        cache: ResultCache::new(cache_capacity),
        conn_label,
    });
    let mut worker_threads = Vec::with_capacity(workers);
    for _ in 0..workers {
        let sh = Arc::clone(&shared);
        worker_threads.push(std::thread::spawn(move || worker_loop(sh)));
    }
    let sh = Arc::clone(&shared);
    #[cfg(unix)]
    let accept_thread = Some(match poller {
        Some(poller) => std::thread::spawn(move || crate::event_loop::run(sh, listener, poller)),
        None => std::thread::spawn(move || accept_loop(sh, listener)),
    });
    #[cfg(not(unix))]
    let accept_thread = Some(std::thread::spawn(move || accept_loop(sh, listener)));
    Ok(ServerHandle {
        shared,
        accept_thread,
        worker_threads,
    })
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    for conn in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let sh = Arc::clone(&shared);
        *shared.open_conns.lock().expect("conns poisoned") += 1;
        // One short-lived thread per connection. Handler panics (none
        // are expected) would die with their thread, never the server;
        // the guard keeps the open-connection count honest either way.
        std::thread::spawn(move || {
            struct ConnGuard(Arc<Shared>);
            impl Drop for ConnGuard {
                fn drop(&mut self) {
                    let mut open = self.0.open_conns.lock().expect("conns poisoned");
                    *open -= 1;
                    self.0.conns_cv.notify_all();
                }
            }
            let guard = ConnGuard(Arc::clone(&sh));
            handle_connection(sh, stream);
            drop(guard);
        });
    }
}

fn worker_loop(shared: Arc<Shared>) {
    // Job workers are the server's parallelism: mark the thread so
    // `RoundExecutor::Auto` inside jobs stays sequential instead of
    // nesting a second fan-out per worker (an explicit
    // speculative/`?rounds=` ask still fans out).
    bbncg_par::mark_parallel_worker();
    // The worker-local engine slot: filled by the first single-seed
    // scenario job, re-synced by diffing (or transparently rebuilt on
    // size change) by every job after it — `par_map_init`'s
    // one-engine-per-worker discipline at job granularity.
    let mut scratch: Option<DeviationScratch> = None;
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.queue_cv.wait(q).expect("queue poisoned");
            }
        };
        let Some(job) = job else { return };
        shared.running.fetch_add(1, Ordering::SeqCst);
        execute_job(&shared, &job, &mut scratch);
        shared.running.fetch_sub(1, Ordering::SeqCst);
        uncache_if_dead(&shared, &job);
    }
}

/// Drop a job's cache entry if it retired without a replayable result
/// (failed or cancelled) — a transient failure must be recomputed,
/// not served from cache forever.
pub(crate) fn uncache_if_dead(shared: &Shared, job: &Arc<Job>) {
    if matches!(job.status(), JobStatus::Failed(_) | JobStatus::Cancelled) {
        if let Some(key) = job.cache_key() {
            shared.cache.forget(key, job.id);
        }
    }
}

fn execute_job(shared: &Shared, job: &Arc<Job>, scratch: &mut Option<DeviationScratch>) {
    if job.cancel.is_cancelled() {
        job.set_status(JobStatus::Cancelled);
        return;
    }
    job.set_status(JobStatus::Running);
    match &job.kind {
        JobKind::Scenario { spec, source } => {
            if spec.seeds > 1 && !shared.cfg.peers.is_empty() {
                // Shard coordinator: chunk the sweep across self +
                // peers, merge byte-identically (see crate::shard).
                crate::shard::run_sharded(&shared.cfg.peers, job, spec, source);
                return;
            }
            let mut sink = BufferSink::new(Arc::clone(&job.lines));
            if spec.seeds > 1 {
                let outcomes = run_sweep_cancellable(spec, &mut sink, &job.cancel);
                let mut errors = Vec::new();
                let mut cancelled = false;
                for (i, o) in outcomes.into_iter().enumerate() {
                    match o {
                        Ok(o) => cancelled |= o.cancelled,
                        Err(e) => errors.push(format!("seed {}: {e}", spec.seed + i as u64)),
                    }
                }
                job.set_status(if cancelled {
                    JobStatus::Cancelled
                } else if errors.is_empty() {
                    JobStatus::Completed
                } else {
                    JobStatus::Failed(errors.join("; "))
                });
            } else {
                let ck_path = shared
                    .cfg
                    .checkpoint_dir
                    .as_ref()
                    .map(|d| d.join(format!("job-{}.ck", job.id)));
                let mut on_phase_end = |ck: &Checkpoint| {
                    job.mark_phase();
                    if let Some(p) = &ck_path {
                        // Best-effort: a failed checkpoint write must
                        // not kill the job (same policy as the CLI).
                        let _ = std::fs::write(p, ck.to_text());
                    }
                };
                match run_scenario_with_engine(
                    spec,
                    spec.seed,
                    None,
                    &mut sink,
                    None,
                    &mut on_phase_end,
                    scratch,
                    &job.cancel,
                ) {
                    Ok(o) if o.cancelled => job.set_status(JobStatus::Cancelled),
                    Ok(_) => job.set_status(JobStatus::Completed),
                    Err(e) => job.set_status(JobStatus::Failed(e)),
                }
            }
        }
        JobKind::Verify {
            realization,
            model,
            kernel,
            executor,
        } => {
            let audit = audit_equilibrium_with_opts(realization, *model, *kernel, *executor);
            let violations = audit.violations();
            job.lines.push(format!(
                "{{\"kind\":\"verify\",\"model\":\"{}\",\"n\":{},\"nash\":{},\"gap\":{},\"violators\":{},\"social_cost\":{}}}",
                model.label(),
                realization.n(),
                audit.is_nash(),
                audit.gap(),
                violations.len(),
                realization.social_diameter(),
            ));
            job.set_status(JobStatus::Completed);
        }
    }
}

fn handle_connection(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // A client gets read_timeout to deliver its request head + body;
    // an idle or byte-trickling connection then errors out of
    // read_request and releases this handler thread, instead of
    // pinning it forever (responses are writes, so streaming followers
    // are unaffected by the *read* timeout). Writes get their own cap:
    // a connected-but-not-reading stream follower (zero TCP window)
    // would otherwise block write_chunk forever and stall join()'s
    // open-connection wait. 60s per write is generous for any reader
    // that is actually consuming.
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(60)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let req = match read_request(&mut reader, shared.cfg.max_body) {
        Ok(r) => r,
        Err(HttpError::Disconnected) => return,
        Err(e) => {
            let (code, reason) = e.status();
            let body = format!("{{\"error\":\"{}\"}}", json_escape(e.detail()));
            let _ = write_response(
                &mut writer,
                code,
                reason,
                "application/json",
                body.as_bytes(),
            );
            return;
        }
    };
    route(&shared, &req, &mut writer);
}

fn error_body(detail: &str) -> Vec<u8> {
    format!("{{\"error\":\"{}\"}}", json_escape(detail)).into_bytes()
}

/// A routed request's disposition — shared by both front ends. `Full`
/// responses are complete bytes; `Stream`/`Report` need job-lifecycle
/// waiting, which threads mode does by blocking and the event loop by
/// waker-driven state machines.
pub(crate) enum Routed {
    /// A complete response, ready to encode.
    Full {
        status: u16,
        reason: &'static str,
        content_type: &'static str,
        body: Vec<u8>,
    },
    /// Follow the job's line buffer as a chunked JSONL stream.
    Stream { job: Arc<Job> },
    /// Wait for the job to finish, then render its HTML report.
    Report { job: Arc<Job> },
}

impl Routed {
    pub(crate) fn ok_json(body: String) -> Routed {
        Routed::Full {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    pub(crate) fn error_json(status: u16, reason: &'static str, detail: &str) -> Routed {
        Routed::Full {
            status,
            reason,
            content_type: "application/json",
            body: error_body(detail),
        }
    }
}

/// Which latency histogram a request lands in. Unrouted requests go
/// to the `other` family, so the scrape still accounts for them.
fn endpoint_histogram(method: &str, segments: &[&str]) -> Histogram {
    match (method, segments) {
        ("GET", ["healthz"]) => Histogram::HttpHealthzMicros,
        ("GET", ["metrics"]) => Histogram::HttpMetricsMicros,
        ("POST", ["jobs"]) => Histogram::HttpSubmitMicros,
        ("GET", ["jobs"]) => Histogram::HttpJobsMicros,
        ("GET", ["jobs", _]) => Histogram::HttpJobStatusMicros,
        ("POST", ["jobs", _, "cancel"]) => Histogram::HttpCancelMicros,
        ("GET", ["jobs", _, "stream"]) => Histogram::HttpStreamMicros,
        ("GET", ["jobs", _, "report"]) => Histogram::HttpReportMicros,
        ("POST", ["shutdown"]) => Histogram::HttpShutdownMicros,
        _ => Histogram::HttpOtherMicros,
    }
}

/// Route one parsed request to its disposition. Every arm here is
/// non-blocking (submit parses and enqueues; nothing waits on a job),
/// so the event loop calls this inline.
pub(crate) fn route_request(shared: &Arc<Shared>, req: &Request) -> (Routed, Histogram) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    bbncg_obs::counter_inc(Counter::HttpRequests);
    let hist = endpoint_histogram(&req.method, &segments);
    let routed = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let queue_depth = shared.queue.lock().expect("queue poisoned").len();
            let jobs = shared.jobs.lock().expect("jobs poisoned").len();
            let cache = shared.cache.stats();
            let cache_lookups = cache.hits + cache.coalesced + cache.misses;
            let hit_rate = if cache_lookups == 0 {
                0.0
            } else {
                (cache.hits + cache.coalesced) as f64 / cache_lookups as f64
            };
            // `rounds` + `threads` make loadgen runs self-describing:
            // the default round-executor mode jobs will run under and
            // the worker-thread cap every parallel primitive obeys
            // (`--threads` / BBNCG_THREADS / auto-detect). `conn`,
            // the cache block, and the shard block describe this PR's
            // front end: connection mode, result-cache pressure, and
            // the coordinator role.
            Routed::ok_json(format!(
                "{{\"status\":\"{}\",\"workers\":{},\"queue_depth\":{},\"queue_capacity\":{},\"running\":{},\"jobs\":{},\"rounds\":\"{}\",\"threads\":{},\"conn\":\"{}\",\"cache_capacity\":{},\"cache_size\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_coalesced\":{},\"cache_evictions\":{},\"cache_hit_rate\":{:.4},\"shard_role\":\"{}\",\"shard_peers\":{}}}",
                if shared.draining.load(Ordering::SeqCst) { "draining" } else { "ok" },
                shared.workers,
                queue_depth,
                shared.cfg.queue_capacity,
                shared.running.load(Ordering::SeqCst),
                jobs,
                shared.cfg.default_executor.label(),
                bbncg_par::max_threads(),
                shared.conn_label,
                shared.cache.capacity(),
                cache.size,
                cache.hits,
                cache.misses,
                cache.coalesced,
                cache.evictions,
                hit_rate,
                if shared.cfg.peers.is_empty() { "single" } else { "coordinator" },
                shared.cfg.peers.len(),
            ))
        }
        ("GET", ["metrics"]) => {
            // Gauges are sampled at scrape time — they describe "now",
            // not a cumulative history, so this is the one place they
            // are written.
            bbncg_obs::gauge_set(
                Gauge::QueueDepth,
                shared.queue.lock().expect("queue poisoned").len() as u64,
            );
            bbncg_obs::gauge_set(
                Gauge::InFlightJobs,
                shared.running.load(Ordering::SeqCst) as u64,
            );
            Routed::Full {
                status: 200,
                reason: "OK",
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: bbncg_obs::render_prometheus().into_bytes(),
            }
        }
        ("POST", ["jobs"]) => submit(shared, req),
        ("GET", ["jobs"]) => {
            let jobs = shared.jobs.lock().expect("jobs poisoned");
            let docs: Vec<String> = jobs.values().map(|j| j.status_json()).collect();
            Routed::ok_json(format!("[{}]", docs.join(",")))
        }
        ("GET", ["jobs", id]) => match lookup(shared, id) {
            Some(job) => Routed::ok_json(job.status_json()),
            None => Routed::error_json(404, "Not Found", &format!("no job {id}")),
        },
        ("POST", ["jobs", id, "cancel"]) => match lookup(shared, id) {
            Some(job) => {
                job.cancel.cancel();
                // A still-queued job is pulled out of the queue so its
                // slot frees *now* (a corpse left in the deque would
                // keep bouncing live submissions with 429 until a
                // worker got around to popping it) and retired
                // immediately; a running one winds down at its next
                // cancellation point (set_status ignores the race
                // either way).
                shared
                    .queue
                    .lock()
                    .expect("queue poisoned")
                    .retain(|j| j.id != job.id);
                if job.status() == JobStatus::Queued {
                    job.set_status(JobStatus::Cancelled);
                }
                uncache_if_dead(shared, &job);
                Routed::ok_json(job.status_json())
            }
            None => Routed::error_json(404, "Not Found", &format!("no job {id}")),
        },
        ("GET", ["jobs", id, "stream"]) => match lookup(shared, id) {
            Some(job) => Routed::Stream { job },
            None => Routed::error_json(404, "Not Found", &format!("no job {id}")),
        },
        ("GET", ["jobs", id, "report"]) => match lookup(shared, id) {
            Some(job) => {
                if matches!(job.kind, JobKind::Scenario { .. }) {
                    Routed::Report { job }
                } else {
                    Routed::error_json(
                        409,
                        "Conflict",
                        "reports are only available for scenario jobs",
                    )
                }
            }
            None => Routed::error_json(404, "Not Found", &format!("no job {id}")),
        },
        ("POST", ["shutdown"]) => {
            let abort = req.query_get("mode") == Some("abort");
            // Drain *before* answering: once the client reads this
            // response, no later submission can be accepted — the 200
            // is a promise, not a prediction.
            begin_drain(shared, abort);
            Routed::ok_json("{\"status\":\"draining\"}".into())
        }
        _ => Routed::error_json(
            404,
            "Not Found",
            &format!("no route {} {}", req.method, req.path),
        ),
    };
    (routed, hist)
}

/// Threads-mode request handling: act on the disposition, blocking
/// where the event loop would wait on wakers.
fn route(shared: &Arc<Shared>, req: &Request, w: &mut TcpStream) {
    let t0 = std::time::Instant::now();
    let (routed, hist) = route_request(shared, req);
    match routed {
        Routed::Full {
            status,
            reason,
            content_type,
            body,
        } => {
            let _ = write_response(w, status, reason, content_type, &body);
        }
        Routed::Stream { job } => stream_job(&job, w),
        Routed::Report { job } => {
            job.wait_terminal();
            let (status, reason, content_type, body) = render_job_report(&job);
            let _ = write_response(w, status, reason, content_type, &body);
        }
    }
    // For `stream`, this is the whole follow duration — which is the
    // honest latency of a streaming endpoint.
    bbncg_obs::observe(hist, t0.elapsed().as_micros() as u64);
}

fn lookup(shared: &Shared, id: &str) -> Option<Arc<Job>> {
    let id: u64 = id.parse().ok()?;
    shared.jobs.lock().expect("jobs poisoned").get(&id).cloned()
}

fn receipt(job: &Arc<Job>, cached: bool) -> Routed {
    let cached_field = if cached { ",\"cached\":true" } else { "" };
    Routed::Full {
        status: 202,
        reason: "Accepted",
        content_type: "application/json",
        body: format!(
            "{{\"job\":{},\"kind\":\"{}\",\"state\":\"{}\"{},\"stream\":\"/jobs/{}/stream\"}}",
            job.id,
            job.kind.label(),
            job.status().label(),
            cached_field,
            job.id
        )
        .into_bytes(),
    }
}

fn submit(shared: &Arc<Shared>, req: &Request) -> Routed {
    if shared.draining.load(Ordering::SeqCst) {
        return Routed::error_json(503, "Service Unavailable", "server is draining");
    }
    let kind = match build_job_kind(req, shared.cfg.default_executor) {
        Ok(k) => k,
        Err(e) => return Routed::error_json(400, "Bad Request", &e),
    };
    // `?nocache=1` (any value but "0") bypasses lookup *and* insert —
    // the benchmarking escape hatch that always recomputes.
    let nocache = req.query_get("nocache").is_some_and(|v| v != "0");
    let cache_key = match (&kind, shared.cache.enabled(), nocache) {
        (JobKind::Scenario { spec, .. }, true, false) => Some(scenario_cache_key(spec)),
        _ => None,
    };
    // The cache guard spans lookup → admission → insert, so two racing
    // identical POSTs can never both admit: one inserts, the other
    // coalesces onto its job. Lock order: cache → queue → jobs.
    let mut cache_guard = if shared.cache.enabled() {
        Some(shared.cache.lock())
    } else {
        None
    };
    if let (Some(guard), Some(key)) = (cache_guard.as_mut(), cache_key) {
        if let Some(job) = guard.lookup(key) {
            return receipt(&job, true);
        }
    }
    // Reserve a queue slot and register the job in one critical
    // section, so the id is routable the instant the submitter sees it
    // and the capacity check can never over-admit.
    let job = {
        let mut q = shared.queue.lock().expect("queue poisoned");
        // Re-check the drain flag *inside* the queue lock: workers
        // decide to exit under this same lock, so a submission that
        // passes here is guaranteed a live worker — without this, a
        // drain racing the check above could strand an accepted job
        // (202 receipt, no worker left, stream never closes).
        if shared.draining.load(Ordering::SeqCst) {
            drop(q);
            return Routed::error_json(503, "Service Unavailable", "server is draining");
        }
        if q.len() >= shared.cfg.queue_capacity {
            drop(q);
            bbncg_obs::counter_inc(Counter::HttpRejected429);
            return Routed::error_json(
                429,
                "Too Many Requests",
                &format!(
                    "queue full ({} jobs queued); retry later",
                    shared.cfg.queue_capacity
                ),
            );
        }
        let id = shared.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        let job = Job::new(id, kind);
        {
            let mut jobs = shared.jobs.lock().expect("jobs poisoned");
            jobs.insert(id, Arc::clone(&job));
            // Retention: evict the oldest terminal jobs beyond the
            // history cap, so an always-on server's memory is bounded
            // (each retained job holds its whole record stream). A
            // follower mid-replay keeps its own Arc and finishes
            // unaffected; later GETs of an evicted id are 404 — and
            // the cache drops the entry too, so a cached receipt can
            // never point at an evicted id.
            let terminal: Vec<u64> = jobs
                .iter()
                .filter(|(_, j)| j.status().is_terminal())
                .map(|(&k, _)| k)
                .collect();
            if terminal.len() > shared.cfg.history_limit {
                for k in &terminal[..terminal.len() - shared.cfg.history_limit] {
                    if let Some(evicted) = jobs.remove(k) {
                        if let (Some(guard), Some(ck)) = (cache_guard.as_mut(), evicted.cache_key())
                        {
                            guard.forget(ck, evicted.id);
                        }
                    }
                }
            }
        }
        if let (Some(guard), Some(key)) = (cache_guard.as_mut(), cache_key) {
            job.set_cache_key(key);
            guard.insert(key, &job);
        }
        q.push_back(Arc::clone(&job));
        shared.queue_cv.notify_one();
        bbncg_obs::counter_inc(Counter::JobsSubmitted);
        job
    };
    receipt(&job, false)
}

fn parse_kernel_param(req: &Request) -> Result<CostKernel, String> {
    match req.query_get("kernel") {
        None => Ok(CostKernel::Auto),
        Some(s) => CostKernel::parse(s),
    }
}

/// Effective round executor for a job: `?rounds=` wins, else a
/// non-auto executor the spec asked for, else the server default.
/// Every choice streams byte-identical records (executors are
/// step-identical), so this precedence is purely about throughput and
/// self-description.
fn effective_executor(
    req: &Request,
    spec_executor: RoundExecutor,
    default: RoundExecutor,
) -> Result<RoundExecutor, String> {
    if let Some(s) = req.query_get("rounds") {
        return RoundExecutor::parse(s);
    }
    Ok(if spec_executor != RoundExecutor::Auto {
        spec_executor
    } else {
        default
    })
}

fn parse_model_param(req: &Request, default: CostModel) -> Result<CostModel, String> {
    match req.query_get("model") {
        None => Ok(default),
        Some("sum") | Some("SUM") => Ok(CostModel::Sum),
        Some("max") | Some("MAX") => Ok(CostModel::Max),
        Some(other) => Err(format!("unknown model {other:?} (sum|max)")),
    }
}

fn build_job_kind(req: &Request, default_executor: RoundExecutor) -> Result<JobKind, String> {
    let body = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
    match req.query_get("type").unwrap_or("scenario") {
        "scenario" => {
            let mut spec = parse_spec(body).map_err(|e| format!("spec: {e}"))?;
            if let Some(s) = req.query_get("seed") {
                spec.seed = s.parse().map_err(|e| format!("seed: {e}"))?;
            }
            // `?seeds=` overrides the sweep width — how a shard
            // coordinator carves its range into peer sub-jobs.
            if let Some(s) = req.query_get("seeds") {
                spec.seeds = s.parse().map_err(|e| format!("seeds: {e}"))?;
                if spec.seeds == 0 {
                    return Err("seeds: must be at least 1".into());
                }
            }
            if req.query_get("kernel").is_some() {
                spec.kernel = parse_kernel_param(req)?;
            }
            // `?model=` overrides the spec's *default* model (explicit
            // per-phase model overrides in [[phase]] still win, same
            // as offline).
            spec.defaults.model = parse_model_param(req, spec.defaults.model)?;
            spec.defaults.executor =
                effective_executor(req, spec.defaults.executor, default_executor)?;
            Ok(JobKind::Scenario {
                spec: Box::new(spec),
                source: body.to_string(),
            })
        }
        "verify" => {
            let realization = parse_realization(body).map_err(|e| format!("profile: {e}"))?;
            Ok(JobKind::Verify {
                realization: Box::new(realization),
                model: parse_model_param(req, CostModel::Sum)?,
                kernel: parse_kernel_param(req)?,
                executor: effective_executor(req, RoundExecutor::Auto, default_executor)?,
            })
        }
        other => Err(format!("unknown job type {other:?} (scenario|verify)")),
    }
}

/// Render a terminal job's report response: the default stream report
/// from the job's buffered JSONL — the same lines `JsonlSink` would
/// have written offline, so the HTML is byte-identical to
/// `bbncg report --from` on the streamed output. Callers ensure the
/// job is terminal first.
pub(crate) fn render_job_report(job: &Arc<Job>) -> (u16, &'static str, &'static str, Vec<u8>) {
    let status = job.status();
    if status != JobStatus::Completed {
        return (
            409,
            "Conflict",
            "application/json",
            error_body(&format!("job is {} — no report", status.label())),
        );
    }
    let mut jsonl = String::new();
    for line in job.lines.snapshot() {
        jsonl.push_str(&line);
        jsonl.push('\n');
    }
    match bbncg_report::render_stream_report(&jsonl) {
        Ok(html) => (200, "OK", "text/html; charset=utf-8", html.into_bytes()),
        Err(e) => (
            500,
            "Internal Server Error",
            "application/json",
            error_body(&e),
        ),
    }
}

fn stream_job(job: &Arc<Job>, w: &mut TcpStream) {
    if start_chunked(w, 200, "OK", "application/x-ndjson").is_err() {
        return;
    }
    let mut idx = 0;
    let mut line_buf = String::new();
    while let Some(line) = job.lines.wait_line(idx) {
        idx += 1;
        line_buf.clear();
        line_buf.push_str(&line);
        line_buf.push('\n');
        if write_chunk(w, line_buf.as_bytes()).is_err() {
            // Client went away mid-stream. The job is untouched — it
            // keeps its queue slot accounting and other followers keep
            // streaming; only this connection ends.
            return;
        }
    }
    let _ = finish_chunked(w);
}
