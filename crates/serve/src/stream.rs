//! The socket-facing result stream: a shared, append-only line buffer
//! bridging the scenario engine's `MetricSink` to any number of
//! concurrent HTTP readers.
//!
//! The worker thread appends JSONL lines as phases complete; each
//! streaming connection replays the buffer from the start and then
//! follows live appends, so a client that connects late (or
//! reconnects) sees exactly the same byte stream as one that was there
//! from the beginning. Readers never block the writer — a slow or
//! vanished client only stalls its own connection thread.

use bbncg_scenario::{MetricRecord, MetricSink};
use std::sync::{Arc, Condvar, Mutex};

/// A callback the buffer fires (outside its lock) whenever new lines
/// land or the stream closes — how the non-blocking event loop learns
/// that a followed stream has progressed without parking a thread on
/// [`LineBuffer::wait_line`].
pub type Waker = Arc<dyn Fn() + Send + Sync>;

#[derive(Default)]
struct State {
    lines: Vec<String>,
    closed: bool,
    wakers: Vec<Waker>,
}

/// An append-only, multi-reader line buffer with blocking iteration.
#[derive(Default)]
pub struct LineBuffer {
    state: Mutex<State>,
    cv: Condvar,
}

impl LineBuffer {
    /// A fresh, open, empty buffer.
    pub fn new() -> Arc<LineBuffer> {
        Arc::new(LineBuffer::default())
    }

    /// Append one line (without trailing newline).
    pub fn push(&self, line: String) {
        let wakers = {
            let mut st = self.state.lock().expect("line buffer poisoned");
            st.lines.push(line);
            self.cv.notify_all();
            st.wakers.clone()
        };
        // Fire outside the lock: wakers take the event loop's own
        // locks, and holding the buffer lock across foreign code
        // invites ordering deadlocks.
        for w in wakers {
            w();
        }
    }

    /// Mark the stream complete: readers drain what is buffered and
    /// then see end-of-stream instead of blocking forever. Registered
    /// wakers fire one final time and are dropped — a closed buffer
    /// never wakes anyone again, so long-lived (cached) buffers cannot
    /// accumulate stale wakers.
    pub fn close(&self) {
        let wakers = {
            let mut st = self.state.lock().expect("line buffer poisoned");
            st.closed = true;
            self.cv.notify_all();
            std::mem::take(&mut st.wakers)
        };
        for w in wakers {
            w();
        }
    }

    /// Register a waker to fire on every future push and on close.
    /// Returns `false` (without registering) if the buffer is already
    /// closed — nothing further will happen, so the caller should act
    /// on the final state it can already read.
    pub fn register_waker(&self, waker: Waker) -> bool {
        let mut st = self.state.lock().expect("line buffer poisoned");
        if st.closed {
            return false;
        }
        st.wakers.push(waker);
        true
    }

    /// Has [`LineBuffer::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("line buffer poisoned").closed
    }

    /// Lines appended so far.
    pub fn len(&self) -> usize {
        self.state.lock().expect("line buffer poisoned").lines.len()
    }

    /// Is the buffer still empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking read of line `idx`: waits until that line exists or
    /// the buffer closes. `None` means end-of-stream (closed and
    /// `idx` is past the final line).
    pub fn wait_line(&self, idx: usize) -> Option<String> {
        let mut st = self.state.lock().expect("line buffer poisoned");
        loop {
            if idx < st.lines.len() {
                return Some(st.lines[idx].clone());
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).expect("line buffer poisoned");
        }
    }

    /// Non-blocking read of up to `max` lines starting at `idx`, plus
    /// the closed flag — the event loop's poll-style counterpart to
    /// [`LineBuffer::wait_line`]. The cap bounds each pull so a huge
    /// sweep buffer is streamed in batches instead of cloned whole.
    pub fn read_from(&self, idx: usize, max: usize) -> (Vec<String>, bool) {
        let st = self.state.lock().expect("line buffer poisoned");
        let lines = if idx < st.lines.len() {
            st.lines[idx..st.lines.len().min(idx + max)].to_vec()
        } else {
            Vec::new()
        };
        (lines, st.closed)
    }

    /// Snapshot of the whole buffer (tests, replay-only readers).
    pub fn snapshot(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("line buffer poisoned")
            .lines
            .clone()
    }
}

/// `MetricSink` adapter: every record becomes one buffered JSONL line —
/// the *same* line `JsonlSink` would have written to a file, which is
/// what makes served streams byte-identical to offline runs.
pub struct BufferSink {
    buffer: Arc<LineBuffer>,
}

impl BufferSink {
    /// Sink into `buffer`.
    pub fn new(buffer: Arc<LineBuffer>) -> Self {
        BufferSink { buffer }
    }
}

impl MetricSink for BufferSink {
    fn record(&mut self, rec: &MetricRecord) {
        self.buffer.push(rec.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn replay_then_follow_then_eof() {
        let buf = LineBuffer::new();
        buf.push("a".into());
        buf.push("b".into());
        assert_eq!(buf.wait_line(0).as_deref(), Some("a"));
        assert_eq!(buf.wait_line(1).as_deref(), Some("b"));
        let writer = Arc::clone(&buf);
        let t = thread::spawn(move || {
            writer.push("c".into());
            writer.close();
        });
        assert_eq!(buf.wait_line(2).as_deref(), Some("c"));
        assert_eq!(buf.wait_line(3), None);
        t.join().unwrap();
        assert!(buf.is_closed());
        assert_eq!(buf.snapshot(), vec!["a", "b", "c"]);
    }

    #[test]
    fn wakers_fire_on_push_and_close_then_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let buf = LineBuffer::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        assert!(buf.register_waker(Arc::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        })));
        buf.push("a".into());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        buf.close();
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        // Closed buffers refuse registration and never fire again.
        let g = Arc::clone(&fired);
        assert!(!buf.register_waker(Arc::new(move || {
            g.fetch_add(100, Ordering::SeqCst);
        })));
        let (lines, closed) = buf.read_from(0, 16);
        assert_eq!(lines, vec!["a"]);
        assert!(closed);
        assert_eq!(buf.read_from(1, 16).0.len(), 0);
        assert_eq!(buf.read_from(0, 0).0.len(), 0, "zero cap reads nothing");
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn many_readers_see_identical_streams() {
        let buf = LineBuffer::new();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&buf);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut i = 0;
                    while let Some(line) = b.wait_line(i) {
                        got.push(line);
                        i += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            buf.push(format!("line-{i}"));
        }
        buf.close();
        let want: Vec<String> = (0..100).map(|i| format!("line-{i}")).collect();
        for r in readers {
            assert_eq!(r.join().unwrap(), want);
        }
    }
}
