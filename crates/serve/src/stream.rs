//! The socket-facing result stream: a shared, append-only line buffer
//! bridging the scenario engine's `MetricSink` to any number of
//! concurrent HTTP readers.
//!
//! The worker thread appends JSONL lines as phases complete; each
//! streaming connection replays the buffer from the start and then
//! follows live appends, so a client that connects late (or
//! reconnects) sees exactly the same byte stream as one that was there
//! from the beginning. Readers never block the writer — a slow or
//! vanished client only stalls its own connection thread.

use bbncg_scenario::{MetricRecord, MetricSink};
use std::sync::{Arc, Condvar, Mutex};

#[derive(Default)]
struct State {
    lines: Vec<String>,
    closed: bool,
}

/// An append-only, multi-reader line buffer with blocking iteration.
#[derive(Default)]
pub struct LineBuffer {
    state: Mutex<State>,
    cv: Condvar,
}

impl LineBuffer {
    /// A fresh, open, empty buffer.
    pub fn new() -> Arc<LineBuffer> {
        Arc::new(LineBuffer::default())
    }

    /// Append one line (without trailing newline).
    pub fn push(&self, line: String) {
        let mut st = self.state.lock().expect("line buffer poisoned");
        st.lines.push(line);
        self.cv.notify_all();
    }

    /// Mark the stream complete: readers drain what is buffered and
    /// then see end-of-stream instead of blocking forever.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("line buffer poisoned");
        st.closed = true;
        self.cv.notify_all();
    }

    /// Has [`LineBuffer::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("line buffer poisoned").closed
    }

    /// Lines appended so far.
    pub fn len(&self) -> usize {
        self.state.lock().expect("line buffer poisoned").lines.len()
    }

    /// Is the buffer still empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking read of line `idx`: waits until that line exists or
    /// the buffer closes. `None` means end-of-stream (closed and
    /// `idx` is past the final line).
    pub fn wait_line(&self, idx: usize) -> Option<String> {
        let mut st = self.state.lock().expect("line buffer poisoned");
        loop {
            if idx < st.lines.len() {
                return Some(st.lines[idx].clone());
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).expect("line buffer poisoned");
        }
    }

    /// Snapshot of the whole buffer (tests, replay-only readers).
    pub fn snapshot(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("line buffer poisoned")
            .lines
            .clone()
    }
}

/// `MetricSink` adapter: every record becomes one buffered JSONL line —
/// the *same* line `JsonlSink` would have written to a file, which is
/// what makes served streams byte-identical to offline runs.
pub struct BufferSink {
    buffer: Arc<LineBuffer>,
}

impl BufferSink {
    /// Sink into `buffer`.
    pub fn new(buffer: Arc<LineBuffer>) -> Self {
        BufferSink { buffer }
    }
}

impl MetricSink for BufferSink {
    fn record(&mut self, rec: &MetricRecord) {
        self.buffer.push(rec.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn replay_then_follow_then_eof() {
        let buf = LineBuffer::new();
        buf.push("a".into());
        buf.push("b".into());
        assert_eq!(buf.wait_line(0).as_deref(), Some("a"));
        assert_eq!(buf.wait_line(1).as_deref(), Some("b"));
        let writer = Arc::clone(&buf);
        let t = thread::spawn(move || {
            writer.push("c".into());
            writer.close();
        });
        assert_eq!(buf.wait_line(2).as_deref(), Some("c"));
        assert_eq!(buf.wait_line(3), None);
        t.join().unwrap();
        assert!(buf.is_closed());
        assert_eq!(buf.snapshot(), vec!["a", "b", "c"]);
    }

    #[test]
    fn many_readers_see_identical_streams() {
        let buf = LineBuffer::new();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&buf);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut i = 0;
                    while let Some(line) = b.wait_line(i) {
                        got.push(line);
                        i += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            buf.push(format!("line-{i}"));
        }
        buf.close();
        let want: Vec<String> = (0..100).map(|i| format!("line-{i}")).collect();
        for r in readers {
            assert_eq!(r.join().unwrap(), want);
        }
    }
}
