//! Jobs: what the server queues, runs, streams, and reports on.

use crate::http::json_escape;
use crate::stream::LineBuffer;
use bbncg_core::{CancelToken, CostKernel, CostModel, Realization, RoundExecutor};
use bbncg_obs::Counter;
use bbncg_scenario::ScenarioSpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What a job computes.
pub enum JobKind {
    /// Run a scenario spec (single seed or whole sweep): one JSONL
    /// metric record per phase streams out exactly as `bbncg scenario
    /// run --out` would have written it.
    Scenario {
        /// The validated spec (validated at submit time, so a bad spec
        /// is a 400 at the door, not a failed job later).
        spec: Box<ScenarioSpec>,
        /// The raw TOML the spec was parsed from. A shard coordinator
        /// forwards this text (plus override query params) to its
        /// peers, so peers re-validate exactly what the client posted.
        source: String,
    },
    /// Audit a posted `bbncg v1` profile for Nash equilibrium: one
    /// JSON verdict line streams out.
    Verify {
        /// The profile to audit.
        realization: Box<Realization>,
        /// Cost model to audit under.
        model: CostModel,
        /// Cost kernel pricing the audit.
        kernel: CostKernel,
        /// Execution discipline of the audit sweep (verdict-neutral;
        /// `?rounds=` override, else the server default).
        executor: RoundExecutor,
    },
}

impl JobKind {
    /// Label for status reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Scenario { .. } => "scenario",
            JobKind::Verify { .. } => "verify",
        }
    }
}

/// Lifecycle of a job. Terminal states are `Completed`, `Failed`, and
/// `Cancelled`; exactly one is ever reached, after which the job's
/// stream is closed and its queue/worker slot is free again.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// In the bounded queue, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished the whole computation.
    Completed,
    /// The computation returned an error (carried in the payload).
    Failed(String),
    /// A cancel request (or an abort-mode shutdown) stopped it.
    Cancelled,
}

impl JobStatus {
    /// Status label as served in JSON.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed(_) => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Is this one of the three terminal states?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Failed(_) | JobStatus::Cancelled
        )
    }
}

/// One submitted job. Shared between the HTTP handlers (status,
/// stream, cancel) and the worker executing it.
pub struct Job {
    /// Server-assigned id (monotonic per server).
    pub id: u64,
    /// What to compute.
    pub kind: JobKind,
    /// Cooperative cancellation flag, fired by `POST /jobs/{id}/cancel`
    /// and by abort-mode shutdown.
    pub cancel: CancelToken,
    /// The result stream (JSONL lines; closed exactly once, when the
    /// job reaches a terminal status).
    pub lines: Arc<LineBuffer>,
    status: Mutex<JobStatus>,
    status_cv: Condvar,
    /// Monotonic birth instant; the other lifecycle timestamps are
    /// microseconds measured from here.
    created: Instant,
    /// Micros from `created` to the `Running` transition, plus one
    /// (zero means "not started yet"). The `+1` sentinel keeps the
    /// legitimate 0µs reading distinguishable from "unset".
    started_us: AtomicU64,
    /// Micros from `created` to the terminal transition, plus one.
    finished_us: AtomicU64,
    /// Cumulative micros from `created` at each completed phase
    /// boundary (single-seed scenario jobs only; sweeps interleave
    /// phases across seeds, so per-phase timing is not well-defined).
    phase_us: Mutex<Vec<u64>>,
    /// The result-cache key this job is (or was) registered under —
    /// how retirement paths (failure, cancellation, history eviction)
    /// find their cache entry to drop.
    cache_key: Mutex<Option<u64>>,
}

impl Job {
    /// A fresh `Queued` job.
    pub fn new(id: u64, kind: JobKind) -> Arc<Job> {
        Arc::new(Job {
            id,
            kind,
            cancel: CancelToken::new(),
            lines: LineBuffer::new(),
            status: Mutex::new(JobStatus::Queued),
            status_cv: Condvar::new(),
            created: Instant::now(),
            started_us: AtomicU64::new(0),
            finished_us: AtomicU64::new(0),
            phase_us: Mutex::new(Vec::new()),
            cache_key: Mutex::new(None),
        })
    }

    /// Record the cache key this job was inserted under.
    pub fn set_cache_key(&self, key: u64) {
        *self.cache_key.lock().expect("cache key poisoned") = Some(key);
    }

    /// The cache key this job was inserted under, if any.
    pub fn cache_key(&self) -> Option<u64> {
        *self.cache_key.lock().expect("cache key poisoned")
    }

    /// Record a completed phase boundary (worker hook; feeds the
    /// `phase_us` durations in [`Job::status_json`]).
    pub fn mark_phase(&self) {
        self.phase_us
            .lock()
            .expect("phase timings poisoned")
            .push(self.created.elapsed().as_micros() as u64);
    }

    /// Current status (cloned).
    pub fn status(&self) -> JobStatus {
        self.status.lock().expect("job status poisoned").clone()
    }

    /// Transition to `next`. Terminal states also close the stream, so
    /// every follower unblocks; transitions out of a terminal state are
    /// ignored (first terminal verdict wins — e.g. a cancel racing a
    /// natural completion).
    pub fn set_status(&self, next: JobStatus) {
        let mut st = self.status.lock().expect("job status poisoned");
        if st.is_terminal() {
            return;
        }
        let terminal = next.is_terminal();
        let stamp = self.created.elapsed().as_micros() as u64 + 1;
        match &next {
            JobStatus::Running => {
                self.started_us.store(stamp, Ordering::Relaxed);
            }
            JobStatus::Completed => {
                self.finished_us.store(stamp, Ordering::Relaxed);
                bbncg_obs::counter_inc(Counter::JobsCompleted);
            }
            JobStatus::Failed(_) => {
                self.finished_us.store(stamp, Ordering::Relaxed);
                bbncg_obs::counter_inc(Counter::JobsFailed);
            }
            JobStatus::Cancelled => {
                self.finished_us.store(stamp, Ordering::Relaxed);
                bbncg_obs::counter_inc(Counter::JobsCancelled);
            }
            JobStatus::Queued => {}
        }
        *st = next;
        drop(st);
        if terminal {
            self.lines.close();
        }
        self.status_cv.notify_all();
    }

    /// Block until the job reaches a terminal status, and return it.
    pub fn wait_terminal(&self) -> JobStatus {
        let mut st = self.status.lock().expect("job status poisoned");
        while !st.is_terminal() {
            st = self.status_cv.wait(st).expect("job status poisoned");
        }
        st.clone()
    }

    /// One-line JSON status document (the `GET /jobs/{id}` body).
    ///
    /// Lifecycle timings appear as they become defined:
    /// `queue_wait_us` once the job has started (submit → worker
    /// pickup), `run_us` once it is terminal (pickup → terminal), and
    /// `phase_us` as per-phase durations for single-seed scenario
    /// jobs. A job cancelled straight out of the queue reports
    /// neither (it never ran).
    pub fn status_json(&self) -> String {
        let status = self.status();
        let mut s = format!(
            "{{\"job\":{},\"kind\":\"{}\",\"state\":\"{}\",\"records\":{}",
            self.id,
            self.kind.label(),
            status.label(),
            self.lines.len()
        );
        let started = self.started_us.load(Ordering::Relaxed);
        if started > 0 {
            s.push_str(&format!(",\"queue_wait_us\":{}", started - 1));
            let finished = self.finished_us.load(Ordering::Relaxed);
            if finished > 0 {
                s.push_str(&format!(
                    ",\"run_us\":{}",
                    (finished - 1).saturating_sub(started - 1)
                ));
            }
            let boundaries = self.phase_us.lock().expect("phase timings poisoned");
            if !boundaries.is_empty() {
                s.push_str(",\"phase_us\":[");
                let mut prev = started - 1;
                for (i, &b) in boundaries.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&b.saturating_sub(prev).to_string());
                    prev = b;
                }
                s.push(']');
            }
        }
        if let JobStatus::Failed(err) = &status {
            s.push_str(&format!(",\"error\":\"{}\"", json_escape(err)));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario_job(id: u64) -> Arc<Job> {
        let spec = bbncg_scenario::parse_spec(
            "[init]\nfamily = \"path\"\nparams = [4]\n[[phase]]\nkind = \"dynamics\"",
        )
        .unwrap();
        Job::new(
            id,
            JobKind::Scenario {
                spec: Box::new(spec),
                source: String::new(),
            },
        )
    }

    #[test]
    fn terminal_status_wins_and_closes_stream() {
        let job = scenario_job(7);
        assert_eq!(job.status(), JobStatus::Queued);
        job.set_status(JobStatus::Running);
        job.set_status(JobStatus::Completed);
        assert!(job.lines.is_closed());
        // A late cancel must not overwrite the completion.
        job.set_status(JobStatus::Cancelled);
        assert_eq!(job.status(), JobStatus::Completed);
        assert_eq!(job.wait_terminal(), JobStatus::Completed);
    }

    #[test]
    fn lifecycle_timestamps_surface_in_status_json() {
        let job = scenario_job(1);
        // Queued: no timings yet.
        assert!(!job.status_json().contains("queue_wait_us"));
        job.set_status(JobStatus::Running);
        let running = job.status_json();
        assert!(running.contains("\"queue_wait_us\":"), "{running}");
        assert!(!running.contains("run_us"), "{running}");
        job.mark_phase();
        job.mark_phase();
        job.set_status(JobStatus::Completed);
        let done = job.status_json();
        assert!(done.contains("\"run_us\":"), "{done}");
        assert!(done.contains("\"phase_us\":["), "{done}");
        // Two boundaries → two durations.
        let phases = done.split("\"phase_us\":[").nth(1).unwrap();
        let phases = phases.split(']').next().unwrap();
        assert_eq!(phases.split(',').count(), 2, "{done}");
    }

    #[test]
    fn queue_cancelled_job_reports_no_run_timings() {
        let job = scenario_job(2);
        job.set_status(JobStatus::Cancelled);
        let json = job.status_json();
        assert!(!json.contains("queue_wait_us"), "{json}");
        assert!(!json.contains("run_us"), "{json}");
    }

    #[test]
    fn status_json_carries_error_detail() {
        let job = scenario_job(3);
        job.set_status(JobStatus::Failed("phase 2: \"bad\"".into()));
        let json = job.status_json();
        assert!(json.contains("\"state\":\"failed\""), "{json}");
        assert!(json.contains("\\\"bad\\\""), "{json}");
    }
}
