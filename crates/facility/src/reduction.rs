//! The Theorem 2.1 reductions: facility location ⇌ best response.
//!
//! Given an undirected graph `H` on `n` vertices and an integer `k`,
//! build the game instance with `n + 1` players where players `1..n`
//! realize `H` (each edge oriented arbitrarily — their equilibrium
//! status is irrelevant) and the new player has budget `k`. Then:
//!
//! * a best response of the new player in the **MAX** version is an
//!   optimal **k-center** of `H`, with `c_MAX = 1 + radius`;
//! * a best response in the **SUM** version is an optimal **k-median**,
//!   with `c_SUM = n + cost` (each of the `n` old vertices is one step
//!   beyond its nearest center).
//!
//! The identities hold because every shortest path from the new vertex
//! enters `H` through one of its `k` arcs, and the new vertex shortcuts
//! no `H`-distance *to itself*. Tests cross-validate the exact
//! best-response solver against the exact facility solvers — an
//! end-to-end check of both the game engine and the reduction.

use crate::kcenter::covering_radius;
use crate::kmedian::assignment_cost;
use bbncg_core::{exact_best_response, CostModel, Realization};
use bbncg_graph::{Csr, DistanceMatrix, NodeId, OwnedDigraph};

/// Build the reduction instance: `H`'s edges oriented from the smaller
/// to the larger endpoint, plus a new player `n` owning `k` arcs to the
/// placeholder targets `0..k`.
///
/// # Panics
/// Panics unless `1 ≤ k ≤ n`.
pub fn reduction_instance(h: &Csr, k: usize) -> Realization {
    let n = h.n();
    assert!(k >= 1 && k <= n, "k = {k} out of range for n = {n}");
    let mut g = OwnedDigraph::empty(n + 1);
    for (u, v) in h.simple_edges() {
        g.add_arc(u, v);
    }
    for t in 0..k {
        g.add_arc(NodeId::new(n), NodeId::new(t));
    }
    Realization::new(g)
}

/// Solve k-center on `H` by computing the new player's exact best
/// response in the MAX version. Returns `(centers, radius)`.
pub fn kcenter_via_best_response(h: &Csr, k: usize) -> (Vec<NodeId>, u32) {
    let n = h.n();
    let r = reduction_instance(h, k);
    let br = exact_best_response(&r, NodeId::new(n), CostModel::Max);
    let radius = (br.cost - 1) as u32;
    (br.targets, radius)
}

/// Solve k-median on `H` by computing the new player's exact best
/// response in the SUM version. Returns `(centers, total_cost)`.
pub fn kmedian_via_best_response(h: &Csr, k: usize) -> (Vec<NodeId>, u64) {
    let n = h.n();
    let r = reduction_instance(h, k);
    let br = exact_best_response(&r, NodeId::new(n), CostModel::Sum);
    let cost = br.cost - n as u64;
    (br.targets, cost)
}

/// Verify the reduction identities on one graph: the best-response
/// optimum must equal the facility optimum under both objectives.
/// Returns `(kcenter_radius, kmedian_cost)`.
///
/// # Panics
/// Panics if either identity fails — used directly by tests and the
/// `e-nphard` experiment.
pub fn verify_reduction(h: &Csr, k: usize) -> (u32, u64) {
    let dm = DistanceMatrix::compute(h);
    let (br_centers, br_radius) = kcenter_via_best_response(h, k);
    let (_, opt_radius) = crate::kcenter::kcenter_exact(&dm, k);
    assert_eq!(
        br_radius, opt_radius,
        "k-center radius mismatch: best-response {br_radius} vs exact {opt_radius}"
    );
    assert_eq!(
        covering_radius(&dm, &br_centers),
        opt_radius,
        "best-response centers are not optimal k-center centers"
    );
    let (brm_centers, brm_cost) = kmedian_via_best_response(h, k);
    let (_, opt_cost) = crate::kmedian::kmedian_exact(&dm, k);
    assert_eq!(
        brm_cost, opt_cost,
        "k-median cost mismatch: best-response {brm_cost} vs exact {opt_cost}"
    );
    assert_eq!(
        assignment_cost(&dm, &brm_centers),
        opt_cost,
        "best-response centers are not optimal k-median centers"
    );
    (opt_radius, opt_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reduction_instance_shape() {
        let csr = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = reduction_instance(&csr, 2);
        assert_eq!(r.n(), 5);
        assert_eq!(r.graph().out_degree(NodeId::new(4)), 2);
        assert_eq!(r.graph().total_arcs(), 3 + 2);
    }

    #[test]
    fn identities_on_paths_and_cycles() {
        for n in [5usize, 8] {
            let path: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            let csr = Csr::from_edges(n, &path);
            for k in 1..=3 {
                verify_reduction(&csr, k);
            }
            let cycle: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            let csr = Csr::from_edges(n, &cycle);
            for k in 1..=3 {
                verify_reduction(&csr, k);
            }
        }
    }

    #[test]
    fn identities_on_grid() {
        let (n, edges) = generators::grid_edges(3, 3);
        let csr = Csr::from_edges(n, &edges);
        for k in 1..=3 {
            verify_reduction(&csr, k);
        }
    }

    #[test]
    fn identities_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [6usize, 9, 12] {
            let edges = generators::random_tree_edges(n, &mut rng);
            let csr = Csr::from_edges(n, &edges);
            for k in 1..=2 {
                verify_reduction(&csr, k);
            }
        }
    }

    #[test]
    fn disconnected_graph_reduction_still_exact() {
        // With k ≥ number of components, the best response connects all
        // of them; the C_inf conventions on both sides line up.
        let csr = Csr::from_edges(5, &[(0, 1), (2, 3)]);
        verify_reduction(&csr, 3);
    }

    #[test]
    fn one_center_on_star() {
        let g = generators::star(7);
        let csr = Csr::from_digraph(&g);
        let (centers, radius) = kcenter_via_best_response(&csr, 1);
        assert_eq!(centers, vec![NodeId::new(0)]);
        assert_eq!(radius, 1);
    }
}
