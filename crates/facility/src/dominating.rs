//! Exact k-center via radius binary search + distance-r dominating-set
//! branch and bound.
//!
//! [`kcenter_exact`](crate::kcenter_exact) enumerates all `C(n, k)`
//! center sets, which dies quickly as `n` grows. The classic stronger
//! exact approach: binary-search the optimal radius `r*` over the
//! distinct distance values, deciding each candidate radius `r` with a
//! set-cover search — "is there a set of ≤ k centers whose distance-r
//! balls cover V?" — pruned by always branching on the vertex with the
//! fewest candidate centers. Still exponential in the worst case
//! (k-center is NP-hard; Theorem 2.1 builds on exactly that), but
//! handles the reduction experiments at sizes enumeration cannot.

use bbncg_graph::{DistanceMatrix, NodeId, UNREACHED};

/// Fixed-size bitset over vertices.
#[derive(Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    fn empty(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    fn is_full(&self) -> bool {
        let full_words = self.len / 64;
        if self.words[..full_words].iter().any(|&w| w != u64::MAX) {
            return false;
        }
        let rem = self.len % 64;
        rem == 0 || self.words[full_words] == (1u64 << rem) - 1
    }

    fn first_unset(&self) -> Option<usize> {
        (0..self.len).find(|&i| !self.get(i))
    }
}

/// Decide: is there a center set of size ≤ `k` whose distance-`r` balls
/// cover every vertex? Returns such a set (sorted) if one exists.
pub fn kcenter_decision(dm: &DistanceMatrix, k: usize, r: u32) -> Option<Vec<NodeId>> {
    let n = dm.n();
    if n == 0 {
        return Some(Vec::new());
    }
    // ball[c] = set of vertices covered by a center at c.
    let balls: Vec<BitSet> = (0..n)
        .map(|c| {
            let mut b = BitSet::empty(n);
            for v in 0..n {
                let d = dm.dist(NodeId::new(c), NodeId::new(v));
                if d != UNREACHED && d <= r {
                    b.set(v);
                }
            }
            b
        })
        .collect();
    // coverers[v] = candidate centers covering v.
    let coverers: Vec<Vec<usize>> = (0..n)
        .map(|v| (0..n).filter(|&c| balls[c].get(v)).collect())
        .collect();
    if coverers.iter().any(Vec::is_empty) {
        return None; // some vertex unreachable within r from everywhere
    }

    fn search(
        covered: &BitSet,
        chosen: &mut Vec<usize>,
        k: usize,
        balls: &[BitSet],
        coverers: &[Vec<usize>],
    ) -> bool {
        if covered.is_full() {
            return true;
        }
        if chosen.len() == k {
            return false;
        }
        // Branch on the uncovered vertex with the fewest candidate
        // centers (fail-first ordering).
        let mut pick = covered.first_unset().unwrap();
        let mut best_deg = usize::MAX;
        for v in 0..covered.len {
            if !covered.get(v) && coverers[v].len() < best_deg {
                best_deg = coverers[v].len();
                pick = v;
            }
        }
        for &c in &coverers[pick] {
            let mut next = covered.clone();
            next.union_with(&balls[c]);
            chosen.push(c);
            if search(&next, chosen, k, balls, coverers) {
                return true;
            }
            chosen.pop();
        }
        false
    }

    let covered = BitSet::empty(n);
    let mut chosen = Vec::with_capacity(k);
    if search(&covered, &mut chosen, k, &balls, &coverers) {
        let mut out: Vec<NodeId> = chosen.into_iter().map(NodeId::new).collect();
        out.sort_unstable();
        Some(out)
    } else {
        None
    }
}

/// Exact k-center by binary search over the distinct distances, each
/// decided with [`kcenter_decision`]. Returns `(centers, radius)`;
/// radius is [`UNREACHED`] when even `r = ∞` cannot cover (never for
/// `k ≥ 1` on any graph, since balls include their center).
///
/// # Panics
/// Panics unless `1 ≤ k ≤ n`.
pub fn kcenter_branch_bound(dm: &DistanceMatrix, k: usize) -> (Vec<NodeId>, u32) {
    let n = dm.n();
    assert!(k >= 1 && k <= n, "k = {k} out of range for n = {n}");
    // Candidate radii: distinct finite distances (0 included).
    let mut radii: Vec<u32> = Vec::new();
    for u in 0..n {
        for &d in dm.row(NodeId::new(u)) {
            if d != UNREACHED {
                radii.push(d);
            }
        }
    }
    radii.sort_unstable();
    radii.dedup();
    // Binary search the smallest feasible radius.
    let mut lo = 0usize;
    let mut hi = radii.len() - 1;
    // If even the largest finite radius fails (disconnected & k too
    // small), report UNREACHED.
    if kcenter_decision(dm, k, radii[hi]).is_none() {
        return (Vec::new(), UNREACHED);
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if kcenter_decision(dm, k, radii[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let centers = kcenter_decision(dm, k, radii[lo]).expect("feasible by search");
    (centers, radii[lo])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcenter::{covering_radius, kcenter_exact};
    use bbncg_graph::{generators, Csr};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_dm(n: usize) -> DistanceMatrix {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        DistanceMatrix::compute(&Csr::from_edges(n, &edges))
    }

    #[test]
    fn matches_enumeration_on_paths() {
        for n in [5usize, 8, 11] {
            let dm = path_dm(n);
            for k in 1..=3 {
                let (_, enum_r) = kcenter_exact(&dm, k);
                let (centers, bb_r) = kcenter_branch_bound(&dm, k);
                assert_eq!(bb_r, enum_r, "n={n}, k={k}");
                assert_eq!(covering_radius(&dm, &centers), bb_r);
            }
        }
    }

    #[test]
    fn matches_enumeration_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [8usize, 12] {
            let edges = generators::random_connected_edges(n, n / 2, &mut rng);
            let dm = DistanceMatrix::compute(&Csr::from_edges(n, &edges));
            for k in 1..=3 {
                let (_, enum_r) = kcenter_exact(&dm, k);
                let (_, bb_r) = kcenter_branch_bound(&dm, k);
                assert_eq!(bb_r, enum_r, "n={n}, k={k}");
            }
        }
    }

    #[test]
    fn scales_past_enumeration_comfort() {
        // 6x6 grid, k = 4: C(36, 4) = 58 905 is still enumerable, but
        // B&B should agree and is the scalable path.
        let (n, edges) = generators::grid_edges(6, 6);
        let dm = DistanceMatrix::compute(&Csr::from_edges(n, &edges));
        let (_, enum_r) = kcenter_exact(&dm, 4);
        let (centers, r) = kcenter_branch_bound(&dm, 4);
        assert_eq!(r, enum_r);
        assert_eq!(covering_radius(&dm, &centers), r);
    }

    #[test]
    fn decision_radius_zero() {
        let dm = path_dm(4);
        assert!(kcenter_decision(&dm, 4, 0).is_some());
        assert!(kcenter_decision(&dm, 3, 0).is_none());
    }

    #[test]
    fn disconnected_needs_one_center_per_component() {
        let dm = DistanceMatrix::compute(&Csr::from_edges(4, &[(0, 1), (2, 3)]));
        let (_, r1) = kcenter_branch_bound(&dm, 1);
        assert_eq!(r1, UNREACHED);
        let (centers, r2) = kcenter_branch_bound(&dm, 2);
        assert_eq!(r2, 1);
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn bitset_edge_cases() {
        let mut b = BitSet::empty(64);
        assert!(!b.is_full());
        for i in 0..64 {
            b.set(i);
        }
        assert!(b.is_full());
        assert_eq!(b.first_unset(), None);
        let mut b = BitSet::empty(65);
        for i in 0..64 {
            b.set(i);
        }
        assert!(!b.is_full());
        assert_eq!(b.first_unset(), Some(64));
    }
}
