//! The (vertex) k-center problem on graph metrics.
//!
//! Given a graph and `k`, choose `k` centers minimizing the maximum
//! distance from any vertex to its nearest center. NP-hard; Theorem 2.1
//! reduces it to best-response computation in the MAX version of the
//! bounded-budget game, which is why it lives in this workspace.
//!
//! Solvers: the Gonzalez farthest-point greedy (a 2-approximation on
//! metrics) and exact enumeration for small instances.

use bbncg_core::oracle::{enumeration_count, CombinationOdometer};
use bbncg_graph::{DistanceMatrix, NodeId, UNREACHED};

/// Largest exact-enumeration budget (`C(n, k)` candidate sets).
pub const MAX_EXACT_SETS: u64 = 20_000_000;

/// `max_v min_{c ∈ centers} dist(v, c)` — the k-center objective.
/// Returns [`UNREACHED`] if some vertex cannot reach any center.
pub fn covering_radius(dm: &DistanceMatrix, centers: &[NodeId]) -> u32 {
    assert!(!centers.is_empty(), "need at least one center");
    let n = dm.n();
    let mut worst = 0u32;
    for v in 0..n {
        let v = NodeId::new(v);
        let best = centers.iter().map(|&c| dm.dist(v, c)).min().unwrap();
        if best == UNREACHED {
            return UNREACHED;
        }
        worst = worst.max(best);
    }
    worst
}

/// Gonzalez farthest-point greedy: start from `start`, repeatedly add
/// the vertex farthest from the current center set. A 2-approximation
/// for k-center on connected graphs.
///
/// ```
/// use bbncg_facility::{covering_radius, kcenter_greedy};
/// use bbncg_graph::{Csr, DistanceMatrix, NodeId};
///
/// let edges: Vec<(usize, usize)> = (0..6).map(|i| (i, i + 1)).collect();
/// let dm = DistanceMatrix::compute(&Csr::from_edges(7, &edges));
/// let centers = kcenter_greedy(&dm, 2, NodeId::new(0));
/// assert!(covering_radius(&dm, &centers) <= 2 * 2); // within 2x optimum
/// ```
///
/// # Panics
/// Panics if `k` is 0 or exceeds `n`.
pub fn kcenter_greedy(dm: &DistanceMatrix, k: usize, start: NodeId) -> Vec<NodeId> {
    let n = dm.n();
    assert!(k >= 1 && k <= n, "k = {k} out of range for n = {n}");
    let mut centers = vec![start];
    let mut nearest: Vec<u32> = (0..n).map(|v| dm.dist(NodeId::new(v), start)).collect();
    while centers.len() < k {
        let far = (0..n)
            .max_by_key(|&v| (nearest[v], std::cmp::Reverse(v)))
            .map(NodeId::new)
            .unwrap();
        centers.push(far);
        for v in 0..n {
            let d = dm.dist(NodeId::new(v), far);
            if d < nearest[v] {
                nearest[v] = d;
            }
        }
    }
    centers.sort_unstable();
    centers
}

/// Exact k-center by exhaustive enumeration (lexicographically first
/// optimum). Intended for the cross-validation tests of the Theorem 2.1
/// reduction; guard: `C(n, k)` ≤ [`MAX_EXACT_SETS`].
pub fn kcenter_exact(dm: &DistanceMatrix, k: usize) -> (Vec<NodeId>, u32) {
    let n = dm.n();
    assert!(k >= 1 && k <= n, "k = {k} out of range for n = {n}");
    let count = enumeration_count(n, k);
    assert!(
        count <= MAX_EXACT_SETS,
        "exact k-center would enumerate {count} sets"
    );
    let mut od = CombinationOdometer::new(n, k);
    let mut best: Option<(Vec<NodeId>, u32)> = None;
    loop {
        let centers: Vec<NodeId> = od.indices().iter().map(|&i| NodeId::new(i)).collect();
        let radius = covering_radius(dm, &centers);
        if best.as_ref().is_none_or(|&(_, r)| radius < r) {
            let done = radius == 0;
            best = Some((centers, radius));
            if done {
                break;
            }
        }
        if !od.advance() {
            break;
        }
    }
    best.expect("at least one center set exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::{generators, Csr};

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn path_dm(n: usize) -> DistanceMatrix {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        DistanceMatrix::compute(&Csr::from_edges(n, &edges))
    }

    #[test]
    fn radius_on_path() {
        let dm = path_dm(7);
        assert_eq!(covering_radius(&dm, &[v(3)]), 3);
        assert_eq!(covering_radius(&dm, &[v(0)]), 6);
        assert_eq!(covering_radius(&dm, &[v(1), v(5)]), 2); // v3 is 2 from both
    }

    #[test]
    fn exact_1_center_is_graph_center() {
        let dm = path_dm(7);
        let (centers, r) = kcenter_exact(&dm, 1);
        assert_eq!(centers, vec![v(3)]);
        assert_eq!(r, 3);
    }

    #[test]
    fn exact_2_center_on_path() {
        // Path 0..6 split into halves: radius 1 with centers {1, 5}
        // covers 0-2 and 4-6... vertex 3 at distance 2. n=7 needs
        // radius 2? {1,4}: d(6,4)=2 -> radius 2? {1,5}: d(3)=2 -> 2.
        // Can radius 1 cover 7 path vertices with 2 centers? Each
        // center covers ≤ 3 vertices -> 6 < 7, no. So optimum is 2.
        let dm = path_dm(7);
        let (_, r) = kcenter_exact(&dm, 2);
        assert_eq!(r, 2);
    }

    #[test]
    fn greedy_is_within_factor_two() {
        let (n, edges) = generators::grid_edges(5, 4);
        let dm = DistanceMatrix::compute(&Csr::from_edges(n, &edges));
        for k in 1..=4 {
            let (_, opt) = kcenter_exact(&dm, k);
            for start in [0, 7, 19] {
                let centers = kcenter_greedy(&dm, k, v(start));
                let r = covering_radius(&dm, &centers);
                assert!(
                    r <= 2 * opt.max(1),
                    "greedy radius {r} exceeds 2x optimum {opt} (k={k})"
                );
            }
        }
    }

    #[test]
    fn greedy_all_vertices_as_centers() {
        let dm = path_dm(4);
        let centers = kcenter_greedy(&dm, 4, v(0));
        assert_eq!(centers.len(), 4);
        assert_eq!(covering_radius(&dm, &centers), 0);
    }

    #[test]
    fn unreachable_vertices_detected() {
        let dm = DistanceMatrix::compute(&Csr::from_edges(4, &[(0, 1), (2, 3)]));
        assert_eq!(covering_radius(&dm, &[v(0)]), UNREACHED);
        assert_eq!(covering_radius(&dm, &[v(0), v(2)]), 1);
    }
}
