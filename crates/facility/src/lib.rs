//! Facility-location substrate: k-center, k-median, and the Theorem 2.1
//! reductions.
//!
//! Theorem 2.1 of the paper proves best-response computation NP-hard by
//! reduction **from** k-center (MAX version) and k-median (SUM
//! version). This crate implements both problems — greedy /
//! local-search heuristics plus exact small-instance solvers — and the
//! reduction itself, wired so that the game's exact best-response
//! solver and the facility solvers can cross-validate each other
//! (experiment `e-nphard`).

#![warn(missing_docs)]
// Index loops here typically walk several parallel arrays at once;
// the index form is clearer than zipped iterators in those spots.
#![allow(clippy::needless_range_loop)]

pub mod dominating;
pub mod kcenter;
pub mod kmedian;
pub mod reduction;

pub use dominating::{kcenter_branch_bound, kcenter_decision};
pub use kcenter::{covering_radius, kcenter_exact, kcenter_greedy};
pub use kmedian::{assignment_cost, kmedian_exact, kmedian_greedy, kmedian_local_search};
pub use reduction::{
    kcenter_via_best_response, kmedian_via_best_response, reduction_instance, verify_reduction,
};
