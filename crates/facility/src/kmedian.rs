//! The (vertex) k-median problem on graph metrics.
//!
//! Choose `k` centers minimizing the **sum** of distances from every
//! vertex to its nearest center. NP-hard; Theorem 2.1 reduces it to
//! best-response computation in the SUM version of the game.
//!
//! Solvers: marginal greedy, single-swap local search (the classic
//! constant-factor heuristic), and exact enumeration for small
//! instances.

use bbncg_core::oracle::{enumeration_count, CombinationOdometer};
use bbncg_graph::{DistanceMatrix, NodeId, UNREACHED};

/// Largest exact-enumeration budget (`C(n, k)` candidate sets).
pub const MAX_EXACT_SETS: u64 = 20_000_000;

/// `Σ_v min_{c ∈ centers} dist(v, c)` — the k-median objective.
/// Unreachable vertices contribute `n²` each (mirroring the game's
/// `C_inf` convention; the Theorem 2.1 identity is exact whenever the
/// optima connect every component, and both objectives prefer
/// connecting whenever `k` allows it).
pub fn assignment_cost(dm: &DistanceMatrix, centers: &[NodeId]) -> u64 {
    assert!(!centers.is_empty(), "need at least one center");
    let n = dm.n();
    let cinf = (n as u64) * (n as u64);
    let mut total = 0u64;
    for v in 0..n {
        let v = NodeId::new(v);
        let best = centers.iter().map(|&c| dm.dist(v, c)).min().unwrap();
        total += if best == UNREACHED { cinf } else { best as u64 };
    }
    total
}

/// Marginal greedy: repeatedly add the center that decreases the
/// objective the most (ties toward the smallest id).
pub fn kmedian_greedy(dm: &DistanceMatrix, k: usize) -> Vec<NodeId> {
    let n = dm.n();
    assert!(k >= 1 && k <= n, "k = {k} out of range for n = {n}");
    let cinf = (n as u64) * (n as u64);
    let mut nearest = vec![u64::MAX; n];
    let mut centers: Vec<NodeId> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(u64, usize)> = None;
        for c in 0..n {
            let cid = NodeId::new(c);
            if centers.contains(&cid) {
                continue;
            }
            let mut total = 0u64;
            for x in 0..n {
                let d = dm.dist(NodeId::new(x), cid);
                let d = if d == UNREACHED { cinf } else { d as u64 };
                total += d.min(nearest[x]);
            }
            if best.is_none_or(|(t, _)| total < t) {
                best = Some((total, c));
            }
        }
        let (_, c) = best.expect("candidate pool nonempty");
        let cid = NodeId::new(c);
        centers.push(cid);
        for x in 0..n {
            let d = dm.dist(NodeId::new(x), cid);
            let d = if d == UNREACHED { cinf } else { d as u64 };
            nearest[x] = nearest[x].min(d);
        }
    }
    centers.sort_unstable();
    centers
}

/// Single-swap local search started from the greedy solution: while
/// some (center, non-center) swap strictly improves the objective,
/// apply the best such swap. Polynomial per iteration; the classic
/// 5-approximation neighbourhood.
pub fn kmedian_local_search(dm: &DistanceMatrix, k: usize) -> (Vec<NodeId>, u64) {
    let n = dm.n();
    let mut centers = kmedian_greedy(dm, k);
    let mut cost = assignment_cost(dm, &centers);
    loop {
        let mut best_swap: Option<(u64, usize, NodeId)> = None;
        for i in 0..centers.len() {
            let old = centers[i];
            for c in 0..n {
                let cid = NodeId::new(c);
                if centers.contains(&cid) {
                    continue;
                }
                centers[i] = cid;
                let trial = assignment_cost(dm, &centers);
                if trial < cost && best_swap.is_none_or(|(t, _, _)| trial < t) {
                    best_swap = Some((trial, i, cid));
                }
                centers[i] = old;
            }
        }
        match best_swap {
            Some((new_cost, i, cid)) => {
                centers[i] = cid;
                cost = new_cost;
            }
            None => break,
        }
    }
    centers.sort_unstable();
    (centers, cost)
}

/// Exact k-median by exhaustive enumeration (lexicographically first
/// optimum); guard: `C(n, k)` ≤ [`MAX_EXACT_SETS`].
pub fn kmedian_exact(dm: &DistanceMatrix, k: usize) -> (Vec<NodeId>, u64) {
    let n = dm.n();
    assert!(k >= 1 && k <= n, "k = {k} out of range for n = {n}");
    let count = enumeration_count(n, k);
    assert!(
        count <= MAX_EXACT_SETS,
        "exact k-median would enumerate {count} sets"
    );
    let mut od = CombinationOdometer::new(n, k);
    let mut best: Option<(Vec<NodeId>, u64)> = None;
    loop {
        let centers: Vec<NodeId> = od.indices().iter().map(|&i| NodeId::new(i)).collect();
        let cost = assignment_cost(dm, &centers);
        if best.as_ref().is_none_or(|&(_, c)| cost < c) {
            best = Some((centers, cost));
        }
        if !od.advance() {
            break;
        }
    }
    best.expect("at least one center set exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::{generators, Csr};

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn path_dm(n: usize) -> DistanceMatrix {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        DistanceMatrix::compute(&Csr::from_edges(n, &edges))
    }

    #[test]
    fn cost_on_path() {
        let dm = path_dm(5);
        assert_eq!(assignment_cost(&dm, &[v(2)]), 1 + 1 + 2 + 2);
        assert_eq!(assignment_cost(&dm, &[v(0), v(4)]), 4); // dists 0,1,2,1,0
    }

    #[test]
    fn exact_1_median_of_star() {
        let g = generators::star(6);
        let dm = DistanceMatrix::compute(&Csr::from_digraph(&g));
        let (centers, cost) = kmedian_exact(&dm, 1);
        assert_eq!(centers, vec![v(0)]);
        assert_eq!(cost, 5);
    }

    #[test]
    fn local_search_matches_exact_on_small_grids() {
        let (n, edges) = generators::grid_edges(4, 3);
        let dm = DistanceMatrix::compute(&Csr::from_edges(n, &edges));
        for k in 1..=3 {
            let (_, opt) = kmedian_exact(&dm, k);
            let (_, ls) = kmedian_local_search(&dm, k);
            assert!(ls >= opt);
            assert!(
                ls <= opt * 5,
                "local search {ls} not within 5x of optimum {opt}"
            );
        }
    }

    #[test]
    fn greedy_full_k_covers_everything() {
        let dm = path_dm(4);
        let centers = kmedian_greedy(&dm, 4);
        assert_eq!(assignment_cost(&dm, &centers), 0);
    }

    #[test]
    fn disconnected_pays_cinf() {
        let dm = DistanceMatrix::compute(&Csr::from_edges(3, &[(0, 1)]));
        assert_eq!(assignment_cost(&dm, &[v(0)]), 1 + 9);
        assert_eq!(assignment_cost(&dm, &[v(0), v(2)]), 1);
    }

    #[test]
    fn exact_2_median_on_path() {
        let dm = path_dm(6);
        let (centers, cost) = kmedian_exact(&dm, 2);
        // {1, 4}: costs 1,0,1 | 1,0,1 = 4 — optimal.
        assert_eq!(cost, 4);
        assert_eq!(centers, vec![v(1), v(4)]);
    }
}
