//! Declarative analysis reports: scenario JSONL in, one self-contained
//! HTML artifact out.
//!
//! A report spec (the scenario TOML subset, see [`spec`]) lists
//! analyses — convergence curves, perturbation recovery, PoA spectra
//! vs the paper's Table 1, an equilibrium census vs the
//! Àlvarez–Messegué structural bounds, an observability digest — and
//! [`run_report`] resolves them against either a fresh scenario run or
//! a pre-recorded JSONL stream, emits one schema-versioned JSON
//! fragment per analysis, and renders everything into a single HTML
//! page with inline SVG charts: no scripts, no external assets, no
//! network.
//!
//! The same renderer backs `bbncg report` offline and serve's
//! `GET /jobs/{id}/report` ([`render_stream_report`]); because served
//! streams are byte-identical to offline JSONL, the two artifacts are
//! byte-identical too.

#![warn(missing_docs)]

pub mod analyses;
pub mod ingest;
pub mod json;
pub mod render;
pub mod spec;
pub mod svg;

pub use analyses::{Fragment, ObsDelta, FRAGMENT_SCHEMA_VERSION};
pub use ingest::{parse_lines, Record};
pub use render::{render_page, self_containment_violation};
pub use spec::{parse_report, AnalysisSpec, ReportSpec};

use bbncg_scenario::{parse_spec, MemorySink};

/// Where the record stream for record-consuming analyses comes from.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReportInputs<'a> {
    /// Text of the scenario spec named by `[report] scenario = "…"`
    /// (the caller resolves the path and reads the file).
    pub scenario_text: Option<&'a str>,
    /// Pre-recorded JSONL (`--from`): ingest instead of running.
    pub jsonl: Option<&'a str>,
}

/// Execute a report: resolve inputs, build every fragment, render the
/// page. Deterministic for fixed spec + inputs (the `obs-digest`
/// analysis additionally requires the process's counter activity to be
/// quiescent, which the CLI guarantees by running one report per
/// process).
pub fn run_report(report: &ReportSpec, inputs: ReportInputs<'_>) -> Result<String, String> {
    let mut records: Vec<Record> = Vec::new();
    let mut delta = ObsDelta::default();
    let mut subtitle = String::new();

    if report.needs_records() {
        match inputs.jsonl {
            Some(jsonl) => {
                if report.needs_obs() {
                    return Err(
                        "obs-digest reads live counters from a fresh run; drop --from \
                         or remove the obs-digest analysis"
                            .to_string(),
                    );
                }
                records = ingest::parse_lines(jsonl)?;
                subtitle = format!(
                    "ingested {} records (scenario {:?})",
                    records.len(),
                    records[0].scenario
                );
            }
            None => {
                let text = inputs.scenario_text.ok_or_else(|| {
                    "report needs the scenario spec text (is [report] scenario set?)".to_string()
                })?;
                let mut scenario = parse_spec(text).map_err(|e| format!("scenario: {e}"))?;
                if let Some(seed) = report.seed {
                    scenario.seed = seed;
                }
                if report.needs_obs() {
                    bbncg_obs::enable();
                }
                let before = ObsDelta::snapshot();
                let mut sink = MemorySink::default();
                let outcomes = bbncg_scenario::run_sweep(&scenario, &mut sink);
                delta = ObsDelta::snapshot().since(&before);
                for outcome in &outcomes {
                    if let Err(e) = outcome {
                        return Err(format!("scenario run failed: {e}"));
                    }
                }
                records = sink.records.iter().map(Record::from_metric).collect();
                subtitle = format!(
                    "scenario {:?}, seed {} × {} seed(s), {} records",
                    scenario.name,
                    scenario.seed,
                    scenario.seeds,
                    records.len()
                );
            }
        }
    }

    let fragments: Vec<Fragment> = report
        .analyses
        .iter()
        .map(|a| analyses::build(a, &records, &delta))
        .collect();
    let html = render_page(&report.title, &subtitle, &fragments);
    debug_assert_eq!(self_containment_violation(&html), None);
    Ok(html)
}

/// The `--dry-run` plan: what [`run_report`] would do, one line per
/// step, executing nothing.
pub fn plan(report: &ReportSpec, from: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str(&format!("report: {}\n", report.title));
    if report.needs_records() {
        match (from, &report.scenario) {
            (Some(path), _) => out.push_str(&format!("input: ingest JSONL from {path}\n")),
            (None, Some(scenario)) => {
                out.push_str(&format!("input: run scenario {scenario}"));
                if let Some(seed) = report.seed {
                    out.push_str(&format!(" (seed override {seed})"));
                }
                out.push('\n');
            }
            (None, None) => out.push_str("input: (missing scenario)\n"),
        }
    } else {
        out.push_str("input: none (all analyses self-sampling)\n");
    }
    for (i, a) in report.analyses.iter().enumerate() {
        let what = match a {
            AnalysisSpec::Convergence => {
                "steps/rounds to quiescence per seed, from dynamics phases".to_string()
            }
            AnalysisSpec::Recovery => {
                "recovery rounds/steps after each perturbation event".to_string()
            }
            AnalysisSpec::ObsDigest => {
                "prune-hit + speculative commit/discard rates from live counters".to_string()
            }
            AnalysisSpec::PoaSpectrum {
                sizes,
                budget,
                samples,
                max_rounds,
                model,
            } => format!(
                "scan sizes {sizes:?}, uniform budget {budget}, {samples} samples/size, \
                 {model:?} cost, round cap {max_rounds}"
            ),
            AnalysisSpec::Census {
                n,
                budget,
                samples,
                max_rounds,
                model,
                seed,
            } => format!(
                "sample {samples} equilibria at n = {n}, uniform budget {budget}, \
                 {model:?} cost, round cap {max_rounds}, base seed {seed}"
            ),
        };
        out.push_str(&format!("{:>2}. {:<13} {what}\n", i + 1, a.kind()));
    }
    out
}

/// Render the default "stream report" — convergence + recovery — from
/// a record stream alone (no report spec). This is what serve's
/// `GET /jobs/{id}/report` renders from a job's buffered lines and
/// what `bbncg report --from FILE` (no spec) renders offline; the two
/// are byte-identical because the streams are.
pub fn render_stream_report(jsonl: &str) -> Result<String, String> {
    let records = ingest::parse_lines(jsonl)?;
    let title = format!("stream report: {}", records[0].scenario);
    let subtitle = format!("ingested {} records", records.len());
    let delta = ObsDelta::default();
    let fragments = vec![
        analyses::build(&AnalysisSpec::Convergence, &records, &delta),
        analyses::build(&AnalysisSpec::Recovery, &records, &delta),
    ];
    let html = render_page(&title, &subtitle, &fragments);
    debug_assert_eq!(self_containment_violation(&html), None);
    Ok(html)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO: &str = r#"
[scenario]
name = "tiny"
seed = 3
seeds = 2

[init]
family = "uniform"
n = 6
budget = 1

[[phase]]
kind = "dynamics"

[[phase]]
kind = "arrive"
count = 1
budget = 1

[[phase]]
kind = "dynamics"
"#;

    const REPORT: &str = r#"
[report]
title = "tiny study"
scenario = "tiny.toml"

[[analysis]]
kind = "convergence"

[[analysis]]
kind = "recovery"

[[analysis]]
kind = "poa-spectrum"
sizes = [5, 6]
samples = 2
max_rounds = 100

[[analysis]]
kind = "census"
n = 6
samples = 3
max_rounds = 100
"#;

    #[test]
    fn four_kinds_end_to_end_and_deterministic() {
        let spec = parse_report(REPORT).unwrap();
        let inputs = ReportInputs {
            scenario_text: Some(SCENARIO),
            jsonl: None,
        };
        let a = run_report(&spec, inputs).unwrap();
        let b = run_report(&spec, inputs).unwrap();
        assert_eq!(a, b, "report rendering must be byte-deterministic");
        assert_eq!(self_containment_violation(&a), None);
        for kind in ["convergence", "recovery", "poa-spectrum", "census"] {
            assert!(
                a.contains(&format!("<section id=\"{kind}\">")),
                "{kind} missing"
            );
        }
    }

    #[test]
    fn from_jsonl_matches_fresh_run_for_record_analyses() {
        // A fresh run and an ingest of that run's own JSONL must agree
        // on every record-derived fragment.
        let scenario = parse_spec(SCENARIO).unwrap();
        let mut sink = bbncg_scenario::StringSink::default();
        for outcome in bbncg_scenario::run_sweep(&scenario, &mut sink) {
            outcome.unwrap();
        }
        let jsonl = sink.out;

        let spec = parse_report(
            "[report]\nscenario = \"x\"\n[[analysis]]\nkind = \"convergence\"\n\
             [[analysis]]\nkind = \"recovery\"\n",
        )
        .unwrap();
        let fresh = run_report(
            &spec,
            ReportInputs {
                scenario_text: Some(SCENARIO),
                jsonl: None,
            },
        )
        .unwrap();
        let ingested = run_report(
            &spec,
            ReportInputs {
                scenario_text: None,
                jsonl: Some(&jsonl),
            },
        )
        .unwrap();
        // Subtitles differ (run vs ingest provenance); every fragment
        // section must not.
        let section = |html: &str| {
            let start = html.find("<section").unwrap();
            let end = html.rfind("</section>").unwrap() + "</section>".len();
            html[start..end].to_string()
        };
        assert_eq!(section(&fresh), section(&ingested));
    }

    #[test]
    fn obs_digest_rejects_ingested_streams() {
        let spec =
            parse_report("[report]\nscenario = \"x\"\n[[analysis]]\nkind = \"obs-digest\"\n")
                .unwrap();
        let err = run_report(
            &spec,
            ReportInputs {
                scenario_text: None,
                jsonl: Some("{}"),
            },
        )
        .unwrap_err();
        assert!(err.contains("obs-digest"), "{err}");
    }

    #[test]
    fn obs_digest_runs_fresh() {
        let spec =
            parse_report("[report]\nscenario = \"x\"\n[[analysis]]\nkind = \"obs-digest\"\n")
                .unwrap();
        let html = run_report(
            &spec,
            ReportInputs {
                scenario_text: Some(SCENARIO),
                jsonl: None,
            },
        )
        .unwrap();
        assert!(html.contains("<section id=\"obs-digest\">"));
        assert!(html.contains("dynamics rounds"));
    }

    #[test]
    fn plan_prints_without_executing() {
        let spec = parse_report(REPORT).unwrap();
        let p = plan(&spec, None);
        assert!(p.contains("report: tiny study"));
        assert!(p.contains("input: run scenario tiny.toml"));
        assert!(p.contains("1. convergence"));
        assert!(p.contains("4. census"));
        let p2 = plan(&spec, Some("out.jsonl"));
        assert!(p2.contains("input: ingest JSONL from out.jsonl"));
    }

    #[test]
    fn stream_report_is_deterministic_and_self_contained() {
        let scenario = parse_spec(SCENARIO).unwrap();
        let mut sink = bbncg_scenario::StringSink::default();
        for outcome in bbncg_scenario::run_sweep(&scenario, &mut sink) {
            outcome.unwrap();
        }
        let a = render_stream_report(&sink.out).unwrap();
        let b = render_stream_report(&sink.out).unwrap();
        assert_eq!(a, b);
        assert_eq!(self_containment_violation(&a), None);
        assert!(a.contains("stream report: tiny"));
    }
}
