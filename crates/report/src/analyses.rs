//! The five report analyses. Each produces a [`Fragment`]: a
//! schema-versioned JSON blob (machine-readable, embedded verbatim in
//! the page) plus the HTML/SVG section body.
//!
//! Output is byte-deterministic for fixed inputs: floats print at
//! fixed precision (`{:.3}`, NaN → `null`), iteration orders are
//! source/seed order, and the sampling analyses delegate to the
//! deterministic sweeps in `bbncg-analysis`.

use crate::ingest::Record;
use crate::render::{html_escape, table};
use crate::spec::AnalysisSpec;
use crate::svg::{self, Series};
use bbncg_analysis::{poa_scan, sample_equilibria, summarize};
use bbncg_core::dynamics::DynamicsConfig;
use bbncg_core::{BudgetVector, CostModel};
use bbncg_graph::{eccentricities, GraphMetrics, NodeId};

/// Schema version stamped into every JSON fragment.
pub const FRAGMENT_SCHEMA_VERSION: u64 = 1;

/// One rendered analysis: the JSON fragment and the HTML section body.
#[derive(Clone, Debug)]
pub struct Fragment {
    /// Analysis kind (`"convergence"`, …).
    pub kind: &'static str,
    /// Section heading.
    pub title: String,
    /// Schema-versioned JSON fragment.
    pub json: String,
    /// Section body: charts and tables (no heading, no wrapper).
    pub html: String,
}

/// Counter deltas captured around a fresh scenario run, for the
/// `obs-digest` analysis. All values are differences of
/// [`bbncg_obs::counter_value`] snapshots taken before/after the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsDelta {
    /// Candidates priced by a full traversal (all kernels).
    pub priced: u64,
    /// Candidates skipped by a lower bound (all kernels).
    pub prune_skips: u64,
    /// Candidates priced exactly from the bound, without a BFS.
    pub prune_exact: u64,
    /// Speculative windows opened by the parallel round executor.
    pub rounds_windows: u64,
    /// Speculative proposal evaluations.
    pub rounds_evals: u64,
    /// Speculative proposals committed.
    pub rounds_commits: u64,
    /// Speculative evaluations discarded.
    pub rounds_discards: u64,
    /// Dynamics rounds executed.
    pub dynamics_rounds: u64,
    /// Improving moves committed.
    pub dynamics_steps: u64,
    /// Scenario phases entered.
    pub scenario_phases: u64,
    /// Perturbation events applied.
    pub scenario_events: u64,
    /// Scenario seeds completed.
    pub scenario_seeds: u64,
}

impl ObsDelta {
    /// Snapshot the relevant counters (call before and after a run;
    /// subtract with [`ObsDelta::since`]).
    pub fn snapshot() -> ObsDelta {
        use bbncg_obs::{counter_value as cv, Counter as C};
        ObsDelta {
            priced: cv(C::KernelPricedQueue)
                + cv(C::KernelPricedBitset)
                + cv(C::KernelPricedSparse),
            prune_skips: cv(C::KernelPruneSkipQueue)
                + cv(C::KernelPruneSkipBitset)
                + cv(C::KernelPruneSkipSparse),
            prune_exact: cv(C::KernelPruneExact),
            rounds_windows: cv(C::RoundsWindows),
            rounds_evals: cv(C::RoundsEvals),
            rounds_commits: cv(C::RoundsCommits),
            rounds_discards: cv(C::RoundsDiscards),
            dynamics_rounds: cv(C::DynamicsRounds),
            dynamics_steps: cv(C::DynamicsSteps),
            scenario_phases: cv(C::ScenarioPhases),
            scenario_events: cv(C::ScenarioEvents),
            scenario_seeds: cv(C::ScenarioSeeds),
        }
    }

    /// Element-wise difference from an earlier snapshot.
    pub fn since(&self, before: &ObsDelta) -> ObsDelta {
        ObsDelta {
            priced: self.priced - before.priced,
            prune_skips: self.prune_skips - before.prune_skips,
            prune_exact: self.prune_exact - before.prune_exact,
            rounds_windows: self.rounds_windows - before.rounds_windows,
            rounds_evals: self.rounds_evals - before.rounds_evals,
            rounds_commits: self.rounds_commits - before.rounds_commits,
            rounds_discards: self.rounds_discards - before.rounds_discards,
            dynamics_rounds: self.dynamics_rounds - before.dynamics_rounds,
            dynamics_steps: self.dynamics_steps - before.dynamics_steps,
            scenario_phases: self.scenario_phases - before.scenario_phases,
            scenario_events: self.scenario_events - before.scenario_events,
            scenario_seeds: self.scenario_seeds - before.scenario_seeds,
        }
    }
}

/// Fixed-precision float for JSON and tables: `{:.3}`, non-finite →
/// `null` (the byte-determinism rule for the whole artifact).
fn fnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn opt_bool(v: Option<bool>) -> String {
    match v {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    }
}

fn json_frag(kind: &str, body: &str) -> String {
    format!("{{\"fragment_schema_version\":{FRAGMENT_SCHEMA_VERSION},\"kind\":\"{kind}\",{body}}}")
}

/// The `<details>` block embedding the machine-readable fragment.
fn details(json: &str) -> String {
    format!(
        "<details><summary>JSON fragment</summary><pre>{}</pre></details>",
        html_escape(json)
    )
}

/// Seeds in first-appearance order (streams are already seed-ordered;
/// this just avoids trusting that).
fn seeds_of(records: &[Record]) -> Vec<u64> {
    let mut seeds = Vec::new();
    for r in records {
        if !seeds.contains(&r.seed) {
            seeds.push(r.seed);
        }
    }
    seeds
}

/// Perturbation-event kinds (everything that is neither dynamics nor
/// the final summary).
fn is_event(kind: &str) -> bool {
    kind != "dynamics" && kind != "summary"
}

/// Convergence curves: per-seed steps/rounds across dynamics phases.
pub fn convergence(records: &[Record]) -> Fragment {
    let seeds = seeds_of(records);
    let mut json_rows = Vec::new();
    let mut table_rows = Vec::new();
    let mut series = Vec::new();
    for &seed in &seeds {
        let dynamics: Vec<&Record> = records
            .iter()
            .filter(|r| r.seed == seed && r.kind == "dynamics")
            .collect();
        let summary = records
            .iter()
            .find(|r| r.seed == seed && r.kind == "summary");
        let mut phases_json = Vec::new();
        let mut points = Vec::new();
        for r in &dynamics {
            phases_json.push(format!(
                "{{\"phase\":{},\"steps\":{},\"rounds\":{},\"converged\":{},\
                 \"social_cost\":{}}}",
                r.phase,
                r.steps,
                r.rounds,
                opt_bool(r.converged),
                r.social_cost
            ));
            points.push((r.phase as f64, r.steps as f64));
        }
        let converged = dynamics.last().and_then(|r| r.converged);
        let total_steps = summary.map(|r| r.steps).unwrap_or(0);
        let total_rounds = summary.map(|r| r.rounds).unwrap_or(0);
        json_rows.push(format!(
            "{{\"seed\":{seed},\"phases\":[{}],\"total_steps\":{total_steps},\
             \"total_rounds\":{total_rounds},\"converged\":{}}}",
            phases_json.join(","),
            opt_bool(converged)
        ));
        table_rows.push(vec![
            seed.to_string(),
            dynamics.len().to_string(),
            total_steps.to_string(),
            total_rounds.to_string(),
            converged
                .map(|b| b.to_string())
                .unwrap_or_else(|| "—".to_string()),
        ]);
        series.push(Series {
            label: format!("seed {seed}"),
            points,
        });
    }
    let json = json_frag(
        "convergence",
        &format!("\"seeds\":[{}]", json_rows.join(",")),
    );
    let chart = svg::line_chart(&series, "phase", "steps", None);
    let html = format!(
        "{chart}{}{}",
        table(
            &[
                "seed",
                "dynamics phases",
                "total steps",
                "total rounds",
                "converged"
            ],
            &table_rows
        ),
        details(&json)
    );
    Fragment {
        kind: "convergence",
        title: "Convergence: steps to quiescence per seed".to_string(),
        json,
        html,
    }
}

/// Perturbation recovery: for each event, the rounds/steps of the
/// dynamics phase that follows it (same seed).
pub fn recovery(records: &[Record]) -> Fragment {
    let seeds = seeds_of(records);
    let mut json_rows = Vec::new();
    let mut table_rows = Vec::new();
    let mut bars = Vec::new();
    for &seed in &seeds {
        let run: Vec<&Record> = records.iter().filter(|r| r.seed == seed).collect();
        for (i, r) in run.iter().enumerate() {
            if !is_event(&r.kind) {
                continue;
            }
            let next = run.get(i + 1).filter(|f| f.kind == "dynamics");
            json_rows.push(format!(
                "{{\"seed\":{seed},\"phase\":{},\"event\":\"{}\",\"cost_spike\":{},\
                 \"recovered\":{},\"rounds\":{},\"steps\":{},\"cost_after\":{}}}",
                r.phase,
                r.kind,
                r.social_cost,
                next.and_then(|f| f.converged).unwrap_or(false),
                opt_u64(next.map(|f| f.rounds)),
                opt_u64(next.map(|f| f.steps)),
                opt_u64(next.map(|f| f.social_cost)),
            ));
            table_rows.push(vec![
                seed.to_string(),
                r.phase.to_string(),
                r.kind.clone(),
                r.social_cost.to_string(),
                next.map(|f| f.rounds.to_string())
                    .unwrap_or_else(|| "—".to_string()),
                next.map(|f| f.steps.to_string())
                    .unwrap_or_else(|| "—".to_string()),
                next.map(|f| f.social_cost.to_string())
                    .unwrap_or_else(|| "—".to_string()),
            ]);
            if let Some(f) = next {
                bars.push((format!("s{seed}p{}", r.phase), f.rounds as f64));
            }
        }
    }
    let json = json_frag("recovery", &format!("\"events\":[{}]", json_rows.join(",")));
    let chart = svg::bar_chart(&bars, "event (seed/phase)", "recovery rounds");
    let html = format!(
        "{chart}{}{}",
        table(
            &[
                "seed",
                "phase",
                "event",
                "cost at event",
                "recovery rounds",
                "recovery steps",
                "cost after"
            ],
            &table_rows
        ),
        details(&json)
    );
    Fragment {
        kind: "recovery",
        title: "Perturbation recovery across events".to_string(),
        json,
        html,
    }
}

/// The paper's Table 1 bound on worst equilibrium diameter for
/// all-unit budgets: SUM < 5 (Thm 4.1), MAX ≤ 4 (Thm 4.2). `None`
/// for non-unit budgets (the general bounds are asymptotic, not a
/// chartable constant).
fn paper_bound(model: CostModel, budget: usize) -> Option<(u64, &'static str)> {
    if budget != 1 {
        return None;
    }
    Some(match model {
        CostModel::Sum => (4, "Thm 4.1: diam <= 4"),
        CostModel::Max => (4, "Thm 4.2: diam <= 4"),
    })
}

/// Empirical PoA series over uniform-budget instances vs Table 1.
pub fn poa_spectrum(
    sizes: &[usize],
    budget: usize,
    samples: usize,
    max_rounds: usize,
    model: CostModel,
) -> Fragment {
    let cfg = DynamicsConfig::exact(model, max_rounds);
    let points = poa_scan::scan(sizes, |n| BudgetVector::uniform(n, budget), cfg, samples);
    let bound = paper_bound(model, budget);
    let mut json_rows = Vec::new();
    let mut table_rows = Vec::new();
    let mut worst = Vec::new();
    let mut best = Vec::new();
    for p in &points {
        json_rows.push(format!(
            "{{\"n\":{},\"attempted\":{},\"converged\":{},\"worst_diameter\":{},\
             \"best_diameter\":{},\"opt_lower\":{},\"poa_estimate\":{}}}",
            p.n,
            p.attempted,
            p.converged,
            p.worst_diameter,
            p.best_diameter,
            p.opt_lower,
            fnum(p.poa_estimate)
        ));
        table_rows.push(vec![
            p.n.to_string(),
            format!("{}/{}", p.converged, p.attempted),
            p.worst_diameter.to_string(),
            p.best_diameter.to_string(),
            p.opt_lower.to_string(),
            if p.poa_estimate.is_finite() {
                fnum(p.poa_estimate)
            } else {
                "—".to_string()
            },
        ]);
        if p.converged > 0 {
            worst.push((p.n as f64, p.worst_diameter as f64));
            best.push((p.n as f64, p.best_diameter as f64));
        }
    }
    let model_name = match model {
        CostModel::Sum => "sum",
        CostModel::Max => "max",
    };
    let json = json_frag(
        "poa-spectrum",
        &format!(
            "\"model\":\"{model_name}\",\"budget\":{budget},\"samples\":{samples},\
             \"paper_bound\":{},\"points\":[{}]",
            opt_u64(bound.map(|(v, _)| v)),
            json_rows.join(",")
        ),
    );
    let series = [
        Series {
            label: "worst diameter".to_string(),
            points: worst,
        },
        Series {
            label: "best diameter".to_string(),
            points: best,
        },
    ];
    let chart = svg::line_chart(
        &series,
        "n",
        "equilibrium diameter",
        bound.map(|(v, label)| (v as f64, label)),
    );
    let html = format!(
        "{chart}{}{}",
        table(
            &[
                "n",
                "converged",
                "worst diam",
                "best diam",
                "opt lower",
                "PoA est."
            ],
            &table_rows
        ),
        details(&json)
    );
    Fragment {
        kind: "poa-spectrum",
        title: format!(
            "PoA spectrum: uniform budget {budget}, {model_name} cost, \
             {samples} trajectories/size"
        ),
        json,
        html,
    }
}

/// The Àlvarez–Messegué-shaped structural bound `2^(⌈√(log₂ n)⌉ + 2)`
/// on equilibrium diameter (arXiv:2012.14254 proves diameter
/// `2^O(√log n)` for a broad budget regime; this is the concrete
/// constant the census checks observations against).
pub fn structural_diameter_bound(n: usize) -> u64 {
    let log2n = (usize::BITS - n.max(1).leading_zeros()) as f64;
    let s = (log2n.sqrt()).ceil() as u32;
    1u64 << (s + 2).min(63)
}

/// Equilibrium census: degree / diameter / eccentricity distributions
/// over sampled equilibria, vs the structural bound.
pub fn census(
    n: usize,
    budget: usize,
    samples: usize,
    max_rounds: usize,
    model: CostModel,
    seed: u64,
) -> Fragment {
    let budgets = BudgetVector::uniform(n, budget);
    let cfg = DynamicsConfig::exact(model, max_rounds);
    let batch = sample_equilibria(&budgets, cfg, seed, samples);
    let stats = summarize(&batch);
    let converged: Vec<_> = batch.iter().filter(|s| s.report.converged).collect();

    let mut degree_hist: Vec<u64> = Vec::new();
    let mut ecc_values: Vec<u64> = Vec::new();
    let mut diameters: Vec<u64> = Vec::new();
    let mut metrics_rows = Vec::new();
    for s in &converged {
        let csr = s.report.state.csr();
        for u in 0..csr.n() {
            let d = csr.simple_degree(NodeId::new(u));
            if degree_hist.len() <= d {
                degree_hist.resize(d + 1, 0);
            }
            degree_hist[d] += 1;
        }
        let m = GraphMetrics::compute(csr);
        if m.connected {
            ecc_values.extend(eccentricities(csr).iter().map(|&e| e as u64));
        }
        diameters.push(s.diameter());
        metrics_rows.push((s.seed, m));
    }
    let bound = structural_diameter_bound(n);
    let within = diameters.iter().filter(|&&d| d <= bound).count();

    let degree_json: Vec<String> = degree_hist.iter().map(u64::to_string).collect();
    let diam_json: Vec<String> = diameters.iter().map(u64::to_string).collect();
    let json = json_frag(
        "census",
        &format!(
            "\"n\":{n},\"budget\":{budget},\"samples\":{samples},\
             \"converged\":{},\"cycled\":{},\"structural_bound\":{bound},\
             \"within_bound\":{within},\"mean_rounds\":{},\
             \"degree_histogram\":[{}],\"diameters\":[{}]",
            stats.converged,
            stats.cycled,
            fnum(stats.mean_rounds),
            degree_json.join(","),
            diam_json.join(",")
        ),
    );

    let bars: Vec<(String, f64)> = degree_hist
        .iter()
        .enumerate()
        .map(|(d, &c)| (d.to_string(), c as f64))
        .collect();
    let degree_chart = svg::bar_chart(&bars, "simple degree", "nodes");
    let ecc_chart = svg::cdf_chart(&ecc_values, "eccentricity");
    let sample_rows: Vec<Vec<String>> = metrics_rows
        .iter()
        .map(|(seed, m)| {
            vec![
                seed.to_string(),
                m.diameter.to_string(),
                m.radius.to_string(),
                fnum(m.mean_distance),
                m.min_degree.to_string(),
                m.max_degree.to_string(),
            ]
        })
        .collect();
    let html = format!(
        "<p>{} of {} trajectories converged; {within}/{} equilibria within the \
         structural diameter bound 2^(&#8968;&#8730;log&#8322;&nbsp;n&#8969;+2) = {bound} \
         (cf. arXiv:2012.14254).</p>{degree_chart}{ecc_chart}{}{}",
        stats.converged,
        stats.total,
        diameters.len(),
        table(
            &[
                "seed",
                "diameter",
                "radius",
                "mean dist",
                "min deg",
                "max deg"
            ],
            &sample_rows
        ),
        details(&json)
    );
    Fragment {
        kind: "census",
        title: format!("Equilibrium census: n = {n}, budget {budget}"),
        json,
        html,
    }
}

/// Observability digest: kernel prune-hit and speculative commit rates
/// over the report's scenario run.
pub fn obs_digest(delta: &ObsDelta) -> Fragment {
    let considered = delta.priced + delta.prune_skips + delta.prune_exact;
    let rate = |num: u64, den: u64| -> f64 {
        if den == 0 {
            f64::NAN
        } else {
            num as f64 / den as f64
        }
    };
    let prune_hit = rate(delta.prune_skips + delta.prune_exact, considered);
    let commit = rate(delta.rounds_commits, delta.rounds_evals);
    let discard = rate(delta.rounds_discards, delta.rounds_evals);
    let json = json_frag(
        "obs-digest",
        &format!(
            "\"priced\":{},\"prune_skips\":{},\"prune_exact\":{},\"prune_hit_rate\":{},\
             \"rounds_windows\":{},\"rounds_evals\":{},\"rounds_commits\":{},\
             \"rounds_discards\":{},\"commit_rate\":{},\"discard_rate\":{},\
             \"dynamics_rounds\":{},\"dynamics_steps\":{},\"scenario_phases\":{},\
             \"scenario_events\":{},\"scenario_seeds\":{}",
            delta.priced,
            delta.prune_skips,
            delta.prune_exact,
            fnum(prune_hit),
            delta.rounds_windows,
            delta.rounds_evals,
            delta.rounds_commits,
            delta.rounds_discards,
            fnum(commit),
            fnum(discard),
            delta.dynamics_rounds,
            delta.dynamics_steps,
            delta.scenario_phases,
            delta.scenario_events,
            delta.scenario_seeds,
        ),
    );
    let mut bars = Vec::new();
    for (label, v) in [
        ("prune hit", prune_hit),
        ("commit", commit),
        ("discard", discard),
    ] {
        if v.is_finite() {
            bars.push((label.to_string(), v));
        }
    }
    let chart = svg::bar_chart(&bars, "rate", "fraction");
    let rows = vec![
        vec!["candidates priced".to_string(), delta.priced.to_string()],
        vec!["prune skips".to_string(), delta.prune_skips.to_string()],
        vec!["prune exact".to_string(), delta.prune_exact.to_string()],
        vec!["prune-hit rate".to_string(), fnum(prune_hit)],
        vec![
            "speculative windows".to_string(),
            delta.rounds_windows.to_string(),
        ],
        vec![
            "speculative evals".to_string(),
            delta.rounds_evals.to_string(),
        ],
        vec!["commits".to_string(), delta.rounds_commits.to_string()],
        vec!["discards".to_string(), delta.rounds_discards.to_string()],
        vec![
            "dynamics rounds".to_string(),
            delta.dynamics_rounds.to_string(),
        ],
        vec![
            "dynamics steps".to_string(),
            delta.dynamics_steps.to_string(),
        ],
        vec![
            "scenario phases".to_string(),
            delta.scenario_phases.to_string(),
        ],
        vec![
            "scenario events".to_string(),
            delta.scenario_events.to_string(),
        ],
        vec![
            "scenario seeds".to_string(),
            delta.scenario_seeds.to_string(),
        ],
    ];
    let html = format!(
        "{chart}{}{}",
        table(&["counter", "value"], &rows),
        details(&json)
    );
    Fragment {
        kind: "obs-digest",
        title: "Observability digest: kernel and executor counters".to_string(),
        json,
        html,
    }
}

/// Build the fragment for one analysis spec. Record-consuming kinds
/// read `records`; `obs-digest` reads `delta`; the sampling kinds run
/// their own sweeps.
pub fn build(analysis: &AnalysisSpec, records: &[Record], delta: &ObsDelta) -> Fragment {
    match analysis {
        AnalysisSpec::Convergence => convergence(records),
        AnalysisSpec::Recovery => recovery(records),
        AnalysisSpec::ObsDigest => obs_digest(delta),
        AnalysisSpec::PoaSpectrum {
            sizes,
            budget,
            samples,
            max_rounds,
            model,
        } => poa_spectrum(sizes, *budget, *samples, *max_rounds, *model),
        AnalysisSpec::Census {
            n,
            budget,
            samples,
            max_rounds,
            model,
            seed,
        } => census(*n, *budget, *samples, *max_rounds, *model, *seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest;

    fn churn_records() -> Vec<Record> {
        let lines = "\
{\"scenario\":\"t\",\"seed\":1,\"phase\":0,\"kind\":\"dynamics\",\"n\":6,\"arcs\":6,\"steps\":4,\"rounds\":2,\"social_cost\":3,\"diameter\":3,\"converged\":true,\"cycled\":false,\"state_hash\":\"0000000000000001\"}\n\
{\"scenario\":\"t\",\"seed\":1,\"phase\":1,\"kind\":\"arrive\",\"n\":7,\"arcs\":7,\"steps\":0,\"rounds\":0,\"social_cost\":9,\"diameter\":null,\"converged\":null,\"cycled\":null,\"state_hash\":\"0000000000000002\"}\n\
{\"scenario\":\"t\",\"seed\":1,\"phase\":2,\"kind\":\"dynamics\",\"n\":7,\"arcs\":7,\"steps\":2,\"rounds\":1,\"social_cost\":3,\"diameter\":3,\"converged\":true,\"cycled\":false,\"state_hash\":\"0000000000000003\"}\n\
{\"scenario\":\"t\",\"seed\":1,\"phase\":3,\"kind\":\"summary\",\"n\":7,\"arcs\":7,\"steps\":6,\"rounds\":3,\"social_cost\":3,\"diameter\":3,\"converged\":true,\"cycled\":false,\"state_hash\":\"0000000000000003\"}\n";
        ingest::parse_lines(lines).unwrap()
    }

    #[test]
    fn convergence_fragment_reads_phases_and_summary() {
        let f = convergence(&churn_records());
        assert!(f
            .json
            .starts_with("{\"fragment_schema_version\":1,\"kind\":\"convergence\""));
        assert!(f.json.contains("\"total_steps\":6"));
        assert!(f.json.contains("\"total_rounds\":3"));
        assert!(f.html.contains("<svg"));
        // Re-running is byte-identical.
        assert_eq!(f.json, convergence(&churn_records()).json);
        assert_eq!(f.html, convergence(&churn_records()).html);
    }

    #[test]
    fn recovery_pairs_events_with_following_dynamics() {
        let f = recovery(&churn_records());
        assert!(f.json.contains("\"event\":\"arrive\""));
        assert!(f.json.contains("\"cost_spike\":9"));
        assert!(f.json.contains("\"rounds\":1"));
        assert!(f.json.contains("\"cost_after\":3"));
    }

    #[test]
    fn poa_spectrum_runs_the_scan() {
        let f = poa_spectrum(&[5, 6], 1, 2, 100, CostModel::Sum);
        assert!(f.json.contains("\"paper_bound\":4"));
        assert!(f.json.contains("\"n\":5"));
        assert!(f.json.contains("\"n\":6"));
        // Table 1 row: unit-budget SUM equilibria have diameter <= 4.
        assert!(f.html.contains("Thm 4.1"));
        assert_eq!(
            f.json,
            poa_spectrum(&[5, 6], 1, 2, 100, CostModel::Sum).json
        );
    }

    #[test]
    fn census_counts_and_bounds() {
        let f = census(6, 1, 3, 100, CostModel::Sum, 0xCE55);
        assert!(f.json.contains("\"structural_bound\":"));
        assert!(f.json.contains("\"degree_histogram\":["));
        assert_eq!(f.json, census(6, 1, 3, 100, CostModel::Sum, 0xCE55).json);
    }

    #[test]
    fn structural_bound_shape() {
        // n = 16: log2 = 5 bits... ceil(sqrt(5)) = 3 → 2^5 = 32.
        assert_eq!(structural_diameter_bound(16), 32);
        assert_eq!(structural_diameter_bound(2), 16);
        assert!(structural_diameter_bound(1 << 20) >= 64);
    }

    #[test]
    fn obs_digest_rates() {
        let delta = ObsDelta {
            priced: 60,
            prune_skips: 30,
            prune_exact: 10,
            rounds_evals: 20,
            rounds_commits: 15,
            rounds_discards: 5,
            ..ObsDelta::default()
        };
        let f = obs_digest(&delta);
        assert!(f.json.contains("\"prune_hit_rate\":0.400"));
        assert!(f.json.contains("\"commit_rate\":0.750"));
        assert!(f.json.contains("\"discard_rate\":0.250"));
        // Zero denominators print as null, not NaN.
        let empty = obs_digest(&ObsDelta::default());
        assert!(empty.json.contains("\"prune_hit_rate\":null"));
    }
}
