//! A minimal JSON reader for the workspace's own JSONL streams.
//!
//! The report engine ingests scenario metric records and trace spans —
//! both emitted by hand-rolled encoders elsewhere in this workspace —
//! so, in the `toml.rs` tradition, parsing is a small recursive-descent
//! reader rather than a dependency. It accepts standard JSON (objects,
//! arrays, strings with escapes, integers, floats, booleans, null);
//! anything malformed fails loudly with a byte offset.

use std::fmt;

/// A parsed JSON value. Integers that fit `i64` are kept exact
/// ([`Json::Int`]); everything else numeric becomes [`Json::Float`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction/exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string (escapes decoded).
    Str(String),
    /// `[ … ]`.
    Arr(Vec<Json>),
    /// `{ … }` with key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer convenience over [`Json::as_i64`].
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Human name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse error with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

fn err(at: usize, msg: impl Into<String>) -> JsonError {
    JsonError {
        at,
        msg: msg.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected {:?}", ch as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected {lit:?}")))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs never appear in this
                        // workspace's streams (only control characters
                        // are \u-escaped); map them to U+FFFD rather
                        // than failing the whole line.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a valid &str).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    if text.is_empty() || text == "-" {
        return Err(err(start, "expected a number"));
    }
    if !float {
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| err(start, format!("bad number {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_metric_record_line() {
        let line = "{\"scenario\":\"t \\\"q\\\"\",\"seed\":7,\"diameter\":null,\
                    \"converged\":true,\"state_hash\":\"00ab\",\"poa\":1.5,\"xs\":[1,2]}";
        let v = parse(line).unwrap();
        assert_eq!(v.get("scenario").unwrap().as_str(), Some("t \"q\""));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("diameter"), Some(&Json::Null));
        assert_eq!(v.get("converged").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("poa"), Some(&Json::Float(1.5)));
        assert_eq!(
            v.get("xs"),
            Some(&Json::Arr(vec![Json::Int(1), Json::Int(2)]))
        );
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse("{\"k\":\"a\\nb\\u0001\\\\c\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("a\nb\u{1}\\c"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn numbers_keep_integer_exactness() {
        let v = parse("[9007199254740993, -3, 2.5]").unwrap();
        let Json::Arr(items) = v else { unreachable!() };
        assert_eq!(items[0], Json::Int(9007199254740993));
        assert_eq!(items[1], Json::Int(-3));
        assert_eq!(items[2], Json::Float(2.5));
    }
}
