//! Assembling fragments into one self-contained HTML page.
//!
//! The artifact is a single file: inline stylesheet, inline SVG, no
//! `<script>`, no external references of any kind — it must open from
//! a `file://` URL on an air-gapped machine and byte-diff cleanly
//! across runs (the CI determinism gauntlet includes it).

use crate::analyses::Fragment;
use std::fmt::Write as _;

/// Escape text for HTML element content and attribute values.
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Render an HTML table (cells escaped).
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("<table><thead><tr>");
    for h in headers {
        let _ = write!(out, "<th>{}</th>", html_escape(h));
    }
    out.push_str("</tr></thead><tbody>");
    for row in rows {
        out.push_str("<tr>");
        for cell in row {
            let _ = write!(out, "<td>{}</td>", html_escape(cell));
        }
        out.push_str("</tr>");
    }
    out.push_str("</tbody></table>");
    out
}

/// The page's one inline stylesheet. Series classes `.s0`–`.s5` are
/// the chart palette ([`crate::svg`]).
const STYLE: &str = "\
body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:46rem;\
padding:0 1rem;color:#1a202c}\
h1{font-size:1.4rem;border-bottom:2px solid #2b6cb0;padding-bottom:.3rem}\
h2{font-size:1.1rem;margin-top:2rem}\
table{border-collapse:collapse;margin:1rem 0;font-size:13px}\
th,td{border:1px solid #cbd5e0;padding:.25rem .6rem;text-align:right}\
th{background:#edf2f7}\
svg.chart{width:100%;height:auto;background:#fbfbfc;border:1px solid #e2e8f0;\
margin:.5rem 0}\
svg .axis{stroke:#4a5568;stroke-width:1}\
svg .bound{stroke:#c53030;stroke-width:1;stroke-dasharray:5 3}\
svg .bar{fill:#2b6cb0}\
svg .tick{font:10px sans-serif;fill:#4a5568}\
svg .label{font:11px sans-serif;fill:#1a202c}\
svg polyline{fill:none;stroke-width:1.5}\
svg .s0{stroke:#2b6cb0;fill:none}svg circle.s0{fill:#2b6cb0}\
svg .s1{stroke:#c05621;fill:none}svg circle.s1{fill:#c05621}\
svg .s2{stroke:#2f855a;fill:none}svg circle.s2{fill:#2f855a}\
svg .s3{stroke:#6b46c1;fill:none}svg circle.s3{fill:#6b46c1}\
svg .s4{stroke:#b83280;fill:none}svg circle.s4{fill:#b83280}\
svg .s5{stroke:#975a16;fill:none}svg circle.s5{fill:#975a16}\
details{margin:.5rem 0}\
details pre{background:#f7fafc;border:1px solid #e2e8f0;padding:.5rem;\
overflow-x:auto;font-size:11px}\
footer{margin-top:2.5rem;font-size:12px;color:#718096}";

/// Combine fragments into the final self-contained page.
pub fn render_page(title: &str, subtitle: &str, fragments: &[Fragment]) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">");
    let _ = write!(out, "<title>{}</title>", html_escape(title));
    let _ = write!(out, "<style>{STYLE}</style>");
    out.push_str("</head><body>");
    let _ = write!(out, "<h1>{}</h1>", html_escape(title));
    if !subtitle.is_empty() {
        let _ = write!(out, "<p>{}</p>", html_escape(subtitle));
    }
    for f in fragments {
        let _ = write!(
            out,
            "<section id=\"{}\"><h2>{}</h2>{}</section>",
            html_escape(f.kind),
            html_escape(&f.title),
            f.html
        );
    }
    let _ = write!(
        out,
        "<footer>bbncg report · fragment schema v{} · bounded-budget network \
         creation games (Ehsani et al., SPAA 2011)</footer>",
        crate::analyses::FRAGMENT_SCHEMA_VERSION
    );
    out.push_str("</body></html>\n");
    out
}

/// Assert the self-containment contract: no scripts, no external
/// URLs, no resource references. Returns the first violation found
/// (used by tests and by debug assertions in the entry points).
pub fn self_containment_violation(html: &str) -> Option<&'static str> {
    let lower = html.to_ascii_lowercase();
    for (needle, what) in [
        ("<script", "script element"),
        ("<link", "link element"),
        ("<iframe", "iframe element"),
        ("src=", "src attribute"),
        ("href=", "href attribute"),
        ("http://", "http URL"),
        ("https://", "https URL"),
        ("url(", "css url() reference"),
        ("@import", "css import"),
    ] {
        if lower.contains(needle) {
            return Some(what);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag() -> Fragment {
        Fragment {
            kind: "convergence",
            title: "A <title> & more".to_string(),
            json: "{\"fragment_schema_version\":1,\"kind\":\"convergence\"}".to_string(),
            html: "<p>body</p>".to_string(),
        }
    }

    #[test]
    fn page_is_self_contained() {
        let html = render_page("t & t", "sub < sub", &[frag()]);
        assert_eq!(self_containment_violation(&html), None);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<h1>t &amp; t</h1>"));
        assert!(html.contains("A &lt;title&gt; &amp; more"));
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn violations_are_caught() {
        assert!(self_containment_violation("<script src=\"x\">").is_some());
        assert!(self_containment_violation("<a href=\"https://x\">").is_some());
        assert!(self_containment_violation("style=\"background:url(x)\"").is_some());
        assert!(self_containment_violation("<p>fine</p>").is_none());
    }

    #[test]
    fn tables_escape_cells() {
        let t = table(&["a<b"], &[vec!["x&y".to_string()]]);
        assert!(t.contains("<th>a&lt;b</th>"));
        assert!(t.contains("<td>x&amp;y</td>"));
    }
}
