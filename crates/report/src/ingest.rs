//! Ingesting scenario metric streams: JSONL lines (or in-process
//! [`MetricRecord`]s) → [`Record`]s the analyses consume.
//!
//! The stream schema is versioned (`schema_version`, absent = v1): v1
//! streams predate the field, v2 added it. Both parse to the same
//! [`Record`]; analyses never branch on the version.

use crate::json::{self, Json};
use bbncg_scenario::MetricRecord;

/// One ingested metric record — [`MetricRecord`] with owned strings
/// (the JSONL side has no `&'static str` kinds) plus the stream's
/// schema version.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Stream schema version (1 when the line carried no field).
    pub schema_version: u64,
    /// Scenario name.
    pub scenario: String,
    /// Seed of the run.
    pub seed: u64,
    /// 0-based phase index (`phases.len()` for the summary record).
    pub phase: u64,
    /// Phase kind (`"dynamics"`, `"arrive"`, …, `"summary"`).
    pub kind: String,
    /// Players after the phase.
    pub n: u64,
    /// Arcs after the phase.
    pub arcs: u64,
    /// Applied deviations.
    pub steps: u64,
    /// Completed dynamics rounds.
    pub rounds: u64,
    /// Social cost: diameter, or `n²` when disconnected.
    pub social_cost: u64,
    /// Finite diameter, if connected.
    pub diameter: Option<u64>,
    /// Dynamics phases: did the phase converge?
    pub converged: Option<bool>,
    /// Dynamics phases: was a best-response cycle proven?
    pub cycled: Option<bool>,
    /// Stable FNV-1a hash of the post-phase profile (16 hex digits).
    pub state_hash: String,
}

impl Record {
    /// Ingest an in-process record (a fresh run's `MemorySink`), so
    /// fresh runs and `--from` streams share one analysis path.
    pub fn from_metric(rec: &MetricRecord) -> Record {
        Record {
            schema_version: bbncg_scenario::sink::SCHEMA_VERSION,
            scenario: rec.scenario.clone(),
            seed: rec.seed,
            phase: rec.phase as u64,
            kind: rec.kind.to_string(),
            n: rec.n as u64,
            arcs: rec.arcs as u64,
            steps: rec.steps as u64,
            rounds: rec.rounds as u64,
            social_cost: rec.social_cost,
            diameter: rec.diameter.map(u64::from),
            converged: rec.converged,
            cycled: rec.cycled,
            state_hash: format!("{:016x}", rec.state_hash),
        }
    }
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn field_opt_bool(v: &Json, key: &str) -> Result<Option<bool>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(format!(
            "field {key:?} must be boolean or null, got {}",
            other.type_name()
        )),
    }
}

/// Parse one JSONL line into a [`Record`].
pub fn parse_record(line: &str) -> Result<Record, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    if !matches!(v, Json::Obj(_)) {
        return Err(format!("expected a JSON object, got {}", v.type_name()));
    }
    let schema_version = match v.get("schema_version") {
        // Pre-versioning streams are v1 by definition.
        None => 1,
        Some(sv) => sv
            .as_u64()
            .ok_or_else(|| "schema_version must be an integer".to_string())?,
    };
    let diameter = match v.get("diameter") {
        None | Some(Json::Null) => None,
        Some(d) => Some(
            d.as_u64()
                .ok_or_else(|| "diameter must be an integer or null".to_string())?,
        ),
    };
    Ok(Record {
        schema_version,
        scenario: field_str(&v, "scenario")?,
        seed: field_u64(&v, "seed")?,
        phase: field_u64(&v, "phase")?,
        kind: field_str(&v, "kind")?,
        n: field_u64(&v, "n")?,
        arcs: field_u64(&v, "arcs")?,
        steps: field_u64(&v, "steps")?,
        rounds: field_u64(&v, "rounds")?,
        social_cost: field_u64(&v, "social_cost")?,
        diameter,
        converged: field_opt_bool(&v, "converged")?,
        cycled: field_opt_bool(&v, "cycled")?,
        state_hash: field_str(&v, "state_hash")?,
    })
}

/// Parse a whole JSONL stream; blank lines are skipped, anything else
/// malformed fails with its 1-based line number.
pub fn parse_lines(text: &str) -> Result<Vec<Record>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_record(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    if out.is_empty() {
        return Err("record stream is empty".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricRecord {
        MetricRecord {
            scenario: "tiny".to_string(),
            seed: 3,
            phase: 1,
            kind: "dynamics",
            n: 6,
            arcs: 6,
            steps: 4,
            rounds: 2,
            social_cost: 3,
            diameter: Some(3),
            converged: Some(true),
            cycled: Some(false),
            state_hash: 0xabc,
        }
    }

    #[test]
    fn jsonl_round_trips_through_the_ingester() {
        let rec = sample();
        let parsed = parse_record(&rec.to_json()).unwrap();
        assert_eq!(parsed, Record::from_metric(&rec));
        assert_eq!(parsed.schema_version, bbncg_scenario::sink::SCHEMA_VERSION);
        assert_eq!(parsed.state_hash, "0000000000000abc");
    }

    #[test]
    fn absent_schema_version_means_v1() {
        let line = "{\"scenario\":\"t\",\"seed\":0,\"phase\":0,\"kind\":\"summary\",\
                    \"n\":4,\"arcs\":4,\"steps\":0,\"rounds\":0,\"social_cost\":2,\
                    \"diameter\":2,\"converged\":null,\"cycled\":null,\
                    \"state_hash\":\"0000000000000001\"}";
        let parsed = parse_record(line).unwrap();
        assert_eq!(parsed.schema_version, 1);
        assert_eq!(parsed.diameter, Some(2));
        assert_eq!(parsed.converged, None);
    }

    #[test]
    fn parse_lines_skips_blanks_and_pins_errors_to_lines() {
        let rec = sample();
        let text = format!("\n{}\n\n{}\n", rec.to_json(), rec.to_json());
        assert_eq!(parse_lines(&text).unwrap().len(), 2);

        let bad = format!("{}\nnot json\n", rec.to_json());
        let err = parse_lines(&bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");

        assert!(parse_lines("\n\n").is_err());
    }

    #[test]
    fn missing_fields_are_loud() {
        assert!(parse_record("{\"scenario\":\"t\"}").is_err());
        assert!(parse_record("[1]").is_err());
    }
}
