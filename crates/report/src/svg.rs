//! Dependency-free inline SVG charts: line series, bars, CDF steps.
//!
//! Every chart is a single `<svg>` element with fixed geometry and all
//! coordinates printed at one decimal place — the HTML artifact must be
//! byte-stable across runs and platforms, so no floating formatting is
//! left to chance. Styling rides on the page's inline stylesheet
//! (classes, not per-element attributes); nothing references an
//! external asset.

use std::fmt::Write as _;

/// Chart canvas geometry (view box `W × H`, data area inset by the
/// margins for axis labels).
const W: f64 = 560.0;
const H: f64 = 260.0;
const ML: f64 = 52.0;
const MR: f64 = 14.0;
const MT: f64 = 14.0;
const MB: f64 = 36.0;

/// Series stroke classes, cycled in order (`.s0` … `.s5` in the page
/// stylesheet).
const PALETTE: usize = 6;

/// One named line-series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points, in x order.
    pub points: Vec<(f64, f64)>,
}

fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

/// Tick label: integers print exactly, everything else at one decimal.
fn tick_label(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        fmt1(v)
    }
}

struct Scale {
    min: f64,
    max: f64,
    lo_px: f64,
    hi_px: f64,
}

impl Scale {
    fn to_px(&self, v: f64) -> f64 {
        if self.max <= self.min {
            return (self.lo_px + self.hi_px) / 2.0;
        }
        self.lo_px + (v - self.min) / (self.max - self.min) * (self.hi_px - self.lo_px)
    }
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values.filter(|v| v.is_finite()) {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() {
        (0.0, 1.0)
    } else {
        (min, max)
    }
}

fn open_svg(out: &mut String) {
    let _ = write!(
        out,
        "<svg class=\"chart\" viewBox=\"0 0 {} {}\" role=\"img\">",
        tick_label(W),
        tick_label(H)
    );
}

/// Axes, gridless: one x rule, one y rule, three ticks each.
fn axes(out: &mut String, x: &Scale, y: &Scale, x_label: &str, y_label: &str) {
    let _ = write!(
        out,
        "<line class=\"axis\" x1=\"{l}\" y1=\"{b}\" x2=\"{r}\" y2=\"{b}\"/>\
         <line class=\"axis\" x1=\"{l}\" y1=\"{t}\" x2=\"{l}\" y2=\"{b}\"/>",
        l = fmt1(ML),
        r = fmt1(W - MR),
        t = fmt1(MT),
        b = fmt1(H - MB),
    );
    for i in 0..3 {
        let f = i as f64 / 2.0;
        let xv = x.min + (x.max - x.min) * f;
        let yv = y.min + (y.max - y.min) * f;
        let _ = write!(
            out,
            "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            fmt1(x.to_px(xv)),
            fmt1(H - MB + 16.0),
            tick_label(xv)
        );
        let _ = write!(
            out,
            "<text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
            fmt1(ML - 6.0),
            fmt1(y.to_px(yv) + 4.0),
            tick_label(yv)
        );
    }
    let _ = write!(
        out,
        "<text class=\"label\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
        fmt1((ML + W - MR) / 2.0),
        fmt1(H - 4.0),
        crate::render::html_escape(x_label)
    );
    let _ = write!(
        out,
        "<text class=\"label\" x=\"{}\" y=\"{}\" text-anchor=\"middle\" \
         transform=\"rotate(-90 12 {mid})\">{}</text>",
        fmt1(12.0),
        fmt1((MT + H - MB) / 2.0),
        crate::render::html_escape(y_label),
        mid = fmt1((MT + H - MB) / 2.0),
    );
}

/// A multi-series line chart. `hline` draws a labelled horizontal
/// reference line (e.g. a theorem bound) at the given y value.
pub fn line_chart(
    series: &[Series],
    x_label: &str,
    y_label: &str,
    hline: Option<(f64, &str)>,
) -> String {
    let (x_min, x_max) = bounds(series.iter().flat_map(|s| s.points.iter().map(|p| p.0)));
    let (mut y_min, mut y_max) = bounds(series.iter().flat_map(|s| s.points.iter().map(|p| p.1)));
    if let Some((v, _)) = hline {
        y_min = y_min.min(v);
        y_max = y_max.max(v);
    }
    y_min = y_min.min(0.0);
    let x = Scale {
        min: x_min,
        max: x_max,
        lo_px: ML,
        hi_px: W - MR,
    };
    let y = Scale {
        min: y_min,
        max: y_max,
        lo_px: H - MB,
        hi_px: MT,
    };
    let mut out = String::new();
    open_svg(&mut out);
    axes(&mut out, &x, &y, x_label, y_label);
    if let Some((v, label)) = hline {
        let py = fmt1(y.to_px(v));
        let _ = write!(
            out,
            "<line class=\"bound\" x1=\"{}\" y1=\"{py}\" x2=\"{}\" y2=\"{py}\"/>\
             <text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
            fmt1(ML),
            fmt1(W - MR),
            fmt1(W - MR),
            fmt1(y.to_px(v) - 4.0),
            crate::render::html_escape(label)
        );
    }
    for (i, s) in series.iter().enumerate() {
        if s.points.is_empty() {
            continue;
        }
        let mut path = String::new();
        for (j, &(px, py)) in s.points.iter().enumerate() {
            let _ = write!(
                path,
                "{}{},{}",
                if j == 0 { "" } else { " " },
                fmt1(x.to_px(px)),
                fmt1(y.to_px(py))
            );
        }
        let cls = i % PALETTE;
        let _ = write!(out, "<polyline class=\"s{cls}\" points=\"{path}\"/>");
        for &(px, py) in &s.points {
            let _ = write!(
                out,
                "<circle class=\"s{cls}\" cx=\"{}\" cy=\"{}\" r=\"2.5\"/>",
                fmt1(x.to_px(px)),
                fmt1(y.to_px(py))
            );
        }
    }
    // Legend, top-right, one row per series.
    for (i, s) in series.iter().enumerate() {
        let ly = MT + 6.0 + i as f64 * 14.0;
        let cls = i % PALETTE;
        let _ = write!(
            out,
            "<line class=\"s{cls}\" x1=\"{}\" y1=\"{ly}\" x2=\"{}\" y2=\"{ly}\"/>\
             <text class=\"tick\" x=\"{}\" y=\"{}\">{}</text>",
            fmt1(W - MR - 120.0),
            fmt1(W - MR - 100.0),
            fmt1(W - MR - 96.0),
            fmt1(ly + 4.0),
            crate::render::html_escape(&s.label),
            ly = fmt1(ly),
        );
    }
    out.push_str("</svg>");
    out
}

/// A labelled vertical bar chart.
pub fn bar_chart(bars: &[(String, f64)], x_label: &str, y_label: &str) -> String {
    let (_, y_max) = bounds(bars.iter().map(|b| b.1));
    let y = Scale {
        min: 0.0,
        max: y_max.max(1.0),
        lo_px: H - MB,
        hi_px: MT,
    };
    let x = Scale {
        min: 0.0,
        max: bars.len().max(1) as f64,
        lo_px: ML,
        hi_px: W - MR,
    };
    let mut out = String::new();
    open_svg(&mut out);
    axes(
        &mut out,
        &Scale {
            min: 0.0,
            max: 0.0,
            lo_px: ML,
            hi_px: W - MR,
        },
        &y,
        x_label,
        y_label,
    );
    let slot = (x.hi_px - x.lo_px) / bars.len().max(1) as f64;
    let bw = (slot * 0.7).min(48.0);
    for (i, (label, v)) in bars.iter().enumerate() {
        let cx = x.lo_px + slot * (i as f64 + 0.5);
        let top = y.to_px(*v);
        let _ = write!(
            out,
            "<rect class=\"bar\" x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\"/>\
             <text class=\"tick\" x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            fmt1(cx - bw / 2.0),
            fmt1(top),
            fmt1(bw),
            fmt1((H - MB - top).max(0.0)),
            fmt1(cx),
            fmt1(H - MB + 16.0),
            crate::render::html_escape(label)
        );
    }
    out.push_str("</svg>");
    out
}

/// Empirical CDF of integer-valued observations as a step line.
pub fn cdf_chart(values: &[u64], x_label: &str) -> String {
    if values.is_empty() {
        return line_chart(&[], x_label, "P(X <= x)", None);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let total = sorted.len() as f64;
    let mut points = Vec::new();
    let mut seen = 0usize;
    let mut i = 0usize;
    points.push((sorted[0] as f64, 0.0));
    while i < sorted.len() {
        let v = sorted[i];
        while i < sorted.len() && sorted[i] == v {
            seen += 1;
            i += 1;
        }
        points.push((v as f64, seen as f64 / total));
        if i < sorted.len() {
            // Horizontal run to the next distinct value (step shape).
            points.push((sorted[i] as f64, seen as f64 / total));
        }
    }
    let series = [Series {
        label: "cdf".to_string(),
        points,
    }];
    line_chart(&series, x_label, "P(X <= x)", None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charts_are_single_svg_elements() {
        let s = [Series {
            label: "seed 0".to_string(),
            points: vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)],
        }];
        for svg in [
            line_chart(&s, "phase", "steps", Some((4.0, "bound"))),
            bar_chart(
                &[("a".to_string(), 2.0), ("b".to_string(), 5.0)],
                "event",
                "rounds",
            ),
            cdf_chart(&[1, 2, 2, 3], "eccentricity"),
        ] {
            assert!(svg.starts_with("<svg"), "{svg}");
            assert!(svg.ends_with("</svg>"));
            assert_eq!(svg.matches("<svg").count(), 1);
            assert!(!svg.contains("http"));
        }
    }

    #[test]
    fn charts_are_deterministic() {
        let s = [Series {
            label: "x".to_string(),
            points: vec![(0.0, 0.3333333), (7.0, 9.9999999)],
        }];
        assert_eq!(
            line_chart(&s, "a", "b", None),
            line_chart(&s, "a", "b", None)
        );
    }

    #[test]
    fn degenerate_inputs_render() {
        assert!(line_chart(&[], "x", "y", None).contains("</svg>"));
        assert!(bar_chart(&[], "x", "y").contains("</svg>"));
        assert!(cdf_chart(&[], "x").contains("</svg>"));
        let flat = [Series {
            label: "flat".to_string(),
            points: vec![(1.0, 5.0)],
        }];
        assert!(line_chart(&flat, "x", "y", None).contains("circle"));
    }
}
