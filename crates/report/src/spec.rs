//! The declarative report spec: `[report]` + repeated `[[analysis]]`.
//!
//! Report specs ride on the same hand-rolled TOML subset as scenario
//! specs ([`bbncg_scenario::toml`]), so the grammar, escapes and error
//! style are identical:
//!
//! ```text
//! [report]
//! title = "churn study"          # page title (default "bbncg report")
//! scenario = "examples/churn.toml"  # path, resolved by the caller
//! seed = 42                      # optional scenario seed override
//!
//! [[analysis]]
//! kind = "convergence"           # per-seed steps/rounds to quiescence
//!
//! [[analysis]]
//! kind = "poa-spectrum"          # Table 1 series via bbncg-analysis
//! sizes = [6, 8, 10]
//! budget = 1
//! samples = 8
//! ```
//!
//! Five analysis kinds exist; three (`convergence`, `recovery`,
//! `obs-digest`) consume a scenario record stream, two (`poa-spectrum`,
//! `census`) run their own equilibrium sampling and need no scenario.
//! Unknown sections, kinds and keys fail loudly with a line number.

use bbncg_core::CostModel;
use bbncg_scenario::toml::{self, SpecError, TomlTable, Value};

/// A validated report spec.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportSpec {
    /// Page title.
    pub title: String,
    /// Scenario spec path, as written (`[report] scenario = "…"`);
    /// the caller resolves it relative to the report spec's directory
    /// and supplies the text.
    pub scenario: Option<String>,
    /// Scenario seed override (`[report] seed = …`).
    pub seed: Option<u64>,
    /// Analyses, in source order.
    pub analyses: Vec<AnalysisSpec>,
}

impl ReportSpec {
    /// Does any analysis need a scenario record stream?
    pub fn needs_records(&self) -> bool {
        self.analyses.iter().any(|a| a.needs_records())
    }

    /// Does any analysis need live `bbncg_obs` counters (i.e. a fresh
    /// scenario run, not ingested JSONL)?
    pub fn needs_obs(&self) -> bool {
        self.analyses
            .iter()
            .any(|a| matches!(a, AnalysisSpec::ObsDigest))
    }
}

/// One `[[analysis]]` entry.
#[derive(Clone, Debug, PartialEq)]
pub enum AnalysisSpec {
    /// Steps/rounds-to-quiescence per seed, from dynamics phases.
    Convergence,
    /// Recovery time (rounds/steps of the next dynamics phase) after
    /// each perturbation event.
    Recovery,
    /// Counter digest of the run: prune-hit rates, speculative
    /// commit/discard rates (the PR 7 registry).
    ObsDigest,
    /// Empirical price-of-anarchy series vs the paper's Table 1.
    PoaSpectrum {
        /// Player counts to scan.
        sizes: Vec<usize>,
        /// Uniform per-player budget.
        budget: usize,
        /// Trajectories per size.
        samples: usize,
        /// Dynamics round cap per trajectory.
        max_rounds: usize,
        /// SUM or MAX cost.
        model: CostModel,
    },
    /// Equilibrium census: degree/diameter/eccentricity distributions
    /// vs the Àlvarez–Messegué structural bound.
    Census {
        /// Number of players.
        n: usize,
        /// Uniform per-player budget.
        budget: usize,
        /// Trajectories to sample.
        samples: usize,
        /// Dynamics round cap per trajectory.
        max_rounds: usize,
        /// SUM or MAX cost.
        model: CostModel,
        /// Base seed of the sample sweep.
        seed: u64,
    },
}

impl AnalysisSpec {
    /// The `kind = "…"` label, as written in specs.
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisSpec::Convergence => "convergence",
            AnalysisSpec::Recovery => "recovery",
            AnalysisSpec::ObsDigest => "obs-digest",
            AnalysisSpec::PoaSpectrum { .. } => "poa-spectrum",
            AnalysisSpec::Census { .. } => "census",
        }
    }

    /// Does this analysis consume a scenario record stream?
    pub fn needs_records(&self) -> bool {
        matches!(
            self,
            AnalysisSpec::Convergence | AnalysisSpec::Recovery | AnalysisSpec::ObsDigest
        )
    }
}

fn get_int(t: &TomlTable, key: &str) -> Result<Option<i64>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Int(v)) => Ok(Some(*v)),
        Some(v) => Err(SpecError::at(
            t.line,
            format!(
                "[{}] {key} must be an integer, got {}",
                t.name,
                v.type_name()
            ),
        )),
    }
}

fn get_usize(t: &TomlTable, key: &str) -> Result<Option<usize>, SpecError> {
    match get_int(t, key)? {
        None => Ok(None),
        Some(v) if v >= 0 => Ok(Some(v as usize)),
        Some(v) => Err(SpecError::at(
            t.line,
            format!("[{}] {key} must be non-negative, got {v}", t.name),
        )),
    }
}

fn get_u64(t: &TomlTable, key: &str) -> Result<Option<u64>, SpecError> {
    match get_int(t, key)? {
        None => Ok(None),
        Some(v) if v >= 0 => Ok(Some(v as u64)),
        Some(v) => Err(SpecError::at(
            t.line,
            format!("[{}] {key} must be non-negative, got {v}", t.name),
        )),
    }
}

fn get_str<'a>(t: &'a TomlTable, key: &str) -> Result<Option<&'a str>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(v) => Err(SpecError::at(
            t.line,
            format!("[{}] {key} must be a string, got {}", t.name, v.type_name()),
        )),
    }
}

fn get_usize_list(t: &TomlTable, key: &str) -> Result<Option<Vec<usize>>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::List(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Value::Int(v) if *v >= 0 => out.push(*v as usize),
                    other => {
                        return Err(SpecError::at(
                            t.line,
                            format!(
                                "[{}] {key} must list non-negative integers, got {}",
                                t.name,
                                other.type_name()
                            ),
                        ))
                    }
                }
            }
            Ok(Some(out))
        }
        Some(v) => Err(SpecError::at(
            t.line,
            format!("[{}] {key} must be an array, got {}", t.name, v.type_name()),
        )),
    }
}

fn get_model(t: &TomlTable, key: &str) -> Result<Option<CostModel>, SpecError> {
    match get_str(t, key)? {
        None => Ok(None),
        Some("sum") => Ok(Some(CostModel::Sum)),
        Some("max") => Ok(Some(CostModel::Max)),
        Some(other) => Err(SpecError::at(
            t.line,
            format!(
                "[{}] {key} must be \"sum\" or \"max\", got {other:?}",
                t.name
            ),
        )),
    }
}

fn check_keys(t: &TomlTable, allowed: &[&str]) -> Result<(), SpecError> {
    for key in t.keys() {
        if !allowed.contains(&key) {
            return Err(SpecError::at(
                t.line,
                format!(
                    "[{}] unknown key {key:?} (allowed: {})",
                    t.name,
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

/// Parse and validate a report spec.
pub fn parse_report(text: &str) -> Result<ReportSpec, SpecError> {
    let doc = toml::parse(text)?;

    if !doc.root.entries.is_empty() {
        return Err(SpecError::at(
            0,
            "report specs have no top-level keys; put them under [report]",
        ));
    }
    for section in &doc.sections {
        if section.name != "report" && section.name != "analysis" {
            return Err(SpecError::at(
                section.line,
                format!(
                    "unknown section [{}] (expected [report] or [[analysis]])",
                    section.name
                ),
            ));
        }
        if section.name == "analysis" && !section.is_array {
            return Err(SpecError::at(
                section.line,
                "analyses repeat: write [[analysis]], not [analysis]",
            ));
        }
    }

    let report = doc
        .section("report")
        .ok_or_else(|| SpecError::at(0, "missing [report] section"))?;
    check_keys(report, &["title", "scenario", "seed"])?;
    let title = get_str(report, "title")?
        .unwrap_or("bbncg report")
        .to_string();
    let scenario = get_str(report, "scenario")?.map(str::to_string);
    let seed = get_u64(report, "seed")?;

    let mut analyses = Vec::new();
    for t in doc.array_sections("analysis") {
        analyses.push(parse_analysis(t)?);
    }
    if analyses.is_empty() {
        return Err(SpecError::at(0, "a report needs at least one [[analysis]]"));
    }

    let spec = ReportSpec {
        title,
        scenario,
        seed,
        analyses,
    };
    if spec.needs_records() && spec.scenario.is_none() {
        let needy = spec
            .analyses
            .iter()
            .filter(|a| a.needs_records())
            .map(AnalysisSpec::kind)
            .collect::<Vec<_>>()
            .join(", ");
        return Err(SpecError::at(
            0,
            format!(
                "analyses [{needy}] consume a scenario record stream: \
                 set [report] scenario = \"…\" (or run with --from)"
            ),
        ));
    }
    Ok(spec)
}

fn parse_analysis(t: &TomlTable) -> Result<AnalysisSpec, SpecError> {
    let kind = get_str(t, "kind")?
        .ok_or_else(|| SpecError::at(t.line, "[[analysis]] needs kind = \"…\""))?;
    match kind {
        "convergence" => {
            check_keys(t, &["kind"])?;
            Ok(AnalysisSpec::Convergence)
        }
        "recovery" => {
            check_keys(t, &["kind"])?;
            Ok(AnalysisSpec::Recovery)
        }
        "obs-digest" => {
            check_keys(t, &["kind"])?;
            Ok(AnalysisSpec::ObsDigest)
        }
        "poa-spectrum" => {
            check_keys(
                t,
                &["kind", "sizes", "budget", "samples", "max_rounds", "model"],
            )?;
            let sizes = get_usize_list(t, "sizes")?
                .ok_or_else(|| SpecError::at(t.line, "poa-spectrum needs sizes = [n, …]"))?;
            if sizes.is_empty() || sizes.iter().any(|&n| n < 2) {
                return Err(SpecError::at(
                    t.line,
                    "poa-spectrum sizes must be a non-empty list of n >= 2",
                ));
            }
            Ok(AnalysisSpec::PoaSpectrum {
                sizes,
                budget: get_usize(t, "budget")?.unwrap_or(1),
                samples: get_usize(t, "samples")?.unwrap_or(8).max(1),
                max_rounds: get_usize(t, "max_rounds")?.unwrap_or(200).max(1),
                model: get_model(t, "model")?.unwrap_or(CostModel::Sum),
            })
        }
        "census" => {
            check_keys(
                t,
                &[
                    "kind",
                    "n",
                    "budget",
                    "samples",
                    "max_rounds",
                    "model",
                    "seed",
                ],
            )?;
            let n =
                get_usize(t, "n")?.ok_or_else(|| SpecError::at(t.line, "census needs n = …"))?;
            if n < 2 {
                return Err(SpecError::at(t.line, "census needs n >= 2"));
            }
            Ok(AnalysisSpec::Census {
                n,
                budget: get_usize(t, "budget")?.unwrap_or(1),
                samples: get_usize(t, "samples")?.unwrap_or(16).max(1),
                max_rounds: get_usize(t, "max_rounds")?.unwrap_or(200).max(1),
                model: get_model(t, "model")?.unwrap_or(CostModel::Sum),
                seed: get_u64(t, "seed")?.unwrap_or(0xCE55),
            })
        }
        other => Err(SpecError::at(
            t.line,
            format!(
                "unknown analysis kind {other:?} (expected convergence, recovery, \
                 obs-digest, poa-spectrum or census)"
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
[report]
title = "churn study"
scenario = "churn.toml"
seed = 42

[[analysis]]
kind = "convergence"

[[analysis]]
kind = "recovery"

[[analysis]]
kind = "poa-spectrum"
sizes = [6, 8]
samples = 4

[[analysis]]
kind = "census"
n = 8
samples = 4

[[analysis]]
kind = "obs-digest"
"#;

    #[test]
    fn parses_a_full_spec() {
        let spec = parse_report(FULL).unwrap();
        assert_eq!(spec.title, "churn study");
        assert_eq!(spec.scenario.as_deref(), Some("churn.toml"));
        assert_eq!(spec.seed, Some(42));
        assert_eq!(spec.analyses.len(), 5);
        assert!(spec.needs_records());
        assert!(spec.needs_obs());
        assert_eq!(
            spec.analyses.iter().map(|a| a.kind()).collect::<Vec<_>>(),
            [
                "convergence",
                "recovery",
                "poa-spectrum",
                "census",
                "obs-digest"
            ]
        );
    }

    #[test]
    fn defaults_fill_in() {
        let spec = parse_report("[report]\n[[analysis]]\nkind = \"census\"\nn = 6\n").unwrap();
        assert_eq!(spec.title, "bbncg report");
        assert!(!spec.needs_records());
        match &spec.analyses[0] {
            AnalysisSpec::Census {
                n,
                budget,
                samples,
                max_rounds,
                model,
                seed,
            } => {
                assert_eq!((*n, *budget, *samples, *max_rounds), (6, 1, 16, 200));
                assert_eq!(*model, CostModel::Sum);
                assert_eq!(*seed, 0xCE55);
            }
            other => panic!("wrong analysis: {other:?}"),
        }
    }

    #[test]
    fn record_analyses_require_a_scenario() {
        let err = parse_report("[report]\n[[analysis]]\nkind = \"convergence\"\n").unwrap_err();
        assert!(err.msg.contains("scenario"), "{err}");
    }

    #[test]
    fn rejects_unknowns() {
        assert!(
            parse_report("[report]\nbogus = 1\n[[analysis]]\nkind = \"census\"\nn = 4\n").is_err()
        );
        assert!(parse_report("[report]\n[[analysis]]\nkind = \"nope\"\n").is_err());
        assert!(parse_report("[report]\n[analysis]\nkind = \"census\"\nn = 4\n").is_err());
        assert!(parse_report("[report]\n").is_err());
        assert!(parse_report("[other]\n").is_err());
        assert!(
            parse_report("[report]\n[[analysis]]\nkind = \"poa-spectrum\"\nsizes = [1]\n").is_err()
        );
        assert!(parse_report(
            "[report]\n[[analysis]]\nkind = \"census\"\nn = 6\nmodel = \"avg\"\n"
        )
        .is_err());
    }
}
