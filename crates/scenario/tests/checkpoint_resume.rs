//! The engine's two headline guarantees, asserted end-to-end:
//!
//! 1. **Seed determinism** — `(spec, seed)` names a unique trajectory:
//!    re-running emits identical metric records and final states.
//! 2. **Bit-identical resume** — stopping mid-scenario, freezing a
//!    [`Checkpoint`] through its text form, and resuming reproduces the
//!    exact final state hash (and the exact remaining records) of an
//!    uninterrupted run.

use bbncg_scenario::{parse_spec, run_scenario, run_sweep, Checkpoint, MemorySink, ScenarioSpec};

/// A scenario exercising every phase kind, with enough randomness
/// (random init, random arrivals/departures/shocks, drawn reorient
/// seed, random-permutation dynamics) that any RNG drift would show.
const FULL: &str = r#"
[scenario]
name = "kitchen-sink"
seed = 42
seeds = 3

[init]
family = "random"
budgets = [1, 1, 1, 1, 1, 1, 1, 1, 1, 1]

[dynamics]
model = "sum"
rule = "exact"
max_rounds = 200

[[phase]]
kind = "dynamics"

[[phase]]
kind = "arrive"
count = 3
budget = 2

[[phase]]
kind = "dynamics"
order = "random"

[[phase]]
kind = "budget-shock"
count = 2
delta = 1

[[phase]]
kind = "delete-edges"
count = 2

[[phase]]
kind = "depart"
count = 2

[[phase]]
kind = "reorient"

[[phase]]
kind = "dynamics"
rule = "swap"
rounds = 300

# Trailing event after the last dynamics phase: a resume landing here
# must still report the persisted converged/cycled flags in its
# summary record (they ride in the checkpoint, not just in memory).
[[phase]]
kind = "arrive"
count = 1
budget = 1
"#;

fn spec() -> ScenarioSpec {
    parse_spec(FULL).unwrap()
}

#[test]
fn identical_seeds_give_identical_trajectories() {
    let spec = spec();
    let mut a = MemorySink::default();
    let mut b = MemorySink::default();
    let ra = run_scenario(&spec, 5, None, &mut a, None, |_| ()).unwrap();
    let rb = run_scenario(&spec, 5, None, &mut b, None, |_| ()).unwrap();
    assert_eq!(a.records, b.records);
    assert_eq!(ra.state, rb.state);
    assert_eq!(ra.state_hash, rb.state_hash);
    assert_eq!(ra.steps, rb.steps);
    // A different seed diverges (overwhelmingly likely for this spec).
    let mut c = MemorySink::default();
    let rc = run_scenario(&spec, 6, None, &mut c, None, |_| ()).unwrap();
    assert_ne!(ra.state_hash, rc.state_hash);
}

#[test]
fn resume_from_any_phase_matches_the_uninterrupted_run() {
    let spec = spec();
    let mut full_sink = MemorySink::default();
    let full = run_scenario(&spec, 9, None, &mut full_sink, None, |_| ()).unwrap();
    assert!(full.completed);
    assert_eq!(full.phases_done, spec.phases.len());

    for stop in 1..spec.phases.len() {
        // Run the first `stop` phases, freeze, thaw through the text
        // format, and finish the timeline.
        let mut head = MemorySink::default();
        let part = run_scenario(&spec, 9, None, &mut head, Some(stop), |_| ()).unwrap();
        assert!(!part.completed);
        assert_eq!(part.phases_done, stop);
        let frozen = part.checkpoint.to_text();
        let thawed = Checkpoint::from_text(&frozen).unwrap();
        assert_eq!(thawed, part.checkpoint);

        let mut tail = MemorySink::default();
        let resumed = run_scenario(&spec, 9, Some(thawed), &mut tail, None, |_| ()).unwrap();
        assert!(resumed.completed);
        assert_eq!(
            resumed.state_hash, full.state_hash,
            "resume after phase {stop} must reproduce the uninterrupted final hash"
        );
        assert_eq!(resumed.state, full.state);
        assert_eq!(
            resumed.steps, full.steps,
            "cumulative steps after phase {stop}"
        );
        // head records + tail records = the uninterrupted stream.
        let mut glued = head.records.clone();
        glued.extend(tail.records.iter().cloned());
        assert_eq!(glued, full_sink.records);
    }
}

#[test]
fn per_phase_checkpoints_resume_too() {
    // The crash-resume path: take the checkpoint handed to the
    // phase-end hook mid-run (not the returned one) and resume from it.
    let spec = spec();
    let full = run_scenario(&spec, 3, None, &mut MemorySink::default(), None, |_| ()).unwrap();
    let mut third: Option<Checkpoint> = None;
    run_scenario(&spec, 3, None, &mut MemorySink::default(), None, |ck| {
        if ck.next_phase == 3 {
            third = Some(ck.clone());
        }
    })
    .unwrap();
    let ck = third.expect("phase-end hook fired for phase 3");
    let resumed =
        run_scenario(&spec, 3, Some(ck), &mut MemorySink::default(), None, |_| ()).unwrap();
    assert_eq!(resumed.state_hash, full.state_hash);
}

#[test]
fn kernels_trace_identically_and_resume_across_kernels() {
    // The same timeline under each explicit kernel: records, final
    // states and hashes must be identical (kernels are move-for-move
    // equivalent), and a checkpoint frozen under one kernel must resume
    // bit-identically under the other.
    let mut specs = Vec::new();
    for kernel in ["queue", "bitset"] {
        let text = FULL.replace(
            "rule = \"exact\"",
            &format!("rule = \"exact\"\nkernel = \"{kernel}\""),
        );
        specs.push(parse_spec(&text).unwrap());
    }
    let (queue, bitset) = (&specs[0], &specs[1]);
    let mut qs = MemorySink::default();
    let mut bs = MemorySink::default();
    let rq = run_scenario(queue, 9, None, &mut qs, None, |_| ()).unwrap();
    let rb = run_scenario(bitset, 9, None, &mut bs, None, |_| ()).unwrap();
    assert_eq!(rq.state, rb.state, "kernels must trace identically");
    assert_eq!(rq.state_hash, rb.state_hash);
    assert_eq!(rq.steps, rb.steps);
    // Records differ only in the scenario identity baked into them
    // (spec hash is part of neither record, the name is the same).
    assert_eq!(qs.records, bs.records);

    // Freeze under queue, thaw, and finish under bitset. The spec-hash
    // differs across the two spec texts, so resume through a
    // hash-matching bitset copy of the frozen cursor.
    let part = run_scenario(queue, 9, None, &mut MemorySink::default(), Some(3), |_| ()).unwrap();
    assert_eq!(part.checkpoint.kernel.label(), "queue");
    let mut ck = Checkpoint::from_text(&part.checkpoint.to_text()).unwrap();
    assert_eq!(ck, part.checkpoint, "kernel survives the text roundtrip");
    ck.spec_hash = bitset.spec_hash;
    let resumed = run_scenario(
        bitset,
        9,
        Some(ck),
        &mut MemorySink::default(),
        None,
        |_| (),
    )
    .unwrap();
    assert_eq!(
        resumed.state_hash, rq.state_hash,
        "resume under the other kernel must land on the identical final hash"
    );
}

#[test]
fn pre_kernel_checkpoints_still_parse() {
    // Checkpoints written before the kernel field existed carry no
    // "kernel" meta key; parsing must default to auto, not fail.
    let spec = spec();
    let part = run_scenario(&spec, 2, None, &mut MemorySink::default(), Some(1), |_| ()).unwrap();
    let frozen = part.checkpoint.to_text();
    let stripped: String = frozen
        .lines()
        .filter(|l| !l.contains("kernel"))
        .collect::<Vec<_>>()
        .join("\n");
    let thawed = Checkpoint::from_text(&stripped).unwrap();
    assert_eq!(thawed.kernel.label(), "auto");
    assert_eq!(thawed.state, part.checkpoint.state);
}

#[test]
fn executors_trace_identically_and_checkpoint_meta_roundtrips() {
    // The same timeline under each explicit round executor: records,
    // final states and hashes must be identical (executors are
    // step-identical), the executor label survives the checkpoint text
    // roundtrip, and a pre-executor checkpoint (no "executor" meta
    // key) parses with the auto default — same policy as kernels.
    let mut specs = Vec::new();
    for mode in ["sequential", "speculative"] {
        let text = FULL.replace(
            "rule = \"exact\"",
            &format!("rule = \"exact\"\nrounds = \"{mode}\""),
        );
        specs.push(parse_spec(&text).unwrap());
    }
    let (seq, spe) = (&specs[0], &specs[1]);
    let mut ss = MemorySink::default();
    let mut ps = MemorySink::default();
    let rs = run_scenario(seq, 9, None, &mut ss, None, |_| ()).unwrap();
    let rp = run_scenario(spe, 9, None, &mut ps, None, |_| ()).unwrap();
    assert_eq!(rs.state, rp.state, "executors must trace identically");
    assert_eq!(rs.state_hash, rp.state_hash);
    assert_eq!(rs.steps, rp.steps);
    assert_eq!(ss.records, ps.records);

    // Freeze under speculative, thaw, and finish under sequential.
    let part = run_scenario(spe, 9, None, &mut MemorySink::default(), Some(3), |_| ()).unwrap();
    assert_eq!(part.checkpoint.executor.label(), "speculative");
    let mut ck = Checkpoint::from_text(&part.checkpoint.to_text()).unwrap();
    assert_eq!(ck, part.checkpoint, "executor survives the text roundtrip");
    ck.spec_hash = seq.spec_hash;
    let resumed = run_scenario(seq, 9, Some(ck), &mut MemorySink::default(), None, |_| ()).unwrap();
    assert_eq!(
        resumed.state_hash, rs.state_hash,
        "resume under the other executor must land on the identical final hash"
    );

    // Pre-executor checkpoints parse with the auto default.
    let stripped: String = part
        .checkpoint
        .to_text()
        .lines()
        .filter(|l| !l.contains("executor"))
        .collect::<Vec<_>>()
        .join("\n");
    let thawed = Checkpoint::from_text(&stripped).unwrap();
    assert_eq!(thawed.executor.label(), "auto");
    assert_eq!(thawed.state, part.checkpoint.state);
}

#[test]
fn resume_rejects_a_mismatched_spec() {
    let spec = spec();
    let part = run_scenario(&spec, 1, None, &mut MemorySink::default(), Some(2), |_| ()).unwrap();
    let edited = parse_spec(&FULL.replace("count = 3", "count = 4")).unwrap();
    let err = run_scenario(
        &edited,
        1,
        Some(part.checkpoint),
        &mut MemorySink::default(),
        None,
        |_| (),
    )
    .unwrap_err();
    assert!(err.contains("different spec"), "{err}");
}

#[test]
fn sweeps_are_deterministic_and_ordered() {
    let spec = spec();
    let mut a = MemorySink::default();
    let mut b = MemorySink::default();
    let ra = run_sweep(&spec, &mut a);
    let rb = run_sweep(&spec, &mut b);
    assert_eq!(ra.len(), 3);
    assert_eq!(a.records, b.records);
    for (x, y) in ra.iter().zip(&rb) {
        let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
        assert_eq!(x.state_hash, y.state_hash);
    }
    // Records arrive grouped by seed, seeds ascending.
    let seeds: Vec<u64> = a.records.iter().map(|r| r.seed).collect();
    let mut sorted = seeds.clone();
    sorted.sort_unstable();
    assert_eq!(seeds, sorted);
    // Sweep trajectories equal their single-run counterparts.
    let mut single = MemorySink::default();
    let one = run_scenario(&spec, 43, None, &mut single, None, |_| ()).unwrap();
    assert_eq!(one.state_hash, ra[1].as_ref().unwrap().state_hash);
}
