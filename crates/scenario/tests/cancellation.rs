//! Cooperative cancellation of scenario runs.
//!
//! The contract under test: a fired `CancelToken` stops a run at a
//! *phase boundary* (an in-flight dynamics phase is abandoned, never
//! half-recorded), the cancelled outcome's checkpoint resumes
//! bit-identically, and the concatenated record stream of
//! cancelled-run + resumed-run equals the uninterrupted run's stream
//! line for line.

use bbncg_core::CancelToken;
use bbncg_scenario::{
    parse_spec, run_scenario, run_scenario_with_engine, run_sweep_cancellable, MemorySink,
    MetricRecord,
};

const SPEC: &str = "\
[scenario]
name = \"cancel\"
seed = 5

[init]
family = \"uniform\"
n = 10
budget = 1

[[phase]]
kind = \"dynamics\"

[[phase]]
kind = \"arrive\"
count = 2
budget = 1

[[phase]]
kind = \"dynamics\"

[[phase]]
kind = \"delete-edges\"
count = 2

[[phase]]
kind = \"dynamics\"
";

fn lines(records: &[MetricRecord]) -> Vec<String> {
    records.iter().map(|r| r.to_json()).collect()
}

#[test]
fn pre_cancelled_token_stops_before_any_phase() {
    let spec = parse_spec(SPEC).unwrap();
    let cancel = CancelToken::new();
    cancel.cancel();
    let mut sink = MemorySink::default();
    let out = run_scenario_with_engine(
        &spec,
        spec.seed,
        None,
        &mut sink,
        None,
        &mut |_| (),
        &mut None,
        &cancel,
    )
    .unwrap();
    assert!(out.cancelled);
    assert!(!out.completed);
    assert_eq!(out.phases_done, 0);
    assert!(sink.records.is_empty(), "no phase ran, no record emitted");
    assert_eq!(out.checkpoint.next_phase, 0);
}

#[test]
fn cancel_mid_run_then_resume_is_bit_identical() {
    let spec = parse_spec(SPEC).unwrap();

    // Reference: the uninterrupted run.
    let mut full_sink = MemorySink::default();
    let full = run_scenario(&spec, spec.seed, None, &mut full_sink, None, |_| ()).unwrap();
    assert!(full.completed);

    // Fire the token from the phase-end hook after two phases: the
    // run must stop at that boundary with a resumable checkpoint.
    let cancel = CancelToken::new();
    let mut first_sink = MemorySink::default();
    let mut hook_calls = 0usize;
    let out = run_scenario_with_engine(
        &spec,
        spec.seed,
        None,
        &mut first_sink,
        None,
        &mut |_ck| {
            hook_calls += 1;
            if hook_calls == 2 {
                cancel.cancel();
            }
        },
        &mut None,
        &cancel,
    )
    .unwrap();
    assert!(out.cancelled);
    assert!(!out.completed);
    assert_eq!(out.phases_done, 2);
    assert_eq!(out.checkpoint.next_phase, 2);
    assert_eq!(first_sink.records.len(), 2, "one record per executed phase");

    // Resume with a fresh token: the stitched trajectory equals the
    // uninterrupted one, record for record and hash for hash.
    let mut resume_sink = MemorySink::default();
    let resumed = run_scenario(
        &spec,
        out.checkpoint.seed,
        Some(out.checkpoint.clone()),
        &mut resume_sink,
        None,
        |_| (),
    )
    .unwrap();
    assert!(resumed.completed);
    assert!(!resumed.cancelled);
    assert_eq!(resumed.state_hash, full.state_hash);
    let mut stitched = lines(&first_sink.records);
    stitched.extend(lines(&resume_sink.records));
    assert_eq!(stitched, lines(&full_sink.records));
}

#[test]
fn mid_dynamics_cancel_winds_back_to_the_phase_boundary() {
    // A token fired *during* a dynamics phase (here: already fired
    // when the phase starts its first round — the round-boundary poll
    // path) must abandon the phase: same checkpoint as never having
    // started it. The phase-boundary poll would catch a hook-fired
    // token first, so call the dynamics path the way the engine does —
    // through a run that cancels after phase 1's record but observes
    // the token only inside phase 2's dynamics. We approximate by
    // checking outcome equivalence: cancel-after-k and stop_after-k
    // freeze identical checkpoints.
    let spec = parse_spec(SPEC).unwrap();
    let cancel = CancelToken::new();
    let mut hook_calls = 0usize;
    let mut a_sink = MemorySink::default();
    let a = run_scenario_with_engine(
        &spec,
        spec.seed,
        None,
        &mut a_sink,
        None,
        &mut |_| {
            hook_calls += 1;
            if hook_calls == 3 {
                cancel.cancel();
            }
        },
        &mut None,
        &cancel,
    )
    .unwrap();
    let mut b_sink = MemorySink::default();
    let b = run_scenario(&spec, spec.seed, None, &mut b_sink, Some(3), |_| ()).unwrap();
    assert!(a.cancelled && !b.cancelled);
    assert_eq!(a.checkpoint, b.checkpoint);
    assert_eq!(lines(&a_sink.records), lines(&b_sink.records));
}

#[test]
fn cancelled_sweep_yields_only_boundary_consistent_outcomes() {
    let mut text = SPEC.replace("seed = 5", "seed = 5\nseeds = 6");
    text.push('\n');
    let spec = parse_spec(&text).unwrap();
    let cancel = CancelToken::new();
    cancel.cancel(); // worst case: fired before any seed starts
    let mut sink = MemorySink::default();
    let outcomes = run_sweep_cancellable(&spec, &mut sink, &cancel);
    assert_eq!(outcomes.len(), 6);
    for o in outcomes {
        let o = o.unwrap();
        assert!(o.cancelled);
        assert_eq!(o.phases_done, 0);
    }
    assert!(sink.records.is_empty());
}
