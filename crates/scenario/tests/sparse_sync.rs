//! Cross-layer sync enforcement for the sparse kernel: the slack-free
//! `CompactCsr` backing and the per-session base-BFS/landmark state
//! must stay consistent when the world changes through `events.rs`
//! perturbations — departures with orphan retargeting, adversarial
//! deletion, budget shocks, arrivals, reorientation — not just through
//! plain dynamics patch sessions.
//!
//! The sparse engine keeps its compact arena alive across profiles and
//! re-syncs by *diffing* (relocating rows in place when degrees grow),
//! and every `begin` re-bases the incremental SSSP on the post-event
//! graph, so an event that rewrites many strategies at once (or
//! resizes the instance) exercises exactly the multi-edge diff and
//! full-rebase paths a single dynamics move never does. The oracle is
//! a fresh queue-kernel engine plus the full-recompute
//! `Realization::cost`.

use bbncg_core::{CostKernel, CostModel, DeviationScratch, Realization};
use bbncg_graph::NodeId;
use bbncg_scenario::events;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every player's every single-target candidate (plus its current
/// strategy) must price identically through the long-lived sparse
/// engine, a fresh queue engine, and a full recompute.
fn assert_engines_agree(
    sparse: &mut DeviationScratch,
    r: &Realization,
) -> Result<(), TestCaseError> {
    let mut queue = DeviationScratch::with_kernel(r, CostKernel::Queue);
    let n = r.n();
    for model in CostModel::ALL {
        for u in (0..n).map(NodeId::new) {
            if r.graph().out_degree(u) == 0 {
                continue;
            }
            sparse.begin(r, u, model);
            queue.begin(r, u, model);
            let current = r.strategy(u).to_vec();
            prop_assert_eq!(sparse.cost_of(&current), queue.cost_of(&current));
            prop_assert_eq!(sparse.cost_of(&current), r.cost(u, model));
            for t in (0..n).map(NodeId::new).filter(|&t| t != u) {
                // Prefix pricing (the greedy rule's shape) must agree
                // between the kernels for any budget; the full
                // recompute only prices complete strategies, so it
                // anchors the budget-1 players.
                let s = sparse.cost_of(&[t]);
                prop_assert_eq!(s, queue.cost_of(&[t]));
                if r.graph().out_degree(u) == 1 {
                    prop_assert_eq!(s, r.with_strategy(u, vec![t]).cost(u, model));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One sparse engine survives a whole perturbation timeline:
    /// same-size events (adversarial deletion, budget shocks,
    /// reorientation) drive the compact arena's multi-strategy
    /// diff-sync path, and resizing events (departure with orphan
    /// retargeting, arrival) drive the transparent rebuild path. After
    /// every event the engine prices like a fresh one — the
    /// repair-after-departure case is the one a per-session rebase
    /// must not get wrong.
    #[test]
    fn sparse_backing_survives_event_timelines(n in 5usize..9, seed in 0u64..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets: Vec<usize> = (0..n).map(|i| 1 + (i + seed as usize) % 2).collect();
        let mut state = Realization::new(
            bbncg_graph::generators::random_realization(&budgets, &mut rng),
        );
        // Forced sparse kernel: Auto would pick queue at these sizes,
        // and the compact-arena consistency paths are what's on trial.
        let mut engine = DeviationScratch::with_kernel(&state, CostKernel::Sparse);
        assert_engines_agree(&mut engine, &state)?;

        // Adversarial deletion (deterministic arc choice, same-n diff).
        state = events::delete_edges(&state, 2, true, &mut rng);
        assert_engines_agree(&mut engine, &state)?;

        // Budget shock: grants then revocations on random nodes. The
        // grants grow rows past their exact capacity, forcing arena
        // relocations mid-timeline.
        let who = events::pick_nodes(&state, 2, &mut rng);
        state = events::budget_shock(&state, &who, 1, &mut rng).unwrap();
        assert_engines_agree(&mut engine, &state)?;
        let who = events::pick_nodes(&state, 1, &mut rng);
        state = events::budget_shock(&state, &who, -1, &mut rng).unwrap();
        assert_engines_agree(&mut engine, &state)?;

        // Reorientation flips many arcs at once — the widest same-size
        // diff an event can produce (brace multiplicities shift too).
        state = events::reorient(&state, &mut rng);
        assert_engines_agree(&mut engine, &state)?;

        // Departure with orphan retargeting shrinks the instance; the
        // engine must rebuild transparently and keep its kernel, and
        // the next session's base BFS must rebase onto the smaller
        // graph without stale distances leaking through.
        let leavers = events::pick_departures(&state, 2, &mut rng);
        state = events::depart(&state, &leavers, &mut rng).unwrap();
        prop_assert!(state.n() < n + 1);
        assert_engines_agree(&mut engine, &state)?;
        prop_assert_eq!(engine.resolved_kernel(), CostKernel::Sparse);

        // Arrival grows it back.
        state = events::arrive(&state, 2, 1, &mut rng);
        assert_engines_agree(&mut engine, &state)?;

        // And an ordinary dynamics move interleaves with the event
        // diffs without confusing the long-lived arena.
        let mover = (0..state.n())
            .map(NodeId::new)
            .find(|&u| state.graph().out_degree(u) == 1);
        if let Some(u) = mover {
            let target = (0..state.n())
                .map(NodeId::new)
                .find(|&t| t != u && !state.strategy(u).contains(&t));
            if let Some(t) = target {
                state.set_strategy(u, vec![t]);
                assert_engines_agree(&mut engine, &state)?;
            }
        }
    }

    /// Repair-vs-rebuild oracle under events: a *fixed* watcher
    /// re-audited after every perturbation keeps its retained base —
    /// same-size events flow in through diff-sync as raw arc deltas and
    /// are absorbed by the commit-time repair path (or a full rebase
    /// when the damage is too broad); either way pricing must match a
    /// fresh queue engine exactly. A final resizing event checks the
    /// retained state is dropped, not corrupted.
    #[test]
    fn retained_base_survives_event_timelines(n in 5usize..9, seed in 0u64..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets: Vec<usize> = (0..n).map(|i| 1 + (i + seed as usize) % 2).collect();
        let mut state = Realization::new(
            bbncg_graph::generators::random_realization(&budgets, &mut rng),
        );
        let mut engine = DeviationScratch::with_kernel(&state, CostKernel::Sparse);

        fn audit(
            engine: &mut DeviationScratch,
            state: &Realization,
        ) -> Result<(), TestCaseError> {
            let watcher = NodeId::new(0);
            let mut queue = DeviationScratch::with_kernel(state, CostKernel::Queue);
            for model in CostModel::ALL {
                engine.begin(state, watcher, model);
                queue.begin(state, watcher, model);
                let current = state.strategy(watcher).to_vec();
                prop_assert_eq!(engine.cost_of(&current), queue.cost_of(&current));
                for t in (0..state.n()).map(NodeId::new).filter(|&t| t != watcher) {
                    let want = queue.cost_of(&[t]);
                    prop_assert_eq!(engine.cost_of(&[t]), want);
                    prop_assert!(engine.candidate_lower_bound(&[t]) <= want);
                    prop_assert_eq!(engine.cost_of_pruned(&[t], want + 1), Some(want));
                }
            }
            Ok(())
        }

        audit(&mut engine, &state)?;
        // Same-size events: these reach the engine as diff-synced arc
        // deltas, the shape the repair journal is built for.
        state = events::delete_edges(&state, 1, true, &mut rng);
        audit(&mut engine, &state)?;
        let who = events::pick_nodes(&state, 1, &mut rng);
        state = events::budget_shock(&state, &who, 1, &mut rng).unwrap();
        audit(&mut engine, &state)?;
        state = events::reorient(&state, &mut rng);
        audit(&mut engine, &state)?;
        state = events::delete_edges(&state, 2, false, &mut rng);
        audit(&mut engine, &state)?;
        // Resizing event: retention cannot survive, pricing still must.
        let leavers = events::pick_departures(&state, 1, &mut rng);
        state = events::depart(&state, &leavers, &mut rng).unwrap();
        audit(&mut engine, &state)?;
    }
}
