//! Cross-layer sync enforcement: the word-parallel `BitAdjacency`
//! mirror must stay consistent with the `PatchableCsr` arena when the
//! world changes through `events.rs` perturbations — departures with
//! orphan retargeting, adversarial deletion, budget shocks, arrivals,
//! reorientation — not just through plain dynamics patch sessions.
//!
//! The engine keeps both structures alive across profiles and re-syncs
//! by *diffing*, so an event that rewrites many strategies at once (or
//! resizes the instance) exercises exactly the multi-edge diff paths a
//! single dynamics move never does. The oracle here is a fresh
//! queue-kernel engine plus the full-recompute `Realization::cost`;
//! the bitset engine's `sync` additionally self-checks
//! `bits.mirrors(patch)` via debug assertions, which are active in
//! this test profile.

use bbncg_core::{CostKernel, CostModel, DeviationScratch, Realization};
use bbncg_graph::NodeId;
use bbncg_scenario::events;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every player's every single-target candidate (plus its current
/// strategy) must price identically through the long-lived bitset
/// engine, a fresh queue engine, and a full recompute.
fn assert_engines_agree(
    bitset: &mut DeviationScratch,
    r: &Realization,
) -> Result<(), TestCaseError> {
    let mut queue = DeviationScratch::with_kernel(r, CostKernel::Queue);
    let n = r.n();
    for model in CostModel::ALL {
        for u in (0..n).map(NodeId::new) {
            if r.graph().out_degree(u) == 0 {
                continue;
            }
            bitset.begin(r, u, model);
            queue.begin(r, u, model);
            let current = r.strategy(u).to_vec();
            prop_assert_eq!(bitset.cost_of(&current), queue.cost_of(&current));
            prop_assert_eq!(bitset.cost_of(&current), r.cost(u, model));
            for t in (0..n).map(NodeId::new).filter(|&t| t != u) {
                // Prefix pricing (the greedy rule's shape) must agree
                // between the kernels for any budget; the full
                // recompute only prices complete strategies, so it
                // anchors the budget-1 players.
                let b = bitset.cost_of(&[t]);
                prop_assert_eq!(b, queue.cost_of(&[t]));
                if r.graph().out_degree(u) == 1 {
                    prop_assert_eq!(b, r.with_strategy(u, vec![t]).cost(u, model));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One bitset engine survives a whole perturbation timeline:
    /// same-size events (adversarial deletion, budget shocks,
    /// reorientation) drive the multi-strategy diff-sync path, and
    /// resizing events (departure with orphan retargeting, arrival)
    /// drive the transparent rebuild path. After every event the
    /// engine prices like a fresh one.
    #[test]
    fn bitset_mirror_survives_event_timelines(n in 5usize..9, seed in 0u64..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets: Vec<usize> = (0..n).map(|i| 1 + (i + seed as usize) % 2).collect();
        let mut state = Realization::new(
            bbncg_graph::generators::random_realization(&budgets, &mut rng),
        );
        // Forced bitset kernel: Auto would pick queue at these sizes,
        // and the mirror-consistency paths are exactly what's on trial.
        let mut engine = DeviationScratch::with_kernel(&state, CostKernel::Bitset);
        assert_engines_agree(&mut engine, &state)?;

        // Adversarial deletion (deterministic arc choice, same-n diff).
        state = events::delete_edges(&state, 2, true, &mut rng);
        assert_engines_agree(&mut engine, &state)?;

        // Budget shock: grants then revocations on random nodes.
        let who = events::pick_nodes(&state, 2, &mut rng);
        state = events::budget_shock(&state, &who, 1, &mut rng).unwrap();
        assert_engines_agree(&mut engine, &state)?;
        let who = events::pick_nodes(&state, 1, &mut rng);
        state = events::budget_shock(&state, &who, -1, &mut rng).unwrap();
        assert_engines_agree(&mut engine, &state)?;

        // Reorientation flips many arcs at once — the widest same-size
        // diff an event can produce (brace multiplicities shift too).
        state = events::reorient(&state, &mut rng);
        assert_engines_agree(&mut engine, &state)?;

        // Departure with orphan retargeting shrinks the instance; the
        // engine must rebuild transparently and keep its kernel.
        let leavers = events::pick_departures(&state, 2, &mut rng);
        state = events::depart(&state, &leavers, &mut rng).unwrap();
        prop_assert!(state.n() < n + 1);
        assert_engines_agree(&mut engine, &state)?;
        prop_assert_eq!(engine.resolved_kernel(), CostKernel::Bitset);

        // Arrival grows it back.
        state = events::arrive(&state, 2, 1, &mut rng);
        assert_engines_agree(&mut engine, &state)?;

        // And an ordinary dynamics move interleaves with the event
        // diffs without confusing the long-lived mirror.
        let mover = (0..state.n())
            .map(NodeId::new)
            .find(|&u| state.graph().out_degree(u) == 1);
        if let Some(u) = mover {
            let target = (0..state.n())
                .map(NodeId::new)
                .find(|&t| t != u && !state.strategy(u).contains(&t));
            if let Some(t) = target {
                state.set_strategy(u, vec![t]);
                assert_engines_agree(&mut engine, &state)?;
            }
        }
    }
}
