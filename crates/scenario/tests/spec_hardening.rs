//! Spec-parser hardening: duplicate keys and duplicate `[section]`
//! headers must be rejected with a line-numbered `SpecError` — never
//! resolved silently by last-write-wins — all the way through
//! `parse_spec` (the path every CLI invocation and every served job
//! submission goes through).

use bbncg_scenario::{parse_spec, toml};

const GOOD: &str = "\
[scenario]
name = \"hardening\"
seed = 1

[init]
family = \"uniform\"
n = 6
budget = 1

[dynamics]
model = \"sum\"

[[phase]]
kind = \"dynamics\"
";

#[test]
fn baseline_spec_parses() {
    parse_spec(GOOD).unwrap();
}

#[test]
fn duplicate_key_in_section_is_rejected_with_line() {
    // `seed` twice in [scenario]: the second write must fail, not win.
    let text = GOOD.replace("seed = 1\n", "seed = 1\nseed = 2\n");
    let err = parse_spec(&text).unwrap_err();
    assert_eq!(err.line, 4, "{err}");
    assert!(err.to_string().contains("duplicate key \"seed\""), "{err}");
}

#[test]
fn duplicate_key_in_phase_table_is_rejected() {
    let text = GOOD.replace(
        "kind = \"dynamics\"\n",
        "kind = \"dynamics\"\nkind = \"arrive\"\n",
    );
    let err = parse_spec(&text).unwrap_err();
    assert!(err.to_string().contains("duplicate key \"kind\""), "{err}");
}

#[test]
fn duplicate_section_header_is_rejected_with_line() {
    // A second [dynamics] section later in the file must fail loudly —
    // previously-shadowed settings are exactly the silent-misconfig
    // class this guards against.
    let text = format!("{GOOD}\n[dynamics]\nmodel = \"max\"\n");
    let err = parse_spec(&text).unwrap_err();
    assert!(
        err.to_string().contains("duplicate section [dynamics]"),
        "{err}"
    );
    assert_eq!(err.line, GOOD.lines().count() + 2, "{err}");
}

#[test]
fn duplicate_scenario_and_init_sections_are_rejected() {
    for section in ["scenario", "init"] {
        let text = format!("{GOOD}\n[{section}]\n");
        let err = parse_spec(&text).unwrap_err();
        assert!(
            err.to_string()
                .contains(&format!("duplicate section [{section}]")),
            "{section}: {err}"
        );
    }
}

#[test]
fn raw_parser_rejects_duplicates_in_root_table() {
    let err = toml::parse("a = 1\nb = 2\na = 3").unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.to_string().contains("duplicate key \"a\""), "{err}");
}

#[test]
fn array_of_tables_repetition_is_still_allowed() {
    // [[phase]] repetition is the timeline — hardening must not
    // break it; same-named keys in *different* tables are fine.
    let text = format!("{GOOD}\n[[phase]]\nkind = \"arrive\"\n");
    let spec = parse_spec(&text).unwrap();
    assert_eq!(spec.phases.len(), 2);
}
