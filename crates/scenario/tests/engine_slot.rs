//! The caller-owned engine slot of `run_scenario_with_engine` is meant
//! to be reused across runs (a serve worker reuses it across *jobs*).
//! A reused slot must honour each run's kernel selection: if the slot
//! was built under a different kernel, it is rebuilt, not silently
//! kept — and since kernels are move-for-move equivalent, the records
//! must be identical either way.

use bbncg_core::{CancelToken, CostKernel};
use bbncg_scenario::{parse_spec, run_scenario_with_engine, MemorySink};

fn spec_with_kernel(kernel: &str) -> String {
    format!(
        "[scenario]\nname = \"slot\"\nseed = 9\n\n\
         [init]\nfamily = \"uniform\"\nn = 20\nbudget = 1\n\n\
         [dynamics]\nkernel = \"{kernel}\"\n\n\
         [[phase]]\nkind = \"dynamics\"\n\n\
         [[phase]]\nkind = \"arrive\"\ncount = 2\nbudget = 1\n\n\
         [[phase]]\nkind = \"dynamics\"\n"
    )
}

#[test]
fn reused_slot_honours_each_runs_kernel() {
    let queue_spec = parse_spec(&spec_with_kernel("queue")).unwrap();
    let bitset_spec = parse_spec(&spec_with_kernel("bitset")).unwrap();
    let mut slot = None;
    let cancel = CancelToken::new();

    let mut a = MemorySink::default();
    run_scenario_with_engine(
        &queue_spec,
        queue_spec.seed,
        None,
        &mut a,
        None,
        &mut |_| (),
        &mut slot,
        &cancel,
    )
    .unwrap();
    assert_eq!(
        slot.as_ref().map(|s| s.kernel()),
        Some(CostKernel::Queue),
        "first run fills the slot under its own kernel"
    );

    // Same slot, different kernel: the override must take effect, not
    // be silently ignored in favour of the leftover engine.
    let mut b = MemorySink::default();
    run_scenario_with_engine(
        &bitset_spec,
        bitset_spec.seed,
        None,
        &mut b,
        None,
        &mut |_| (),
        &mut slot,
        &cancel,
    )
    .unwrap();
    assert_eq!(
        slot.as_ref().map(|s| s.kernel()),
        Some(CostKernel::Bitset),
        "a later run's kernel selection must rebuild the slot"
    );

    // Kernel equivalence: the two runs' records differ only in the
    // spec hash's influence — here both specs describe the same world,
    // so every metric (including state hashes) matches line for line.
    let a_lines: Vec<String> = a.records.iter().map(|r| r.to_json()).collect();
    let b_lines: Vec<String> = b.records.iter().map(|r| r.to_json()).collect();
    assert_eq!(a_lines, b_lines);
}
