//! Typed scenario specifications, validated out of the TOML subset.
//!
//! A spec names an initial state, default dynamics parameters, and an
//! ordered timeline of phases — dynamics runs interleaved with
//! perturbation events. See the repository README ("Scenario specs")
//! for the grammar and `examples/scenarios/` for working files.

use crate::toml::{self, SpecError, TomlTable, Value};
use bbncg_core::{CostKernel, CostModel, DynamicsConfig, PlayerOrder, ResponseRule, RoundExecutor};
use rand::SeedableRng as _;

/// How the initial realization is produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InitSpec {
    /// A named `bbncg_graph::generators` family (random families draw
    /// from the run's seeded RNG; `"random"` takes the budget vector as
    /// its parameters).
    Family {
        /// Registry name (see `bbncg_graph::generators::FAMILIES`).
        family: String,
        /// Integer parameters.
        params: Vec<usize>,
    },
    /// An explicit arc list.
    Inline {
        /// Number of players.
        n: usize,
        /// `(owner, target)` arcs.
        arcs: Vec<(usize, usize)>,
    },
}

/// Which game the dynamics phases play.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The paper's undirected game (distances in `U(G)`).
    Undirected,
    /// The Laoutaris et al. directed baseline (round-robin exact best
    /// response; `model`/`rule`/`order` do not apply).
    Directed,
}

/// One timeline entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PhaseSpec {
    /// Run best-response dynamics (fields override `[dynamics]`).
    Dynamics {
        /// Round budget for this phase.
        rounds: Option<usize>,
        /// Cost model override.
        model: Option<CostModel>,
        /// Response-rule override.
        rule: Option<ResponseRule>,
        /// Activation-order override.
        order: Option<PlayerOrder>,
    },
    /// `count` new agents arrive, each buying `budget` links to
    /// uniformly chosen existing agents.
    Arrive {
        /// Number of arrivals.
        count: usize,
        /// Links each arrival buys.
        budget: usize,
    },
    /// Agents leave; arcs that pointed at them are retargeted uniformly
    /// at random (or dropped when no legal target remains).
    Depart {
        /// Explicit departures (empty ⇒ pick `count` at random).
        nodes: Vec<usize>,
        /// Random departure count when `nodes` is empty.
        count: usize,
    },
    /// Grant (`delta > 0`) or revoke (`delta < 0`) budget to a node
    /// set: granted links go to random fresh targets, revoked links are
    /// removed at random.
    BudgetShock {
        /// Explicit node set (empty ⇒ pick `count` at random).
        nodes: Vec<usize>,
        /// Random node count when `nodes` is empty.
        count: usize,
        /// Signed budget change per selected node.
        delta: i64,
    },
    /// Delete `count` arcs: the adversary removes the arc whose loss
    /// maximizes social cost (greedily, one at a time), or uniformly
    /// random arcs when `adversarial = false`.
    DeleteEdges {
        /// Arcs to delete.
        count: usize,
        /// Worst-case (`true`, default) vs uniform deletion.
        adversarial: bool,
    },
    /// Re-orient every arc by a fair coin flip using a *reseeded* RNG
    /// (`seed` fixed in the spec, or drawn from the run stream).
    Reorient {
        /// Explicit reseed; `None` draws one from the run's RNG.
        seed: Option<u64>,
    },
}

impl PhaseSpec {
    /// The phase's `kind` label, as written in specs and metric records.
    pub fn kind(&self) -> &'static str {
        match self {
            PhaseSpec::Dynamics { .. } => "dynamics",
            PhaseSpec::Arrive { .. } => "arrive",
            PhaseSpec::Depart { .. } => "depart",
            PhaseSpec::BudgetShock { .. } => "budget-shock",
            PhaseSpec::DeleteEdges { .. } => "delete-edges",
            PhaseSpec::Reorient { .. } => "reorient",
        }
    }
}

/// A validated scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Scenario name (for records and checkpoints).
    pub name: String,
    /// Base seed; run `k` of a sweep uses `seed + k`.
    pub seed: u64,
    /// Sweep width (number of seeds; default 1).
    pub seeds: usize,
    /// Initial state.
    pub init: InitSpec,
    /// Default dynamics parameters for `kind = "dynamics"` phases.
    pub defaults: DynamicsConfig,
    /// Cost kernel pricing every candidate deviation
    /// (`[dynamics] kernel = "queue"|"bitset"|"sparse"|"auto"`,
    /// default auto).
    /// Kernels are move-for-move equivalent, so this is purely a
    /// throughput knob: trajectories, records, checkpoints and resumes
    /// are kernel-independent.
    pub kernel: CostKernel,
    /// Undirected (default) or directed dynamics.
    pub variant: Variant,
    /// The timeline.
    pub phases: Vec<PhaseSpec>,
    /// Switch the process-wide `bbncg_obs` metrics registry on for
    /// this run (`[obs] metrics = true`; the section alone defaults to
    /// on). Enabling is one-way per process; off costs nothing.
    pub obs: bool,
    /// FNV-1a hash of the source text; checkpoints pin it so a resume
    /// against an edited spec fails loudly.
    pub spec_hash: u64,
}

/// FNV-1a over raw bytes — the stable hash used for spec identity and
/// state hashes in metric records (unlike `DefaultHasher`, guaranteed
/// stable across platforms and std versions).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn get_int(t: &TomlTable, key: &str) -> Result<Option<i64>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Int(v)) => Ok(Some(*v)),
        Some(v) => Err(SpecError::at(
            t.line,
            format!(
                "[{}] {key} must be an integer, got {}",
                t.name,
                v.type_name()
            ),
        )),
    }
}

fn get_usize(t: &TomlTable, key: &str) -> Result<Option<usize>, SpecError> {
    match get_int(t, key)? {
        None => Ok(None),
        Some(v) if v >= 0 => Ok(Some(v as usize)),
        Some(v) => Err(SpecError::at(
            t.line,
            format!("[{}] {key} must be non-negative, got {v}", t.name),
        )),
    }
}

fn get_str<'a>(t: &'a TomlTable, key: &str) -> Result<Option<&'a str>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.as_str())),
        Some(v) => Err(SpecError::at(
            t.line,
            format!("[{}] {key} must be a string, got {}", t.name, v.type_name()),
        )),
    }
}

fn get_bool(t: &TomlTable, key: &str) -> Result<Option<bool>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(v) => Err(SpecError::at(
            t.line,
            format!(
                "[{}] {key} must be a boolean, got {}",
                t.name,
                v.type_name()
            ),
        )),
    }
}

fn get_usize_list(t: &TomlTable, key: &str) -> Result<Option<Vec<usize>>, SpecError> {
    let items = match t.get(key) {
        None => return Ok(None),
        Some(Value::List(items)) => items,
        Some(v) => {
            return Err(SpecError::at(
                t.line,
                format!("[{}] {key} must be an array, got {}", t.name, v.type_name()),
            ))
        }
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Value::Int(v) if *v >= 0 => out.push(*v as usize),
            _ => {
                return Err(SpecError::at(
                    t.line,
                    format!("[{}] {key} must hold non-negative integers", t.name),
                ))
            }
        }
    }
    Ok(Some(out))
}

fn parse_model(s: &str, line: usize) -> Result<CostModel, SpecError> {
    match s {
        "sum" | "SUM" => Ok(CostModel::Sum),
        "max" | "MAX" => Ok(CostModel::Max),
        other => Err(SpecError::at(
            line,
            format!("unknown model {other:?} (sum|max)"),
        )),
    }
}

fn parse_rule(s: &str, line: usize) -> Result<ResponseRule, SpecError> {
    match s {
        "exact" => Ok(ResponseRule::ExactBest),
        "better" => Ok(ResponseRule::FirstImproving),
        "greedy" => Ok(ResponseRule::Greedy),
        "swap" => Ok(ResponseRule::BestSwap),
        other => Err(SpecError::at(
            line,
            format!("unknown rule {other:?} (exact|better|greedy|swap)"),
        )),
    }
}

fn parse_order(s: &str, line: usize) -> Result<PlayerOrder, SpecError> {
    match s {
        "rr" | "round-robin" => Ok(PlayerOrder::RoundRobin),
        "random" => Ok(PlayerOrder::RandomPermutation),
        other => Err(SpecError::at(
            line,
            format!("unknown order {other:?} (round-robin|random)"),
        )),
    }
}

fn check_keys(t: &TomlTable, allowed: &[&str]) -> Result<(), SpecError> {
    for k in t.keys() {
        if !allowed.contains(&k) {
            return Err(SpecError::at(
                t.line,
                format!(
                    "[{}] unknown key {k:?} (allowed: {})",
                    t.name,
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn parse_init(t: &TomlTable) -> Result<InitSpec, SpecError> {
    check_keys(t, &["family", "params", "budgets", "n", "budget", "arcs"])?;
    let family = get_str(t, "family")?
        .ok_or_else(|| SpecError::at(t.line, "[init] requires family = \"...\""))?;
    match family {
        "inline" => {
            let n = get_usize(t, "n")?
                .ok_or_else(|| SpecError::at(t.line, "[init] inline requires n"))?;
            let raw = match t.get("arcs") {
                Some(Value::List(items)) => items,
                _ => {
                    return Err(SpecError::at(
                        t.line,
                        "[init] inline requires arcs = [[u, v], …]",
                    ))
                }
            };
            let mut arcs = Vec::with_capacity(raw.len());
            for item in raw {
                match item {
                    Value::List(pair) => match pair.as_slice() {
                        [Value::Int(u), Value::Int(v)] if *u >= 0 && *v >= 0 => {
                            let (u, v) = (*u as usize, *v as usize);
                            if u >= n || v >= n || u == v || arcs.contains(&(u, v)) {
                                return Err(SpecError::at(
                                    t.line,
                                    format!("[init] invalid arc [{u}, {v}]"),
                                ));
                            }
                            arcs.push((u, v));
                        }
                        _ => {
                            return Err(SpecError::at(t.line, "[init] arcs entries must be [u, v]"))
                        }
                    },
                    _ => return Err(SpecError::at(t.line, "[init] arcs entries must be [u, v]")),
                }
            }
            Ok(InitSpec::Inline { n, arcs })
        }
        "uniform" => {
            // Shorthand: uniform random realization of n equal budgets.
            let n = get_usize(t, "n")?
                .ok_or_else(|| SpecError::at(t.line, "[init] uniform requires n"))?;
            let b = get_usize(t, "budget")?
                .ok_or_else(|| SpecError::at(t.line, "[init] uniform requires budget"))?;
            if n > 0 && b >= n {
                return Err(SpecError::at(
                    t.line,
                    format!("[init] budget {b} ≥ n = {n}"),
                ));
            }
            Ok(InitSpec::Family {
                family: "random".into(),
                params: vec![b; n],
            })
        }
        "random" => {
            let budgets = get_usize_list(t, "budgets")?
                .ok_or_else(|| SpecError::at(t.line, "[init] random requires budgets = [...]"))?;
            let n = budgets.len();
            if let Some(&b) = budgets.iter().find(|&&b| b >= n.max(1)) {
                return Err(SpecError::at(
                    t.line,
                    format!("[init] budget {b} ≥ n = {n}"),
                ));
            }
            Ok(InitSpec::Family {
                family: "random".into(),
                params: budgets,
            })
        }
        name => {
            let known = bbncg_graph::generators::FAMILIES
                .iter()
                .any(|&(f, _, _)| f == name);
            if !known {
                return Err(SpecError::at(
                    t.line,
                    format!("[init] unknown family {name:?}"),
                ));
            }
            let params = get_usize_list(t, "params")?
                .ok_or_else(|| SpecError::at(t.line, "[init] requires params = [...]"))?;
            // Dry-run the registry so arity and value constraints
            // (cycle n ≥ 2, prefattach n > m, …) fail at `validate`
            // time with a line number, not at `run` time. Whether
            // `from_name` errors never depends on the RNG, so this
            // decides exactly what the real seeded build will hit.
            let mut probe = rand::rngs::StdRng::seed_from_u64(0);
            if let Err(e) = bbncg_graph::generators::from_name(name, &params, &mut probe) {
                return Err(SpecError::at(t.line, format!("[init] {e}")));
            }
            Ok(InitSpec::Family {
                family: name.to_string(),
                params,
            })
        }
    }
}

fn parse_phase(t: &TomlTable) -> Result<PhaseSpec, SpecError> {
    let kind = get_str(t, "kind")?
        .ok_or_else(|| SpecError::at(t.line, "[[phase]] requires kind = \"...\""))?;
    match kind {
        "dynamics" => {
            check_keys(t, &["kind", "rounds", "model", "rule", "order"])?;
            Ok(PhaseSpec::Dynamics {
                rounds: get_usize(t, "rounds")?,
                model: get_str(t, "model")?
                    .map(|s| parse_model(s, t.line))
                    .transpose()?,
                rule: get_str(t, "rule")?
                    .map(|s| parse_rule(s, t.line))
                    .transpose()?,
                order: get_str(t, "order")?
                    .map(|s| parse_order(s, t.line))
                    .transpose()?,
            })
        }
        "arrive" => {
            check_keys(t, &["kind", "count", "budget"])?;
            Ok(PhaseSpec::Arrive {
                count: get_usize(t, "count")?.unwrap_or(1),
                budget: get_usize(t, "budget")?.unwrap_or(1),
            })
        }
        "depart" => {
            check_keys(t, &["kind", "nodes", "count"])?;
            let nodes = get_usize_list(t, "nodes")?.unwrap_or_default();
            let count = get_usize(t, "count")?.unwrap_or(1);
            if nodes.is_empty() && count == 0 {
                return Err(SpecError::at(
                    t.line,
                    "[[phase]] depart needs nodes or count",
                ));
            }
            Ok(PhaseSpec::Depart { nodes, count })
        }
        "budget-shock" => {
            check_keys(t, &["kind", "nodes", "count", "delta"])?;
            let delta = get_int(t, "delta")?
                .ok_or_else(|| SpecError::at(t.line, "[[phase]] budget-shock requires delta"))?;
            if delta == 0 {
                return Err(SpecError::at(
                    t.line,
                    "[[phase]] budget-shock delta must be non-zero",
                ));
            }
            Ok(PhaseSpec::BudgetShock {
                nodes: get_usize_list(t, "nodes")?.unwrap_or_default(),
                count: get_usize(t, "count")?.unwrap_or(1),
                delta,
            })
        }
        "delete-edges" => {
            check_keys(t, &["kind", "count", "adversarial"])?;
            Ok(PhaseSpec::DeleteEdges {
                count: get_usize(t, "count")?.unwrap_or(1),
                adversarial: get_bool(t, "adversarial")?.unwrap_or(true),
            })
        }
        "reorient" => {
            check_keys(t, &["kind", "seed"])?;
            Ok(PhaseSpec::Reorient {
                seed: get_usize(t, "seed")?.map(|s| s as u64),
            })
        }
        other => Err(SpecError::at(
            t.line,
            format!(
                "unknown phase kind {other:?} \
                 (dynamics|arrive|depart|budget-shock|delete-edges|reorient)"
            ),
        )),
    }
}

/// Parse and validate a scenario spec from TOML-subset source text.
pub fn parse_spec(text: &str) -> Result<ScenarioSpec, SpecError> {
    let doc = toml::parse(text)?;
    if !doc.root.entries.is_empty() {
        return Err(SpecError::at(
            doc.root.entries.first().map(|_| 1).unwrap_or(0),
            "keys must live inside a section ([scenario], [init], [dynamics], [[phase]])",
        ));
    }
    for s in &doc.sections {
        if !matches!(
            s.name.as_str(),
            "scenario" | "init" | "dynamics" | "obs" | "phase"
        ) {
            return Err(SpecError::at(
                s.line,
                format!("unknown section [{}]", s.name),
            ));
        }
        if (s.name == "phase") != s.is_array {
            return Err(SpecError::at(
                s.line,
                format!(
                    "[{}] must be written as {}",
                    s.name,
                    if s.name == "phase" {
                        "[[phase]]"
                    } else {
                        "a plain [section]"
                    }
                ),
            ));
        }
    }

    let empty = TomlTable::default();
    let sc = doc.section("scenario").unwrap_or(&empty);
    check_keys(sc, &["name", "seed", "seeds"])?;
    let name = get_str(sc, "name")?.unwrap_or("unnamed").to_string();
    let seed = get_usize(sc, "seed")?.unwrap_or(0) as u64;
    let seeds = get_usize(sc, "seeds")?.unwrap_or(1).max(1);

    let init = parse_init(
        doc.section("init")
            .ok_or_else(|| SpecError::at(0, "missing [init] section"))?,
    )?;

    let dy = doc.section("dynamics").unwrap_or(&empty);
    check_keys(
        dy,
        &[
            "model",
            "rule",
            "order",
            "max_rounds",
            "variant",
            "kernel",
            "rounds",
        ],
    )?;
    let defaults = DynamicsConfig {
        model: get_str(dy, "model")?
            .map(|s| parse_model(s, dy.line))
            .transpose()?
            .unwrap_or(CostModel::Sum),
        rule: get_str(dy, "rule")?
            .map(|s| parse_rule(s, dy.line))
            .transpose()?
            .unwrap_or(ResponseRule::ExactBest),
        order: get_str(dy, "order")?
            .map(|s| parse_order(s, dy.line))
            .transpose()?
            .unwrap_or(PlayerOrder::RoundRobin),
        max_rounds: get_usize(dy, "max_rounds")?.unwrap_or(300),
        // `[dynamics] rounds = "sequential"|"speculative"|"auto"` picks
        // the round executor. Executors are step-identical, so this —
        // like `kernel` — is purely a throughput knob: records,
        // checkpoints and resumes are executor-independent at any
        // thread count.
        executor: match get_str(dy, "rounds")? {
            None => RoundExecutor::Auto,
            Some(s) => RoundExecutor::parse(s).map_err(|e| SpecError::at(dy.line, e))?,
        },
    };
    let kernel = match get_str(dy, "kernel")? {
        None => CostKernel::Auto,
        Some(s) => CostKernel::parse(s).map_err(|e| SpecError::at(dy.line, e))?,
    };
    let variant = match get_str(dy, "variant")?.unwrap_or("undirected") {
        "undirected" => Variant::Undirected,
        "directed" => Variant::Directed,
        other => {
            return Err(SpecError::at(
                dy.line,
                format!("unknown variant {other:?} (undirected|directed)"),
            ))
        }
    };

    // `[obs]` opts the run into the process-wide metrics registry.
    // The bare section means on; `metrics = false` keeps a section
    // around (say, commented-out keys) without enabling.
    let obs = match doc.section("obs") {
        None => false,
        Some(ob) => {
            check_keys(ob, &["metrics"])?;
            get_bool(ob, "metrics")?.unwrap_or(true)
        }
    };

    let phases: Vec<PhaseSpec> = doc
        .array_sections("phase")
        .map(parse_phase)
        .collect::<Result<_, _>>()?;
    if phases.is_empty() {
        return Err(SpecError::at(0, "scenario has no [[phase]] entries"));
    }

    Ok(ScenarioSpec {
        name,
        seed,
        seeds,
        init,
        defaults,
        kernel,
        variant,
        phases,
        obs,
        spec_hash: fnv1a(text.as_bytes()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHURN: &str = r#"
[scenario]
name = "churn"
seed = 7
seeds = 2

[init]
family = "random"
budgets = [1, 1, 1, 1, 1, 1]

[dynamics]
model = "sum"
rule = "exact"
max_rounds = 200

[[phase]]
kind = "dynamics"

[[phase]]
kind = "arrive"
count = 2
budget = 1

[[phase]]
kind = "dynamics"
rounds = 50
"#;

    #[test]
    fn parses_a_full_spec() {
        let spec = parse_spec(CHURN).unwrap();
        assert_eq!(spec.name, "churn");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.seeds, 2);
        assert_eq!(spec.phases.len(), 3);
        assert_eq!(spec.defaults.max_rounds, 200);
        assert_eq!(spec.phases[0].kind(), "dynamics");
        assert_eq!(
            spec.phases[1],
            PhaseSpec::Arrive {
                count: 2,
                budget: 1
            }
        );
        match &spec.phases[2] {
            PhaseSpec::Dynamics { rounds, .. } => assert_eq!(*rounds, Some(50)),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            spec.init,
            InitSpec::Family {
                family: "random".into(),
                params: vec![1; 6]
            }
        );
    }

    #[test]
    fn kernel_field_parses_and_defaults() {
        let spec = parse_spec(CHURN).unwrap();
        assert_eq!(spec.kernel, CostKernel::Auto);
        for (label, want) in [
            ("queue", CostKernel::Queue),
            ("bitset", CostKernel::Bitset),
            ("sparse", CostKernel::Sparse),
            ("auto", CostKernel::Auto),
        ] {
            let text = format!(
                "[init]\nfamily = \"path\"\nparams = [4]\n[dynamics]\nkernel = \"{label}\"\n\
                 [[phase]]\nkind = \"dynamics\""
            );
            assert_eq!(parse_spec(&text).unwrap().kernel, want, "{label}");
        }
        let bad = "[init]\nfamily = \"path\"\nparams = [4]\n[dynamics]\nkernel = \"warp\"\n\
                   [[phase]]\nkind = \"dynamics\"";
        assert!(parse_spec(bad).unwrap_err().to_string().contains("warp"));
    }

    #[test]
    fn rounds_field_parses_and_defaults() {
        use bbncg_core::RoundExecutor;
        let spec = parse_spec(CHURN).unwrap();
        assert_eq!(spec.defaults.executor, RoundExecutor::Auto);
        for (label, want) in [
            ("sequential", RoundExecutor::Sequential),
            ("speculative", RoundExecutor::Speculative),
            ("auto", RoundExecutor::Auto),
        ] {
            let text = format!(
                "[init]\nfamily = \"path\"\nparams = [4]\n[dynamics]\nrounds = \"{label}\"\n\
                 [[phase]]\nkind = \"dynamics\""
            );
            assert_eq!(
                parse_spec(&text).unwrap().defaults.executor,
                want,
                "{label}"
            );
        }
        let bad = "[init]\nfamily = \"path\"\nparams = [4]\n[dynamics]\nrounds = \"warp\"\n\
                   [[phase]]\nkind = \"dynamics\"";
        assert!(parse_spec(bad).unwrap_err().to_string().contains("warp"));
    }

    #[test]
    fn obs_section_parses_and_defaults() {
        assert!(!parse_spec(CHURN).unwrap().obs);
        let base = "[init]\nfamily = \"path\"\nparams = [4]\n";
        let on = format!("{base}[obs]\n[[phase]]\nkind = \"dynamics\"");
        assert!(parse_spec(&on).unwrap().obs);
        let explicit = format!("{base}[obs]\nmetrics = true\n[[phase]]\nkind = \"dynamics\"");
        assert!(parse_spec(&explicit).unwrap().obs);
        let off = format!("{base}[obs]\nmetrics = false\n[[phase]]\nkind = \"dynamics\"");
        assert!(!parse_spec(&off).unwrap().obs);
        let bad = format!("{base}[obs]\ntracing = 1\n[[phase]]\nkind = \"dynamics\"");
        assert!(parse_spec(&bad)
            .unwrap_err()
            .to_string()
            .contains("tracing"));
    }

    #[test]
    fn uniform_shorthand_expands() {
        let spec = parse_spec(
            "[init]\nfamily = \"uniform\"\nn = 4\nbudget = 1\n[[phase]]\nkind = \"dynamics\"",
        )
        .unwrap();
        assert_eq!(
            spec.init,
            InitSpec::Family {
                family: "random".into(),
                params: vec![1; 4]
            }
        );
    }

    #[test]
    fn inline_init_and_named_families() {
        let spec = parse_spec(
            "[init]\nfamily = \"inline\"\nn = 3\narcs = [[0, 1], [1, 2]]\n[[phase]]\nkind = \"reorient\"",
        )
        .unwrap();
        assert_eq!(
            spec.init,
            InitSpec::Inline {
                n: 3,
                arcs: vec![(0, 1), (1, 2)]
            }
        );
        let spec =
            parse_spec("[init]\nfamily = \"spider\"\nparams = [4]\n[[phase]]\nkind = \"dynamics\"")
                .unwrap();
        assert!(matches!(spec.init, InitSpec::Family { ref family, .. } if family == "spider"));
    }

    #[test]
    fn rejects_bad_specs_with_reasons() {
        let no_init = "[[phase]]\nkind = \"dynamics\"";
        assert!(parse_spec(no_init)
            .unwrap_err()
            .to_string()
            .contains("[init]"));
        let no_phase = "[init]\nfamily = \"path\"\nparams = [4]";
        assert!(parse_spec(no_phase)
            .unwrap_err()
            .to_string()
            .contains("phase"));
        let bad_kind = "[init]\nfamily = \"path\"\nparams = [4]\n[[phase]]\nkind = \"explode\"";
        assert!(parse_spec(bad_kind)
            .unwrap_err()
            .to_string()
            .contains("explode"));
        let bad_family =
            "[init]\nfamily = \"moebius\"\nparams = [4]\n[[phase]]\nkind = \"dynamics\"";
        assert!(parse_spec(bad_family)
            .unwrap_err()
            .to_string()
            .contains("moebius"));
        // Value/arity constraints of known families fail at parse time
        // (so `scenario validate` catches what `scenario run` would hit).
        let bad_params = "[init]\nfamily = \"cycle\"\nparams = [1]\n[[phase]]\nkind = \"dynamics\"";
        assert!(parse_spec(bad_params)
            .unwrap_err()
            .to_string()
            .contains("at least 2"));
        let bad_arity =
            "[init]\nfamily = \"path\"\nparams = [2, 3]\n[[phase]]\nkind = \"dynamics\"";
        assert!(parse_spec(bad_arity)
            .unwrap_err()
            .to_string()
            .contains("parameter"));
        let bad_pa =
            "[init]\nfamily = \"prefattach\"\nparams = [2, 5]\n[[phase]]\nkind = \"dynamics\"";
        assert!(parse_spec(bad_pa)
            .unwrap_err()
            .to_string()
            .contains("n > m"));
        let big_budget =
            "[init]\nfamily = \"random\"\nbudgets = [9, 9]\n[[phase]]\nkind = \"dynamics\"";
        assert!(parse_spec(big_budget)
            .unwrap_err()
            .to_string()
            .contains("≥"));
        let unknown_key =
            "[init]\nfamily = \"path\"\nparams = [4]\nwat = 1\n[[phase]]\nkind = \"dynamics\"";
        assert!(parse_spec(unknown_key)
            .unwrap_err()
            .to_string()
            .contains("wat"));
        let zero_delta = "[init]\nfamily = \"path\"\nparams = [4]\n[[phase]]\nkind = \"budget-shock\"\ndelta = 0";
        assert!(parse_spec(zero_delta)
            .unwrap_err()
            .to_string()
            .contains("non-zero"));
        let plain_phase = "[init]\nfamily = \"path\"\nparams = [4]\n[phase]\nkind = \"dynamics\"";
        assert!(parse_spec(plain_phase)
            .unwrap_err()
            .to_string()
            .contains("[[phase]]"));
    }

    #[test]
    fn spec_hash_pins_the_source_text() {
        let a = parse_spec(CHURN).unwrap();
        let b = parse_spec(CHURN).unwrap();
        assert_eq!(a.spec_hash, b.spec_hash);
        let edited = CHURN.replace("seed = 7", "seed = 8");
        assert_ne!(parse_spec(&edited).unwrap().spec_hash, a.spec_hash);
    }
}
