//! Streaming metric sinks.
//!
//! Every phase of a scenario run emits one [`MetricRecord`]; sinks
//! decide where the stream goes (a JSONL file, memory, nowhere). The
//! JSON encoding is hand-rolled — records are flat and the workspace is
//! offline — and one record is always exactly one line, so outputs are
//! `grep`/`jq`-friendly and diffable.

use std::collections::BTreeMap;

/// Schema version stamped into every emitted record line. Lines
/// without the field (pre-versioning streams) parse as version 1;
/// version 2 added the stamp itself. Consumers (`bbncg-report`) accept
/// both.
pub const SCHEMA_VERSION: u64 = 2;

/// One metric record: the state of the world after a phase (or the
/// run-final summary, `kind = "summary"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricRecord {
    /// Scenario name.
    pub scenario: String,
    /// Seed of the run that produced this record.
    pub seed: u64,
    /// 0-based phase index (`phases.len()` for the summary record).
    pub phase: usize,
    /// Phase kind (`"dynamics"`, `"arrive"`, …, `"summary"`).
    pub kind: &'static str,
    /// Players after the phase.
    pub n: usize,
    /// Arcs after the phase.
    pub arcs: usize,
    /// Applied deviations (cumulative in the summary record; 0 for
    /// perturbation events).
    pub steps: usize,
    /// Completed dynamics rounds (cumulative in the summary record).
    pub rounds: usize,
    /// Social cost: diameter, or `n²` when disconnected.
    pub social_cost: u64,
    /// Finite diameter, if connected.
    pub diameter: Option<u32>,
    /// Dynamics phases: did the phase converge?
    pub converged: Option<bool>,
    /// Dynamics phases: was a best-response cycle proven?
    pub cycled: Option<bool>,
    /// Stable FNV-1a hash of the post-phase profile.
    pub state_hash: u64,
}

impl MetricRecord {
    /// Encode as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(192);
        s.push('{');
        s.push_str(&format!("\"schema_version\":{SCHEMA_VERSION}"));
        s.push_str(&format!(",\"scenario\":\"{}\"", escape(&self.scenario)));
        s.push_str(&format!(",\"seed\":{}", self.seed));
        s.push_str(&format!(",\"phase\":{}", self.phase));
        s.push_str(&format!(",\"kind\":\"{}\"", self.kind));
        s.push_str(&format!(",\"n\":{}", self.n));
        s.push_str(&format!(",\"arcs\":{}", self.arcs));
        s.push_str(&format!(",\"steps\":{}", self.steps));
        s.push_str(&format!(",\"rounds\":{}", self.rounds));
        s.push_str(&format!(",\"social_cost\":{}", self.social_cost));
        match self.diameter {
            Some(d) => s.push_str(&format!(",\"diameter\":{d}")),
            None => s.push_str(",\"diameter\":null"),
        }
        match self.converged {
            Some(b) => s.push_str(&format!(",\"converged\":{b}")),
            None => s.push_str(",\"converged\":null"),
        }
        match self.cycled {
            Some(b) => s.push_str(&format!(",\"cycled\":{b}")),
            None => s.push_str(",\"cycled\":null"),
        }
        s.push_str(&format!(",\"state_hash\":\"{:016x}\"", self.state_hash));
        s.push('}');
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Where metric records go. Implementations must tolerate being called
/// once per phase, mid-run — that is the point: a killed run has its
/// records up to the last completed phase.
pub trait MetricSink {
    /// Consume one record.
    fn record(&mut self, rec: &MetricRecord);

    /// Flush buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Collect records in memory (tests, diff-harnesses).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Everything recorded so far.
    pub records: Vec<MetricRecord>,
}

impl MetricSink for MemorySink {
    fn record(&mut self, rec: &MetricRecord) {
        self.records.push(rec.clone());
    }
}

/// Discard everything (throughput measurements).
#[derive(Debug, Default)]
pub struct NullSink;

impl MetricSink for NullSink {
    fn record(&mut self, _rec: &MetricRecord) {}
}

/// Stream JSONL to any writer, one line per record, flushed per record
/// so a killed process leaves complete lines behind.
pub struct JsonlSink<W: std::io::Write> {
    w: W,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }

    /// Recover the writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: std::io::Write> MetricSink for JsonlSink<W> {
    fn record(&mut self, rec: &MetricRecord) {
        let _ = writeln!(self.w, "{}", rec.to_json());
        let _ = self.w.flush();
    }
}

/// Append JSONL lines to an owned string (the CLI's report-building
/// path).
#[derive(Debug, Default)]
pub struct StringSink {
    /// The accumulated JSONL text.
    pub out: String,
}

impl MetricSink for StringSink {
    fn record(&mut self, rec: &MetricRecord) {
        self.out.push_str(&rec.to_json());
        self.out.push('\n');
    }
}

/// Order-restoring buffer for out-of-order producers: items arrive
/// tagged with a dense 0-based index, park until every earlier index
/// has been emitted, and flush the moment they become the frontier —
/// so consumers see a deterministic sequence without waiting for the
/// whole production to finish.
///
/// This is the merge primitive behind parallel sweeps
/// ([`SeedReorderer`]) and the serve crate's sharded-sweep coordinator
/// (which reorders streamed JSONL lines from peer processes): both
/// reduce "parallel but deterministic" to "tag with the sequential
/// index, reorder at the sink".
pub struct Reorderer<T> {
    next: usize,
    parked: BTreeMap<usize, T>,
}

impl<T> Default for Reorderer<T> {
    fn default() -> Self {
        Reorderer::new()
    }
}

impl<T> Reorderer<T> {
    /// An empty reorderer expecting index 0 first.
    pub fn new() -> Self {
        Reorderer {
            next: 0,
            parked: BTreeMap::new(),
        }
    }

    /// Hand over item `idx`; `emit` is called (in index order) for
    /// every item this unblocks — possibly none, possibly several.
    pub fn push(&mut self, idx: usize, item: T, mut emit: impl FnMut(T)) {
        self.parked.insert(idx, item);
        while let Some(item) = self.parked.remove(&self.next) {
            emit(item);
            self.next += 1;
        }
    }

    /// The next index the reorderer is waiting on (= items emitted).
    pub fn next_index(&self) -> usize {
        self.next
    }

    /// Items parked behind a gap (0 when fully drained).
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }
}

/// Re-serializer for parallel sweeps: workers finish seeds out of
/// order, but the stream must be deterministic, so completed batches
/// park here until every earlier seed has been flushed. Streaming is
/// preserved — a batch is written the moment it becomes the frontier,
/// not when the sweep ends.
pub struct SeedReorderer<'a> {
    sink: &'a mut (dyn MetricSink + Send),
    inner: Reorderer<Vec<MetricRecord>>,
}

impl<'a> SeedReorderer<'a> {
    /// Wrap the downstream sink.
    pub fn new(sink: &'a mut (dyn MetricSink + Send)) -> Self {
        SeedReorderer {
            sink,
            inner: Reorderer::new(),
        }
    }

    /// Hand over the records of completed seed-index `idx`.
    pub fn push(&mut self, idx: usize, records: Vec<MetricRecord>) {
        let sink = &mut self.sink;
        self.inner.push(idx, records, |batch| {
            for rec in &batch {
                sink.record(rec);
            }
            sink.flush();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seed: u64) -> MetricRecord {
        MetricRecord {
            scenario: "t \"quoted\"".into(),
            seed,
            phase: 1,
            kind: "dynamics",
            n: 5,
            arcs: 5,
            steps: 3,
            rounds: 2,
            social_cost: 25,
            diameter: None,
            converged: Some(true),
            cycled: Some(false),
            state_hash: 0xabc,
        }
    }

    #[test]
    fn json_is_one_escaped_line() {
        let j = rec(7).to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"schema_version\":2,"));
        assert!(j.contains("\"scenario\":\"t \\\"quoted\\\"\""));
        assert!(j.contains("\"diameter\":null"));
        assert!(j.contains("\"converged\":true"));
        assert!(j.contains("\"state_hash\":\"0000000000000abc\""));
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(0));
        sink.record(&rec(1));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn generic_reorderer_flushes_frontier_immediately() {
        let mut out = Vec::new();
        let mut re: Reorderer<&str> = Reorderer::new();
        re.push(1, "b", |x| out.push(x));
        assert!(out.is_empty());
        assert_eq!(re.parked_len(), 1);
        re.push(0, "a", |x| out.push(x));
        // 0 arriving unblocks both 0 and the parked 1.
        assert_eq!(out, vec!["a", "b"]);
        assert_eq!(re.next_index(), 2);
        re.push(2, "c", |x| out.push(x));
        assert_eq!(out, vec!["a", "b", "c"]);
        assert_eq!(re.parked_len(), 0);
    }

    #[test]
    fn reorderer_emits_in_seed_order() {
        let mut mem = MemorySink::default();
        {
            let mut re = SeedReorderer::new(&mut mem);
            re.push(2, vec![rec(2)]);
            re.push(0, vec![rec(0)]);
            re.push(1, vec![rec(1), rec(1)]);
            re.push(3, vec![rec(3)]);
        }
        let seeds: Vec<u64> = mem.records.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![0, 1, 1, 2, 3]);
    }
}
