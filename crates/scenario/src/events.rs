//! Perturbation events: the world changing under the players' feet.
//!
//! Each event maps a [`Realization`] to a new one, drawing any
//! randomness from the run's seeded RNG, so whole scenarios stay
//! deterministic (and checkpoint/resume bit-identical). Budgets in this
//! game are *implied* by out-degrees, so events that add or remove arcs
//! are exactly budget grants and revocations.

use bbncg_core::Realization;
use bbncg_graph::{NodeId, OwnedDigraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// `count` agents arrive; each buys `budget` links to distinct,
/// uniformly chosen agents already present (including earlier arrivals
/// of the same event). Budgets above the available pool are clamped.
pub fn arrive(state: &Realization, count: usize, budget: usize, rng: &mut impl Rng) -> Realization {
    let n = state.n();
    let mut out: Vec<Vec<NodeId>> = (0..n)
        .map(|u| state.graph().out(NodeId::new(u)).to_vec())
        .collect();
    for j in 0..count {
        let existing = n + j;
        let mut pool: Vec<usize> = (0..existing).collect();
        pool.shuffle(rng);
        let targets: Vec<NodeId> = pool.into_iter().take(budget).map(NodeId::new).collect();
        out.push(targets);
    }
    Realization::new(OwnedDigraph::from_out_lists(out))
}

/// Pick `count` distinct random departures (all but one node at most).
pub fn pick_departures(state: &Realization, count: usize, rng: &mut impl Rng) -> Vec<usize> {
    let n = state.n();
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(rng);
    ids.truncate(count.min(n.saturating_sub(1)));
    ids
}

/// The listed agents leave. Survivors are renumbered in order; their
/// arcs to departed targets are retargeted to a uniformly chosen legal
/// survivor, or dropped (a budget loss) when none exists.
///
/// Errors if a departure index is out of range or the event would leave
/// the game empty.
pub fn depart(
    state: &Realization,
    nodes: &[usize],
    rng: &mut impl Rng,
) -> Result<Realization, String> {
    let n = state.n();
    let mut gone = vec![false; n];
    for &d in nodes {
        if d >= n {
            return Err(format!("departure {d} out of range (n = {n})"));
        }
        gone[d] = true;
    }
    let survivors = gone.iter().filter(|&&g| !g).count();
    if survivors == 0 {
        return Err("departure event would remove every agent".into());
    }
    // old id -> new id for survivors.
    let mut remap = vec![usize::MAX; n];
    let mut next = 0usize;
    for (u, &g) in gone.iter().enumerate() {
        if !g {
            remap[u] = next;
            next += 1;
        }
    }
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); survivors];
    for u in 0..n {
        if gone[u] {
            continue;
        }
        let nu = remap[u];
        let mut targets: Vec<usize> = Vec::new();
        let mut lost = 0usize;
        for &t in state.graph().out(NodeId::new(u)) {
            if gone[t.index()] {
                lost += 1;
            } else {
                targets.push(remap[t.index()]);
            }
        }
        for _ in 0..lost {
            // Retarget to any survivor that is not `nu` and not already
            // a target; drop the arc when the pool is exhausted.
            let candidates: Vec<usize> = (0..survivors)
                .filter(|&v| v != nu && !targets.contains(&v))
                .collect();
            match candidates.choose(rng) {
                Some(&v) => targets.push(v),
                None => break,
            }
        }
        out[nu] = targets.into_iter().map(NodeId::new).collect();
    }
    Ok(Realization::new(OwnedDigraph::from_out_lists(out)))
}

/// Pick `count` distinct random shock targets.
pub fn pick_nodes(state: &Realization, count: usize, rng: &mut impl Rng) -> Vec<usize> {
    let n = state.n();
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(rng);
    ids.truncate(count.min(n));
    ids
}

/// Grant (`delta > 0`) or revoke (`delta < 0`) budget on the listed
/// nodes. Grants buy links to uniformly chosen fresh targets (fewer if
/// the node is already linked to everyone); revocations remove
/// uniformly chosen owned arcs (all of them if `|delta|` exceeds the
/// budget).
///
/// Errors if a node index is out of range.
pub fn budget_shock(
    state: &Realization,
    nodes: &[usize],
    delta: i64,
    rng: &mut impl Rng,
) -> Result<Realization, String> {
    let n = state.n();
    let mut out: Vec<Vec<NodeId>> = (0..n)
        .map(|u| state.graph().out(NodeId::new(u)).to_vec())
        .collect();
    for &u in nodes {
        if u >= n {
            return Err(format!("shock target {u} out of range (n = {n})"));
        }
        if delta > 0 {
            for _ in 0..delta {
                let candidates: Vec<NodeId> = (0..n)
                    .map(NodeId::new)
                    .filter(|&v| v.index() != u && !out[u].contains(&v))
                    .collect();
                match candidates.choose(rng) {
                    Some(&v) => out[u].push(v),
                    None => break,
                }
            }
        } else {
            for _ in 0..delta.unsigned_abs() {
                if out[u].is_empty() {
                    break;
                }
                let i = rng.gen_range(0..out[u].len());
                out[u].swap_remove(i);
            }
        }
    }
    Ok(Realization::new(OwnedDigraph::from_out_lists(out)))
}

/// Delete `count` arcs. Adversarial mode greedily removes, one at a
/// time, the arc whose loss maximizes the social cost (ties broken by
/// owner order — deterministic, no randomness); uniform mode removes
/// random arcs. Owners simply lose the budget.
pub fn delete_edges(
    state: &Realization,
    count: usize,
    adversarial: bool,
    rng: &mut impl Rng,
) -> Realization {
    let mut g = state.graph().clone();
    for _ in 0..count {
        let arcs: Vec<(NodeId, NodeId)> = g.arcs().collect();
        if arcs.is_empty() {
            break;
        }
        let (u, v) = if adversarial {
            *arcs
                .iter()
                .max_by_key(|&&(u, v)| {
                    let mut probe = g.clone();
                    probe.remove_arc(u, v);
                    Realization::new(probe).social_diameter()
                })
                .expect("non-empty arc list")
        } else {
            *arcs.choose(rng).expect("non-empty arc list")
        };
        g.remove_arc(u, v);
    }
    Realization::new(g)
}

/// Re-orient every arc by a fair coin flip from `rng` (callers pass a
/// *reseeded* stream — see `PhaseSpec::Reorient`). A flip that would
/// collide with an already-placed arc keeps its original orientation,
/// so the underlying multigraph (and total budget) is preserved.
pub fn reorient(state: &Realization, rng: &mut impl Rng) -> Realization {
    let n = state.n();
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (u, v) in state.graph().arcs() {
        let (a, b) = if rng.gen::<bool>() { (v, u) } else { (u, v) };
        if !out[a.index()].contains(&b) {
            out[a.index()].push(b);
        } else {
            // The flipped slot is taken (the other half of a brace got
            // there first); fall back to the untaken orientation.
            debug_assert!(!out[b.index()].contains(&a));
            out[b.index()].push(a);
        }
    }
    Realization::new(OwnedDigraph::from_out_lists(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unit_cycle(n: usize) -> Realization {
        Realization::new(generators::cycle(n))
    }

    #[test]
    fn arrivals_grow_the_game() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = arrive(&unit_cycle(5), 3, 2, &mut rng);
        assert_eq!(r.n(), 8);
        assert_eq!(r.budgets().as_slice()[5..], [2, 2, 2]);
        // Existing strategies are untouched.
        assert_eq!(r.budgets().as_slice()[..5], [1, 1, 1, 1, 1]);
    }

    #[test]
    fn arrival_budget_clamps_to_pool() {
        let mut rng = StdRng::seed_from_u64(2);
        let start = Realization::new(generators::path(2));
        let r = arrive(&start, 1, 10, &mut rng);
        assert_eq!(r.n(), 3);
        assert_eq!(r.graph().out_degree(NodeId::new(2)), 2);
    }

    #[test]
    fn departures_shrink_and_retarget() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = depart(&unit_cycle(6), &[2, 4], &mut rng).unwrap();
        assert_eq!(r.n(), 4);
        // Total budget preserved: every orphaned arc found a survivor
        // to retarget to (n = 4 leaves plenty of room).
        assert_eq!(r.graph().total_arcs(), 4);
        assert!(depart(&unit_cycle(3), &[0, 1, 2], &mut rng).is_err());
        assert!(depart(&unit_cycle(3), &[9], &mut rng).is_err());
    }

    #[test]
    fn shocks_grant_and_revoke() {
        let mut rng = StdRng::seed_from_u64(4);
        let r = budget_shock(&unit_cycle(6), &[0, 3], 2, &mut rng).unwrap();
        assert_eq!(r.budgets().as_slice(), &[3, 1, 1, 3, 1, 1]);
        let r = budget_shock(&r, &[0], -5, &mut rng).unwrap();
        assert_eq!(r.budgets().get(0), 0);
        assert!(budget_shock(&unit_cycle(3), &[7], 1, &mut rng).is_err());
    }

    #[test]
    fn grants_clamp_at_complete_links() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = budget_shock(&unit_cycle(3), &[0], 10, &mut rng).unwrap();
        assert_eq!(r.budgets().get(0), 2); // linked to everyone else
    }

    #[test]
    fn adversarial_deletion_picks_the_worst_arc() {
        // A cycle with a pendant path: deleting the pendant's arc
        // disconnects (cost n²); the adversary must find it.
        let g = OwnedDigraph::from_arcs(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (4, 3)]);
        let r = Realization::new(g);
        let mut rng = StdRng::seed_from_u64(6);
        let after = delete_edges(&r, 1, true, &mut rng);
        assert!(!after.is_connected());
        assert_eq!(after.graph().total_arcs(), 4);
        // Uniform mode deletes exactly one arc too.
        let after = delete_edges(&r, 1, false, &mut rng);
        assert_eq!(after.graph().total_arcs(), 4);
        // Deleting more arcs than exist empties the graph quietly.
        let after = delete_edges(&r, 99, false, &mut rng);
        assert_eq!(after.graph().total_arcs(), 0);
    }

    #[test]
    fn reorientation_preserves_the_underlying_graph() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::random_realization(&[2, 1, 1, 0, 2], &mut rng);
        let r = Realization::new(g);
        let before = r.graph().total_arcs();
        let after = reorient(&r, &mut rng);
        assert_eq!(after.graph().total_arcs(), before);
        let mut e0 = r.csr().simple_edges();
        let mut e1 = after.csr().simple_edges();
        e0.sort_unstable();
        e1.sort_unstable();
        assert_eq!(e0, e1);
    }

    #[test]
    fn braces_survive_reorientation() {
        let g = OwnedDigraph::from_arcs(2, &[(0, 1), (1, 0)]);
        let r = Realization::new(g);
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let after = reorient(&r, &mut rng);
            assert_eq!(after.graph().total_arcs(), 2);
            assert!(after.graph().is_brace(NodeId::new(0), NodeId::new(1)));
        }
    }
}
