//! The scenario orchestrator: timeline execution, seed sweeps,
//! checkpoint/resume.
//!
//! A run is a fold over the spec's phase timeline: dynamics phases
//! advance the profile through the core engine (one
//! [`DeviationScratch`] for the whole run, resynced by diffing at every
//! phase boundary), perturbation events rewrite the world, and every
//! phase emits one [`MetricRecord`](crate::MetricRecord) into the sink.
//! All randomness flows through a single `StdRng` seeded per run, so a
//! `(spec, seed)` pair names a unique trajectory — and freezing
//! `(state, rng state, next phase)` in a [`Checkpoint`] lets a killed
//! run resume bit-identically.

use crate::events;
use crate::sink::{MemorySink, MetricRecord, MetricSink, SeedReorderer};
use crate::spec::{fnv1a, InitSpec, PhaseSpec, ScenarioSpec, Variant};
use bbncg_core::dynamics::{run_dynamics_with_scratch_cancellable, DynamicsConfig};
use bbncg_core::{
    parse_snapshot, write_snapshot, CancelToken, CostKernel, DeviationScratch, Realization,
    RoundExecutor, Snapshot,
};
use bbncg_directed::{run_directed_dynamics, DirectedRealization};
use bbncg_graph::{generators, OwnedDigraph};
use bbncg_obs::{Counter, Histogram};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use std::sync::Mutex;
use std::time::Instant;

/// Stable hash of a profile: FNV-1a over `n` and the arc list in owner
/// order. Platform- and version-stable, unlike `DefaultHasher`.
pub fn state_hash(r: &Realization) -> u64 {
    let mut bytes = Vec::with_capacity(8 + 16 * r.graph().total_arcs());
    bytes.extend_from_slice(&(r.n() as u64).to_le_bytes());
    for (u, v) in r.graph().arcs() {
        bytes.extend_from_slice(&(u.index() as u64).to_le_bytes());
        bytes.extend_from_slice(&(v.index() as u64).to_le_bytes());
    }
    fnv1a(&bytes)
}

/// A frozen mid-scenario run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Scenario name (for humans; not validated).
    pub scenario: String,
    /// Hash of the spec source this run was started from; resume
    /// refuses a mismatch.
    pub spec_hash: u64,
    /// The run's seed.
    pub seed: u64,
    /// Index of the next phase to execute.
    pub next_phase: usize,
    /// Cumulative applied deviations so far.
    pub steps: usize,
    /// Cumulative dynamics rounds so far.
    pub rounds: usize,
    /// Last dynamics phase so far: did it converge? (Carried so a
    /// resumed run's summary record matches the uninterrupted one even
    /// when no dynamics phase runs after the checkpoint.)
    pub converged: Option<bool>,
    /// Last dynamics phase so far: was a cycle proven?
    pub cycled: Option<bool>,
    /// Cost kernel the run was priced with. Recorded for
    /// observability; kernels are move-for-move equivalent, so resuming
    /// under a different kernel continues the identical trajectory.
    pub kernel: CostKernel,
    /// Round executor the run's dynamics phases used. Recorded for
    /// observability; executors are step-identical, so resuming under
    /// a different one continues the identical trajectory.
    pub executor: RoundExecutor,
    /// Exact RNG stream position.
    pub rng_state: [u64; 4],
    /// The frozen profile.
    pub state: Realization,
}

impl Checkpoint {
    /// Serialize via the `bbncg_core::io` snapshot format.
    pub fn to_text(&self) -> String {
        write_snapshot(&Snapshot {
            realization: self.state.clone(),
            rng_state: self.rng_state,
            meta: vec![
                ("scenario".into(), self.scenario.clone()),
                ("spec-hash".into(), format!("{:016x}", self.spec_hash)),
                ("seed".into(), self.seed.to_string()),
                ("next-phase".into(), self.next_phase.to_string()),
                ("steps".into(), self.steps.to_string()),
                ("rounds".into(), self.rounds.to_string()),
                ("converged".into(), tristate_str(self.converged).into()),
                ("cycled".into(), tristate_str(self.cycled).into()),
                ("kernel".into(), self.kernel.label().into()),
                ("executor".into(), self.executor.label().into()),
            ],
        })
    }

    /// Parse a checkpoint written by [`Checkpoint::to_text`].
    pub fn from_text(text: &str) -> Result<Checkpoint, String> {
        let snap = parse_snapshot(text).map_err(|e| format!("bad checkpoint: {e}"))?;
        let get = |key: &str| -> Result<String, String> {
            snap.meta
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("checkpoint is missing meta key {key:?}"))
        };
        let num = |key: &str| -> Result<usize, String> {
            get(key)?
                .parse()
                .map_err(|e| format!("checkpoint meta {key}: {e}"))
        };
        Ok(Checkpoint {
            scenario: get("scenario")?,
            spec_hash: u64::from_str_radix(&get("spec-hash")?, 16)
                .map_err(|e| format!("checkpoint meta spec-hash: {e}"))?,
            seed: num("seed")? as u64,
            next_phase: num("next-phase")?,
            steps: num("steps")?,
            rounds: num("rounds")?,
            converged: tristate_parse(&get("converged")?)?,
            cycled: tristate_parse(&get("cycled")?)?,
            // Absent in pre-kernel checkpoints; the default is the
            // behaviour they were written under.
            kernel: match snap.meta.iter().find(|(k, _)| k == "kernel") {
                None => CostKernel::Auto,
                Some((_, v)) => CostKernel::parse(v)?,
            },
            // Absent in pre-executor checkpoints; Auto is the
            // behaviour they were written under.
            executor: match snap.meta.iter().find(|(k, _)| k == "executor") {
                None => RoundExecutor::Auto,
                Some((_, v)) => RoundExecutor::parse(v)?,
            },
            rng_state: snap.rng_state,
            state: snap.realization,
        })
    }
}

fn tristate_str(v: Option<bool>) -> &'static str {
    match v {
        None => "none",
        Some(true) => "true",
        Some(false) => "false",
    }
}

fn tristate_parse(s: &str) -> Result<Option<bool>, String> {
    match s {
        "none" => Ok(None),
        "true" => Ok(Some(true)),
        "false" => Ok(Some(false)),
        other => Err(format!(
            "checkpoint meta flag: expected none|true|false, got {other:?}"
        )),
    }
}

/// Outcome of one scenario run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The run's seed.
    pub seed: u64,
    /// Did the run execute the whole timeline (vs `stop_after` or a
    /// fired [`CancelToken`])?
    pub completed: bool,
    /// Was the run stopped by a [`CancelToken`]? The outcome's
    /// `checkpoint` then freezes the last *completed* phase boundary
    /// (an in-flight dynamics phase is abandoned, never half-recorded),
    /// so resuming it replays the cancelled phase bit-identically.
    pub cancelled: bool,
    /// Phases executed across the run's whole life (resume included).
    pub phases_done: usize,
    /// Cumulative applied deviations.
    pub steps: usize,
    /// Cumulative dynamics rounds.
    pub rounds: usize,
    /// Last dynamics phase: did it converge?
    pub converged: Option<bool>,
    /// Last dynamics phase: was a best-response cycle proven?
    pub cycled: Option<bool>,
    /// Final profile.
    pub state: Realization,
    /// [`state_hash`] of the final profile.
    pub state_hash: u64,
    /// Frozen continuation (useful when `completed` is false).
    pub checkpoint: Checkpoint,
}

fn build_init(spec: &ScenarioSpec, rng: &mut StdRng) -> Result<Realization, String> {
    match &spec.init {
        // `parse_spec` dry-runs the registry, so this only fails if a
        // spec was constructed programmatically with bad parameters —
        // still a clean error, never a panic.
        InitSpec::Family { family, params } => Ok(Realization::new(
            generators::from_name(family, params, rng).map_err(|e| format!("init: {e}"))?,
        )),
        InitSpec::Inline { n, arcs } => Ok(Realization::new(OwnedDigraph::from_arcs(*n, arcs))),
    }
}

fn dynamics_config(spec: &ScenarioSpec, phase: &PhaseSpec) -> DynamicsConfig {
    let d = spec.defaults;
    match phase {
        PhaseSpec::Dynamics {
            rounds,
            model,
            rule,
            order,
        } => DynamicsConfig {
            model: model.unwrap_or(d.model),
            rule: rule.unwrap_or(d.rule),
            order: order.unwrap_or(d.order),
            max_rounds: rounds.unwrap_or(d.max_rounds),
            executor: d.executor,
        },
        _ => d,
    }
}

/// Run (or continue) one seed of a scenario.
///
/// * `from` — `None` starts fresh from `seed`; `Some(checkpoint)`
///   resumes bit-identically from the frozen position.
/// * `stop_after` — execute at most this many phases *in total* (the
///   checkpoint in the returned outcome continues from there); `None`
///   runs the whole timeline.
/// * `on_phase_end` — called with a fresh checkpoint after every
///   executed phase (the crash-resume hook; pass `|_| ()` when unused).
///
/// Every executed phase emits one record into `sink`, plus a final
/// `kind = "summary"` record when the timeline completes.
pub fn run_scenario(
    spec: &ScenarioSpec,
    seed: u64,
    from: Option<Checkpoint>,
    sink: &mut dyn MetricSink,
    stop_after: Option<usize>,
    mut on_phase_end: impl FnMut(&Checkpoint),
) -> Result<RunOutcome, String> {
    let mut scratch: Option<DeviationScratch> = None;
    run_scenario_with_engine(
        spec,
        seed,
        from,
        sink,
        stop_after,
        &mut on_phase_end,
        &mut scratch,
        &CancelToken::new(),
    )
}

/// [`run_scenario`] with a caller-owned (worker-local) deviation
/// engine slot and a [`CancelToken`].
///
/// The engine slot is what [`run_sweep`] threads through
/// `par_map_init` so a whole batch of seeds shares one engine arena
/// per worker — and what a long-running service threads through its
/// worker pool so consecutive *jobs* reuse the same arena (the slot is
/// filled on first dynamics phase and re-synced by diffing ever
/// after).
///
/// Cancellation is cooperative and phase-atomic: the token is polled
/// at every phase boundary and at every dynamics round. When it fires,
/// the run winds back to the last completed phase boundary (an
/// in-flight dynamics phase is abandoned — its partial record is never
/// emitted) and returns `Ok` with `cancelled = true`; the outcome's
/// checkpoint resumes bit-identically, exactly like a `stop_after`
/// stop at that phase.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_with_engine(
    spec: &ScenarioSpec,
    seed: u64,
    from: Option<Checkpoint>,
    sink: &mut dyn MetricSink,
    stop_after: Option<usize>,
    on_phase_end: &mut dyn FnMut(&Checkpoint),
    scratch: &mut Option<DeviationScratch>,
    cancel: &CancelToken,
) -> Result<RunOutcome, String> {
    if spec.obs {
        bbncg_obs::enable();
    }
    let seed_t0 = Instant::now();
    // A reused engine slot keeps its construction-time kernel. If this
    // run asks for a different one (a later job's `?kernel=` override,
    // say), drop the slot so the first dynamics phase rebuilds under
    // the requested kernel — otherwise the override would be silently
    // ignored. (Kernels are move-for-move equivalent, so this guards
    // throughput and observability, never the trajectory.)
    if scratch.as_ref().is_some_and(|s| s.kernel() != spec.kernel) {
        *scratch = None;
    }
    let (mut state, mut rng, start_phase, mut steps, mut rounds, mut converged, mut cycled) =
        match from {
            None => {
                let mut rng = StdRng::seed_from_u64(seed);
                let state = build_init(spec, &mut rng)?;
                (state, rng, 0usize, 0usize, 0usize, None, None)
            }
            Some(ck) => {
                if ck.spec_hash != spec.spec_hash {
                    return Err(format!(
                        "checkpoint was taken from a different spec \
                     (spec-hash {:016x}, current {:016x})",
                        ck.spec_hash, spec.spec_hash
                    ));
                }
                if ck.next_phase > spec.phases.len() {
                    return Err(format!(
                        "checkpoint next-phase {} exceeds timeline length {}",
                        ck.next_phase,
                        spec.phases.len()
                    ));
                }
                (
                    ck.state,
                    StdRng::from_state(ck.rng_state),
                    ck.next_phase,
                    ck.steps,
                    ck.rounds,
                    ck.converged,
                    ck.cycled,
                )
            }
        };

    let mut phases_done = start_phase;
    let mut completed = true;
    let mut cancelled = false;
    for (i, phase) in spec.phases.iter().enumerate().skip(start_phase) {
        if let Some(stop) = stop_after {
            if phases_done >= stop {
                completed = false;
                break;
            }
        }
        if cancel.is_cancelled() {
            completed = false;
            cancelled = true;
            break;
        }
        let phase_t0 = Instant::now();
        let phase_span = bbncg_obs::span("phase");
        let mut phase_steps = 0usize;
        let mut phase_rounds = 0usize;
        match phase {
            PhaseSpec::Dynamics { .. } => {
                let cfg = dynamics_config(spec, phase);
                match spec.variant {
                    Variant::Undirected => {
                        let engine = scratch.get_or_insert_with(|| {
                            DeviationScratch::with_kernel(&state, spec.kernel)
                        });
                        // Pre-phase snapshot: a mid-phase cancellation
                        // winds back here, so the outcome's checkpoint
                        // is always a phase boundary and resumes
                        // bit-identically.
                        let pre_state = state.clone();
                        let pre_rng = rng.state();
                        let report = run_dynamics_with_scratch_cancellable(
                            state, cfg, &mut rng, engine, cancel,
                        );
                        if report.cancelled {
                            state = pre_state;
                            rng = StdRng::from_state(pre_rng);
                            completed = false;
                            cancelled = true;
                            drop(
                                phase_span
                                    .field("scenario", &spec.name)
                                    .field("seed", seed)
                                    .field("phase", i)
                                    .field("kind", phase.kind())
                                    .field("cancelled", true),
                            );
                            break;
                        }
                        state = report.state;
                        phase_steps = report.steps;
                        phase_rounds = report.rounds;
                        converged = Some(report.converged);
                        cycled = Some(report.cycled);
                    }
                    Variant::Directed => {
                        let report = run_directed_dynamics(
                            DirectedRealization::new(state.graph().clone()),
                            cfg.max_rounds,
                        );
                        state = Realization::new(report.state.graph().clone());
                        phase_steps = report.steps;
                        phase_rounds = report.rounds;
                        converged = Some(report.converged);
                        cycled = Some(report.cycled);
                    }
                }
            }
            PhaseSpec::Arrive { count, budget } => {
                state = events::arrive(&state, *count, *budget, &mut rng);
            }
            PhaseSpec::Depart { nodes, count } => {
                let picked;
                let who: &[usize] = if nodes.is_empty() {
                    picked = events::pick_departures(&state, *count, &mut rng);
                    &picked
                } else {
                    nodes
                };
                state =
                    events::depart(&state, who, &mut rng).map_err(|e| format!("phase {i}: {e}"))?;
            }
            PhaseSpec::BudgetShock {
                nodes,
                count,
                delta,
            } => {
                let picked;
                let who: &[usize] = if nodes.is_empty() {
                    picked = events::pick_nodes(&state, *count, &mut rng);
                    &picked
                } else {
                    nodes
                };
                state = events::budget_shock(&state, who, *delta, &mut rng)
                    .map_err(|e| format!("phase {i}: {e}"))?;
            }
            PhaseSpec::DeleteEdges { count, adversarial } => {
                state = events::delete_edges(&state, *count, *adversarial, &mut rng);
            }
            PhaseSpec::Reorient { seed: reseed } => {
                let s: u64 = match reseed {
                    Some(s) => *s,
                    None => rng.gen(),
                };
                let mut event_rng = StdRng::seed_from_u64(s);
                state = events::reorient(&state, &mut event_rng);
            }
        }
        let phase_us = phase_t0.elapsed().as_micros() as u64;
        bbncg_obs::counter_inc(Counter::ScenarioPhases);
        bbncg_obs::observe(Histogram::PhaseMicros, phase_us);
        if !matches!(phase, PhaseSpec::Dynamics { .. }) {
            bbncg_obs::counter_inc(Counter::ScenarioEvents);
            bbncg_obs::observe(Histogram::EventMicros, phase_us);
        }
        drop(
            phase_span
                .field("scenario", &spec.name)
                .field("seed", seed)
                .field("phase", i)
                .field("kind", phase.kind())
                .field("steps", phase_steps)
                .field("rounds", phase_rounds),
        );
        steps += phase_steps;
        rounds += phase_rounds;
        phases_done = i + 1;
        sink.record(&MetricRecord {
            scenario: spec.name.clone(),
            seed,
            phase: i,
            kind: phase.kind(),
            n: state.n(),
            arcs: state.graph().total_arcs(),
            steps: phase_steps,
            rounds: phase_rounds,
            social_cost: state.social_diameter(),
            diameter: state.diameter(),
            converged: matches!(phase, PhaseSpec::Dynamics { .. })
                .then(|| converged.unwrap_or(false)),
            cycled: matches!(phase, PhaseSpec::Dynamics { .. }).then(|| cycled.unwrap_or(false)),
            state_hash: state_hash(&state),
        });
        let ck = Checkpoint {
            scenario: spec.name.clone(),
            spec_hash: spec.spec_hash,
            seed,
            next_phase: phases_done,
            steps,
            rounds,
            converged,
            cycled,
            kernel: spec.kernel,
            executor: spec.defaults.executor,
            rng_state: rng.state(),
            state: state.clone(),
        };
        on_phase_end(&ck);
    }

    let hash = state_hash(&state);
    if completed {
        sink.record(&MetricRecord {
            scenario: spec.name.clone(),
            seed,
            phase: spec.phases.len(),
            kind: "summary",
            n: state.n(),
            arcs: state.graph().total_arcs(),
            steps,
            rounds,
            social_cost: state.social_diameter(),
            diameter: state.diameter(),
            converged,
            cycled,
            state_hash: hash,
        });
    }
    sink.flush();
    let checkpoint = Checkpoint {
        scenario: spec.name.clone(),
        spec_hash: spec.spec_hash,
        seed,
        next_phase: phases_done,
        steps,
        rounds,
        converged,
        cycled,
        kernel: spec.kernel,
        executor: spec.defaults.executor,
        rng_state: rng.state(),
        state: state.clone(),
    };
    bbncg_obs::counter_inc(Counter::ScenarioSeeds);
    bbncg_obs::observe(Histogram::SeedMicros, seed_t0.elapsed().as_micros() as u64);
    Ok(RunOutcome {
        seed,
        completed,
        cancelled,
        phases_done,
        steps,
        rounds,
        converged,
        cycled,
        state,
        state_hash: hash,
        checkpoint,
    })
}

/// Run the spec's whole seed sweep (`spec.seeds` runs, seeds
/// `spec.seed + 0 .. spec.seed + seeds`) in parallel, one deviation
/// engine per worker. Records stream into `sink` in seed order (a
/// reorder buffer holds out-of-order completions until their turn — see
/// [`SeedReorderer`]); the returned outcomes are in seed order too, and
/// deterministic regardless of thread count. A seed whose timeline
/// fails (e.g. a departure list outliving its nodes) yields `Err` in
/// its slot without aborting the sweep.
pub fn run_sweep(
    spec: &ScenarioSpec,
    sink: &mut (dyn MetricSink + Send),
) -> Vec<Result<RunOutcome, String>> {
    run_sweep_cancellable(spec, sink, &CancelToken::new())
}

/// [`run_sweep`] with a [`CancelToken`] shared by every worker. When
/// the token fires, each in-flight seed winds back to its last
/// completed phase boundary and returns with `cancelled = true`
/// (seeds that already finished keep their complete record streams);
/// seeds not yet started return immediately as cancelled with zero
/// phases done. The record stream stays in seed order and every
/// emitted record is one a full run would also have emitted.
pub fn run_sweep_cancellable(
    spec: &ScenarioSpec,
    sink: &mut (dyn MetricSink + Send),
    cancel: &CancelToken,
) -> Vec<Result<RunOutcome, String>> {
    let seeds = spec.seeds;
    let reorder = Mutex::new(SeedReorderer::new(sink));
    bbncg_par::par_map_init(
        seeds,
        || None::<DeviationScratch>,
        |scratch, i| {
            let seed = spec.seed + i as u64;
            // Per-seed span from the sweep worker's point of view:
            // wall-time per slot is what worker-utilization analysis
            // of a sweep needs (SeedMicros gives the histogram).
            let sweep_span = bbncg_obs::span("sweep-seed")
                .field("scenario", &spec.name)
                .field("seed", seed);
            let mut local = MemorySink::default();
            let outcome = run_scenario_with_engine(
                spec,
                seed,
                None,
                &mut local,
                None,
                &mut |_| (),
                scratch,
                cancel,
            );
            reorder
                .lock()
                .expect("sweep sink poisoned")
                .push(i, local.records);
            drop(sweep_span);
            outcome
        },
    )
}
