//! Declarative scenario engine for bounded-budget network creation
//! games.
//!
//! The paper's §8 convergence question — *do best-response dynamics
//! converge from arbitrary starting positions?* — is only as rich as
//! the positions and processes one can express. This crate turns the
//! core deviation engine into a general workload runner: experiments
//! are **scenario spec files** (a TOML subset, parsed by [`toml`])
//! describing an initial state, default dynamics parameters, and a
//! timeline of dynamics phases interleaved with **perturbation
//! events** — agent arrival/departure, budget shocks, adversarial edge
//! deletion, reseeded re-orientation ([`events`]).
//!
//! The orchestrator ([`engine`]) runs one seed or a parallel seed
//! sweep (one deviation engine per worker via
//! `bbncg_par::par_map_init`), emits one JSONL [`MetricRecord`] per
//! phase through a pluggable [`MetricSink`], and supports
//! **checkpoint/resume**: the profile plus the exact RNG stream
//! position freeze into a [`Checkpoint`] (persisted through the
//! `bbncg_core::io` snapshot format), and a killed run resumes
//! bit-identically — the resumed trajectory's final state hash equals
//! the uninterrupted run's.
//!
//! ```
//! use bbncg_scenario::{parse_spec, run_scenario, MemorySink};
//!
//! let spec = parse_spec(
//!     r#"
//! [scenario]
//! name = "doc"
//! [init]
//! family = "uniform"
//! n = 8
//! budget = 1
//! [[phase]]
//! kind = "dynamics"
//! [[phase]]
//! kind = "arrive"
//! count = 2
//! budget = 1
//! [[phase]]
//! kind = "dynamics"
//! "#,
//! )
//! .unwrap();
//! let mut sink = MemorySink::default();
//! let out = run_scenario(&spec, 1, None, &mut sink, None, |_| ()).unwrap();
//! assert!(out.completed);
//! assert_eq!(out.state.n(), 10);
//! assert_eq!(sink.records.len(), 4); // 3 phases + summary
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod sink;
pub mod spec;
pub mod toml;

pub use engine::{
    run_scenario, run_scenario_with_engine, run_sweep, run_sweep_cancellable, state_hash,
    Checkpoint, RunOutcome,
};
pub use sink::{
    JsonlSink, MemorySink, MetricRecord, MetricSink, NullSink, Reorderer, StringSink,
    SCHEMA_VERSION,
};
pub use spec::{fnv1a, parse_spec, InitSpec, PhaseSpec, ScenarioSpec, Variant};
pub use toml::SpecError;
