//! A hand-rolled TOML-subset parser for scenario spec files.
//!
//! The workspace builds fully offline, so — in the `io.rs` tradition —
//! this is a small line-oriented parser rather than a dependency. The
//! accepted subset is exactly what scenario specs need:
//!
//! ```text
//! # comment
//! [section]          # a named table (at most once per name)
//! key = 7            # integer
//! flag = true        # boolean
//! name = "churn"     # string, \" and \\ escapes
//! list = [1, 2, 3]   # array, nesting allowed: [[0, 1], [1, 2]]
//!
//! [[phase]]          # array-of-tables: repeatable, order preserved
//! kind = "dynamics"
//! ```
//!
//! No dotted keys, no inline tables, no dates, no floats, no multi-line
//! strings. Unknown syntax fails loudly with a line number.

use std::fmt;

/// A parsed value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Integer literal (underscore separators allowed).
    Int(i64),
    /// Double-quoted string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `[ … ]`, possibly nested.
    List(Vec<Value>),
}

impl Value {
    /// Human name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::List(_) => "array",
        }
    }
}

/// A parse or validation error, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number (0 when no single line is at fault).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl SpecError {
    /// Error pinned to a line.
    pub fn at(line: usize, msg: impl Into<String>) -> Self {
        SpecError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for SpecError {}

/// One table: a `[name]` / `[[name]]` section, or the root table for
/// keys before any header.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TomlTable {
    /// Section name (empty for the root table).
    pub name: String,
    /// Line the header appeared on (0 for the root table).
    pub line: usize,
    /// Was this declared with `[[name]]`?
    pub is_array: bool,
    /// Key/value pairs in source order.
    pub entries: Vec<(String, Value)>,
}

impl TomlTable {
    /// Value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All keys, for unknown-key diagnostics.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

/// A parsed document: the root table plus sections in source order
/// (array-of-tables sections repeat).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TomlDoc {
    /// Keys before the first section header.
    pub root: TomlTable,
    /// `[name]` and `[[name]]` tables, in order.
    pub sections: Vec<TomlTable>,
}

impl TomlDoc {
    /// The unique `[name]` section, if present.
    pub fn section(&self, name: &str) -> Option<&TomlTable> {
        self.sections.iter().find(|s| s.name == name && !s.is_array)
    }

    /// All `[[name]]` tables, in order.
    pub fn array_sections<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TomlTable> {
        self.sections
            .iter()
            .filter(move |s| s.name == name && s.is_array)
    }
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Strip a trailing comment (a `#` outside any string literal).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Parse one value expression, returning the value and the unconsumed
/// remainder of the string.
fn parse_value(s: &str, line: usize) -> Result<(Value, &str), SpecError> {
    let s = s.trim_start();
    let bad = |what: &str| SpecError::at(line, format!("cannot parse {what}: {s:?}"));
    if let Some(rest) = s.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    _ => return Err(bad("string escape")),
                },
                '"' => return Ok((Value::Str(out), &rest[i + 1..])),
                _ => out.push(c),
            }
        }
        Err(bad("unterminated string"))
    } else if let Some(mut rest) = s.strip_prefix('[') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                return Ok((Value::List(items), after));
            }
            if rest.is_empty() {
                return Err(bad("unterminated array"));
            }
            let (v, after) = parse_value(rest, line)?;
            items.push(v);
            rest = after.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after;
            } else if !rest.starts_with(']') {
                return Err(bad("array (missing comma)"));
            }
        }
    } else if let Some(rest) = s.strip_prefix("true") {
        Ok((Value::Bool(true), rest))
    } else if let Some(rest) = s.strip_prefix("false") {
        Ok((Value::Bool(false), rest))
    } else {
        let end = s
            .char_indices()
            .find(|&(_, c)| !(c.is_ascii_digit() || c == '-' || c == '+' || c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(s.len());
        if end == 0 {
            return Err(bad("value"));
        }
        let digits: String = s[..end].chars().filter(|&c| c != '_').collect();
        let v: i64 = digits.parse().map_err(|_| bad("integer"))?;
        Ok((Value::Int(v), &s[end..]))
    }
}

/// Parse a document.
pub fn parse(text: &str) -> Result<TomlDoc, SpecError> {
    let mut doc = TomlDoc::default();
    let mut current: Option<TomlTable> = None;
    for (i, raw) in text.lines().enumerate() {
        let ln = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let (name, is_array) = match header.strip_prefix('[') {
                Some(inner) => (
                    inner
                        .strip_suffix("]]")
                        .ok_or_else(|| SpecError::at(ln, format!("malformed header {line:?}")))?,
                    true,
                ),
                None => (
                    header
                        .strip_suffix(']')
                        .ok_or_else(|| SpecError::at(ln, format!("malformed header {line:?}")))?,
                    false,
                ),
            };
            let name = name.trim();
            if name.is_empty() || !name.chars().all(is_bare_key_char) {
                return Err(SpecError::at(ln, format!("bad section name {name:?}")));
            }
            if let Some(t) = current.take() {
                doc.sections.push(t);
            }
            if !is_array && doc.sections.iter().any(|s| s.name == name && !s.is_array) {
                return Err(SpecError::at(ln, format!("duplicate section [{name}]")));
            }
            current = Some(TomlTable {
                name: name.to_string(),
                line: ln,
                is_array,
                entries: Vec::new(),
            });
            continue;
        }
        let (key, rest) = line
            .split_once('=')
            .ok_or_else(|| SpecError::at(ln, format!("expected `key = value`, got {line:?}")))?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(is_bare_key_char) {
            return Err(SpecError::at(ln, format!("bad key {key:?}")));
        }
        let (value, leftover) = parse_value(rest, ln)?;
        if !leftover.trim().is_empty() {
            return Err(SpecError::at(
                ln,
                format!("trailing garbage after value: {:?}", leftover.trim()),
            ));
        }
        let table = current.as_mut().unwrap_or(&mut doc.root);
        if table.get(key).is_some() {
            return Err(SpecError::at(ln, format!("duplicate key {key:?}")));
        }
        table.entries.push((key.to_string(), value));
    }
    if let Some(t) = current.take() {
        doc.sections.push(t);
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_subset() {
        let doc = parse(
            r#"
# a scenario
[scenario]
name = "churn test"   # with a comment
seed = 1_000
flag = true

[[phase]]
kind = "dynamics"
rounds = -3

[[phase]]
kind = "arrive"
arcs = [[0, 1], [1, 2],]
"#,
        )
        .unwrap();
        let s = doc.section("scenario").unwrap();
        assert_eq!(s.get("name"), Some(&Value::Str("churn test".into())));
        assert_eq!(s.get("seed"), Some(&Value::Int(1000)));
        assert_eq!(s.get("flag"), Some(&Value::Bool(true)));
        let phases: Vec<_> = doc.array_sections("phase").collect();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].get("rounds"), Some(&Value::Int(-3)));
        assert_eq!(
            phases[1].get("arcs"),
            Some(&Value::List(vec![
                Value::List(vec![Value::Int(0), Value::Int(1)]),
                Value::List(vec![Value::Int(1), Value::Int(2)]),
            ]))
        );
    }

    #[test]
    fn string_escapes_and_hash_inside_string() {
        let doc = parse("a = \"x # not a comment \\\" \\\\ done\"").unwrap();
        assert_eq!(
            doc.root.get("a"),
            Some(&Value::Str("x # not a comment \" \\ done".into()))
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(parse("x 1").unwrap_err().line, 1);
        assert_eq!(parse("\n\nx = ").unwrap_err().line, 3);
        assert_eq!(parse("x = \"unterminated").unwrap_err().line, 1);
        assert_eq!(parse("x = [1, 2").unwrap_err().line, 1);
        assert_eq!(parse("x = [1 2]").unwrap_err().line, 1);
        assert_eq!(parse("[bad name]").unwrap_err().line, 1);
        assert_eq!(parse("[a]\n[a]").unwrap_err().line, 2);
        assert_eq!(parse("x = 1\nx = 2").unwrap_err().line, 2);
        assert_eq!(parse("x = 1 y").unwrap_err().line, 1);
        let e = parse("x = 99999999999999999999").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
    }

    #[test]
    fn array_of_tables_coexists_with_plain_sections() {
        let doc = parse("[a]\nk = 1\n[[a]]\nk = 2").unwrap();
        assert_eq!(doc.section("a").unwrap().get("k"), Some(&Value::Int(1)));
        assert_eq!(doc.array_sections("a").count(), 1);
    }
}
