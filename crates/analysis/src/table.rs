//! Plain-text result tables for the experiment harness.
//!
//! Every experiment renders its output through [`Table`] so the
//! `experiments` binary and EXPERIMENTS.md show the same rows the paper
//! reports (markdown) and machine-readable CSV can be captured with
//! `--csv`.

use std::fmt::Write as _;

/// A titled table of strings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    /// Table caption (e.g. "Table 1, row Trees/MAX — spider equilibria").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must match `headers` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the headers.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as GitHub-flavoured markdown with a bold title line.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        let _ = writeln!(out, "| {} |", sep.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Render as CSV (title omitted; headers first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["n", "diameter"]);
        t.push(vec!["10".into(), "4".into()]);
        t.push(vec!["100".into(), "6".into()]);
        t
    }

    #[test]
    fn markdown_renders_aligned() {
        let md = sample().to_markdown();
        assert!(md.contains("**Demo**"));
        assert!(md.contains("| n   | diameter |"));
        assert!(md.contains("| 100 | 6        |"));
    }

    #[test]
    fn csv_renders_and_escapes() {
        let mut t = sample();
        t.push(vec!["1,5".into(), "a\"b".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("n,diameter\n"));
        assert!(csv.contains("\"1,5\",\"a\"\"b\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = sample();
        t.push(vec!["only-one".into()]);
    }
}
