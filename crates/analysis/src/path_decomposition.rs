//! The longest-path decomposition of tree equilibria (Theorem 3.3,
//! Figure 3).
//!
//! For a tree profile, take a diametral path `P = v₀ v₁ … v_d` and let
//! `a(i)` be the number of vertices hanging off `P` at `vᵢ` (including
//! `vᵢ`). Theorem 3.3's argument: if `vᵢ` owns the forward arc
//! `vᵢ → vᵢ₊₁` then, in a SUM equilibrium, rerouting it to `vᵢ₊₂` must
//! not pay, which forces
//!
//! ```text
//!   a(i+1)  ≥  a(i+2) + a(i+3) + … + a(d)        (forward arcs)
//!   a(i)    ≥  a(0)   + a(1)   + … + a(i−1)      (backward arcs, mirror)
//! ```
//!
//! At least half the path arcs point one way, and the inequalities force
//! the `a(·)` values to double geometrically along that direction —
//! hence `d = O(log n)`. [`path_decomposition`] extracts the path and
//! the `a(i)` sequence; [`PathDecomposition::violations`] counts how
//! many of the equilibrium-implied inequalities fail (zero for every
//! SUM tree equilibrium — asserted by the `t1-sum-tree` experiment).

use bbncg_core::Realization;
use bbncg_graph::{BfsScratch, NodeId};

/// The decomposition of a tree profile along a diametral path.
#[derive(Clone, Debug)]
pub struct PathDecomposition {
    /// A diametral path `v₀ … v_d` (d+1 vertices).
    pub path: Vec<NodeId>,
    /// `a(i)` = vertices attached to the path at `vᵢ` (incl. `vᵢ`).
    pub attach: Vec<usize>,
    /// Number of Theorem 3.3 inequalities that are violated.
    pub violations: usize,
    /// Number of inequalities checked (one per owned path arc with room
    /// to reroute).
    pub checked: usize,
}

impl PathDecomposition {
    /// Path length `d` (= the tree's diameter).
    pub fn d(&self) -> usize {
        self.path.len() - 1
    }

    /// The Theorem 3.3 bound: in a SUM equilibrium `d ≤ 2t` where `t` is
    /// the majority arc direction count, and the doubling argument gives
    /// `d = O(log n)`. This helper returns `2 · (log₂ n + 2)`, the
    /// concrete bound implied by `2^(t−1) − 1 ≤ n`.
    pub fn theorem33_bound(n: usize) -> usize {
        2 * ((n as f64).log2().ceil() as usize + 2)
    }
}

/// Decompose a **tree** profile along a diametral path. Returns `None`
/// if the profile is not a connected tree.
pub fn path_decomposition(r: &Realization) -> Option<PathDecomposition> {
    let n = r.n();
    if n == 0 || !r.is_connected() || r.graph().total_arcs() != n - 1 {
        return None;
    }
    let csr = r.csr();
    let mut bfs = BfsScratch::new(n);
    // Double BFS: farthest from 0, then farthest from that.
    bfs.run(csr, NodeId::new(0));
    let u = *bfs.reached().last().unwrap();
    bfs.run(csr, u);
    let v = *bfs.reached().last().unwrap();
    // Trace the u-v path by walking from v toward decreasing distance.
    let mut path = vec![v];
    let mut cur = v;
    while cur != u {
        let d = bfs.dist(cur).unwrap();
        let parent = csr
            .neighbors(cur)
            .iter()
            .copied()
            .find(|&w| bfs.dist(w) == Some(d - 1))
            .expect("tree BFS parent exists");
        path.push(parent);
        cur = parent;
    }
    path.reverse(); // now u ... v

    // a(i): each non-path vertex attaches to the unique nearest path
    // vertex; in a tree, multi-source BFS from the path assigns each
    // vertex to exactly one attachment point, recovered by walking the
    // BFS parents.
    let on_path = {
        let mut mask = vec![false; n];
        for &p in &path {
            mask[p.index()] = true;
        }
        mask
    };
    let mut attach_of = vec![u32::MAX; n];
    for (i, &p) in path.iter().enumerate() {
        attach_of[p.index()] = i as u32;
    }
    bfs.run_multi(csr, &path);
    // BFS order guarantees parents are resolved before children.
    let order: Vec<NodeId> = bfs.reached().to_vec();
    for &w in &order {
        if on_path[w.index()] {
            continue;
        }
        let d = bfs.dist(w).unwrap();
        let parent = csr
            .neighbors(w)
            .iter()
            .copied()
            .find(|&x| bfs.dist(x) == Some(d - 1))
            .expect("attachment parent exists");
        attach_of[w.index()] = attach_of[parent.index()];
    }
    let mut attach = vec![0usize; path.len()];
    for &a in &attach_of {
        attach[a as usize] += 1;
    }

    // Check the Theorem 3.3 inequalities for each owned path arc.
    let d = path.len() - 1;
    let suffix: Vec<usize> = {
        let mut s = vec![0usize; d + 2];
        for i in (0..=d).rev() {
            s[i] = s[i + 1] + attach[i];
        }
        s
    };
    let prefix: Vec<usize> = {
        let mut s = vec![0usize; d + 2];
        for i in 0..=d {
            s[i + 1] = s[i] + attach[i];
        }
        s
    };
    let mut checked = 0;
    let mut violations = 0;
    for i in 0..d {
        let (a, b) = (path[i], path[i + 1]);
        if r.graph().has_arc(a, b) && i + 2 <= d {
            // forward arc vᵢ → vᵢ₊₁, reroutable to vᵢ₊₂
            checked += 1;
            if attach[i + 1] < suffix[i + 2] {
                violations += 1;
            }
        }
        if r.graph().has_arc(b, a) && i >= 1 {
            // backward arc vᵢ₊₁ → vᵢ, reroutable to vᵢ₋₁
            checked += 1;
            if attach[i] < prefix[i] {
                violations += 1;
            }
        }
    }
    Some(PathDecomposition {
        path,
        attach,
        violations,
        checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_core::{CostModel, Realization};
    use bbncg_graph::generators;

    #[test]
    fn binary_tree_decomposition_has_no_violations() {
        for h in 1..=5 {
            let r = Realization::new(generators::perfect_binary_tree(h));
            let pd = path_decomposition(&r).unwrap();
            assert_eq!(pd.d() as u32, 2 * h, "diametral path length");
            assert_eq!(
                pd.violations, 0,
                "SUM equilibrium must satisfy all Theorem 3.3 inequalities"
            );
            if h >= 2 {
                assert!(pd.checked > 0, "h={h} should have reroutable path arcs");
            }
            assert_eq!(pd.attach.iter().sum::<usize>(), r.n());
        }
    }

    #[test]
    fn directed_path_violates_doubling() {
        // The path 0→1→…→7 is not a SUM equilibrium; its decomposition
        // must show violated inequalities.
        let r = Realization::new(generators::path(8));
        let pd = path_decomposition(&r).unwrap();
        assert_eq!(pd.d(), 7);
        assert!(pd.violations > 0);
        assert!(!bbncg_core::is_nash_equilibrium(&r, CostModel::Sum));
    }

    #[test]
    fn spider_decomposition() {
        let r = Realization::new(generators::spider(4));
        let pd = path_decomposition(&r).unwrap();
        assert_eq!(pd.d(), 8); // diameter 2k
        assert_eq!(pd.attach.iter().sum::<usize>(), 13);
        // The third leg (k-1 vertices beyond the hub's neighbor) hangs
        // off the middle of the path.
        let mid = pd.attach[4];
        assert!(mid >= 1);
    }

    #[test]
    fn non_tree_returns_none() {
        let r = Realization::new(generators::cycle(5));
        assert!(path_decomposition(&r).is_none());
        let disconnected =
            Realization::new(bbncg_graph::OwnedDigraph::from_arcs(4, &[(0, 1), (2, 3)]));
        assert!(path_decomposition(&disconnected).is_none());
    }

    #[test]
    fn bound_grows_logarithmically() {
        assert!(PathDecomposition::theorem33_bound(15) <= PathDecomposition::theorem33_bound(1023));
        let r = Realization::new(generators::perfect_binary_tree(4));
        let pd = path_decomposition(&r).unwrap();
        assert!(pd.d() <= PathDecomposition::theorem33_bound(r.n()));
    }
}
