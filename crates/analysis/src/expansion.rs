//! Neighbourhood expansion profiles (Theorem 6 / Theorem 6.9).
//!
//! The 2^O(√log n) diameter bound for SUM equilibria rests on an
//! expansion property: with `f(r) = min_u |B_r(u)|`, inequality (3) of
//! the paper forces `f(4r)` to grow by a `r / log n` factor until half
//! the graph is covered. [`expansion_profile`] measures the exact `f(r)`
//! series of a graph — the `t1-sum-general` experiment prints it next to
//! the equilibrium diameters so the growth shape can be compared with
//! the theorem's prediction.

use bbncg_graph::{BfsScratch, Csr, NodeId};

/// `f(r) = min_u |B_r(u)|` for `r = 0 ..= max_r`, computed from one
/// full BFS per source (distance histogram + prefix sums), sources in
/// parallel.
pub fn expansion_profile(csr: &Csr, max_r: usize) -> Vec<usize> {
    let n = csr.n();
    if n == 0 {
        return vec![0; max_r + 1];
    }
    // Per-source ball sizes, reduced by elementwise min across chunks.
    let mins = bbncg_par::par_reduce(
        &(0..n).collect::<Vec<usize>>(),
        vec![usize::MAX; max_r + 1],
        |_, &src| {
            let mut scratch = BfsScratch::new(n);
            scratch.run(csr, NodeId::new(src));
            let mut hist = vec![0usize; max_r + 2];
            for v in 0..n {
                if let Some(d) = scratch.dist(NodeId::new(v)) {
                    hist[(d as usize).min(max_r + 1)] += 1;
                }
            }
            let mut balls = Vec::with_capacity(max_r + 1);
            let mut acc = 0;
            for r in 0..=max_r {
                acc += hist[r];
                balls.push(acc);
            }
            balls
        },
        |a, b| a.iter().zip(&b).map(|(&x, &y)| x.min(y)).collect(),
    );
    mins
}

/// Smallest radius `r` with `f(r) > n / 2` (the "half coverage" radius
/// driving the Theorem 6.9 induction), or `None` if `max_r` is too
/// small or the graph is disconnected.
pub fn half_coverage_radius(csr: &Csr, max_r: usize) -> Option<usize> {
    let n = csr.n();
    expansion_profile(csr, max_r)
        .into_iter()
        .position(|f| 2 * f > n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_graph::generators;

    fn path_csr(n: usize) -> Csr {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn path_expansion_is_linear() {
        // On a path, the end vertices see |B_r| = r + 1.
        let f = expansion_profile(&path_csr(10), 5);
        assert_eq!(f, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn star_expansion_saturates() {
        let csr = Csr::from_digraph(&generators::star(8));
        let f = expansion_profile(&csr, 3);
        assert_eq!(f[0], 1);
        assert_eq!(f[1], 2); // a leaf's 1-ball: itself + the hub
        assert_eq!(f[2], 8); // everything within 2
        assert_eq!(f[3], 8);
    }

    #[test]
    fn shift_graph_expands_fast() {
        // The Theorem 5.3 graph: every ball multiplies by ~t per step.
        let csr = generators::shift_graph(8, 3);
        let f = expansion_profile(&csr, 3);
        assert!(f[1] >= 8); // ≥ t − 1 + itself
        assert_eq!(f[3], 512); // diameter 3 covers everything
    }

    #[test]
    fn half_coverage() {
        assert_eq!(half_coverage_radius(&path_csr(9), 8), Some(4));
        let csr = Csr::from_digraph(&generators::star(9));
        assert_eq!(half_coverage_radius(&csr, 4), Some(2));
        // Radius budget too small:
        assert_eq!(half_coverage_radius(&path_csr(9), 2), None);
    }

    #[test]
    fn disconnected_graph_balls_stay_small() {
        let csr = Csr::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let f = expansion_profile(&csr, 4);
        assert_eq!(f, vec![1, 2, 2, 2, 2]);
        assert_eq!(half_coverage_radius(&csr, 4), None);
    }
}
