//! The Theorem 7.2 connectivity dichotomy.
//!
//! If every player's budget is at least `k`, then every SUM equilibrium
//! either has diameter < 4 or is `k`-connected. The `e-connectivity`
//! experiment samples SUM equilibria of min-budget-`k` instances and
//! verifies the dichotomy with exact vertex connectivity (Menger
//! max-flows).

use bbncg_core::Realization;
use bbncg_graph::vertex_connectivity;

/// Result of checking the Theorem 7.2 dichotomy on one profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DichotomyReport {
    /// Minimum budget over all players (the theorem's `k`).
    pub min_budget: usize,
    /// Social diameter (`n²` when disconnected).
    pub diameter: u64,
    /// Exact vertex connectivity κ(G).
    pub connectivity: usize,
    /// `diameter < 4 || connectivity ≥ min_budget`.
    pub holds: bool,
}

/// Check the dichotomy for a profile (intended for SUM equilibria).
pub fn connectivity_dichotomy(r: &Realization) -> DichotomyReport {
    let min_budget = r.budgets().min_budget();
    let diameter = r.social_diameter();
    let connectivity = vertex_connectivity(r.csr());
    DichotomyReport {
        min_budget,
        diameter,
        connectivity,
        holds: diameter < 4 || connectivity >= min_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_constructions::theorem23_equilibrium;
    use bbncg_core::dynamics::{run_dynamics, DynamicsConfig};
    use bbncg_core::{BudgetVector, CostModel};
    use bbncg_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theorem23_equilibria_satisfy_dichotomy() {
        // The constructed equilibria have diameter ≤ 4; for diameter < 4
        // the dichotomy is immediate, and the diameter-4 case-2 outputs
        // have min budget 0, so the premise is vacuous (κ ≥ 0 always).
        for budgets in [
            vec![1, 1, 1, 1],
            vec![2, 2, 2, 2, 2],
            vec![3, 3, 3, 3, 3, 3],
        ] {
            let c = theorem23_equilibrium(&BudgetVector::new(budgets));
            let rep = connectivity_dichotomy(&c.realization);
            assert!(rep.holds, "{rep:?}");
        }
    }

    #[test]
    fn sum_equilibria_from_dynamics_satisfy_dichotomy() {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for k in 1..=2usize {
                let budgets = vec![k; 8];
                let initial = Realization::new(generators::random_realization(&budgets, &mut rng));
                let rep = run_dynamics(
                    initial,
                    DynamicsConfig::exact(CostModel::Sum, 100),
                    &mut rng,
                );
                assert!(rep.converged);
                let d = connectivity_dichotomy(&rep.state);
                assert!(
                    d.holds,
                    "seed {seed}, k={k}: Theorem 7.2 dichotomy violated: {d:?}"
                );
            }
        }
    }

    #[test]
    fn long_cycle_with_unit_budgets_would_violate_for_k2() {
        // A long directed cycle has diameter ≥ 4 and connectivity 2: the
        // dichotomy *conclusion* holds for k ≤ 2 but fails for k = 3 —
        // and indeed a budget-3 instance can never equilibrate there.
        let r = Realization::new(generators::cycle(10));
        let rep = connectivity_dichotomy(&r);
        assert_eq!(rep.connectivity, 2);
        assert_eq!(rep.min_budget, 1);
        assert!(rep.holds);
    }
}
