//! Structure of `(1,…,1)-BG` equilibria (Theorems 4.1 and 4.2).
//!
//! Every realization of the all-unit game has exactly `n` arcs, so its
//! underlying multigraph is a functional graph: connected equilibria are
//! unicyclic. The theorems bound the shape tightly:
//!
//! * **Theorem 4.1 (SUM)**: connected, unique cycle of length ≤ 5, every
//!   vertex on the cycle or adjacent to it;
//! * **Theorem 4.2 (MAX)**: connected, unique cycle of length ≤ 7, every
//!   vertex within distance 2 of the cycle.
//!
//! These imply diameters < 5 resp. < 8 and hence the Θ(1) price of
//! anarchy of the all-unit row of Table 1. The `t1-unit` experiment
//! drives random all-unit games to equilibrium and feeds them through
//! [`unit_structure`].

use bbncg_core::Realization;
use bbncg_graph::{cycles, NodeId};

/// Shape summary of an all-unit-budget profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitStructure {
    /// Is `U(G)` connected?
    pub connected: bool,
    /// The unique cycle (a brace counts as a 2-cycle), if the graph is
    /// unicyclic.
    pub cycle: Option<Vec<NodeId>>,
    /// Largest distance from any vertex to the cycle (0 if no cycle).
    pub max_dist_to_cycle: u32,
    /// Number of braces.
    pub braces: usize,
    /// Diameter (`None` when disconnected).
    pub diameter: Option<u32>,
}

impl UnitStructure {
    /// Length of the unique cycle (0 when there is none).
    pub fn cycle_len(&self) -> usize {
        self.cycle.as_ref().map_or(0, Vec::len)
    }

    /// Does the shape satisfy Theorem 4.1's conclusion (SUM version)?
    pub fn satisfies_theorem41(&self) -> bool {
        self.connected
            && self.cycle.is_some()
            && self.cycle_len() <= 5
            && self.max_dist_to_cycle <= 1
    }

    /// Does the shape satisfy Theorem 4.2's conclusion (MAX version)?
    pub fn satisfies_theorem42(&self) -> bool {
        self.connected
            && self.cycle.is_some()
            && self.cycle_len() <= 7
            && self.max_dist_to_cycle <= 2
    }
}

/// Analyze the shape of a profile (intended for `(1,…,1)-BG`
/// realizations, but total budget is not enforced).
///
/// ```
/// use bbncg_analysis::unit_structure;
/// use bbncg_core::Realization;
/// use bbncg_graph::generators;
///
/// // A directed triangle with three pendants: cycle 3, everything
/// // within distance 1 — the Theorem 4.1 shape.
/// let r = Realization::new(generators::sunflower(3, &[1, 1, 1]));
/// let s = unit_structure(&r);
/// assert_eq!(s.cycle_len(), 3);
/// assert!(s.satisfies_theorem41());
/// ```
pub fn unit_structure(r: &Realization) -> UnitStructure {
    let csr = r.csr();
    let connected = r.is_connected();
    let cycle = cycles::unique_cycle(csr);
    let max_dist_to_cycle = match &cycle {
        Some(c) => cycles::distance_to_set(csr, c)
            .into_iter()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0),
        None => 0,
    };
    UnitStructure {
        connected,
        cycle,
        max_dist_to_cycle,
        braces: r.graph().brace_count(),
        diameter: r.diameter(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_core::dynamics::{run_dynamics, DynamicsConfig};
    use bbncg_core::{is_nash_equilibrium, CostModel};
    use bbncg_graph::{generators, OwnedDigraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn directed_triangle_structure() {
        let r = Realization::new(generators::cycle(3));
        let s = unit_structure(&r);
        assert!(s.connected);
        assert_eq!(s.cycle_len(), 3);
        assert_eq!(s.max_dist_to_cycle, 0);
        assert!(s.satisfies_theorem41());
        assert!(s.satisfies_theorem42());
    }

    #[test]
    fn long_cycle_violates_both() {
        let r = Realization::new(generators::cycle(9));
        let s = unit_structure(&r);
        assert_eq!(s.cycle_len(), 9);
        assert!(!s.satisfies_theorem41());
        assert!(!s.satisfies_theorem42());
        // ... consistent with Theorem 4.x: a long directed cycle is not
        // an equilibrium.
        assert!(!is_nash_equilibrium(&r, CostModel::Sum));
        assert!(!is_nash_equilibrium(&r, CostModel::Max));
    }

    #[test]
    fn sunflower_structure() {
        // 5-cycle with a pendant at each cycle vertex, all unit budgets:
        // pendant i+5 points at cycle vertex i.
        let mut arcs: Vec<(usize, usize)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        arcs.extend((0..5).map(|i| (i + 5, i)));
        let r = Realization::new(OwnedDigraph::from_arcs(10, &arcs));
        let s = unit_structure(&r);
        assert_eq!(s.cycle_len(), 5);
        assert_eq!(s.max_dist_to_cycle, 1);
        assert!(s.satisfies_theorem41());
        assert!(s.satisfies_theorem42());
    }

    #[test]
    fn all_unit_equilibria_from_dynamics_satisfy_the_theorems() {
        // The paper's Theorem 4.x end to end: drive random (1,...,1)
        // instances to equilibrium, then check the structure.
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let budgets = vec![1usize; 9];
            let initial = Realization::new(generators::random_realization(&budgets, &mut rng));
            for model in CostModel::ALL {
                let rep =
                    run_dynamics(initial.clone(), DynamicsConfig::exact(model, 200), &mut rng);
                assert!(rep.converged, "seed {seed} {model:?} did not converge");
                let s = unit_structure(&rep.state);
                match model {
                    CostModel::Sum => assert!(
                        s.satisfies_theorem41(),
                        "seed {seed}: SUM equilibrium violates Thm 4.1: {s:?}"
                    ),
                    CostModel::Max => assert!(
                        s.satisfies_theorem42(),
                        "seed {seed}: MAX equilibrium violates Thm 4.2: {s:?}"
                    ),
                }
            }
        }
    }

    #[test]
    fn disconnected_profile_reported() {
        let g = OwnedDigraph::from_arcs(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let s = unit_structure(&Realization::new(g));
        assert!(!s.connected);
        assert!(s.cycle.is_none()); // two cycles -> not unicyclic
        assert!(!s.satisfies_theorem41());
    }
}
