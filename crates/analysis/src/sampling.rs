//! Equilibrium sampling: drive random initial profiles to equilibrium,
//! many seeds in parallel.
//!
//! This is the workhorse of the empirical Table 1 rows: the spread of
//! equilibrium diameters reached by best-response dynamics from random
//! starts estimates the price of anarchy of an instance class.

use bbncg_core::dynamics::{run_dynamics, DynamicsConfig, DynamicsReport};
use bbncg_core::{BudgetVector, Realization};
use bbncg_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sampled trajectory.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Seed that generated the initial profile and drove the dynamics.
    pub seed: u64,
    /// The dynamics outcome.
    pub report: DynamicsReport,
}

impl Sample {
    /// Social diameter of the final state.
    pub fn diameter(&self) -> u64 {
        self.report.state.social_diameter()
    }
}

/// Run `samples` independent dynamics trajectories of `cfg` on the
/// instance `budgets`, seeds `base_seed .. base_seed + samples`, in
/// parallel. Deterministic for fixed inputs regardless of thread count.
pub fn sample_equilibria(
    budgets: &BudgetVector,
    cfg: DynamicsConfig,
    base_seed: u64,
    samples: usize,
) -> Vec<Sample> {
    bbncg_par::par_map_index(samples, |i| {
        let seed = base_seed + i as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let initial =
            Realization::new(generators::random_realization(budgets.as_slice(), &mut rng));
        let report = run_dynamics(initial, cfg, &mut rng);
        Sample { seed, report }
    })
}

/// Exact residual best-response gap of each sample's final state,
/// through the core's batched parallel audit engine
/// ([`bbncg_core::audit_equilibrium`]): 0 for every converged
/// `ExactBest`/`FirstImproving` trajectory, and a quantitative
/// "distance from Nash" for timed-out or swap-converged ones.
pub fn residual_gaps(samples: &[Sample], model: bbncg_core::CostModel) -> Vec<u64> {
    samples
        .iter()
        .map(|s| bbncg_core::audit_equilibrium(&s.report.state, model).gap())
        .collect()
}

/// Summary statistics over a batch of samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleStats {
    /// Number of trajectories.
    pub total: usize,
    /// How many converged.
    pub converged: usize,
    /// How many revisited a profile (proved a best-response cycle).
    pub cycled: usize,
    /// Smallest final diameter among converged runs (`u64::MAX` if none).
    pub min_diameter: u64,
    /// Largest final diameter among converged runs (0 if none).
    pub max_diameter: u64,
    /// Mean rounds to convergence over converged runs.
    pub mean_rounds: f64,
    /// Mean applied deviations over converged runs.
    pub mean_steps: f64,
}

/// Aggregate a batch of samples.
pub fn summarize(samples: &[Sample]) -> SampleStats {
    let total = samples.len();
    let converged: Vec<&Sample> = samples.iter().filter(|s| s.report.converged).collect();
    let cycled = samples.iter().filter(|s| s.report.cycled).count();
    let min_diameter = converged
        .iter()
        .map(|s| s.diameter())
        .min()
        .unwrap_or(u64::MAX);
    let max_diameter = converged.iter().map(|s| s.diameter()).max().unwrap_or(0);
    let mean = |f: &dyn Fn(&Sample) -> usize| -> f64 {
        if converged.is_empty() {
            0.0
        } else {
            converged.iter().map(|s| f(s)).sum::<usize>() as f64 / converged.len() as f64
        }
    };
    SampleStats {
        total,
        converged: converged.len(),
        cycled,
        min_diameter,
        max_diameter,
        mean_rounds: mean(&|s| s.report.rounds),
        mean_steps: mean(&|s| s.report.steps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_core::{is_nash_equilibrium, CostModel};

    #[test]
    fn sampling_is_deterministic() {
        let budgets = BudgetVector::uniform(7, 1);
        let cfg = DynamicsConfig::exact(CostModel::Sum, 100);
        let a = sample_equilibria(&budgets, cfg, 10, 4);
        let b = sample_equilibria(&budgets, cfg, 10, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.report.state, y.report.state);
            assert_eq!(x.report.steps, y.report.steps);
        }
    }

    #[test]
    fn unit_budget_samples_converge_to_small_diameters() {
        let budgets = BudgetVector::uniform(8, 1);
        let cfg = DynamicsConfig::exact(CostModel::Sum, 200);
        let samples = sample_equilibria(&budgets, cfg, 0, 6);
        let stats = summarize(&samples);
        assert_eq!(stats.converged, stats.total);
        // Converged exact dynamics ⇒ zero residual gap (audit engine).
        assert!(residual_gaps(&samples, CostModel::Sum)
            .iter()
            .all(|&g| g == 0));
        // Theorem 4.1: SUM all-unit equilibria have diameter < 5.
        assert!(stats.max_diameter < 5, "{stats:?}");
        for s in &samples {
            assert!(is_nash_equilibrium(&s.report.state, CostModel::Sum));
        }
    }

    #[test]
    fn summary_handles_empty_and_unconverged() {
        let stats = summarize(&[]);
        assert_eq!(stats.total, 0);
        assert_eq!(stats.min_diameter, u64::MAX);
        let budgets = BudgetVector::uniform(6, 1);
        // max_rounds = 0: nothing converges.
        let cfg = DynamicsConfig::exact(CostModel::Sum, 0);
        let stats = summarize(&sample_equilibria(&budgets, cfg, 0, 3));
        assert_eq!(stats.converged, 0);
        assert_eq!(stats.max_diameter, 0);
    }
}
