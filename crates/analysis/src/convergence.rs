//! Convergence trace analysis (the §8 open problem, quantified).
//!
//! Best-response dynamics in this game has no known potential function.
//! [`TraceSummary`] inspects a per-round [`RoundTrace`] sequence and
//! reports whether the social cost and the utilitarian welfare happened
//! to decrease monotonically — and by how much they ever *increased* —
//! which is exactly the evidence one wants when hunting for (or ruling
//! out) a potential argument.

use bbncg_core::dynamics::RoundTrace;

/// Monotonicity report over one dynamics trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Rounds recorded (excluding the initial snapshot).
    pub rounds: usize,
    /// Total deviations applied.
    pub total_improvements: usize,
    /// Did the social diameter ever increase round-over-round?
    pub social_monotone: bool,
    /// Largest single-round increase of the social diameter (0 if
    /// monotone).
    pub max_social_increase: u64,
    /// Did the utilitarian welfare (Σ player costs) ever increase?
    pub welfare_monotone: bool,
    /// Largest single-round increase of the welfare (0 if monotone).
    pub max_welfare_increase: u64,
}

/// Summarize a trace from
/// [`run_dynamics_traced`](bbncg_core::dynamics::run_dynamics_traced).
pub fn summarize_trace(trace: &[RoundTrace]) -> TraceSummary {
    let mut social_monotone = true;
    let mut welfare_monotone = true;
    let mut max_social_increase = 0u64;
    let mut max_welfare_increase = 0u64;
    for w in trace.windows(2) {
        if w[1].social_diameter > w[0].social_diameter {
            social_monotone = false;
            max_social_increase =
                max_social_increase.max(w[1].social_diameter - w[0].social_diameter);
        }
        if w[1].total_cost > w[0].total_cost {
            welfare_monotone = false;
            max_welfare_increase = max_welfare_increase.max(w[1].total_cost - w[0].total_cost);
        }
    }
    TraceSummary {
        rounds: trace.len().saturating_sub(1),
        total_improvements: trace.iter().map(|t| t.improvements).sum(),
        social_monotone,
        max_social_increase,
        welfare_monotone,
        max_welfare_increase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_core::dynamics::{run_dynamics_traced, DynamicsConfig};
    use bbncg_core::{BudgetVector, CostModel, Realization};
    use bbncg_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn summary_of_synthetic_trace() {
        let trace = vec![
            RoundTrace {
                round: 0,
                social_diameter: 9,
                total_cost: 100,
                improvements: 0,
            },
            RoundTrace {
                round: 1,
                social_diameter: 4,
                total_cost: 110, // welfare got worse
                improvements: 3,
            },
            RoundTrace {
                round: 2,
                social_diameter: 4,
                total_cost: 80,
                improvements: 1,
            },
        ];
        let s = summarize_trace(&trace);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.total_improvements, 4);
        assert!(s.social_monotone);
        assert!(!s.welfare_monotone);
        assert_eq!(s.max_welfare_increase, 10);
    }

    #[test]
    fn real_dynamics_traces_are_analyzable() {
        let mut rng = StdRng::seed_from_u64(21);
        let budgets = BudgetVector::uniform(10, 1);
        let initial =
            Realization::new(generators::random_realization(budgets.as_slice(), &mut rng));
        let (report, trace) = run_dynamics_traced(
            initial,
            DynamicsConfig::exact(CostModel::Sum, 200),
            &mut rng,
        );
        assert!(report.converged);
        let s = summarize_trace(&trace);
        assert_eq!(s.rounds, report.rounds);
        assert_eq!(s.total_improvements, report.steps);
    }

    #[test]
    fn empty_and_singleton_traces() {
        let s = summarize_trace(&[]);
        assert_eq!(s.rounds, 0);
        assert!(s.social_monotone && s.welfare_monotone);
        let one = vec![RoundTrace {
            round: 0,
            social_diameter: 5,
            total_cost: 50,
            improvements: 0,
        }];
        assert_eq!(summarize_trace(&one).rounds, 0);
    }
}
