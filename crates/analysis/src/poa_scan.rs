//! Reusable price-of-anarchy scans: the programmatic API behind the
//! Table 1 experiments, for downstream users who want the same series
//! on their own instance families.

use crate::sampling::{sample_equilibria, summarize};
use bbncg_core::dynamics::DynamicsConfig;
use bbncg_core::{opt_diameter_lower_bound, BudgetVector};

/// One point of a PoA scan.
#[derive(Clone, Debug, PartialEq)]
pub struct PoAPoint {
    /// Number of players.
    pub n: usize,
    /// Trajectories attempted / converged.
    pub attempted: usize,
    /// Converged trajectories.
    pub converged: usize,
    /// Worst equilibrium diameter observed.
    pub worst_diameter: u64,
    /// Best equilibrium diameter observed.
    pub best_diameter: u64,
    /// Lower bound on the optimal diameter of the instance.
    pub opt_lower: u64,
    /// `worst / opt_lower` — the empirical PoA estimate.
    pub poa_estimate: f64,
}

/// Scan an instance family: for each `n` in `sizes`, build the budget
/// vector with `family(n)`, sample `seeds` dynamics trajectories under
/// `cfg`, and record the equilibrium diameter spread.
///
/// ```
/// use bbncg_analysis::poa_scan::scan;
/// use bbncg_core::dynamics::DynamicsConfig;
/// use bbncg_core::{BudgetVector, CostModel};
///
/// // All-unit instances: the Table 1 Θ(1) row as an API call.
/// let points = scan(
///     &[6, 10],
///     |n| BudgetVector::uniform(n, 1),
///     DynamicsConfig::exact(CostModel::Sum, 200),
///     4,
/// );
/// assert!(points.iter().all(|p| p.worst_diameter < 5)); // Thm 4.1
/// ```
pub fn scan(
    sizes: &[usize],
    family: impl Fn(usize) -> BudgetVector,
    cfg: DynamicsConfig,
    seeds: usize,
) -> Vec<PoAPoint> {
    sizes
        .iter()
        .map(|&n| {
            let budgets = family(n);
            assert_eq!(budgets.n(), n, "family must produce n-player instances");
            let samples = sample_equilibria(&budgets, cfg, 0xBB5C + n as u64, seeds);
            let stats = summarize(&samples);
            let opt_lower = opt_diameter_lower_bound(&budgets);
            let worst = if stats.converged > 0 {
                stats.max_diameter
            } else {
                0
            };
            PoAPoint {
                n,
                attempted: stats.total,
                converged: stats.converged,
                worst_diameter: worst,
                best_diameter: if stats.converged > 0 {
                    stats.min_diameter
                } else {
                    0
                },
                opt_lower,
                poa_estimate: if opt_lower == 0 || stats.converged == 0 {
                    f64::NAN
                } else {
                    worst as f64 / opt_lower as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbncg_core::CostModel;

    #[test]
    fn unit_family_scan_is_flat() {
        let points = scan(
            &[6, 8, 10],
            |n| BudgetVector::uniform(n, 1),
            DynamicsConfig::exact(CostModel::Sum, 200),
            5,
        );
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.converged, p.attempted);
            assert!(p.worst_diameter < 5, "{p:?}");
            assert!(p.best_diameter <= p.worst_diameter);
            assert!(p.poa_estimate <= 2.5);
        }
    }

    #[test]
    fn tree_family_scan_grows_slowly() {
        let points = scan(
            &[8, 16],
            |n| {
                // Deterministic tree family: one hub with n/2 budget,
                // the rest split.
                let mut b = vec![0usize; n];
                b[0] = n / 2;
                let mut left = n - 1 - n / 2;
                let mut i = 1;
                while left > 0 {
                    b[i] += 1;
                    left -= 1;
                    i = 1 + (i % (n - 1));
                }
                BudgetVector::new(b)
            },
            DynamicsConfig::exact(CostModel::Sum, 200),
            3,
        );
        for p in &points {
            assert!(p.converged > 0);
            // Theorem 3.3: SUM tree equilibria are logarithmic.
            let bound = 2 * ((p.n as f64).log2().ceil() as u64 + 2);
            assert!(p.worst_diameter <= bound, "{p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "family must produce")]
    fn wrong_family_size_is_rejected() {
        scan(
            &[5],
            |_| BudgetVector::uniform(4, 1),
            DynamicsConfig::exact(CostModel::Sum, 10),
            1,
        );
    }
}
