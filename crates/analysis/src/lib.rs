//! Structure analyzers and the experiment framework for the `bbncg`
//! reproduction.
//!
//! Each analyzer mechanizes one of the paper's structural theorems so
//! experiments can verify it on concrete equilibria:
//!
//! * [`mod@unit_structure`] — Theorems 4.1/4.2 (all-unit budgets: unique
//!   short cycle, everything near it);
//! * [`mod@path_decomposition`] — Theorem 3.3 / Figure 3 (tree equilibria:
//!   subtree weights double along a diametral path);
//! * [`expansion`] — Theorem 6.9's `f(r) = min_u |B_r(u)|` profile;
//! * [`dichotomy`] — Theorem 7.2 (budgets ≥ k ⟹ diameter < 4 or
//!   k-connected);
//! * [`sampling`] — parallel equilibrium sampling via best-response
//!   dynamics (the empirical Table 1 engine);
//! * [`table`] — markdown/CSV rendering for the experiments harness.

#![warn(missing_docs)]
// Index loops here typically walk several parallel arrays at once;
// the index form is clearer than zipped iterators in those spots.
#![allow(clippy::needless_range_loop)]

pub mod convergence;
pub mod dichotomy;
pub mod expansion;
pub mod path_decomposition;
pub mod poa_scan;
pub mod sampling;
pub mod table;
pub mod unit_structure;

pub use convergence::{summarize_trace, TraceSummary};
pub use dichotomy::{connectivity_dichotomy, DichotomyReport};
pub use expansion::{expansion_profile, half_coverage_radius};
pub use path_decomposition::{path_decomposition, PathDecomposition};
pub use poa_scan::{scan, PoAPoint};
pub use sampling::{residual_gaps, sample_equilibria, summarize, Sample, SampleStats};
pub use table::Table;
pub use unit_structure::{unit_structure, UnitStructure};
