//! End-to-end tests spawning the real `bbncg` binary: exit codes,
//! stdin piping, and subcommand chaining.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bbncg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bbncg"))
}

#[test]
fn construct_then_verify_through_a_pipe() {
    let construct = bbncg()
        .args(["construct", "--budgets", "1,1,1,0,2"])
        .output()
        .expect("spawn construct");
    assert!(construct.status.success());
    let profile = String::from_utf8(construct.stdout).unwrap();
    assert!(profile.starts_with("bbncg v1"));

    let mut verify = bbncg()
        .args(["verify", "-", "--model", "sum"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn verify");
    verify
        .stdin
        .as_mut()
        .unwrap()
        .write_all(profile.as_bytes())
        .unwrap();
    let out = verify.wait_with_output().unwrap();
    assert!(out.status.success());
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("Nash equilibrium (SUM) = true"), "{report}");
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = bbncg().arg("explode").output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("USAGE"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = bbncg().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("COMMANDS"));
}

#[test]
fn dynamics_emit_profile_feeds_analyze() {
    let dynamics = bbncg()
        .args([
            "dynamics",
            "--budgets",
            "1,1,1,1,1,1",
            "--seed",
            "5",
            "--emit",
            "profile",
        ])
        .output()
        .unwrap();
    assert!(dynamics.status.success());
    let text = String::from_utf8(dynamics.stdout).unwrap();
    let profile = &text[text.find("bbncg v1").unwrap()..];

    let mut analyze = bbncg()
        .args(["analyze", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    analyze
        .stdin
        .as_mut()
        .unwrap()
        .write_all(profile.as_bytes())
        .unwrap();
    let out = analyze.wait_with_output().unwrap();
    assert!(out.status.success());
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("vertex connectivity"), "{report}");
}

#[test]
fn dynamics_is_seed_deterministic_across_processes() {
    // The documented contract: identical seeds give identical
    // DynamicsReports. Two separate processes must print
    // byte-identical reports (including the emitted final profile).
    let line = [
        "dynamics",
        "--budgets",
        "1,1,1,1,1,1,1",
        "--seed",
        "41",
        "--order",
        "random",
        "--emit",
        "profile",
    ];
    let a = bbncg().args(line).output().unwrap();
    let b = bbncg().args(line).output().unwrap();
    assert!(a.status.success());
    assert_eq!(a.stdout, b.stdout);
    // A different seed changes the trajectory's report (the profiles
    // could coincide at equilibrium; steps/rounds lines rarely do).
    let c = bbncg()
        .args([
            "dynamics",
            "--budgets",
            "1,1,1,1,1,1,1",
            "--seed",
            "42",
            "--order",
            "random",
            "--emit",
            "profile",
        ])
        .output()
        .unwrap();
    assert_ne!(a.stdout, c.stdout);
}

#[test]
fn scenario_runs_an_example_spec_end_to_end() {
    let spec = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scenarios/budget_shock.toml"
    );
    let out = bbncg().args(["scenario", "run", spec]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("\"kind\":\"budget-shock\""), "{text}");
    assert!(text.contains("\"kind\":\"summary\""), "{text}");
    // Seed-determinism holds across processes for scenarios too.
    let again = bbncg().args(["scenario", "run", spec]).output().unwrap();
    assert_eq!(text, String::from_utf8(again.stdout).unwrap());
}

#[test]
fn malformed_profile_is_rejected_cleanly() {
    let mut verify = bbncg()
        .args(["verify", "-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    verify
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"this is not a profile")
        .unwrap();
    let out = verify.wait_with_output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("header"), "{err}");
}

#[test]
fn serve_submit_roundtrip_with_threads_bound() {
    use std::io::BufRead as _;
    use std::time::{Duration, Instant};

    // Start a server on an ephemeral port with `--threads 2` while the
    // environment says 7: the flag must win, and the worker pool must
    // be sized by it (observable in /healthz).
    let mut serve = bbncg()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .env("BBNCG_THREADS", "7")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut banner = String::new();
    std::io::BufReader::new(serve.stdout.as_mut().unwrap())
        .read_line(&mut banner)
        .unwrap();
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();

    let status = bbncg()
        .args(["submit", "--status", "--addr", &addr])
        .output()
        .unwrap();
    assert!(status.status.success());
    let health = String::from_utf8(status.stdout).unwrap();
    assert!(
        health.contains("\"workers\":2"),
        "--threads must size the pool over BBNCG_THREADS=7: {health}"
    );

    // Same spec, same seed: the served stream is byte-identical to the
    // offline run.
    let dir = std::env::temp_dir();
    let spec_path = dir.join("bbncg_cli_serve_spec.toml");
    let out_path = dir.join("bbncg_cli_serve_offline.jsonl");
    std::fs::write(
        &spec_path,
        "[scenario]\nname = \"e2e\"\nseed = 4\n\n[init]\nfamily = \"uniform\"\nn = 12\nbudget = 1\n\n\
         [[phase]]\nkind = \"dynamics\"\n\n[[phase]]\nkind = \"arrive\"\ncount = 2\nbudget = 1\n\n\
         [[phase]]\nkind = \"dynamics\"\n",
    )
    .unwrap();
    let offline = bbncg()
        .args([
            "scenario",
            "run",
            spec_path.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(offline.status.success());
    let served = bbncg()
        .args(["submit", spec_path.to_str().unwrap(), "--addr", &addr])
        .output()
        .unwrap();
    assert!(
        served.status.success(),
        "{}",
        String::from_utf8_lossy(&served.stderr)
    );
    let offline_bytes = std::fs::read(&out_path).unwrap();
    assert_eq!(
        String::from_utf8(served.stdout).unwrap(),
        String::from_utf8(offline_bytes).unwrap(),
        "served stream must be byte-identical to the offline run"
    );

    // Graceful drain via the client, then the server process exits 0.
    let shutdown = bbncg()
        .args(["submit", "--shutdown", "--addr", &addr])
        .output()
        .unwrap();
    assert!(
        shutdown.status.success(),
        "shutdown failed: {}",
        String::from_utf8_lossy(&shutdown.stderr)
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    let code = loop {
        if let Some(code) = serve.try_wait().unwrap() {
            break code;
        }
        if Instant::now() > deadline {
            let _ = serve.kill();
            panic!("serve did not exit after shutdown");
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(code.success());
    std::fs::remove_file(&spec_path).ok();
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn threads_flag_rejects_zero_and_garbage() {
    for bad in ["0", "banana"] {
        let out = bbncg()
            .args(["dynamics", "--budgets", "1,1", "--threads", bad])
            .output()
            .unwrap();
        assert!(!out.status.success(), "--threads {bad} must be rejected");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("--threads"), "{err}");
    }
    // A legal value works end-to-end (and stays deterministic).
    let a = bbncg()
        .args([
            "dynamics",
            "--budgets",
            "1,1,1,1",
            "--seed",
            "5",
            "--threads",
            "1",
        ])
        .output()
        .unwrap();
    let b = bbncg()
        .args([
            "dynamics",
            "--budgets",
            "1,1,1,1",
            "--seed",
            "5",
            "--threads",
            "4",
        ])
        .output()
        .unwrap();
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "thread count must never change results");
}
