//! End-to-end tests spawning the real `bbncg` binary: exit codes,
//! stdin piping, and subcommand chaining.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bbncg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bbncg"))
}

#[test]
fn construct_then_verify_through_a_pipe() {
    let construct = bbncg()
        .args(["construct", "--budgets", "1,1,1,0,2"])
        .output()
        .expect("spawn construct");
    assert!(construct.status.success());
    let profile = String::from_utf8(construct.stdout).unwrap();
    assert!(profile.starts_with("bbncg v1"));

    let mut verify = bbncg()
        .args(["verify", "-", "--model", "sum"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn verify");
    verify
        .stdin
        .as_mut()
        .unwrap()
        .write_all(profile.as_bytes())
        .unwrap();
    let out = verify.wait_with_output().unwrap();
    assert!(out.status.success());
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("Nash equilibrium (SUM) = true"), "{report}");
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = bbncg().arg("explode").output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("USAGE"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = bbncg().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("COMMANDS"));
}

#[test]
fn dynamics_emit_profile_feeds_analyze() {
    let dynamics = bbncg()
        .args([
            "dynamics",
            "--budgets",
            "1,1,1,1,1,1",
            "--seed",
            "5",
            "--emit",
            "profile",
        ])
        .output()
        .unwrap();
    assert!(dynamics.status.success());
    let text = String::from_utf8(dynamics.stdout).unwrap();
    let profile = &text[text.find("bbncg v1").unwrap()..];

    let mut analyze = bbncg()
        .args(["analyze", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    analyze
        .stdin
        .as_mut()
        .unwrap()
        .write_all(profile.as_bytes())
        .unwrap();
    let out = analyze.wait_with_output().unwrap();
    assert!(out.status.success());
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("vertex connectivity"), "{report}");
}

#[test]
fn dynamics_is_seed_deterministic_across_processes() {
    // The documented contract: identical seeds give identical
    // DynamicsReports. Two separate processes must print
    // byte-identical reports (including the emitted final profile).
    let line = [
        "dynamics",
        "--budgets",
        "1,1,1,1,1,1,1",
        "--seed",
        "41",
        "--order",
        "random",
        "--emit",
        "profile",
    ];
    let a = bbncg().args(line).output().unwrap();
    let b = bbncg().args(line).output().unwrap();
    assert!(a.status.success());
    assert_eq!(a.stdout, b.stdout);
    // A different seed changes the trajectory's report (the profiles
    // could coincide at equilibrium; steps/rounds lines rarely do).
    let c = bbncg()
        .args([
            "dynamics",
            "--budgets",
            "1,1,1,1,1,1,1",
            "--seed",
            "42",
            "--order",
            "random",
            "--emit",
            "profile",
        ])
        .output()
        .unwrap();
    assert_ne!(a.stdout, c.stdout);
}

#[test]
fn scenario_runs_an_example_spec_end_to_end() {
    let spec = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scenarios/budget_shock.toml"
    );
    let out = bbncg().args(["scenario", "run", spec]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("\"kind\":\"budget-shock\""), "{text}");
    assert!(text.contains("\"kind\":\"summary\""), "{text}");
    // Seed-determinism holds across processes for scenarios too.
    let again = bbncg().args(["scenario", "run", spec]).output().unwrap();
    assert_eq!(text, String::from_utf8(again.stdout).unwrap());
}

#[test]
fn malformed_profile_is_rejected_cleanly() {
    let mut verify = bbncg()
        .args(["verify", "-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    verify
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"this is not a profile")
        .unwrap();
    let out = verify.wait_with_output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("header"), "{err}");
}
