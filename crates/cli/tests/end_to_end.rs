//! End-to-end tests spawning the real `bbncg` binary: exit codes,
//! stdin piping, and subcommand chaining.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bbncg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bbncg"))
}

#[test]
fn construct_then_verify_through_a_pipe() {
    let construct = bbncg()
        .args(["construct", "--budgets", "1,1,1,0,2"])
        .output()
        .expect("spawn construct");
    assert!(construct.status.success());
    let profile = String::from_utf8(construct.stdout).unwrap();
    assert!(profile.starts_with("bbncg v1"));

    let mut verify = bbncg()
        .args(["verify", "-", "--model", "sum"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn verify");
    verify
        .stdin
        .as_mut()
        .unwrap()
        .write_all(profile.as_bytes())
        .unwrap();
    let out = verify.wait_with_output().unwrap();
    assert!(out.status.success());
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("Nash equilibrium (SUM) = true"), "{report}");
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = bbncg().arg("explode").output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("USAGE"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = bbncg().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("COMMANDS"));
}

#[test]
fn dynamics_emit_profile_feeds_analyze() {
    let dynamics = bbncg()
        .args([
            "dynamics",
            "--budgets",
            "1,1,1,1,1,1",
            "--seed",
            "5",
            "--emit",
            "profile",
        ])
        .output()
        .unwrap();
    assert!(dynamics.status.success());
    let text = String::from_utf8(dynamics.stdout).unwrap();
    let profile = &text[text.find("bbncg v1").unwrap()..];

    let mut analyze = bbncg()
        .args(["analyze", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    analyze
        .stdin
        .as_mut()
        .unwrap()
        .write_all(profile.as_bytes())
        .unwrap();
    let out = analyze.wait_with_output().unwrap();
    assert!(out.status.success());
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("vertex connectivity"), "{report}");
}

#[test]
fn malformed_profile_is_rejected_cleanly() {
    let mut verify = bbncg()
        .args(["verify", "-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    verify
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"this is not a profile")
        .unwrap();
    let out = verify.wait_with_output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("header"), "{err}");
}
