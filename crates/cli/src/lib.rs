//! Command implementations for the `bbncg` command-line tool.
//!
//! Each subcommand is a pure function from parsed arguments to a
//! printable report (`Result<String, String>`), so the whole surface is
//! unit-testable without spawning processes. The `bbncg` binary is a
//! thin shell around [`dispatch`].
//!
//! ```text
//! bbncg construct --budgets 1,1,2,0            # Theorem 2.3 equilibrium
//! bbncg construct --spider 5                   # Figure 2 spider
//! bbncg construct --btree 4 | bbncg verify -   # build then check
//! bbncg verify saved.bbncg --model max
//! bbncg best-response saved.bbncg --player 2 --model sum
//! bbncg dynamics --budgets 1,1,1,1,1 --seed 7 --model sum --rule exact
//! bbncg analyze saved.bbncg
//! bbncg exact-poa --budgets 1,1,1,1 --model max
//! bbncg dot saved.bbncg
//! ```

use bbncg_analysis::{connectivity_dichotomy, path_decomposition, unit_structure};
use bbncg_constructions::{
    binary_tree_equilibrium, shift_equilibrium, spider_equilibrium, theorem23_equilibrium,
};
use bbncg_core::dynamics::{run_dynamics_with_kernel, DynamicsConfig, PlayerOrder, ResponseRule};
use bbncg_core::{
    best_swap_response, exact_best_response, exact_game_stats, greedy_best_response,
    is_nash_equilibrium_with_kernel, is_swap_equilibrium_with_kernel, parse_realization,
    write_realization, BudgetVector, CostKernel, CostModel, Realization, RoundExecutor,
};
use bbncg_graph::{dot, generators, GraphMetrics, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Parsed command-line flags: `--key value` pairs plus positional args.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

/// Switch-style flags (no value). `--trace` is *not* here: it takes a
/// file path (`--trace FILE` streams span records there as JSONL).
const SWITCHES: &[&str] = &[
    "--swap",
    "--audit",
    "--help",
    "--no-stream",
    "--status",
    "--shutdown",
    "--abort",
    "--obs",
    "--stats",
    "--dry-run",
];

impl Args {
    /// Parse raw arguments (everything after the subcommand).
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if SWITCHES.contains(&a.as_str()) {
                args.switches.push(a.clone());
            } else if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{key} requires a value"))?;
                args.flags.push((key.to_string(), value.clone()));
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    /// Value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for `--key`, in order. Lets one flag carry
    /// two orthogonal meanings (`dynamics --rounds 500 --rounds
    /// speculative` sets both the round cap and the executor).
    pub fn get_all<'a>(&'a self, key: &str) -> impl Iterator<Item = &'a str> + 'a {
        let key = key.to_string();
        self.flags
            .iter()
            .filter(move |(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Is the switch present?
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    /// First positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }
}

fn parse_budgets(s: &str) -> Result<BudgetVector, String> {
    let budgets: Vec<usize> = s
        .split(',')
        .map(|t| t.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("cannot parse budgets {s:?}: {e}"))?;
    if budgets.is_empty() {
        return Err("budgets must be non-empty".into());
    }
    let n = budgets.len();
    if budgets.iter().any(|&b| b >= n) {
        return Err(format!("every budget must be < n = {n}"));
    }
    Ok(BudgetVector::new(budgets))
}

fn parse_model(args: &Args) -> Result<CostModel, String> {
    match args.get("model").unwrap_or("sum") {
        "sum" | "SUM" => Ok(CostModel::Sum),
        "max" | "MAX" => Ok(CostModel::Max),
        other => Err(format!("unknown --model {other:?} (sum|max)")),
    }
}

/// `--kernel queue|bitset|sparse|auto` (default auto). Kernels are
/// move-for-move equivalent, so this never changes a report — only how
/// fast it is produced.
fn parse_kernel(args: &Args) -> Result<CostKernel, String> {
    match args.get("kernel") {
        None => Ok(CostKernel::Auto),
        Some(s) => CostKernel::parse(s).map_err(|e| format!("--kernel: {e}")),
    }
}

/// `--rounds sequential|speculative|auto` (default auto) — the round
/// executor. Executors are step-identical, so this never changes a
/// report, record stream or checkpoint — only wall-clock. On
/// `dynamics`, numeric `--rounds N` values keep their historical
/// round-cap meaning (see [`cmd_dynamics`]); everywhere else the flag
/// takes a mode name only.
fn parse_executor(args: &Args) -> Result<RoundExecutor, String> {
    match args.get("rounds") {
        None => Ok(RoundExecutor::Auto),
        Some(s) => RoundExecutor::parse(s).map_err(|e| format!("--rounds: {e}")),
    }
}

fn load_realization(path: &str) -> Result<Realization, String> {
    let text = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    parse_realization(&text).map_err(|e| e.to_string())
}

/// `bbncg construct` — build a named equilibrium and print it in the
/// `bbncg v1` format (pipe into a file or another subcommand).
pub fn cmd_construct(args: &Args) -> Result<String, String> {
    let r = if let Some(b) = args.get("budgets") {
        let budgets = parse_budgets(b)?;
        theorem23_equilibrium(&budgets).realization
    } else if let Some(k) = args.get("spider") {
        let k: usize = k.parse().map_err(|e| format!("--spider: {e}"))?;
        spider_equilibrium(k).realization
    } else if let Some(h) = args.get("btree") {
        let h: u32 = h.parse().map_err(|e| format!("--btree: {e}"))?;
        binary_tree_equilibrium(h).realization
    } else if let Some(k) = args.get("shift") {
        let k: u32 = k.parse().map_err(|e| format!("--shift: {e}"))?;
        if k > 3 {
            return Err("--shift k > 3 produces > 500k-line files; refusing".into());
        }
        shift_equilibrium(k).realization
    } else {
        return Err("construct needs --budgets LIST, --spider K, --btree H, or --shift K".into());
    };
    Ok(write_realization(&r))
}

/// `bbncg verify FILE` — Nash / swap verification with a cost report.
pub fn cmd_verify(args: &Args) -> Result<String, String> {
    let path = args.positional(0).ok_or("verify needs a FILE (or -)")?;
    let r = load_realization(path)?;
    let model = parse_model(args)?;
    let kernel = parse_kernel(args)?;
    // Parsed up front so a bad --rounds value is rejected on every
    // verify path; only the --audit sweep actually dispatches on it
    // (the default and --swap checks have their own fixed parallel
    // early-exit shape), and the verdict is executor-independent.
    let executor = parse_executor(args)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "n = {}, arcs = {}, budgets = {:?}",
        r.n(),
        r.graph().total_arcs(),
        r.budgets().as_slice()
    );
    let _ = writeln!(out, "social diameter = {}", r.social_diameter());
    if args.has("--swap") && args.has("--audit") {
        return Err("--swap and --audit are mutually exclusive".into());
    }
    if args.has("--swap") {
        let ok = is_swap_equilibrium_with_kernel(&r, model, kernel);
        let _ = writeln!(out, "swap equilibrium ({}) = {}", model.label(), ok);
    } else if args.has("--audit") {
        // Full batched engine pass: verdict, exact best-response gap
        // and every violator from one audit_equilibrium sweep (no
        // early exit — each player's whole candidate space is priced).
        // `--rounds` picks the execution discipline (parallel batched
        // vs one engine on this thread); the verdict is identical.
        let audit = bbncg_core::audit_equilibrium_with_opts(&r, model, kernel, executor);
        let ok = audit.is_nash();
        let _ = writeln!(out, "Nash equilibrium ({}) = {}", model.label(), ok);
        let _ = writeln!(out, "best-response gap = {}", audit.gap());
        for v in audit.violations() {
            let _ = writeln!(
                out,
                "violator: player {} can improve {} -> {}",
                v.player, v.current_cost, v.best_cost
            );
        }
    } else {
        // Default: early-exiting engine passes — players short-circuit
        // on the first profitable deviation, and the parallel check
        // stops all workers once any player is refuted.
        let ok = is_nash_equilibrium_with_kernel(&r, model, kernel);
        let _ = writeln!(out, "Nash equilibrium ({}) = {}", model.label(), ok);
        if !ok {
            if let Some(v) = bbncg_core::find_violation_with_kernel(&r, model, kernel) {
                let _ = writeln!(
                    out,
                    "violator: player {} can improve {} -> {}",
                    v.player, v.current_cost, v.best_cost
                );
            }
        }
    }
    Ok(out)
}

/// `bbncg best-response FILE --player I` — one player's best response.
pub fn cmd_best_response(args: &Args) -> Result<String, String> {
    let path = args.positional(0).ok_or("best-response needs a FILE")?;
    let r = load_realization(path)?;
    let model = parse_model(args)?;
    let player: usize = args
        .get("player")
        .ok_or("--player is required")?
        .parse()
        .map_err(|e| format!("--player: {e}"))?;
    if player >= r.n() {
        return Err(format!("player {player} out of range (n = {})", r.n()));
    }
    let u = NodeId::new(player);
    let current = r.cost(u, model);
    let br = match args.get("rule").unwrap_or("exact") {
        "exact" => exact_best_response(&r, u, model),
        "greedy" => greedy_best_response(&r, u, model),
        "swap" => {
            best_swap_response(&r, u, model).ok_or("player owns no arcs; swap rule inapplicable")?
        }
        other => return Err(format!("unknown --rule {other:?} (exact|greedy|swap)")),
    };
    let targets: Vec<String> = br.targets.iter().map(|t| t.to_string()).collect();
    Ok(format!(
        "player {player} ({}): current cost {current}, best {} via [{}]{}\n",
        model.label(),
        br.cost,
        targets.join(", "),
        if br.cost < current {
            "  (improves)"
        } else {
            "  (already optimal)"
        }
    ))
}

/// `bbncg dynamics --budgets LIST` — run dynamics from a random start
/// (or `FILE` positional) and print the outcome; the final profile goes
/// to stdout after the report when `--emit` is `profile`.
///
/// `--seed S` (default 0) seeds both the random initial profile and
/// the dynamics' own draws. Identical seeds give identical
/// [`DynamicsReport`](bbncg_core::DynamicsReport)s — same final
/// profile, steps, rounds and verdicts — regardless of thread count,
/// so any reported trajectory can be reproduced exactly from its
/// command line (asserted end-to-end in `tests/end_to_end.rs`).
pub fn cmd_dynamics(args: &Args) -> Result<String, String> {
    let model = parse_model(args)?;
    let kernel = parse_kernel(args)?;
    let seed: u64 = args
        .get("seed")
        .unwrap_or("0")
        .parse()
        .map_err(|e| format!("--seed: {e}"))?;
    // `--rounds` is polymorphic on this command: a number is the
    // historical round cap, a mode name picks the round executor, and
    // the flag may be given twice to set both. Executors are
    // step-identical, so the mode never changes the report.
    let mut rounds: usize = 300;
    let mut executor = RoundExecutor::Auto;
    for v in args.get_all("rounds") {
        match v.parse::<usize>() {
            Ok(n) => rounds = n,
            Err(_) => {
                executor = RoundExecutor::parse(v).map_err(|e| {
                    format!("--rounds: expected a round cap (number) or executor mode: {e}")
                })?
            }
        }
    }
    let rule = match args.get("rule").unwrap_or("exact") {
        "exact" => ResponseRule::ExactBest,
        "better" => ResponseRule::FirstImproving,
        "greedy" => ResponseRule::Greedy,
        "swap" => ResponseRule::BestSwap,
        other => {
            return Err(format!(
                "unknown --rule {other:?} (exact|better|greedy|swap)"
            ))
        }
    };
    let order = match args.get("order").unwrap_or("rr") {
        "rr" | "round-robin" => PlayerOrder::RoundRobin,
        "random" => PlayerOrder::RandomPermutation,
        other => return Err(format!("unknown --order {other:?} (rr|random)")),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = if let Some(path) = args.positional(0) {
        load_realization(path)?
    } else {
        let budgets = parse_budgets(args.get("budgets").ok_or("need --budgets or a FILE")?)?;
        Realization::new(generators::random_realization(budgets.as_slice(), &mut rng))
    };
    let cfg = DynamicsConfig {
        model,
        order,
        rule,
        max_rounds: rounds,
        executor,
    };
    let report = run_dynamics_with_kernel(initial, cfg, &mut rng, kernel);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "converged = {}, cycled = {}, rounds = {}, deviations = {}",
        report.converged, report.cycled, report.rounds, report.steps
    );
    let _ = writeln!(out, "final diameter = {}", report.state.social_diameter());
    if args.get("emit") == Some("profile") {
        out.push_str(&write_realization(&report.state));
    }
    Ok(out)
}

/// `bbncg scenario run|resume|validate` — the declarative scenario
/// engine (see the README's "Scenario specs" section for the grammar).
///
/// * `run SPEC [--seed S] [--out FILE] [--checkpoint FILE]
///   [--stop-after K]` — run the scenario (or its whole seed sweep when
///   the spec sets `seeds > 1`). Metric records are JSONL, streamed to
///   `--out` or returned on stdout. With `--checkpoint`, a fresh
///   checkpoint overwrites the file after every completed phase, so a
///   killed run can continue; `--stop-after K` stops after K phases
///   (checkpointing there), which is the same mechanism under test
///   control.
/// * `resume SPEC --checkpoint FILE [--out FILE]` — continue a frozen
///   run bit-identically: the finished trajectory is exactly the one
///   the uninterrupted run would have produced.
/// * `validate SPEC...` — parse every spec and report its shape
///   without running anything.
pub fn cmd_scenario(args: &Args) -> Result<String, String> {
    use bbncg_scenario::{parse_spec, run_scenario, run_sweep, Checkpoint, JsonlSink, StringSink};
    let action = args.positional(0).ok_or(
        "scenario needs an action: run SPEC | resume SPEC --checkpoint FILE | validate SPEC...",
    )?;
    if action == "validate" {
        if args.positional(1).is_none() {
            return Err("scenario validate needs at least one SPEC file".into());
        }
        let mut out = String::new();
        let mut i = 1;
        while let Some(path) = args.positional(i) {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let spec = parse_spec(&text).map_err(|e| format!("{path}: {e}"))?;
            let _ = writeln!(
                out,
                "{path}: ok — scenario {:?}, {} phase(s), seeds {}, spec-hash {:016x}",
                spec.name,
                spec.phases.len(),
                spec.seeds,
                spec.spec_hash
            );
            i += 1;
        }
        return Ok(out);
    }
    if action != "run" && action != "resume" {
        return Err(format!(
            "unknown scenario action {action:?} (run|resume|validate)"
        ));
    }
    let path = args
        .positional(1)
        .ok_or_else(|| format!("scenario {action} needs a SPEC file"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut spec = parse_spec(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(s) = args.get("seed") {
        spec.seed = s.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    if args.get("kernel").is_some() {
        // Overrides the spec's [dynamics] kernel field. Safe for
        // resumes too: kernels are move-for-move equivalent, so the
        // continued trajectory is unchanged.
        spec.kernel = parse_kernel(args)?;
    }
    if args.get("rounds").is_some() {
        // Overrides the spec's [dynamics] rounds (executor) field.
        // Executors are step-identical, so — like --kernel — this is
        // safe on resumes and never changes the record stream.
        spec.defaults.executor = parse_executor(args)?;
    }
    let stop_after: Option<usize> = args
        .get("stop-after")
        .map(|s| s.parse().map_err(|e| format!("--stop-after: {e}")))
        .transpose()?;
    let ck_path = args.get("checkpoint").map(str::to_string);
    let from = if action == "resume" {
        let p = ck_path
            .as_deref()
            .ok_or("scenario resume needs --checkpoint FILE")?;
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        Some(Checkpoint::from_text(&text)?)
    } else {
        None
    };

    let save = |ck: &Checkpoint| {
        if let Some(p) = &ck_path {
            // A failed write surfaces at resume time; the run itself
            // must not die over checkpoint IO.
            let _ = std::fs::write(p, ck.to_text());
        }
    };
    let mut report = String::new();
    // `resume` continues exactly one seed (checkpoints are per-seed),
    // so a sweep spec falls through to the single-run branch there.
    let outcomes = if spec.seeds > 1 && from.is_none() {
        if ck_path.is_some() {
            return Err("--checkpoint requires a single-seed run (spec has seeds > 1)".into());
        }
        if stop_after.is_some() {
            return Err("--stop-after requires a single-seed run (spec has seeds > 1)".into());
        }
        let sweep = match args.get("out") {
            Some(p) => {
                let f = std::fs::File::create(p).map_err(|e| format!("cannot write {p}: {e}"))?;
                let mut sink = JsonlSink::new(std::io::BufWriter::new(f));
                run_sweep(&spec, &mut sink)
            }
            None => {
                let mut sink = StringSink::default();
                let outs = run_sweep(&spec, &mut sink);
                report.push_str(&sink.out);
                outs
            }
        };
        // Attribute each slot to its seed so failures stay addressable.
        sweep
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.map_err(|e| format!("seed {}: {e}", spec.seed + i as u64)))
            .collect()
    } else {
        let seed = from.as_ref().map(|ck| ck.seed).unwrap_or(spec.seed);
        let run = |sink: &mut dyn bbncg_scenario::MetricSink| {
            run_scenario(&spec, seed, from.clone(), sink, stop_after, save)
        };
        let outcome = match args.get("out") {
            Some(p) => {
                let f = std::fs::File::create(p).map_err(|e| format!("cannot write {p}: {e}"))?;
                let mut sink = JsonlSink::new(std::io::BufWriter::new(f));
                run(&mut sink)
            }
            None => {
                let mut sink = StringSink::default();
                let out = run(&mut sink);
                report.push_str(&sink.out);
                out
            }
        };
        vec![outcome]
    };
    // One trailer line per seed; a failed seed is reported in place so
    // the records and trailers of the seeds that did complete survive.
    // Only a wholly failed invocation becomes an error.
    let total = outcomes.len();
    let mut failures = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(o) => {
                let _ = writeln!(
                    report,
                    "# seed {}: {} {} phase(s), steps = {}, rounds = {}, n = {}, final hash = {:016x}",
                    o.seed,
                    if o.completed {
                        "completed"
                    } else {
                        "stopped after"
                    },
                    o.phases_done,
                    o.steps,
                    o.rounds,
                    o.state.n(),
                    o.state_hash
                );
            }
            Err(e) => {
                let _ = writeln!(report, "# error: {e}");
                failures.push(e);
            }
        }
    }
    if failures.len() == total {
        return Err(failures.join("\n"));
    }
    Ok(report)
}

/// `bbncg analyze FILE` — structural report: metrics, unit structure,
/// connectivity dichotomy, tree decomposition when applicable.
pub fn cmd_analyze(args: &Args) -> Result<String, String> {
    let path = args.positional(0).ok_or("analyze needs a FILE (or -)")?;
    let r = load_realization(path)?;
    let mut out = String::new();
    let m = GraphMetrics::compute(r.csr());
    let _ = writeln!(
        out,
        "n = {}, edges = {}, connected = {}, diameter = {}, radius = {}",
        m.n, m.m, m.connected, m.diameter, m.radius
    );
    let _ = writeln!(
        out,
        "mean distance = {:.3}, Wiener index = {}, degrees {}..{}",
        m.mean_distance, m.wiener_index, m.min_degree, m.max_degree
    );
    let us = unit_structure(&r);
    if let Some(cycle) = &us.cycle {
        let _ = writeln!(
            out,
            "unicyclic: cycle length {}, max distance to cycle {}, braces {}",
            cycle.len(),
            us.max_dist_to_cycle,
            us.braces
        );
        let _ = writeln!(
            out,
            "Thm 4.1 shape (SUM caps): {}, Thm 4.2 shape (MAX caps): {}",
            us.satisfies_theorem41(),
            us.satisfies_theorem42()
        );
    }
    if let Some(pd) = path_decomposition(&r) {
        let _ = writeln!(
            out,
            "tree: diametral path length {}, Thm 3.3 inequality violations {}/{}",
            pd.d(),
            pd.violations,
            pd.checked
        );
    }
    let d = connectivity_dichotomy(&r);
    let _ = writeln!(
        out,
        "vertex connectivity = {}, min budget = {}, Thm 7.2 dichotomy holds = {}",
        d.connectivity, d.min_budget, d.holds
    );
    Ok(out)
}

/// `bbncg exact-poa --budgets LIST` — exhaustive exact PoA/PoS.
pub fn cmd_exact_poa(args: &Args) -> Result<String, String> {
    let budgets = parse_budgets(args.get("budgets").ok_or("--budgets is required")?)?;
    let model = parse_model(args)?;
    let limit: u64 = args
        .get("limit")
        .unwrap_or("2000000")
        .parse()
        .map_err(|e| format!("--limit: {e}"))?;
    let total = bbncg_core::profile_count(&budgets);
    if total > limit {
        return Err(format!(
            "instance has {total} profiles > limit {limit}; raise --limit or shrink the instance"
        ));
    }
    let s = exact_game_stats(&budgets, model, limit);
    Ok(format!(
        "profiles = {}, equilibria = {}, opt diameter = {}\n\
         best equilibrium = {}, worst equilibrium = {}\n\
         exact PoS = {:.3}, exact PoA = {:.3}\n",
        s.profiles,
        s.equilibria,
        s.opt_diameter,
        s.best_equilibrium_diameter,
        s.worst_equilibrium_diameter,
        s.pos(),
        s.poa()
    ))
}

/// `bbncg serve` — run the job server until something POSTs
/// `/shutdown` (or `bbncg submit --shutdown` does it for you).
///
/// * `--addr HOST:PORT` (default `127.0.0.1:7199`; port 0 picks a free
///   port) — bind address.
/// * `--threads N` — worker-pool size (the global flag; it also bounds
///   every parallel primitive inside jobs). Defaults to
///   `BBNCG_THREADS` or the machine's parallelism.
/// * `--queue N` (default 64) — bounded queue capacity; submissions
///   beyond it bounce with HTTP 429.
/// * `--checkpoint-dir DIR` — persist a `job-{id}.ck` checkpoint after
///   every phase of single-seed scenario jobs (crash recovery via
///   `bbncg scenario resume`).
/// * `--conn auto|epoll|poll|threads` (default auto) — connection
///   front end: the non-blocking readiness loop (epoll on Linux, poll
///   elsewhere) or the legacy thread-per-connection fallback.
/// * `--cache N` (default 128; 0 disables) — content-addressed result
///   cache: an identical re-submission answers with the original
///   job's stream instead of recomputing (`?nocache=1` bypasses).
/// * `--peers HOST:PORT,…` — act as sweep shard coordinator: sweep
///   jobs split into contiguous seed chunks across this process and
///   the listed peers, merged back byte-identically.
///
/// The bound address is printed (and flushed) before the server
/// blocks, so scripts can scrape it even under `--addr ...:0`.
pub fn cmd_serve(args: &Args) -> Result<String, String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7199");
    let queue_capacity: usize = args
        .get("queue")
        .unwrap_or("64")
        .parse()
        .map_err(|e| format!("--queue: {e}"))?;
    let checkpoint_dir = args.get("checkpoint-dir").map(std::path::PathBuf::from);
    if let Some(d) = &checkpoint_dir {
        std::fs::create_dir_all(d).map_err(|e| format!("--checkpoint-dir {}: {e}", d.display()))?;
    }
    let conn = bbncg_serve::ConnMode::parse(args.get("conn").unwrap_or("auto"))
        .map_err(|e| format!("--conn: {e}"))?;
    let cache_capacity: usize = args
        .get("cache")
        .unwrap_or("128")
        .parse()
        .map_err(|e| format!("--cache: {e}"))?;
    let peers: Vec<String> = args
        .get("peers")
        .map(|p| {
            p.split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let handle = bbncg_serve::spawn(bbncg_serve::ServerConfig {
        addr: addr.to_string(),
        workers: 0, // bbncg_par::max_threads(), i.e. --threads / BBNCG_THREADS
        queue_capacity,
        checkpoint_dir,
        // `--rounds` pins the server's default round executor; jobs
        // may still override per-submission with `?rounds=`.
        default_executor: parse_executor(args)?,
        // `--obs` already enabled the registry globally in dispatch;
        // carrying it in the config keeps the server self-describing
        // (and lets library users opt in without the CLI).
        obs: args.has("--obs"),
        conn,
        cache_capacity,
        peers,
        ..bbncg_serve::ServerConfig::default()
    })
    .map_err(|e| format!("cannot serve on {addr}: {e}"))?;
    println!(
        "bbncg-serve listening on {} (workers = {}, queue = {}, conn = {})",
        handle.addr(),
        handle.workers(),
        queue_capacity,
        handle.conn_mode(),
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    Ok("drained; all workers exited\n".into())
}

/// `bbncg submit` — client for a running `bbncg serve`.
///
/// * `submit SPEC --addr HOST:PORT [--type scenario|verify]
///   [--model sum|max] [--kernel K] [--seed S]` — POST the file (or
///   `-` for stdin) as a job and stream its JSONL records to stdout;
///   the stream is byte-identical to `bbncg scenario run SPEC --out`
///   for the same spec and seed. `--no-stream` returns the submission
///   receipt instead of following the job.
/// * `submit --status --addr …` — the server's `/healthz` document.
/// * `submit --shutdown [--abort] --addr …` — begin a graceful drain
///   (`--abort` also cancels in-flight jobs).
/// * `--wait-server SECS` (default 30) — how long to poll for the
///   server to come up before giving up.
pub fn cmd_submit(args: &Args) -> Result<String, String> {
    use bbncg_serve::client;
    let addr = args.get("addr").ok_or("submit needs --addr HOST:PORT")?;
    let wait_secs: u64 = args
        .get("wait-server")
        .unwrap_or("30")
        .parse()
        .map_err(|e| format!("--wait-server: {e}"))?;
    client::wait_ready(addr, std::time::Duration::from_secs(wait_secs))?;
    if args.has("--status") {
        let resp = client::request(addr, "GET", "/healthz", b"")?;
        return Ok(resp.text() + "\n");
    }
    if args.has("--shutdown") {
        let target = if args.has("--abort") {
            "/shutdown?mode=abort"
        } else {
            "/shutdown"
        };
        let resp = client::request(addr, "POST", target, b"")?;
        if resp.status != 200 {
            return Err(format!(
                "shutdown failed ({}): {}",
                resp.status,
                resp.text()
            ));
        }
        return Ok(resp.text() + "\n");
    }

    let path = args
        .positional(0)
        .ok_or("submit needs a SPEC file (or -), or --status / --shutdown")?;
    let body = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    let mut query = Vec::new();
    for key in [
        "type", "model", "kernel", "seed", "seeds", "rounds", "nocache",
    ] {
        if let Some(v) = args.get(key) {
            query.push(format!("{key}={v}"));
        }
    }
    let target = if query.is_empty() {
        "/jobs".to_string()
    } else {
        format!("/jobs?{}", query.join("&"))
    };
    let resp = client::request(addr, "POST", &target, body.as_bytes())?;
    match resp.status {
        202 => {}
        429 => return Err(format!("server backpressure (429): {}", resp.text())),
        code => return Err(format!("submission refused ({code}): {}", resp.text())),
    }
    if args.has("--no-stream") {
        return Ok(resp.text() + "\n");
    }
    let receipt = resp.text();
    let id = client::job_id(&receipt)
        .ok_or_else(|| format!("unparseable submission receipt: {receipt}"))?;
    let mut out = String::new();
    let stream_status = client::stream_lines(addr, &format!("/jobs/{id}/stream"), |line| {
        out.push_str(line);
        out.push('\n');
        true
    })?;
    if stream_status != 200 {
        return Err(format!(
            "stream for job {id} answered HTTP {stream_status} \
             (job may have been evicted; raise the server's history limit)"
        ));
    }
    // Surface a failed/cancelled/vanished job as an error so scripts
    // notice — only a completed job may exit 0.
    let status = client::request(addr, "GET", &format!("/jobs/{id}"), b"")?.text();
    if !status.contains("\"state\":\"completed\"") {
        return Err(format!("job {id} did not complete: {status}"));
    }
    if args.has("--stats") {
        // The status document carries the lifecycle timings (queue
        // wait, run duration, per-phase durations); print it as a
        // comment trailer so the JSONL stream above stays unpolluted.
        let _ = writeln!(out, "# stats: {status}");
    }
    if let Some(report_path) = args.get("report") {
        // Fetch the server-rendered HTML report for the completed job
        // (byte-identical to `bbncg report --from` on the streamed
        // JSONL) and save it next to the stream output.
        let resp = client::request(addr, "GET", &format!("/jobs/{id}/report"), b"")?;
        if resp.status != 200 {
            return Err(format!(
                "report for job {id} answered HTTP {}: {}",
                resp.status,
                resp.text()
            ));
        }
        std::fs::write(report_path, &resp.body)
            .map_err(|e| format!("cannot write {report_path}: {e}"))?;
        let _ = writeln!(
            out,
            "# report: wrote {} bytes to {report_path}",
            resp.body.len()
        );
    }
    Ok(out)
}

/// `bbncg report` — declarative analysis reports: scenario JSONL in,
/// one self-contained HTML page out (inline SVG, no scripts, no
/// external assets).
///
/// * `report SPEC [--out FILE] [--from FILE] [--seed S] [--dry-run]` —
///   execute a report spec: each listed analysis either consumes the
///   scenario record stream (run fresh, or ingested from `--from`) or
///   runs its own equilibrium sampling; `--dry-run` prints the plan
///   and executes nothing.
/// * `report --from FILE [--out FILE]` — no spec: the default "stream
///   report" (convergence + recovery) straight from a JSONL file.
///   Byte-identical to serve's `GET /jobs/{id}/report` for the same
///   stream.
pub fn cmd_report(args: &Args) -> Result<String, String> {
    use bbncg_report::{parse_report, AnalysisSpec, ReportInputs, ReportSpec};
    let from_path = args.get("from").map(str::to_string);
    let spec_path = args.positional(0).map(str::to_string);
    let dry_run = args.has("--dry-run");

    let (mut spec, scenario_text) = match &spec_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let spec = parse_report(&text).map_err(|e| format!("{path}: {e}"))?;
            // Scenario paths resolve relative to the report spec file.
            // A dry run only prints the plan, so it must not require
            // the scenario file to exist.
            let scenario_text = match (&spec.scenario, spec.needs_records() && !dry_run, &from_path)
            {
                (Some(rel), true, None) => {
                    let base = std::path::Path::new(path)
                        .parent()
                        .unwrap_or_else(|| std::path::Path::new("."));
                    let sp = base.join(rel);
                    Some(
                        std::fs::read_to_string(&sp)
                            .map_err(|e| format!("cannot read scenario {}: {e}", sp.display()))?,
                    )
                }
                _ => None,
            };
            (spec, scenario_text)
        }
        None => {
            if from_path.is_none() {
                return Err(
                    "report needs a SPEC file, or --from FILE for the default stream report".into(),
                );
            }
            let spec = ReportSpec {
                title: "stream report".to_string(),
                scenario: None,
                seed: None,
                analyses: vec![AnalysisSpec::Convergence, AnalysisSpec::Recovery],
            };
            (spec, None)
        }
    };
    if let Some(s) = args.get("seed") {
        spec.seed = Some(s.parse().map_err(|e| format!("--seed: {e}"))?);
    }

    if dry_run {
        return Ok(bbncg_report::plan(&spec, from_path.as_deref()));
    }

    let jsonl = from_path
        .as_deref()
        .map(|p| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}")))
        .transpose()?;
    let html = if spec_path.is_none() {
        bbncg_report::render_stream_report(jsonl.as_deref().expect("checked above"))?
    } else {
        bbncg_report::run_report(
            &spec,
            ReportInputs {
                scenario_text: scenario_text.as_deref(),
                jsonl: jsonl.as_deref(),
            },
        )?
    };
    match args.get("out") {
        Some(p) => {
            std::fs::write(p, &html).map_err(|e| format!("cannot write {p}: {e}"))?;
            Ok(format!("wrote {} bytes to {p}\n", html.len()))
        }
        None => Ok(html),
    }
}

/// `bbncg dot FILE` — DOT rendering of a saved profile.
pub fn cmd_dot(args: &Args) -> Result<String, String> {
    let path = args.positional(0).ok_or("dot needs a FILE (or -)")?;
    let r = load_realization(path)?;
    Ok(dot::digraph_to_dot(r.graph(), "bbncg", |u| {
        format!("v{}", u.index())
    }))
}

/// Usage text.
pub const USAGE: &str = "bbncg — bounded budget network creation games (Ehsani et al., SPAA 2011)

USAGE: bbncg <COMMAND> [ARGS]

COMMANDS:
  construct       --budgets 1,1,2,0 | --spider K | --btree H | --shift K
  verify          FILE [--model sum|max] [--swap|--audit] [--kernel queue|bitset|sparse|auto]
                  [--rounds sequential|speculative|auto]
  best-response   FILE --player I [--model sum|max] [--rule exact|greedy|swap]
  dynamics        [FILE] --budgets LIST [--model sum|max] [--seed S]
                  [--rule exact|better|greedy|swap] [--order rr|random]
                  [--rounds N] [--rounds sequential|speculative|auto]
                  [--emit profile] [--kernel queue|bitset|sparse|auto]
  analyze         FILE
  exact-poa       --budgets LIST [--model sum|max] [--limit N]
  scenario        run SPEC [--seed S] [--out FILE] [--checkpoint FILE] [--stop-after K]
                  | resume SPEC --checkpoint FILE [--out FILE]
                  | validate SPEC...
                  (all: [--kernel queue|bitset|sparse|auto] [--rounds MODE], overriding the spec)
  report          SPEC [--out FILE] [--from FILE] [--seed S] [--dry-run]
                  | --from FILE [--out FILE]  (default stream report, no spec)
  serve           [--addr HOST:PORT] [--queue N] [--checkpoint-dir DIR] [--rounds MODE]
                  [--conn auto|epoll|poll|threads] [--cache N] [--peers HOST:PORT,...]
                  [--obs]  (GET /metrics serves Prometheus text either way)
  submit          SPEC --addr HOST:PORT [--type scenario|verify] [--model sum|max]
                  [--kernel K] [--rounds MODE] [--seed S] [--seeds N] [--nocache 1]
                  [--no-stream] [--stats] [--report FILE] [--wait-server SECS]
                  | --status --addr ... | --shutdown [--abort] --addr ...
  dot             FILE

Profiles use the plain-text `bbncg v1` format; FILE may be `-` (stdin).
Dynamics and scenarios are seed-deterministic: identical seeds (and
specs) produce identical reports, metric records and final profiles.
--kernel picks the BFS machinery pricing candidate deviations (word-
parallel bitset vs queue; auto picks by instance size). Kernels are
move-for-move equivalent: they never change a result, only throughput.
--rounds (mode form) picks the round executor: speculative rounds
evaluate players' best responses in parallel inside each round and
revalidate proposals at commit time; they are step-identical to
sequential rounds at any thread count (auto goes speculative for
n >= 64 with > 1 worker thread, and never nests inside seed-sweep or
serve-job workers). On `dynamics`, a numeric --rounds keeps its
historical round-cap meaning; give the flag twice for both.
--threads N (any command) pins the worker-thread bound, overriding
BBNCG_THREADS: dynamics/verify/scenario parallelism and the serve
worker pool all respect it.
--obs (any command) switches the in-process metrics registry on
(kernel pruning rates, window commit/discard counts, phase timings;
scraped via serve's GET /metrics). --trace FILE (any command) streams
span records — one JSON object per phase/seed with start_us/dur_us —
to FILE as JSONL. Both are off by default and cost nothing when off;
the metric-record JSONL streams are byte-identical either way.
Scenario specs are TOML-subset files (see README \"Scenario specs\");
metric records are JSONL, one line per phase.
`serve` turns the workspace into a long-running service: POST a spec
to /jobs, stream /jobs/{id}/stream, and the JSONL you get is byte-
identical to the offline `scenario run` for the same spec and seed
(429 = queue full; retry later). `submit` is the matching client.
The front end is a non-blocking epoll/poll readiness loop with
HTTP/1.1 keep-alive (--conn threads restores one thread per
connection); identical re-submissions answer from a content-addressed
result cache (--cache, ?nocache=1 bypasses), and --peers makes the
server a sweep shard coordinator whose merged stream stays
byte-identical to a single-process run.
`report` renders declarative analysis reports (see README \"Reports\"):
a TOML-subset spec lists analyses (convergence, recovery, poa-spectrum,
census, obs-digest); the output is one self-contained HTML file with
inline SVG charts plus schema-versioned JSON fragments. Serve exposes
the same renderer as GET /jobs/{id}/report (fetch it with
`submit --report FILE`), byte-identical to `report --from` on the
job's streamed JSONL.
";

/// Dispatch a full command line (without the program name).
pub fn dispatch(raw: &[String]) -> Result<String, String> {
    let (cmd, rest) = raw.split_first().ok_or(USAGE.to_string())?;
    let args = Args::parse(rest)?;
    if args.has("--help") {
        return Ok(USAGE.to_string());
    }
    // Global: `--threads N` pins the worker-thread bound for every
    // parallel primitive in the process (dynamics candidate pricing,
    // scenario sweeps, the serve worker pool), overriding
    // BBNCG_THREADS and auto-detection.
    if let Some(t) = args.get("threads") {
        let n: usize = t.parse().map_err(|e| format!("--threads: {e}"))?;
        if n == 0 {
            return Err("--threads must be at least 1".into());
        }
        bbncg_par::set_max_threads(n);
    }
    // Global observability: `--obs` switches the metrics registry on
    // for the process (one-way; zero cost when absent), `--trace FILE`
    // installs a JSONL span sink. Both compose with every subcommand.
    if args.has("--obs") {
        bbncg_obs::enable();
    }
    if let Some(path) = args.get("trace") {
        let sink =
            bbncg_obs::JsonlTraceSink::create(path).map_err(|e| format!("--trace {path}: {e}"))?;
        bbncg_obs::install_tracer(Box::new(sink));
    }
    let result = match cmd.as_str() {
        "construct" => cmd_construct(&args),
        "verify" => cmd_verify(&args),
        "best-response" => cmd_best_response(&args),
        "dynamics" => cmd_dynamics(&args),
        "analyze" => cmd_analyze(&args),
        "exact-poa" => cmd_exact_poa(&args),
        "scenario" => cmd_scenario(&args),
        "report" => cmd_report(&args),
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args),
        "dot" => cmd_dot(&args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    // The trace sink is a process-global that never drops; flush it so
    // `--trace FILE` is complete the moment the command returns.
    bbncg_obs::flush_tracer();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &[&str]) -> Result<String, String> {
        let raw: Vec<String> = line.iter().map(|s| s.to_string()).collect();
        dispatch(&raw)
    }

    #[test]
    fn construct_theorem23_roundtrips_through_verify() {
        let profile = run(&["construct", "--budgets", "1,1,2,0"]).unwrap();
        assert!(profile.starts_with("bbncg v1"));
        // Write to a temp file and verify.
        let path = std::env::temp_dir().join("bbncg_cli_test_1.bbncg");
        std::fs::write(&path, &profile).unwrap();
        let report = run(&["verify", path.to_str().unwrap(), "--model", "max"]).unwrap();
        assert!(report.contains("Nash equilibrium (MAX) = true"), "{report}");
        let report = run(&["verify", path.to_str().unwrap(), "--model", "sum"]).unwrap();
        assert!(report.contains("Nash equilibrium (SUM) = true"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn construct_spider_and_analyze() {
        let profile = run(&["construct", "--spider", "3"]).unwrap();
        let path = std::env::temp_dir().join("bbncg_cli_test_2.bbncg");
        std::fs::write(&path, &profile).unwrap();
        let report = run(&["analyze", path.to_str().unwrap()]).unwrap();
        assert!(report.contains("n = 10"));
        assert!(report.contains("diametral path length 6"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dynamics_reports_convergence() {
        let report = run(&[
            "dynamics",
            "--budgets",
            "1,1,1,1,1",
            "--seed",
            "3",
            "--model",
            "sum",
        ])
        .unwrap();
        assert!(report.contains("converged = true"), "{report}");
    }

    #[test]
    fn dynamics_emits_loadable_profile() {
        let out = run(&["dynamics", "--budgets", "1,1,1,1", "--emit", "profile"]).unwrap();
        let profile_start = out.find("bbncg v1").unwrap();
        let r = bbncg_core::parse_realization(&out[profile_start..]).unwrap();
        assert_eq!(r.n(), 4);
    }

    #[test]
    fn kernel_flag_is_report_invariant() {
        // The same dynamics command under each kernel: identical
        // reports and identical emitted profiles (kernels are
        // move-for-move equivalent). "auto" and a bad value parse/fail
        // as expected, on verify too.
        let base = ["dynamics", "--budgets", "1,1,1,1,1,1", "--seed", "11"];
        let mut outs = Vec::new();
        for kernel in ["queue", "bitset", "auto"] {
            let mut line: Vec<&str> = base.to_vec();
            line.extend(["--kernel", kernel, "--emit", "profile"]);
            outs.push(run(&line).unwrap());
        }
        assert_eq!(outs[0], outs[1], "queue vs bitset");
        assert_eq!(outs[0], outs[2], "queue vs auto");
        assert!(run(&["dynamics", "--budgets", "1,1", "--kernel", "warp"])
            .unwrap_err()
            .contains("unknown kernel"));

        let profile = run(&["construct", "--budgets", "1,1,2,0"]).unwrap();
        let path = std::env::temp_dir().join("bbncg_cli_test_kernel.bbncg");
        std::fs::write(&path, &profile).unwrap();
        let q = run(&["verify", path.to_str().unwrap(), "--kernel", "queue"]).unwrap();
        let b = run(&["verify", path.to_str().unwrap(), "--kernel", "bitset"]).unwrap();
        assert_eq!(q, b);
        assert!(q.contains("Nash equilibrium (SUM) = true"), "{q}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rounds_flag_is_report_invariant_and_polymorphic() {
        // The same dynamics command under each executor: identical
        // reports and identical emitted profiles (executors are
        // step-identical). The numeric form still caps rounds, both
        // forms combine, and bad values fail with the mode list.
        let base = ["dynamics", "--budgets", "1,1,1,1,1,1", "--seed", "11"];
        let mut outs = Vec::new();
        for mode in ["sequential", "speculative", "auto"] {
            let mut line: Vec<&str> = base.to_vec();
            line.extend(["--rounds", mode, "--emit", "profile"]);
            outs.push(run(&line).unwrap());
        }
        assert_eq!(outs[0], outs[1], "sequential vs speculative");
        assert_eq!(outs[0], outs[2], "sequential vs auto");
        // Numeric --rounds still caps; combined with a mode it caps
        // under that executor — and a cap of 0 rounds runs nothing.
        let capped = run(&[
            "dynamics",
            "--budgets",
            "1,1,1",
            "--rounds",
            "0",
            "--rounds",
            "speculative",
        ])
        .unwrap();
        assert!(capped.contains("rounds = 0"), "{capped}");
        assert!(run(&["dynamics", "--budgets", "1,1", "--rounds", "warp"])
            .unwrap_err()
            .contains("sequential|speculative|auto"));

        // verify --audit accepts the mode and the verdict is
        // executor-independent.
        let profile = run(&["construct", "--budgets", "1,1,2,0"]).unwrap();
        let path = std::env::temp_dir().join("bbncg_cli_test_rounds.bbncg");
        std::fs::write(&path, &profile).unwrap();
        let seq = run(&[
            "verify",
            path.to_str().unwrap(),
            "--audit",
            "--rounds",
            "sequential",
        ])
        .unwrap();
        let spec = run(&[
            "verify",
            path.to_str().unwrap(),
            "--audit",
            "--rounds",
            "speculative",
        ])
        .unwrap();
        assert_eq!(seq, spec);
        assert!(seq.contains("Nash equilibrium (SUM) = true"), "{seq}");
        // A bad mode is rejected on every verify path, --audit or not.
        assert!(run(&["verify", path.to_str().unwrap(), "--rounds", "warp"])
            .unwrap_err()
            .contains("sequential|speculative|auto"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scenario_rounds_override_is_record_invariant() {
        // `scenario run --rounds MODE` overrides the spec's executor;
        // the record stream (and trailer hashes) must not move.
        let dir = std::env::temp_dir();
        let spec = dir.join("bbncg_cli_scenario_rounds.toml");
        std::fs::write(&spec, TINY_SCENARIO).unwrap();
        let spec_s = spec.to_str().unwrap();
        let seq = run(&["scenario", "run", spec_s, "--rounds", "sequential"]).unwrap();
        let speculative = run(&["scenario", "run", spec_s, "--rounds", "speculative"]).unwrap();
        assert_eq!(seq, speculative);
        assert!(run(&["scenario", "run", spec_s, "--rounds", "warp"])
            .unwrap_err()
            .contains("sequential|speculative|auto"));
        std::fs::remove_file(&spec).ok();
    }

    #[test]
    fn exact_poa_reports_ratios() {
        let report = run(&["exact-poa", "--budgets", "1,1,1", "--model", "max"]).unwrap();
        assert!(report.contains("profiles = 8"));
        assert!(report.contains("exact PoA = 1.000"));
    }

    #[test]
    fn best_response_identifies_improvement() {
        // A directed path is not an equilibrium: player 0 can improve.
        let r = Realization::new(generators::path(5));
        let path = std::env::temp_dir().join("bbncg_cli_test_3.bbncg");
        std::fs::write(&path, write_realization(&r)).unwrap();
        let report = run(&[
            "best-response",
            path.to_str().unwrap(),
            "--player",
            "0",
            "--model",
            "sum",
        ])
        .unwrap();
        assert!(report.contains("(improves)"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dot_renders() {
        let profile = run(&["construct", "--btree", "2"]).unwrap();
        let path = std::env::temp_dir().join("bbncg_cli_test_4.bbncg");
        std::fs::write(&path, &profile).unwrap();
        let dot = run(&["dot", path.to_str().unwrap()]).unwrap();
        assert!(dot.starts_with("digraph bbncg"));
        std::fs::remove_file(&path).ok();
    }

    const TINY_SCENARIO: &str = r#"
[scenario]
name = "tiny"
seed = 3

[init]
family = "uniform"
n = 6
budget = 1

[[phase]]
kind = "dynamics"

[[phase]]
kind = "arrive"
count = 1
budget = 1

[[phase]]
kind = "dynamics"
"#;

    #[test]
    fn scenario_run_resume_and_validate() {
        let dir = std::env::temp_dir();
        let spec = dir.join("bbncg_cli_scenario.toml");
        let ck = dir.join("bbncg_cli_scenario.ck");
        std::fs::write(&spec, TINY_SCENARIO).unwrap();
        let spec_s = spec.to_str().unwrap();
        let ck_s = ck.to_str().unwrap();

        let v = run(&["scenario", "validate", spec_s]).unwrap();
        assert!(v.contains("ok — scenario \"tiny\", 3 phase(s)"), "{v}");

        let full = run(&["scenario", "run", spec_s]).unwrap();
        assert!(full.contains("\"kind\":\"summary\""), "{full}");
        assert_eq!(full.matches("\"kind\":\"dynamics\"").count(), 2);
        let final_line = full.lines().last().unwrap().to_string();
        assert!(final_line.contains("completed 3 phase(s)"), "{full}");

        // Stop after one phase, then resume: identical trailer line.
        let part = run(&[
            "scenario",
            "run",
            spec_s,
            "--checkpoint",
            ck_s,
            "--stop-after",
            "1",
        ])
        .unwrap();
        assert!(part.contains("stopped after 1 phase(s)"), "{part}");
        let resumed = run(&["scenario", "resume", spec_s, "--checkpoint", ck_s]).unwrap();
        assert!(
            resumed.lines().last().unwrap() == final_line,
            "resume must land on the uninterrupted final hash:\n{resumed}\nvs\n{final_line}"
        );

        // --out streams records to a file instead of stdout.
        let out = dir.join("bbncg_cli_scenario.jsonl");
        let r = run(&["scenario", "run", spec_s, "--out", out.to_str().unwrap()]).unwrap();
        assert!(!r.contains("\"kind\""), "{r}");
        let jsonl = std::fs::read_to_string(&out).unwrap();
        assert_eq!(jsonl.lines().count(), 4); // 3 phases + summary
        std::fs::remove_file(&spec).ok();
        std::fs::remove_file(&ck).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn trace_flag_emits_one_span_per_phase() {
        // A scenario with a unique name, so the span count below is
        // immune to other tests in this process tracing concurrently
        // (the trace sink is process-global).
        let dir = std::env::temp_dir();
        let spec = dir.join("bbncg_cli_trace.toml");
        let trace = dir.join("bbncg_cli_trace.jsonl");
        std::fs::write(
            &spec,
            TINY_SCENARIO.replace("name = \"tiny\"", "name = \"trace-test\""),
        )
        .unwrap();
        run(&[
            "scenario",
            "run",
            spec.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--obs",
        ])
        .unwrap();
        let jsonl = std::fs::read_to_string(&trace).unwrap();
        let phase_spans: Vec<&str> = jsonl
            .lines()
            .filter(|l| l.contains("\"span\":\"phase\"") && l.contains("\"trace-test\""))
            .collect();
        assert_eq!(phase_spans.len(), 3, "{jsonl}");
        for (i, line) in phase_spans.iter().enumerate() {
            assert!(
                line.starts_with("{\"span\":\"phase\",\"start_us\":"),
                "{line}"
            );
            assert!(line.contains("\"dur_us\":"), "{line}");
            assert!(line.contains(&format!("\"phase\":\"{i}\"")), "{line}");
        }
        std::fs::remove_file(&spec).ok();
        std::fs::remove_file(&trace).ok();
    }

    /// Every `--trace` line must be a complete JSON object with the
    /// full documented span schema — `span`, `start_us`, `dur_us`,
    /// `fields` (string-valued object), in that order — so downstream
    /// consumers can parse the stream without per-line special cases.
    #[test]
    fn trace_lines_round_trip_full_span_schema() {
        use bbncg_report::json::{parse, Json};
        let dir = std::env::temp_dir();
        let spec = dir.join("bbncg_cli_trace_schema.toml");
        let trace = dir.join("bbncg_cli_trace_schema.jsonl");
        std::fs::write(
            &spec,
            TINY_SCENARIO.replace("name = \"tiny\"", "name = \"trace-schema\""),
        )
        .unwrap();
        run(&[
            "scenario",
            "run",
            spec.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        let jsonl = std::fs::read_to_string(&trace).unwrap();
        assert!(jsonl.lines().count() >= 3, "{jsonl}");
        for line in jsonl.lines() {
            let v = parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            let Json::Obj(entries) = &v else {
                panic!("trace line is not an object: {line}");
            };
            let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, ["span", "start_us", "dur_us", "fields"], "{line}");
            assert!(v.get("span").and_then(Json::as_str).is_some(), "{line}");
            assert!(v.get("start_us").and_then(Json::as_u64).is_some(), "{line}");
            assert!(v.get("dur_us").and_then(Json::as_u64).is_some(), "{line}");
            let Some(Json::Obj(fields)) = v.get("fields") else {
                panic!("fields is not an object: {line}");
            };
            for (k, fv) in fields {
                assert!(fv.as_str().is_some(), "field {k} is not a string: {line}");
            }
        }
        std::fs::remove_file(&spec).ok();
        std::fs::remove_file(&trace).ok();
    }

    const TINY_REPORT: &str = r#"
[report]
title = "cli test report"
scenario = "bbncg_cli_report_scenario.toml"

[[analysis]]
kind = "convergence"

[[analysis]]
kind = "recovery"
"#;

    #[test]
    fn report_dry_run_prints_plan_without_executing() {
        let dir = std::env::temp_dir();
        let spec = dir.join("bbncg_cli_report_dry.toml");
        // Deliberately do NOT write the scenario file: --dry-run must
        // not read it, let alone run it.
        std::fs::write(
            &spec,
            TINY_REPORT.replace(
                "bbncg_cli_report_scenario.toml",
                "bbncg_cli_report_missing.toml",
            ),
        )
        .unwrap();
        let plan = run(&["report", spec.to_str().unwrap(), "--dry-run"]).unwrap();
        assert!(plan.contains("report: cli test report"), "{plan}");
        assert!(plan.contains("convergence"), "{plan}");
        assert!(plan.contains("recovery"), "{plan}");
        assert!(!plan.contains("<html"), "{plan}");
        std::fs::remove_file(&spec).ok();
    }

    #[test]
    fn report_runs_from_spec_and_from_stream() {
        let dir = std::env::temp_dir();
        let scenario = dir.join("bbncg_cli_report_scenario.toml");
        let spec = dir.join("bbncg_cli_report.toml");
        let jsonl_path = dir.join("bbncg_cli_report.jsonl");
        let out = dir.join("bbncg_cli_report.html");
        std::fs::write(&scenario, TINY_SCENARIO).unwrap();
        std::fs::write(&spec, TINY_REPORT).unwrap();

        // Spec-driven run, written to --out.
        let msg = run(&[
            "report",
            spec.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let html = std::fs::read_to_string(&out).unwrap();
        assert!(html.contains("cli test report"), "missing title");
        assert!(html.contains("id=\"convergence\""), "missing section");
        assert!(html.contains("id=\"recovery\""), "missing section");
        assert_eq!(bbncg_report::self_containment_violation(&html), None);

        // Stream report from a captured JSONL file must be byte-equal
        // to the library renderer on the same bytes (the serve parity
        // contract).
        run(&[
            "scenario",
            "run",
            scenario.to_str().unwrap(),
            "--out",
            jsonl_path.to_str().unwrap(),
        ])
        .unwrap();
        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        let via_cli = run(&["report", "--from", jsonl_path.to_str().unwrap()]).unwrap();
        let via_lib = bbncg_report::render_stream_report(&jsonl).unwrap();
        assert_eq!(via_cli, via_lib);

        std::fs::remove_file(&scenario).ok();
        std::fs::remove_file(&spec).ok();
        std::fs::remove_file(&jsonl_path).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn report_errors_are_descriptive() {
        assert!(run(&["report"]).unwrap_err().contains("SPEC"));
        assert!(run(&["report", "nope.toml"])
            .unwrap_err()
            .contains("cannot read"));
        let bad = std::env::temp_dir().join("bbncg_cli_report_bad.toml");
        std::fs::write(
            &bad,
            "[report]\ntitle = \"x\"\n[[analysis]]\nkind = \"frob\"\n",
        )
        .unwrap();
        let err = run(&["report", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("frob"), "{err}");
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn scenario_errors_are_descriptive() {
        assert!(run(&["scenario"]).unwrap_err().contains("action"));
        assert!(run(&["scenario", "frob", "x"])
            .unwrap_err()
            .contains("unknown scenario action"));
        assert!(run(&["scenario", "validate"]).unwrap_err().contains("SPEC"));
        assert!(run(&["scenario", "resume", "nope.toml"])
            .unwrap_err()
            .contains("cannot read"));
        let bad = std::env::temp_dir().join("bbncg_cli_scenario_bad.toml");
        std::fs::write(
            &bad,
            "[init]\nfamily = \"warp\"\n[[phase]]\nkind = \"dynamics\"",
        )
        .unwrap();
        let err = run(&["scenario", "validate", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("warp"), "{err}");
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(run(&["construct"]).unwrap_err().contains("--budgets"));
        assert!(run(&["verify"]).unwrap_err().contains("FILE"));
        assert!(run(&["frobnicate"])
            .unwrap_err()
            .contains("unknown command"));
        assert!(run(&["exact-poa", "--budgets", "9,9"])
            .unwrap_err()
            .contains("budget"));
        assert!(run(&["dynamics", "--budgets", "1,1", "--rule", "quantum"])
            .unwrap_err()
            .contains("unknown --rule"));
    }

    #[test]
    fn help_paths() {
        assert!(run(&["help"]).unwrap().contains("USAGE"));
        assert!(run(&["verify", "--help"]).unwrap().contains("USAGE"));
    }

    #[test]
    fn args_parser_basics() {
        let raw: Vec<String> = ["a.txt", "--model", "max", "--swap"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = Args::parse(&raw).unwrap();
        assert_eq!(args.positional(0), Some("a.txt"));
        assert_eq!(args.get("model"), Some("max"));
        assert!(args.has("--swap"));
        assert!(Args::parse(&["--model".to_string()]).is_err());
    }
}
