//! The `bbncg` command-line tool. All logic lives in [`bbncg_cli`];
//! this shell prints the result or the error and sets the exit code.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match bbncg_cli::dispatch(&raw) {
        Ok(out) => print!("{out}"),
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    }
}
