//! Minimal parallel-execution substrate for the `bbncg` workspace.
//!
//! The bounded-budget network-creation experiments are embarrassingly
//! parallel at several granularities: breadth-first searches from many
//! sources (all-pairs shortest paths), Nash verification over vertices,
//! and experiment sweeps over seeds. This crate provides the small set of
//! primitives those layers need, built directly on `std::thread::scope`
//! — no global thread pool, no external data-parallelism framework and
//! no third-party crate, per the workspace's build-your-substrates rule.
//!
//! Two scheduling disciplines are offered:
//!
//! * **dynamic** ([`par_map`], [`par_for_each`]): workers claim blocks of
//!   indices from a shared atomic counter. Good when per-item cost is
//!   irregular (e.g. best-response search whose pruning depth varies).
//! * **static** ([`par_chunks_mut`], [`par_reduce`]): the index space is
//!   split into contiguous chunks up front. Deterministic assignment,
//!   good when per-item cost is uniform (e.g. BFS from each source).
//!
//! All results are deterministic regardless of thread count: `par_map`
//! writes each slot exactly once at its input index, and `par_reduce`
//! folds per-chunk partials in chunk order.
//!
//! # Thread-cap precedence
//!
//! The worker bound every primitive obeys is resolved as
//! [`set_max_threads`] (the CLI's `--threads`, highest precedence) →
//! `BBNCG_THREADS` → [`std::thread::available_parallelism`]. The
//! resolution is cached on first use; `set_max_threads` replaces the
//! cache at any time, but each parallel call samples the bound **once,
//! at its own start** and spawns its whole worker set from that
//! sample — a mid-run override never grows or shrinks an in-flight
//! worker set (or its worker-local state built by [`par_map_init`]'s
//! `init`), it only governs calls that start afterwards. Pinned by
//! `tests/threads_override.rs`.
//!
//! # Example
//!
//! ```
//! let squares = bbncg_par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

// Index loops here typically walk several parallel arrays at once;
// the index form is clearer than zipped iterators in those spots.
#![allow(clippy::needless_range_loop)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

static CACHED_MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Is this thread a parallel worker (spawned by a primitive here,
    /// or marked by a long-lived service worker)? Lets higher layers
    /// avoid *nesting* fan-outs: a parallel call made from inside a
    /// worker would multiply the thread budget instead of sharing it.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Is the current thread already a parallel worker — one spawned by a
/// primitive in this crate, or one that called
/// [`mark_parallel_worker`]? Heuristics that choose *whether* to fan
/// out (e.g. `RoundExecutor::Auto` in `bbncg-core`) consult this so
/// work that is already running under an outer fan-out (a seed-sweep
/// worker, a serve job worker) stays serial inside instead of
/// oversubscribing the machine quadratically. The primitives
/// themselves are unaffected: explicit parallel calls still run.
pub fn in_parallel_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Permanently mark the current thread as a parallel worker (see
/// [`in_parallel_worker`]). For long-lived service worker threads that
/// are not spawned by this crate but play the same role — e.g. the
/// `bbncg-serve` job workers, whose pool is already sized to
/// [`max_threads`].
pub fn mark_parallel_worker() {
    IN_WORKER.with(|w| w.set(true));
}

/// RAII for the scoped workers spawned below: marks on entry; the
/// thread dies at scope exit, so no reset is needed, but the guard
/// keeps the marking next to the spawn sites.
fn mark_this_worker() {
    IN_WORKER.with(|w| w.set(true));
}

/// Upper bound on worker threads, overridable with the `BBNCG_THREADS`
/// environment variable (useful for benchmarking scaling and for forcing
/// serial execution under `BBNCG_THREADS=1`) or programmatically with
/// [`set_max_threads`] (the CLI's `--threads` flag, which wins over the
/// environment). See the crate docs for the full precedence chain and
/// the in-flight-call guarantee.
pub fn max_threads() -> usize {
    let cached = CACHED_MAX_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("BBNCG_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    CACHED_MAX_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Pin the worker-thread bound for the whole process, overriding both
/// `BBNCG_THREADS` and auto-detected parallelism (and any value a prior
/// [`max_threads`] call cached). `n = 0` is treated as 1 so a bad flag
/// can never disable execution outright. Intended for process startup
/// (the CLI's `--threads`); calling it mid-computation only affects
/// parallel calls that start afterwards — an in-flight call keeps the
/// worker set (and any `par_map_init` worker-local state) it spawned
/// at its own start, never resizing mid-run.
pub fn set_max_threads(n: usize) {
    CACHED_MAX_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Number of workers appropriate for `len` items: never more threads than
/// items, never more than [`max_threads`], and at least one.
pub fn workers_for(len: usize) -> usize {
    max_threads().min(len).max(1)
}

/// Default grain size for dynamic scheduling: blocks of indices claimed at
/// once. Chosen so the atomic counter is hit ~64× per worker on balanced
/// inputs, which keeps contention negligible while still load-balancing.
fn grain_for(len: usize, workers: usize) -> usize {
    (len / (workers * 64)).max(1)
}

/// Shared output buffer for `par_map`. Each index is written exactly once
/// (workers claim disjoint index blocks), which makes the unsynchronized
/// writes sound; the `Sync` impl is what lets the scoped threads share it.
struct SlotBuf<R> {
    slots: Vec<UnsafeCell<MaybeUninit<R>>>,
}

// SAFETY: workers write disjoint slots (each index claimed by exactly one
// worker via the atomic counter) and reads happen only after the scope
// joins all workers.
unsafe impl<R: Send> Sync for SlotBuf<R> {}

impl<R> SlotBuf<R> {
    fn new(len: usize) -> Self {
        let mut slots = Vec::with_capacity(len);
        for _ in 0..len {
            slots.push(UnsafeCell::new(MaybeUninit::uninit()));
        }
        SlotBuf { slots }
    }

    /// SAFETY: caller must guarantee `i` is written at most once and no
    /// concurrent access to slot `i` occurs.
    unsafe fn write(&self, i: usize, value: R) {
        (*self.slots[i].get()).write(value);
    }

    /// SAFETY: caller must guarantee every slot was written exactly once
    /// and all writers have been joined.
    unsafe fn into_vec(self) -> Vec<R> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots {
            out.push(slot.into_inner().assume_init());
        }
        out
    }
}

/// Map `f` over `items` in parallel with dynamic load balancing,
/// preserving input order in the output.
///
/// `f` receives `(index, &item)`. Falls back to a serial loop for small
/// inputs or when only one worker is available.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    let len = items.len();
    let workers = workers_for(len);
    if workers <= 1 || len < 2 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let grain = grain_for(len, workers);
    let buf = SlotBuf::new(len);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                mark_this_worker();
                loop {
                    let start = cursor.fetch_add(grain, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + grain).min(len);
                    for i in start..end {
                        // SAFETY: the atomic fetch_add hands each index
                        // block to exactly one worker, so slot `i` is
                        // written once.
                        unsafe { buf.write(i, f(i, &items[i])) };
                    }
                }
            });
        }
    });
    // SAFETY: the cursor sweep covers 0..len exactly once and the scope
    // joined every writer above.
    unsafe { buf.into_vec() }
}

/// Run `f(index, &item)` for every item in parallel with dynamic load
/// balancing. Side-effect variant of [`par_map`].
pub fn par_for_each<T: Sync>(items: &[T], f: impl Fn(usize, &T) + Sync) {
    let len = items.len();
    let workers = workers_for(len);
    if workers <= 1 || len < 2 {
        for (i, x) in items.iter().enumerate() {
            f(i, x);
        }
        return;
    }
    let grain = grain_for(len, workers);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                mark_this_worker();
                loop {
                    let start = cursor.fetch_add(grain, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + grain).min(len);
                    for i in start..end {
                        f(i, &items[i]);
                    }
                }
            });
        }
    });
}

/// Run `f` over the index range `0..len` in parallel (dynamic scheduling).
/// Index-space variant of [`par_for_each`] for callers that index into
/// several structures at once.
pub fn par_for_each_index(len: usize, f: impl Fn(usize) + Sync) {
    let workers = workers_for(len);
    if workers <= 1 || len < 2 {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let grain = grain_for(len, workers);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                mark_this_worker();
                loop {
                    let start = cursor.fetch_add(grain, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + grain).min(len);
                    for i in start..end {
                        f(i);
                    }
                }
            });
        }
    });
}

/// Map over `0..len` and return results in index order (dynamic
/// scheduling). Index-space variant of [`par_map`]; equivalent to
/// [`par_map_init`] with unit worker state.
pub fn par_map_index<R: Send>(len: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    par_map_init(len, || (), |(), i| f(i))
}

/// [`par_map_index`] with **worker-local state**: `init` runs once per
/// worker thread and the resulting state is threaded through every
/// call that worker makes. This is the shape heavyweight reusable
/// scratch wants (e.g. one deviation engine per worker for batched
/// Nash verification): `len` items share `workers_for(len)` engines
/// instead of building one per item.
pub fn par_map_init<S, R: Send>(
    len: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> R + Sync,
) -> Vec<R> {
    let workers = workers_for(len);
    if workers <= 1 || len < 2 {
        let mut state = init();
        return (0..len).map(|i| f(&mut state, i)).collect();
    }
    let grain = grain_for(len, workers);
    let buf = SlotBuf::new(len);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                mark_this_worker();
                let mut state = init();
                loop {
                    let start = cursor.fetch_add(grain, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + grain).min(len);
                    for i in start..end {
                        // SAFETY: each index claimed by exactly one worker.
                        unsafe { buf.write(i, f(&mut state, i)) };
                    }
                }
            });
        }
    });
    // SAFETY: all slots written exactly once, all workers joined.
    unsafe { buf.into_vec() }
}

/// Process mutable chunks of `items` in parallel with static scheduling.
/// `f` receives `(chunk_start_index, chunk)`. The slice is split into
/// `workers_for(len)` nearly equal contiguous chunks.
pub fn par_chunks_mut<T: Send>(items: &mut [T], f: impl Fn(usize, &mut [T]) + Sync) {
    let len = items.len();
    let workers = workers_for(len);
    if workers <= 1 || len < 2 {
        f(0, items);
        return;
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|s| {
        for (k, piece) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                mark_this_worker();
                f(k * chunk, piece)
            });
        }
    });
}

/// Deterministic parallel reduction: map each item, then fold partials in
/// chunk order. The result equals the serial `items.iter().map(map).fold`
/// for any associative `fold` (and for any `fold` at all, because partials
/// are folded left-to-right in chunk order and items left-to-right within
/// a chunk — determinism does not depend on thread scheduling).
pub fn par_reduce<T: Sync, R: Send + Sync + Clone>(
    items: &[T],
    identity: R,
    map: impl Fn(usize, &T) -> R + Sync,
    fold: impl Fn(R, R) -> R + Sync,
) -> R {
    let len = items.len();
    let workers = workers_for(len);
    if workers <= 1 || len < 2 {
        return items
            .iter()
            .enumerate()
            .fold(identity, |acc, (i, x)| fold(acc, map(i, x)));
    }
    let chunk = len.div_ceil(workers);
    let partials = par_map_index(len.div_ceil(chunk), |k| {
        let start = k * chunk;
        let end = (start + chunk).min(len);
        (start..end).fold(identity.clone(), |acc, i| fold(acc, map(i, &items[i])))
    });
    partials.into_iter().fold(identity, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_serial() {
        let items: Vec<u64> = (0..10_000).collect();
        let parallel = par_map(&items, |i, &x| x * 3 + i as u64);
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 3 + i as u64)
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_index_matches_range() {
        let got = par_map_index(1000, |i| i * i);
        let want: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_for_each_visits_every_index_once() {
        let n = 4096;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        par_for_each(&items, |i, &x| {
            assert_eq!(i, x);
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn par_for_each_index_visits_every_index_once() {
        let n = 4096;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_for_each_index(n, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn par_map_init_matches_serial_and_reuses_state() {
        // Each worker's state counts its own calls; the outputs must
        // still be a correct in-order map, and the total number of
        // init() calls must not exceed the worker count.
        let inits = AtomicU64::new(0);
        let got = par_map_init(
            5000,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |calls, i| {
                *calls += 1;
                (i * 2, *calls > 0)
            },
        );
        for (i, &(x, state_ok)) in got.iter().enumerate() {
            assert_eq!(x, i * 2);
            assert!(state_ok);
        }
        assert!(inits.load(Ordering::Relaxed) <= max_threads() as u64);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut items = vec![0u64; 5000];
        par_chunks_mut(&mut items, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = (start + off) as u64;
            }
        });
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn par_reduce_sums() {
        let items: Vec<u64> = (1..=10_000).collect();
        let total = par_reduce(&items, 0u64, |_, &x| x, |a, b| a + b);
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn par_reduce_is_deterministic_with_noncommutative_fold() {
        // String concatenation is associative but not commutative; chunk
        // ordering must make the result equal to the serial fold.
        let items: Vec<String> = (0..500).map(|i| format!("{i},")).collect();
        let joined = par_reduce(
            &items,
            String::new(),
            |_, s| s.clone(),
            |mut a, b| {
                a.push_str(&b);
                a
            },
        );
        let serial: String = items.concat();
        assert_eq!(joined, serial);
    }

    #[test]
    fn workers_never_exceed_items() {
        assert_eq!(workers_for(0), 1);
        assert_eq!(workers_for(1), 1);
        assert!(workers_for(2) <= 2);
        assert!(workers_for(1_000_000) <= max_threads());
    }
}
