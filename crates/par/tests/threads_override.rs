//! `set_max_threads` must actually bound how many workers the parallel
//! primitives spawn — this is what the CLI's `--threads` flag (and the
//! serve worker pool sizing) relies on.
//!
//! This lives in its own integration-test binary so the process-global
//! thread cap can be pinned without racing the unit tests.

use bbncg_par::{max_threads, par_map_init, set_max_threads, workers_for};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

#[test]
fn set_max_threads_bounds_worker_count() {
    // Pin the cap *before* anything can cache an auto-detected value.
    set_max_threads(2);
    assert_eq!(max_threads(), 2);
    assert_eq!(workers_for(1_000_000), 2);

    // par_map_init runs init() exactly once per spawned worker, so the
    // init count observes the true number of workers.
    let inits = AtomicUsize::new(0);
    let threads = Mutex::new(HashSet::new());
    let out = par_map_init(
        10_000,
        || {
            inits.fetch_add(1, Ordering::Relaxed);
        },
        |(), i| {
            threads.lock().unwrap().insert(std::thread::current().id());
            i * 2
        },
    );
    assert_eq!(out.len(), 10_000);
    assert!(out.iter().enumerate().all(|(i, &x)| x == i * 2));
    assert!(
        inits.load(Ordering::Relaxed) <= 2,
        "more init() calls than the pinned thread cap"
    );
    assert!(
        threads.lock().unwrap().len() <= 2,
        "work ran on more distinct threads than the pinned cap"
    );

    // The override is re-assignable: dropping to 1 forces the serial
    // fast path (zero spawned workers — the caller's thread does all
    // the work, observable as a single distinct thread id).
    set_max_threads(1);
    assert_eq!(workers_for(4096), 1);
    let serial_threads = Mutex::new(HashSet::new());
    par_map_init(
        4096,
        || (),
        |(), i| {
            serial_threads
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
            i
        },
    );
    assert_eq!(serial_threads.lock().unwrap().len(), 1);

    // 0 can never wedge the process: it clamps to 1.
    set_max_threads(0);
    assert_eq!(max_threads(), 1);

    // A mid-run override must NOT resize an in-flight worker set: the
    // bound is sampled once at call start, workers (and their
    // worker-local init() state) are spawned from that sample, and a
    // raise issued *from inside the call* only affects later calls.
    // This is what lets a serve job or a speculative dynamics round
    // trust its per-worker engine count for the whole call.
    set_max_threads(2);
    let inits = AtomicUsize::new(0);
    let threads = Mutex::new(HashSet::new());
    par_map_init(
        20_000,
        || {
            inits.fetch_add(1, Ordering::Relaxed);
        },
        |(), i| {
            if i == 0 {
                // Fired while the call is in flight.
                set_max_threads(16);
            }
            threads.lock().unwrap().insert(std::thread::current().id());
            i
        },
    );
    assert!(
        inits.load(Ordering::Relaxed) <= 2,
        "mid-run override grew the in-flight worker set (init() ran {} times)",
        inits.load(Ordering::Relaxed)
    );
    assert!(
        threads.lock().unwrap().len() <= 2,
        "mid-run override grew the in-flight worker set"
    );
    // The override does govern the *next* call.
    assert_eq!(max_threads(), 16);

    // Worker marking: threads spawned by the primitives report
    // in_parallel_worker() = true (what keeps RoundExecutor::Auto from
    // nesting fan-outs inside sweep/serve workers); the calling thread
    // does not inherit the mark, and the serial fast path under a
    // 1-thread cap runs on the caller, so it stays unmarked too.
    set_max_threads(2);
    assert!(!bbncg_par::in_parallel_worker());
    let all_marked = Mutex::new(true);
    par_map_init(
        4096,
        || (),
        |(), i| {
            if !bbncg_par::in_parallel_worker() {
                *all_marked.lock().unwrap() = false;
            }
            i
        },
    );
    assert!(
        *all_marked.lock().unwrap(),
        "spawned workers must self-identify as parallel workers"
    );
    assert!(!bbncg_par::in_parallel_worker(), "caller stays unmarked");
    set_max_threads(1);
    par_map_init(
        64,
        || (),
        |(), i| {
            assert!(
                !bbncg_par::in_parallel_worker(),
                "serial fallback runs on the (unmarked) caller"
            );
            i
        },
    );
}
