//! `set_max_threads` must actually bound how many workers the parallel
//! primitives spawn — this is what the CLI's `--threads` flag (and the
//! serve worker pool sizing) relies on.
//!
//! This lives in its own integration-test binary so the process-global
//! thread cap can be pinned without racing the unit tests.

use bbncg_par::{max_threads, par_map_init, set_max_threads, workers_for};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

#[test]
fn set_max_threads_bounds_worker_count() {
    // Pin the cap *before* anything can cache an auto-detected value.
    set_max_threads(2);
    assert_eq!(max_threads(), 2);
    assert_eq!(workers_for(1_000_000), 2);

    // par_map_init runs init() exactly once per spawned worker, so the
    // init count observes the true number of workers.
    let inits = AtomicUsize::new(0);
    let threads = Mutex::new(HashSet::new());
    let out = par_map_init(
        10_000,
        || {
            inits.fetch_add(1, Ordering::Relaxed);
        },
        |(), i| {
            threads.lock().unwrap().insert(std::thread::current().id());
            i * 2
        },
    );
    assert_eq!(out.len(), 10_000);
    assert!(out.iter().enumerate().all(|(i, &x)| x == i * 2));
    assert!(
        inits.load(Ordering::Relaxed) <= 2,
        "more init() calls than the pinned thread cap"
    );
    assert!(
        threads.lock().unwrap().len() <= 2,
        "work ran on more distinct threads than the pinned cap"
    );

    // The override is re-assignable: dropping to 1 forces the serial
    // fast path (zero spawned workers — the caller's thread does all
    // the work, observable as a single distinct thread id).
    set_max_threads(1);
    assert_eq!(workers_for(4096), 1);
    let serial_threads = Mutex::new(HashSet::new());
    par_map_init(
        4096,
        || (),
        |(), i| {
            serial_threads
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
            i
        },
    );
    assert_eq!(serial_threads.lock().unwrap().len(), 1);

    // 0 can never wedge the process: it clamps to 1.
    set_max_threads(0);
    assert_eq!(max_threads(), 1);
}
