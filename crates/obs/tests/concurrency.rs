//! Registry concurrency and overflow pins.
//!
//! The sharded registry's whole claim is that per-thread shards plus
//! saturating aggregation lose nothing and wrap nothing: aggregated
//! reads must equal a serial oracle no matter how `par_map_init`
//! workers interleave, and counters must pin at `u64::MAX` instead of
//! wrapping.
//!
//! The registry is process-global, so every test here serializes on
//! one mutex and starts from `reset()`.

use bbncg_obs::{
    bucket_index, counter_add, counter_value, enable, histogram_snapshot, observe, reset, Counter,
    Histogram, NBUCKETS,
};
use proptest::prelude::*;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    enable();
    reset();
    guard
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Aggregated counter reads equal the serial saturating oracle
    /// under `par_map_init` workers applying an arbitrary op list in
    /// arbitrary interleavings.
    #[test]
    fn sharded_counters_match_serial_oracle(
        ops in proptest::collection::vec(
            (0usize..Counter::COUNT, 0u64..100_000), 1..800),
    ) {
        let _guard = serialized();
        bbncg_par::par_map_init(
            ops.len(),
            || (),
            |(), i| {
                let (c, delta) = ops[i];
                counter_add(Counter::ALL[c], delta);
            },
        );
        let mut oracle = [0u64; Counter::COUNT];
        for &(c, delta) in &ops {
            oracle[c] = oracle[c].saturating_add(delta);
        }
        for (c, want) in Counter::ALL.iter().zip(oracle) {
            prop_assert_eq!(counter_value(*c), want);
        }
    }

    /// Histogram bucket counts, sum, and count aggregate exactly
    /// across shards under `par_map_init` workers.
    #[test]
    fn sharded_histograms_match_serial_oracle(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..800),
    ) {
        let _guard = serialized();
        bbncg_par::par_map_init(
            values.len(),
            || (),
            |(), i| observe(Histogram::WindowWidth, values[i]),
        );
        let mut buckets = [0u64; NBUCKETS];
        let mut sum = 0u64;
        for &v in &values {
            buckets[bucket_index(v)] += 1;
            sum = sum.saturating_add(v);
        }
        let snap = histogram_snapshot(Histogram::WindowWidth);
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum(), sum);
        prop_assert_eq!(snap.buckets(), &buckets);
    }
}

/// Counters saturate at `u64::MAX` — repeated near-ceiling adds from
/// one thread never wrap.
#[test]
fn counter_overflow_saturates_single_thread() {
    let _guard = serialized();
    counter_add(Counter::DynamicsSteps, u64::MAX);
    counter_add(Counter::DynamicsSteps, u64::MAX);
    counter_add(Counter::DynamicsSteps, 1);
    assert_eq!(counter_value(Counter::DynamicsSteps), u64::MAX);
}

/// Saturation also holds across shards: many workers each adding huge
/// deltas aggregate to the pin, not a wrapped value.
#[test]
fn counter_overflow_saturates_across_workers() {
    let _guard = serialized();
    bbncg_par::par_map_init(
        64,
        || (),
        |(), _| counter_add(Counter::DynamicsRounds, u64::MAX / 2),
    );
    assert_eq!(counter_value(Counter::DynamicsRounds), u64::MAX);
}

/// Quantile extraction: a known value spread lands p50/p90/p99 in the
/// right power-of-two bucket bounds.
#[test]
fn quantiles_from_known_distribution() {
    let _guard = serialized();
    // 90 small values (bucket bound 1) and 10 large (bound 1023).
    for _ in 0..90 {
        observe(Histogram::PhaseMicros, 1);
    }
    for _ in 0..10 {
        observe(Histogram::PhaseMicros, 1000);
    }
    let snap = histogram_snapshot(Histogram::PhaseMicros);
    assert_eq!(snap.count(), 100);
    assert_eq!(snap.p50(), 1);
    assert_eq!(snap.p90(), 1);
    assert_eq!(snap.p99(), 1023);
    assert_eq!(snap.quantile(1.0), 1023);
}
