//! Prometheus text exposition (version 0.0.4): render the whole
//! registry as `# HELP`/`# TYPE`-annotated sample lines, and a tiny
//! syntax checker the CI scrape-smoke job uses to validate what
//! `GET /metrics` serves.

use crate::registry::{
    counter_value, gauge_value, histogram_snapshot, Counter, Gauge, Histogram, HistogramSnapshot,
    NBUCKETS,
};
use std::fmt::Write as _;

fn sample(out: &mut String, name: &str, labels: &str, value: u64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// Render the registry in Prometheus text exposition format.
///
/// Families with labelled variants (per-kernel counters, per-endpoint
/// latency histograms, per-state job counters) are grouped under one
/// `# HELP`/`# TYPE` header; histograms expose cumulative
/// `_bucket{le=…}` series over the registry's power-of-two bounds
/// plus `_sum` and `_count`. Always emits every catalogue metric, so
/// scrapes see a stable name set from the first request.
pub fn render_prometheus() -> String {
    let mut out = String::with_capacity(8192);

    let mut last_family = "";
    for c in Counter::ALL {
        if c.name() != last_family {
            last_family = c.name();
            let _ = writeln!(out, "# HELP {} {}", c.name(), c.help());
            let _ = writeln!(out, "# TYPE {} counter", c.name());
        }
        sample(&mut out, c.name(), c.labels(), counter_value(c));
    }

    for g in Gauge::ALL {
        let _ = writeln!(out, "# HELP {} {}", g.name(), g.help());
        let _ = writeln!(out, "# TYPE {} gauge", g.name());
        sample(&mut out, g.name(), "", gauge_value(g));
    }

    let mut last_family = "";
    for h in Histogram::ALL {
        if h.name() != last_family {
            last_family = h.name();
            let _ = writeln!(out, "# HELP {} {}", h.name(), h.help());
            let _ = writeln!(out, "# TYPE {} histogram", h.name());
        }
        let snap = histogram_snapshot(h);
        let mut cumulative = 0u64;
        for (i, &count) in snap.buckets().iter().enumerate() {
            cumulative = cumulative.saturating_add(count);
            // Skip interior empty buckets to keep the page compact;
            // the first and +Inf buckets always render so the series
            // is well formed even when empty.
            if count == 0 && i != 0 && i != NBUCKETS - 1 {
                continue;
            }
            let le = if i == NBUCKETS - 1 {
                "+Inf".to_string()
            } else {
                HistogramSnapshot::bucket_bound(i).to_string()
            };
            let labels = if h.labels().is_empty() {
                format!("le=\"{le}\"")
            } else {
                format!("{},le=\"{le}\"", h.labels())
            };
            sample(
                &mut out,
                &format!("{}_bucket", h.name()),
                &labels,
                cumulative,
            );
        }
        sample(
            &mut out,
            &format!("{}_sum", h.name()),
            h.labels(),
            snap.sum(),
        );
        sample(
            &mut out,
            &format!("{}_count", h.name()),
            h.labels(),
            snap.count(),
        );
    }

    out
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if is_name_start(c)) && chars.all(is_name_char)
}

fn valid_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
}

/// Validate one `name{labels}` prefix, returning the family name.
fn parse_series(s: &str) -> Result<&str, String> {
    let (name, labels) = match s.find('{') {
        None => (s, None),
        Some(open) => {
            let rest = &s[open + 1..];
            let close = rest
                .rfind('}')
                .ok_or_else(|| format!("unclosed label braces in {s:?}"))?;
            if close != rest.len() - 1 {
                return Err(format!("trailing text after labels in {s:?}"));
            }
            (&s[..open], Some(&rest[..close]))
        }
    };
    if !valid_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    if let Some(labels) = labels {
        for pair in labels.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("label {pair:?} missing '='"))?;
            if !valid_name(k) || k.contains(':') {
                return Err(format!("invalid label name {k:?}"));
            }
            if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
                return Err(format!("label value {v:?} not quoted"));
            }
        }
    }
    Ok(name)
}

/// A tiny Prometheus text-format (0.0.4) syntax checker.
///
/// Accepts the subset the exporter emits (and any conforming page):
/// `# HELP name text`, `# TYPE name counter|gauge|histogram|summary|untyped`,
/// other comments, and `name{labels} value [timestamp]` samples.
/// Additionally enforces that every sample's family was introduced by
/// a `# TYPE` line when any `# TYPE` lines are present for it, and
/// that the page is newline-terminated. Returns the first problem
/// found, with its line number.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut typed: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {lineno}: HELP for invalid name {name:?}"));
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().unwrap_or("");
                let kind = it.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {lineno}: TYPE for invalid name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown TYPE {kind:?}"));
                }
                if it.next().is_some() {
                    return Err(format!("line {lineno}: trailing text after TYPE"));
                }
                typed.push(name.to_string());
            }
            // Other comments are legal and unconstrained.
            continue;
        }
        // Sample line: series value [timestamp]. The series may
        // contain spaces only inside quoted label values; the
        // exporter never emits those, and we reject them here for
        // simplicity (values/timestamps are the trailing fields).
        let mut parts = line.split_whitespace();
        let series = parts
            .next()
            .ok_or_else(|| format!("line {lineno}: blank sample"))?;
        let value = parts
            .next()
            .ok_or_else(|| format!("line {lineno}: sample {series:?} missing value"))?;
        let family = parse_series(series)?;
        if !valid_value(value) {
            return Err(format!("line {lineno}: invalid sample value {value:?}"));
        }
        if let Some(ts) = parts.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {lineno}: invalid timestamp {ts:?}"));
            }
        }
        if parts.next().is_some() {
            return Err(format!("line {lineno}: trailing text after sample"));
        }
        if !typed.is_empty() {
            let base = family
                .strip_suffix("_bucket")
                .or_else(|| family.strip_suffix("_sum"))
                .or_else(|| family.strip_suffix("_count"))
                .unwrap_or(family);
            if !typed.iter().any(|t| t == family || t == base) {
                return Err(format!(
                    "line {lineno}: sample {family:?} has no TYPE header"
                ));
            }
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition contains no samples".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_self_valid() {
        // Rendering must pass the checker whether or not other tests
        // in this process have enabled the registry or bumped values.
        let page = render_prometheus();
        validate_exposition(&page).expect("exporter output must validate");
        assert!(page.contains("# TYPE bbncg_http_requests_total counter"));
        assert!(page.contains("# TYPE bbncg_serve_queue_depth gauge"));
        assert!(page.contains("# TYPE bbncg_http_request_duration_us histogram"));
        assert!(page
            .contains("bbncg_http_request_duration_us_bucket{endpoint=\"metrics\",le=\"+Inf\"}"));
    }

    #[test]
    fn checker_rejects_malformed_pages() {
        for (page, why) in [
            ("", "empty"),
            ("bbncg_x 1", "missing trailing newline"),
            ("# HELP 9bad help\n", "bad HELP name"),
            ("# TYPE bbncg_x widget\n", "bad TYPE kind"),
            ("bbncg_x{le=\"1\" 2\n", "unclosed braces"),
            ("bbncg_x{le=1} 2\n", "unquoted label value"),
            ("bbncg_x notanumber\n", "bad value"),
            ("bbncg_x 1 2 3\n", "trailing text"),
            ("bbncg_x\n", "missing value"),
            ("# TYPE bbncg_y counter\nbbncg_x 1\n", "untyped sample"),
            ("# HELP only_comments here\n", "no samples"),
        ] {
            assert!(validate_exposition(page).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn checker_accepts_minimal_pages() {
        validate_exposition("up 1\n").unwrap();
        validate_exposition("up{job=\"a\",instance=\"b\"} 1 1700000000\n").unwrap();
        validate_exposition("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n")
            .unwrap();
    }
}
