//! Lightweight span tracing: enter/exit timestamps on a monotonic
//! clock, emitted as JSONL [`TraceRecord`]s through an installable
//! [`TraceSink`] — the same sink idiom as the scenario engine's
//! metric sinks, but a **separate stream**: trace records are never
//! interleaved with metric JSONL, so the byte-diff CI on metric
//! record streams is untouched by tracing.
//!
//! Like the metrics registry, tracing is off by default and enabling
//! it is one-way for the process. A disabled [`span`] costs one
//! relaxed load and constructs nothing.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACER: Mutex<Option<Box<dyn TraceSink>>> = Mutex::new(None);

/// Monotonic anchor all span timestamps are measured from (first use
/// of the tracing layer). Relative microseconds keep records compact
/// and host-clock-independent.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Is span tracing on? A relaxed load, cheap enough to gate every
/// span site.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Install `sink` as the process-wide trace destination and switch
/// tracing on (one-way, like [`crate::enable`]). Replaces any
/// previously installed sink after flushing it.
pub fn install_tracer(sink: Box<dyn TraceSink>) {
    anchor(); // pin t=0 no later than installation
    let mut slot = TRACER.lock().unwrap();
    if let Some(mut old) = slot.replace(sink) {
        old.flush();
    }
    drop(slot);
    TRACE_ENABLED.store(true, Ordering::SeqCst);
}

/// Flush the installed trace sink, if any (e.g. before process exit).
pub fn flush_tracer() {
    if let Some(sink) = TRACER.lock().unwrap().as_mut() {
        sink.flush();
    }
}

/// One completed span: a named region with entry timestamp and
/// duration (both in microseconds on the process-monotonic clock)
/// plus ordered string fields.
///
/// The JSONL schema is stable: `span`, `start_us`, `dur_us`, then
/// `fields` as an object in insertion order — e.g.
/// `{"span":"phase","start_us":12,"dur_us":340,"fields":{"scenario":"churn","phase":"0"}}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Span name (a static site label: `"phase"`, `"seed"`, …).
    pub span: &'static str,
    /// Microseconds from the process trace anchor to span entry.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Ordered key/value annotations attached at the span site.
    pub fields: Vec<(&'static str, String)>,
}

impl TraceRecord {
    /// Serialize as a single JSON object (no trailing newline),
    /// stable key order as documented on the type.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        let _ = write!(
            out,
            "{{\"span\":\"{}\",\"start_us\":{},\"dur_us\":{},\"fields\":{{",
            escape(self.span),
            self.start_us,
            self.dur_us
        );
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        out.push_str("}}");
        out
    }
}

/// Minimal JSON string escaping (mirrors the scenario sink's rules:
/// quotes, backslashes, and control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Destination for completed spans. Implementations must tolerate
/// concurrent callers only in the sense that the global tracer mutex
/// serializes `record` calls for them.
pub trait TraceSink: Send {
    /// Accept one completed span.
    fn record(&mut self, rec: &TraceRecord);
    /// Flush any buffering (default: no-op).
    fn flush(&mut self) {}
}

/// [`TraceSink`] writing one JSON object per line to a buffered file.
pub struct JsonlTraceSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlTraceSink {
    /// Create (truncate) `path` and buffer trace records into it.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(JsonlTraceSink {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl TraceSink for JsonlTraceSink {
    fn record(&mut self, rec: &TraceRecord) {
        let _ = writeln!(self.out, "{}", rec.to_json());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlTraceSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// [`TraceSink`] collecting records in memory (tests).
#[derive(Default)]
pub struct MemoryTraceSink {
    /// Records in arrival order. Wrapped so tests can share the sink
    /// across the install boundary.
    pub records: std::sync::Arc<Mutex<Vec<TraceRecord>>>,
}

impl TraceSink for MemoryTraceSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.records.lock().unwrap().push(rec.clone());
    }
}

/// An open span: created by [`span`], completed (recorded) on drop.
///
/// When tracing is disabled this is an empty shell — no timestamp is
/// taken, fields are dropped, and the drop is a no-op.
pub struct Span {
    inner: Option<SpanData>,
}

struct SpanData {
    name: &'static str,
    start: Instant,
    start_us: u64,
    fields: Vec<(&'static str, String)>,
}

/// Open a span named `name`. Cheap when tracing is disabled (one
/// relaxed load, no clock read). The span records itself when
/// dropped.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !trace_enabled() {
        return Span { inner: None };
    }
    let start = Instant::now();
    Span {
        inner: Some(SpanData {
            name,
            start,
            start_us: start.duration_since(anchor()).as_micros() as u64,
            fields: Vec::new(),
        }),
    }
}

impl Span {
    /// Attach a key/value annotation (no-op when tracing is off).
    /// Keys are static site labels; values are stringified once, at
    /// the call site, only when tracing is on.
    pub fn field(mut self, key: &'static str, value: impl std::fmt::Display) -> Span {
        if let Some(data) = self.inner.as_mut() {
            data.fields.push((key, value.to_string()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.inner.take() else {
            return;
        };
        let rec = TraceRecord {
            span: data.name,
            start_us: data.start_us,
            dur_us: data.start.elapsed().as_micros() as u64,
            fields: data.fields,
        };
        if let Some(sink) = TRACER.lock().unwrap().as_mut() {
            sink.record(&rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_json_schema_is_stable() {
        let rec = TraceRecord {
            span: "phase",
            start_us: 12,
            dur_us: 340,
            fields: vec![("scenario", "churn".into()), ("phase", "0".into())],
        };
        assert_eq!(
            rec.to_json(),
            "{\"span\":\"phase\",\"start_us\":12,\"dur_us\":340,\
             \"fields\":{\"scenario\":\"churn\",\"phase\":\"0\"}}"
        );
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        let rec = TraceRecord {
            span: "x",
            start_us: 0,
            dur_us: 0,
            fields: vec![("k", "a\"b\\c\nd\u{1}".into())],
        };
        assert_eq!(
            rec.to_json(),
            "{\"span\":\"x\",\"start_us\":0,\"dur_us\":0,\
             \"fields\":{\"k\":\"a\\\"b\\\\c\\nd\\u0001\"}}"
        );
    }

    #[test]
    fn disabled_span_is_inert() {
        // Tracing may have been enabled by another test in this
        // process; only assert the shell shape when it is off.
        if !trace_enabled() {
            let s = span("never").field("k", 1);
            assert!(s.inner.is_none());
        }
    }
}
