//! The sharded metrics registry: a fixed catalogue of counters,
//! gauges, and histograms backed by static atomics.
//!
//! Design constraints (in priority order):
//!
//! 1. **Zero cost when off.** Every write goes through a single
//!    relaxed [`enabled`] load and returns immediately when
//!    observability has not been switched on. Nothing allocates,
//!    nothing locks, ever.
//! 2. **No hot-path contention when on.** Counter and histogram
//!    writes land in one of [`SHARDS`] cache-line-aligned shards
//!    chosen per thread (round-robin at first touch), so concurrent
//!    workers — `par_map_init` sweep workers, serve connection
//!    threads — never bounce the same cache line. Reads aggregate
//!    across shards with saturating arithmetic.
//! 3. **Fixed catalogue.** Metrics are `enum` variants, not string
//!    keys: registration is free, lookup is an array index, and the
//!    exported name set is stable by construction (the schema the
//!    byte-diff CI and the README catalogue rely on).
//!
//! Counters are **monotonic and saturating**: they never wrap, even
//! at `u64::MAX` (pinned by `tests/concurrency.rs`).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Number of independent shards counter/histogram writes spread over.
/// Sixteen covers every worker-pool size this workspace spawns
/// (threads beyond sixteen share shards round-robin, still correct).
pub const SHARDS: usize = 16;

/// Number of power-of-two histogram buckets. Bucket `i` counts
/// observations whose bit length is `i` (i.e. values `< 2^i` and
/// `>= 2^(i-1)`; bucket 0 is exactly zero), with everything at or
/// above `2^38` (~3.2 days in microseconds) collapsed into the last
/// bucket, exported as `+Inf`.
pub const NBUCKETS: usize = 40;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Switch the metrics registry on for the rest of the process.
///
/// Enabling is **one-way**: there is deliberately no `disable()`, so
/// the hot path can use a single relaxed load with no torn-state
/// races (a thread that observes "on" slightly late merely drops a
/// few early increments).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Is the metrics registry on? A relaxed atomic load — cheap enough
/// for per-candidate hot paths, though the kernels batch even this
/// out by keeping plain local tallies and flushing per session.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Every monotonic counter in the catalogue.
///
/// Variants are grouped by layer: cost kernels (`Kernel*`), the
/// speculative round executor (`Rounds*`), dynamics totals
/// (`Dynamics*`), the scenario engine (`Scenario*`), and the job
/// server (`Http*` / `Jobs*`). The `usize` discriminant is the
/// registry array index; [`Counter::ALL`] iterates in export order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Deviation-scratch pricing sessions begun (`begin()` calls).
    KernelSessions,
    /// Base BFS/SSSP computations establishing a session's distances.
    KernelBaseBfs,
    /// Candidates priced by the queue BFS kernel.
    KernelPricedQueue,
    /// Candidates priced by the word-parallel bitset BFS kernel.
    KernelPricedBitset,
    /// Candidates priced by the sparse dynamic-SSSP kernel.
    KernelPricedSparse,
    /// Candidates skipped by the Lemma 2.2 lower bound (queue kernel).
    KernelPruneSkipQueue,
    /// Candidates skipped by the Lemma 2.2 lower bound (bitset kernel).
    KernelPruneSkipBitset,
    /// Candidates skipped without a traversal (sparse kernel): the
    /// Lemma 2.2 lower bound, in-flight incumbent aborts, and
    /// overshoot-ball floors all land here.
    KernelPruneSkipSparse,
    /// Candidates priced exactly from the bound, without a BFS.
    KernelPruneExact,
    /// Decrease-only dynamic-SSSP repairs run by the sparse kernel.
    KernelSsspRepairs,
    /// Retained base profiles repaired in place at session open
    /// (instead of a full base BFS).
    KernelBaseRepaired,
    /// Retained-base repair attempts abandoned (damage over threshold,
    /// epoch mismatch, or diff-journal overflow) — each one costs a
    /// full base BFS.
    KernelRepairFallbacks,
    /// Sparse pricings aborted mid-repair by the incumbent bound
    /// (counted inside the prune-skip totals as well).
    KernelPruneAbortSparse,
    /// Per-target candidate-bound cache hits (sparse sessions).
    KernelBoundCacheHits,
    /// Per-target candidate-bound cache misses (sparse sessions).
    KernelBoundCacheMisses,
    /// Speculative windows opened by the parallel round executor.
    RoundsWindows,
    /// Speculative proposal evaluations (parallel best-response calls).
    RoundsEvals,
    /// Speculative proposals committed (window position consumed).
    RoundsCommits,
    /// Speculative evaluations discarded after an earlier commit.
    RoundsDiscards,
    /// Windows cut short by a presence-set-changing commit.
    RoundsInvalidations,
    /// Dynamics rounds executed (all executors).
    DynamicsRounds,
    /// Improving moves committed by dynamics (all executors).
    DynamicsSteps,
    /// Scenario phases entered.
    ScenarioPhases,
    /// Perturbation events applied by the scenario engine.
    ScenarioEvents,
    /// Scenario seeds completed (sweep legs).
    ScenarioSeeds,
    /// HTTP requests routed (all endpoints, including rejections).
    HttpRequests,
    /// HTTP requests rejected with `429` by queue backpressure.
    HttpRejected429,
    /// Jobs accepted into the serve queue.
    JobsSubmitted,
    /// Jobs that ran to completion.
    JobsCompleted,
    /// Jobs that ended in failure.
    JobsFailed,
    /// Jobs cancelled before or during execution.
    JobsCancelled,
    /// Result-cache lookups answered from a terminal cached job.
    ServeCacheHits,
    /// Result-cache lookups that admitted a fresh job.
    ServeCacheMisses,
    /// Result-cache lookups coalesced onto a still-running job (the
    /// duplicate submission attaches to the same stream instead of
    /// recomputing).
    ServeCacheCoalesced,
    /// Cached jobs evicted by the LRU bound or history retention.
    ServeCacheEvictions,
    /// HTTP requests served on a reused keep-alive connection (the
    /// second and later requests of each connection).
    HttpKeepaliveReuses,
    /// Sweep sub-jobs fanned out to shard peers by a coordinator.
    ServeShardSubjobs,
}

impl Counter {
    /// Number of counters in the catalogue.
    pub const COUNT: usize = 37;

    /// Every counter, in export order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::KernelSessions,
        Counter::KernelBaseBfs,
        Counter::KernelPricedQueue,
        Counter::KernelPricedBitset,
        Counter::KernelPricedSparse,
        Counter::KernelPruneSkipQueue,
        Counter::KernelPruneSkipBitset,
        Counter::KernelPruneSkipSparse,
        Counter::KernelPruneExact,
        Counter::KernelSsspRepairs,
        Counter::KernelBaseRepaired,
        Counter::KernelRepairFallbacks,
        Counter::KernelPruneAbortSparse,
        Counter::KernelBoundCacheHits,
        Counter::KernelBoundCacheMisses,
        Counter::RoundsWindows,
        Counter::RoundsEvals,
        Counter::RoundsCommits,
        Counter::RoundsDiscards,
        Counter::RoundsInvalidations,
        Counter::DynamicsRounds,
        Counter::DynamicsSteps,
        Counter::ScenarioPhases,
        Counter::ScenarioEvents,
        Counter::ScenarioSeeds,
        Counter::HttpRequests,
        Counter::HttpRejected429,
        Counter::JobsSubmitted,
        Counter::JobsCompleted,
        Counter::JobsFailed,
        Counter::JobsCancelled,
        Counter::ServeCacheHits,
        Counter::ServeCacheMisses,
        Counter::ServeCacheCoalesced,
        Counter::ServeCacheEvictions,
        Counter::HttpKeepaliveReuses,
        Counter::ServeShardSubjobs,
    ];

    /// Prometheus metric family name (shared across labelled variants).
    pub fn name(self) -> &'static str {
        match self {
            Counter::KernelSessions => "bbncg_kernel_sessions_total",
            Counter::KernelBaseBfs => "bbncg_kernel_base_bfs_total",
            Counter::KernelPricedQueue
            | Counter::KernelPricedBitset
            | Counter::KernelPricedSparse => "bbncg_kernel_candidates_priced_total",
            Counter::KernelPruneSkipQueue
            | Counter::KernelPruneSkipBitset
            | Counter::KernelPruneSkipSparse => "bbncg_kernel_prune_skips_total",
            Counter::KernelPruneExact => "bbncg_kernel_prune_exact_total",
            Counter::KernelSsspRepairs => "bbncg_kernel_sssp_repairs_total",
            Counter::KernelBaseRepaired | Counter::KernelRepairFallbacks => {
                "bbncg_kernel_base_repairs_total"
            }
            Counter::KernelPruneAbortSparse => "bbncg_kernel_prune_aborts_total",
            Counter::KernelBoundCacheHits | Counter::KernelBoundCacheMisses => {
                "bbncg_kernel_bound_cache_total"
            }
            Counter::RoundsWindows => "bbncg_rounds_windows_total",
            Counter::RoundsEvals => "bbncg_rounds_evals_total",
            Counter::RoundsCommits => "bbncg_rounds_commits_total",
            Counter::RoundsDiscards => "bbncg_rounds_discards_total",
            Counter::RoundsInvalidations => "bbncg_rounds_presence_invalidations_total",
            Counter::DynamicsRounds => "bbncg_dynamics_rounds_total",
            Counter::DynamicsSteps => "bbncg_dynamics_steps_total",
            Counter::ScenarioPhases => "bbncg_scenario_phases_total",
            Counter::ScenarioEvents => "bbncg_scenario_events_total",
            Counter::ScenarioSeeds => "bbncg_scenario_seeds_total",
            Counter::HttpRequests => "bbncg_http_requests_total",
            Counter::HttpRejected429 => "bbncg_http_rejected_total",
            Counter::JobsSubmitted
            | Counter::JobsCompleted
            | Counter::JobsFailed
            | Counter::JobsCancelled => "bbncg_jobs_total",
            Counter::ServeCacheHits | Counter::ServeCacheMisses | Counter::ServeCacheCoalesced => {
                "bbncg_serve_cache_total"
            }
            Counter::ServeCacheEvictions => "bbncg_serve_cache_evictions_total",
            Counter::HttpKeepaliveReuses => "bbncg_http_keepalive_reuses_total",
            Counter::ServeShardSubjobs => "bbncg_serve_shard_subjobs_total",
        }
    }

    /// Prometheus label set (without braces), empty when unlabelled.
    pub fn labels(self) -> &'static str {
        match self {
            Counter::KernelPricedQueue | Counter::KernelPruneSkipQueue => "kernel=\"queue\"",
            Counter::KernelPricedBitset | Counter::KernelPruneSkipBitset => "kernel=\"bitset\"",
            Counter::KernelPricedSparse | Counter::KernelPruneSkipSparse => "kernel=\"sparse\"",
            Counter::KernelBaseRepaired => "outcome=\"repaired\"",
            Counter::KernelRepairFallbacks => "outcome=\"fallback\"",
            Counter::KernelBoundCacheHits => "result=\"hit\"",
            Counter::KernelBoundCacheMisses => "result=\"miss\"",
            Counter::JobsSubmitted => "state=\"submitted\"",
            Counter::JobsCompleted => "state=\"completed\"",
            Counter::JobsFailed => "state=\"failed\"",
            Counter::JobsCancelled => "state=\"cancelled\"",
            Counter::ServeCacheHits => "result=\"hit\"",
            Counter::ServeCacheMisses => "result=\"miss\"",
            Counter::ServeCacheCoalesced => "result=\"coalesced\"",
            _ => "",
        }
    }

    /// One-line `# HELP` text for the metric family.
    pub fn help(self) -> &'static str {
        match self {
            Counter::KernelSessions => "Deviation pricing sessions begun",
            Counter::KernelBaseBfs => "Base BFS/SSSP computations per pricing session",
            Counter::KernelPricedQueue
            | Counter::KernelPricedBitset
            | Counter::KernelPricedSparse => "Candidate deviations priced, by cost kernel",
            Counter::KernelPruneSkipQueue
            | Counter::KernelPruneSkipBitset
            | Counter::KernelPruneSkipSparse => {
                "Candidates skipped by the Lemma 2.2 lower bound, by cost kernel"
            }
            Counter::KernelPruneExact => "Candidates priced exactly from the bound without a BFS",
            Counter::KernelSsspRepairs => "Decrease-only dynamic-SSSP repairs (sparse kernel)",
            Counter::KernelBaseRepaired | Counter::KernelRepairFallbacks => {
                "Retained-base repair attempts at session open, by outcome"
            }
            Counter::KernelPruneAbortSparse => {
                "Sparse pricings aborted mid-repair by the incumbent bound"
            }
            Counter::KernelBoundCacheHits | Counter::KernelBoundCacheMisses => {
                "Per-target candidate-bound cache lookups (sparse sessions)"
            }
            Counter::RoundsWindows => "Speculative activation windows opened",
            Counter::RoundsEvals => "Speculative proposal evaluations",
            Counter::RoundsCommits => "Speculative proposals committed",
            Counter::RoundsDiscards => "Speculative evaluations discarded",
            Counter::RoundsInvalidations => "Windows cut short by presence-set commits",
            Counter::DynamicsRounds => "Dynamics rounds executed",
            Counter::DynamicsSteps => "Improving moves committed by dynamics",
            Counter::ScenarioPhases => "Scenario phases entered",
            Counter::ScenarioEvents => "Perturbation events applied",
            Counter::ScenarioSeeds => "Scenario seeds completed",
            Counter::HttpRequests => "HTTP requests routed",
            Counter::HttpRejected429 => "HTTP requests rejected with 429 (queue backpressure)",
            Counter::JobsSubmitted
            | Counter::JobsCompleted
            | Counter::JobsFailed
            | Counter::JobsCancelled => "Serve jobs by terminal state",
            Counter::ServeCacheHits | Counter::ServeCacheMisses | Counter::ServeCacheCoalesced => {
                "Serve result-cache lookups, by outcome"
            }
            Counter::ServeCacheEvictions => "Cached serve jobs evicted (LRU or history bound)",
            Counter::HttpKeepaliveReuses => "HTTP requests served on reused keep-alive connections",
            Counter::ServeShardSubjobs => "Sweep sub-jobs fanned out to shard peers",
        }
    }
}

/// Every gauge in the catalogue (instantaneous values, set not added).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Jobs waiting in the serve queue right now.
    QueueDepth,
    /// Jobs currently executing on serve workers.
    InFlightJobs,
}

impl Gauge {
    /// Number of gauges in the catalogue.
    pub const COUNT: usize = 2;

    /// Every gauge, in export order.
    pub const ALL: [Gauge; Gauge::COUNT] = [Gauge::QueueDepth, Gauge::InFlightJobs];

    /// Prometheus metric name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::QueueDepth => "bbncg_serve_queue_depth",
            Gauge::InFlightJobs => "bbncg_serve_inflight_jobs",
        }
    }

    /// One-line `# HELP` text.
    pub fn help(self) -> &'static str {
        match self {
            Gauge::QueueDepth => "Jobs waiting in the serve queue",
            Gauge::InFlightJobs => "Jobs currently executing on serve workers",
        }
    }
}

/// Every histogram in the catalogue (power-of-two buckets, see
/// [`NBUCKETS`]). Durations are recorded in **microseconds**.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Histogram {
    /// Speculative window widths chosen by the round executor.
    WindowWidth,
    /// Scenario phase wall time (µs).
    PhaseMicros,
    /// Perturbation event application time (µs).
    EventMicros,
    /// Per-seed scenario run time within a sweep (µs) — the sweep
    /// worker-utilization signal.
    SeedMicros,
    /// `GET /healthz` request latency (µs).
    HttpHealthzMicros,
    /// `GET /metrics` request latency (µs).
    HttpMetricsMicros,
    /// `POST /jobs` request latency (µs).
    HttpSubmitMicros,
    /// `GET /jobs` request latency (µs).
    HttpJobsMicros,
    /// `GET /jobs/{id}` request latency (µs).
    HttpJobStatusMicros,
    /// `POST /jobs/{id}/cancel` request latency (µs).
    HttpCancelMicros,
    /// `GET /jobs/{id}/stream` request latency (µs; includes the full
    /// stream, so long-poll follows dominate the top buckets).
    HttpStreamMicros,
    /// `GET /jobs/{id}/report` request latency (µs; includes waiting
    /// for the job to finish plus the render).
    HttpReportMicros,
    /// `POST /shutdown` request latency (µs).
    HttpShutdownMicros,
    /// Latency of requests matching no route (µs).
    HttpOtherMicros,
    /// Affected-set size of each retained-base repair (vertices reset
    /// or improved by the commit-time dynamic-SSSP update).
    RepairAffected,
}

impl Histogram {
    /// Number of histograms in the catalogue.
    pub const COUNT: usize = 15;

    /// Every histogram, in export order.
    pub const ALL: [Histogram; Histogram::COUNT] = [
        Histogram::WindowWidth,
        Histogram::PhaseMicros,
        Histogram::EventMicros,
        Histogram::SeedMicros,
        Histogram::HttpHealthzMicros,
        Histogram::HttpMetricsMicros,
        Histogram::HttpSubmitMicros,
        Histogram::HttpJobsMicros,
        Histogram::HttpJobStatusMicros,
        Histogram::HttpCancelMicros,
        Histogram::HttpStreamMicros,
        Histogram::HttpReportMicros,
        Histogram::HttpShutdownMicros,
        Histogram::HttpOtherMicros,
        Histogram::RepairAffected,
    ];

    /// Prometheus metric family name (shared across labelled variants).
    pub fn name(self) -> &'static str {
        match self {
            Histogram::WindowWidth => "bbncg_rounds_window_width",
            Histogram::PhaseMicros => "bbncg_scenario_phase_duration_us",
            Histogram::EventMicros => "bbncg_scenario_event_duration_us",
            Histogram::SeedMicros => "bbncg_scenario_seed_duration_us",
            Histogram::RepairAffected => "bbncg_kernel_repair_affected_vertices",
            _ => "bbncg_http_request_duration_us",
        }
    }

    /// Prometheus label set (without braces), empty when unlabelled.
    pub fn labels(self) -> &'static str {
        match self {
            Histogram::HttpHealthzMicros => "endpoint=\"healthz\"",
            Histogram::HttpMetricsMicros => "endpoint=\"metrics\"",
            Histogram::HttpSubmitMicros => "endpoint=\"submit\"",
            Histogram::HttpJobsMicros => "endpoint=\"jobs\"",
            Histogram::HttpJobStatusMicros => "endpoint=\"job_status\"",
            Histogram::HttpCancelMicros => "endpoint=\"cancel\"",
            Histogram::HttpStreamMicros => "endpoint=\"stream\"",
            Histogram::HttpReportMicros => "endpoint=\"report\"",
            Histogram::HttpShutdownMicros => "endpoint=\"shutdown\"",
            Histogram::HttpOtherMicros => "endpoint=\"other\"",
            _ => "",
        }
    }

    /// One-line `# HELP` text for the metric family.
    pub fn help(self) -> &'static str {
        match self {
            Histogram::WindowWidth => "Speculative window widths chosen per window",
            Histogram::PhaseMicros => "Scenario phase wall time in microseconds",
            Histogram::EventMicros => "Perturbation event application time in microseconds",
            Histogram::SeedMicros => "Per-seed scenario run time in microseconds",
            Histogram::RepairAffected => "Affected-set size per retained-base repair",
            _ => "HTTP request latency in microseconds, by endpoint",
        }
    }
}

/// One shard of the registry. `align(128)` keeps neighbouring shards
/// off each other's cache lines (two lines on common prefetchers).
#[repr(align(128))]
struct Shard {
    counters: [AtomicU64; Counter::COUNT],
    hist_buckets: [[AtomicU64; NBUCKETS]; Histogram::COUNT],
    hist_sum: [AtomicU64; Histogram::COUNT],
    hist_count: [AtomicU64; Histogram::COUNT],
}

impl Shard {
    const fn new() -> Self {
        Shard {
            counters: [const { AtomicU64::new(0) }; Counter::COUNT],
            hist_buckets: [const { [const { AtomicU64::new(0) }; NBUCKETS] }; Histogram::COUNT],
            hist_sum: [const { AtomicU64::new(0) }; Histogram::COUNT],
            hist_count: [const { AtomicU64::new(0) }; Histogram::COUNT],
        }
    }
}

static REGISTRY: [Shard; SHARDS] = [const { Shard::new() }; SHARDS];
static GAUGES: [AtomicU64; Gauge::COUNT] = [const { AtomicU64::new(0) }; Gauge::COUNT];

/// Round-robin shard assignment: each thread picks a shard on first
/// write and keeps it for life. Threads beyond [`SHARDS`] share.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard() -> &'static Shard {
    let idx = MY_SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(idx);
        }
        idx
    });
    &REGISTRY[idx]
}

/// Saturating add into one atomic cell: the CAS loop retries on
/// contention and pins at `u64::MAX` instead of wrapping.
#[inline]
fn saturating_fetch_add(cell: &AtomicU64, delta: u64) {
    if delta == 0 {
        return;
    }
    // fetch_add is the fast path; fall into the CAS loop only when the
    // current value is close enough to the ceiling to wrap.
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(delta);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Add `delta` to a counter (no-op while the registry is disabled).
#[inline]
pub fn counter_add(c: Counter, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    saturating_fetch_add(&shard().counters[c as usize], delta);
}

/// Increment a counter by one (no-op while the registry is disabled).
#[inline]
pub fn counter_inc(c: Counter) {
    counter_add(c, 1);
}

/// Current value of a counter, aggregated across shards (saturating).
pub fn counter_value(c: Counter) -> u64 {
    REGISTRY.iter().fold(0u64, |acc, s| {
        acc.saturating_add(s.counters[c as usize].load(Ordering::Relaxed))
    })
}

/// Set a gauge to an instantaneous value (no-op while disabled).
#[inline]
pub fn gauge_set(g: Gauge, value: u64) {
    if !enabled() {
        return;
    }
    GAUGES[g as usize].store(value, Ordering::Relaxed);
}

/// Current value of a gauge.
pub fn gauge_value(g: Gauge) -> u64 {
    GAUGES[g as usize].load(Ordering::Relaxed)
}

/// Bucket index for an observation: its bit length, capped at the
/// overflow bucket. Zero lands in bucket 0; `[2^(i-1), 2^i)` lands in
/// bucket `i`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(NBUCKETS - 1)
}

/// Record one observation into a histogram (no-op while disabled).
#[inline]
pub fn observe(h: Histogram, value: u64) {
    if !enabled() {
        return;
    }
    let s = shard();
    let i = h as usize;
    s.hist_buckets[i][bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    saturating_fetch_add(&s.hist_sum[i], value);
    s.hist_count[i].fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time aggregate of one histogram across all shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; NBUCKETS],
    sum: u64,
    count: u64,
}

impl HistogramSnapshot {
    /// Per-bucket observation counts (non-cumulative), in
    /// [`bucket_index`] order.
    pub fn buckets(&self) -> &[u64; NBUCKETS] {
        &self.buckets
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the
    /// overflow bucket): the value every observation in the bucket is
    /// `<=`.
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= NBUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// inclusive bound of the bucket containing the rank-`⌈q·count⌉`
    /// observation. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(NBUCKETS - 1)
    }

    /// Median upper bound — `quantile(0.50)`.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound — `quantile(0.90)`.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound — `quantile(0.99)`.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Aggregate one histogram across all shards.
pub fn histogram_snapshot(h: Histogram) -> HistogramSnapshot {
    let i = h as usize;
    let mut snap = HistogramSnapshot {
        buckets: [0; NBUCKETS],
        sum: 0,
        count: 0,
    };
    for s in &REGISTRY {
        for (b, slot) in snap.buckets.iter_mut().enumerate() {
            *slot = slot.saturating_add(s.hist_buckets[i][b].load(Ordering::Relaxed));
        }
        snap.sum = snap
            .sum
            .saturating_add(s.hist_sum[i].load(Ordering::Relaxed));
        snap.count = snap
            .count
            .saturating_add(s.hist_count[i].load(Ordering::Relaxed));
    }
    snap
}

/// Zero every counter, gauge, and histogram cell.
///
/// A test/bench aid, not a linearizable operation: increments racing
/// with the reset may land on either side of it. Callers own the
/// quiescence (single-threaded bench sections, serialized tests).
pub fn reset() {
    for s in &REGISTRY {
        for c in &s.counters {
            c.store(0, Ordering::Relaxed);
        }
        for h in &s.hist_buckets {
            for b in h {
                b.store(0, Ordering::Relaxed);
            }
        }
        for v in &s.hist_sum {
            v.store(0, Ordering::Relaxed);
        }
        for v in &s.hist_count {
            v.store(0, Ordering::Relaxed);
        }
    }
    for g in &GAUGES {
        g.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry state is process-global; unit tests here only assert
    // catalogue invariants that need no writes.

    #[test]
    fn catalogue_indices_match_all_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "Counter::ALL out of order at {i}");
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i, "Gauge::ALL out of order at {i}");
        }
        for (i, h) in Histogram::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i, "Histogram::ALL out of order at {i}");
        }
    }

    #[test]
    fn labelled_families_share_names_and_help() {
        // Same family name ⇒ same help text (Prometheus allows one
        // HELP per family).
        for a in Counter::ALL {
            for b in Counter::ALL {
                if a.name() == b.name() {
                    assert_eq!(a.help(), b.help(), "{:?} vs {:?}", a, b);
                }
            }
        }
        for a in Histogram::ALL {
            for b in Histogram::ALL {
                if a.name() == b.name() {
                    assert_eq!(a.help(), b.help(), "{:?} vs {:?}", a, b);
                }
            }
        }
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
        for i in 1..NBUCKETS - 1 {
            let bound = HistogramSnapshot::bucket_bound(i);
            assert_eq!(bucket_index(bound), i);
            assert_eq!(bucket_index(bound + 1), i + 1);
        }
    }
}
