//! `bbncg-obs` — zero-cost-when-off observability for the `bbncg`
//! workspace.
//!
//! Two orthogonal layers, both **off by default** and **one-way
//! enabled** for the process:
//!
//! * [`registry`] — a sharded metrics registry with a fixed catalogue
//!   of saturating monotonic [`Counter`]s, instantaneous [`Gauge`]s,
//!   and power-of-two-bucket [`Histogram`]s (p50/p90/p99 extraction
//!   via [`HistogramSnapshot`]). Writes land in per-thread shards of
//!   static atomics, so concurrent workers never contend; while
//!   disabled every write is a single relaxed load and an early
//!   return.
//! * [`trace`] — lightweight span tracing ([`span`] guards timed on a
//!   process-monotonic clock) emitted as JSONL [`TraceRecord`]s
//!   through an installable [`TraceSink`]. Trace output is a separate
//!   stream from scenario metric JSONL by construction, keeping the
//!   byte-diff CI on metric records untouched.
//!
//! [`prom`] renders the registry in Prometheus text exposition format
//! (the `GET /metrics` payload) and ships the tiny syntax checker the
//! CI scrape-smoke job validates it with.
//!
//! # Who calls what
//!
//! The layers above wire in as follows: `DeviationScratch` keeps
//! plain local tallies and flushes them per pricing session;
//! `round.rs` executors count windows/commits/discards; the scenario
//! engine wraps phases, events, and sweep seeds in spans and
//! duration histograms; `bbncg-serve` serves [`render_prometheus`]
//! at `GET /metrics` and times every endpoint. Enabling is wired to
//! the `--obs` CLI flag, the `[obs]` scenario-spec section, and
//! `ServerConfig`.
//!
//! # Example
//!
//! ```
//! use bbncg_obs::{Counter, Histogram};
//!
//! bbncg_obs::enable();
//! bbncg_obs::counter_add(Counter::DynamicsSteps, 3);
//! bbncg_obs::observe(Histogram::WindowWidth, 8);
//! assert!(bbncg_obs::counter_value(Counter::DynamicsSteps) >= 3);
//! let page = bbncg_obs::render_prometheus();
//! bbncg_obs::validate_exposition(&page).unwrap();
//! ```

#![warn(missing_docs)]

pub mod prom;
pub mod registry;
pub mod trace;

pub use prom::{render_prometheus, validate_exposition};
pub use registry::{
    bucket_index, counter_add, counter_inc, counter_value, enable, enabled, gauge_set, gauge_value,
    histogram_snapshot, observe, reset, Counter, Gauge, Histogram, HistogramSnapshot, NBUCKETS,
    SHARDS,
};
pub use trace::{
    flush_tracer, install_tracer, span, trace_enabled, JsonlTraceSink, MemoryTraceSink, Span,
    TraceRecord, TraceSink,
};
