//! The directed BBC game: model, costs, exact best response.
//!
//! Model (Laoutaris, Poplawski, Rajaraman, Sundaram, Teng — PODC 2008):
//! player `i` buys exactly `bᵢ` **directed** links; a link `i → j` can
//! be traversed only from `i` to `j`. Player `i`'s cost is the sum of
//! its *directed* distances to all other players. For comparability
//! with the undirected game we price unreachable targets at
//! `C_inf = n²` (the original paper's disconnection penalty plays the
//! same role).
//!
//! Distances from `u` depend only on `u`'s own out-links plus everyone
//! else's (a path from `u` never benefits from re-entering `u`), so
//! best response again reduces to pricing `C(n−1, b)` candidate sets —
//! here with *directed* BFS over the graph-minus-`u`'s-links plus the
//! candidate links as a patch.

use bbncg_core::oracle::{enumeration_count, CombinationOdometer};
use bbncg_core::{c_inf, BudgetVector, ScoredStrategy, MAX_EXACT_CANDIDATES};
use bbncg_graph::{NodeId, OwnedDigraph};

/// A strategy profile of the directed game.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DirectedRealization {
    g: OwnedDigraph,
}

impl DirectedRealization {
    /// Wrap an ownership digraph (arcs are the one-way links).
    pub fn new(g: OwnedDigraph) -> Self {
        DirectedRealization { g }
    }

    /// Number of players.
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// The link digraph.
    pub fn graph(&self) -> &OwnedDigraph {
        &self.g
    }

    /// The instance's budget vector.
    pub fn budgets(&self) -> BudgetVector {
        BudgetVector::of_realization(&self.g)
    }

    /// Replace player `u`'s out-links.
    pub fn set_strategy(&mut self, u: NodeId, targets: Vec<NodeId>) {
        assert_eq!(
            targets.len(),
            self.g.out_degree(u),
            "strategy size must equal the budget of {u}"
        );
        self.g.set_out(u, targets);
    }

    /// Directed BFS from `src`, with `src`'s own out-links overridden by
    /// `patch` when `Some`. Returns `(sum_of_distances, reached)`.
    fn directed_bfs(&self, src: NodeId, patch: Option<&[NodeId]>) -> (u64, usize) {
        let n = self.n();
        let mut dist = vec![u32::MAX; n];
        let mut queue = Vec::with_capacity(n);
        dist[src.index()] = 0;
        queue.push(src);
        let mut head = 0;
        let mut sum = 0u64;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            let dv = dist[v.index()];
            sum += dv as u64;
            let outs: &[NodeId] = if v == src {
                match patch {
                    Some(p) => p,
                    None => self.g.out(v),
                }
            } else {
                self.g.out(v)
            };
            for &w in outs {
                if dist[w.index()] == u32::MAX {
                    dist[w.index()] = dv + 1;
                    queue.push(w);
                }
            }
        }
        (sum, queue.len())
    }

    /// Directed SUM cost of `u`: `Σ_v dist→(u, v)` with `n²` per
    /// unreachable vertex.
    pub fn cost(&self, u: NodeId) -> u64 {
        let (sum, reached) = self.directed_bfs(u, None);
        sum + (self.n() - reached) as u64 * c_inf(self.n())
    }

    /// Cost of `u` if it replaced its links with `targets`.
    pub fn cost_with_strategy(&self, u: NodeId, targets: &[NodeId]) -> u64 {
        let (sum, reached) = self.directed_bfs(u, Some(targets));
        sum + (self.n() - reached) as u64 * c_inf(self.n())
    }

    /// Directed eccentricity of every vertex (max directed distance;
    /// `u32::MAX` if some vertex is unreachable).
    pub fn directed_eccentricities(&self) -> Vec<u32> {
        let n = self.n();
        (0..n)
            .map(|u| {
                let mut dist = vec![u32::MAX; n];
                let mut queue = Vec::with_capacity(n);
                dist[u] = 0;
                queue.push(NodeId::new(u));
                let mut head = 0;
                let mut ecc = 0;
                while head < queue.len() {
                    let v = queue[head];
                    head += 1;
                    ecc = ecc.max(dist[v.index()]);
                    for &w in self.g.out(v) {
                        if dist[w.index()] == u32::MAX {
                            dist[w.index()] = dist[v.index()] + 1;
                            queue.push(w);
                        }
                    }
                }
                if queue.len() == n {
                    ecc
                } else {
                    u32::MAX
                }
            })
            .collect()
    }

    /// Directed diameter: max directed distance over all ordered pairs,
    /// or `None` if some pair is unreachable.
    pub fn directed_diameter(&self) -> Option<u32> {
        let eccs = self.directed_eccentricities();
        if eccs.contains(&u32::MAX) {
            None
        } else {
            eccs.into_iter().max()
        }
    }
}

/// Exact best response of player `u` in the directed game (ties toward
/// the lexicographically smallest target set).
///
/// # Panics
/// Panics if the candidate space exceeds
/// [`MAX_EXACT_CANDIDATES`](bbncg_core::MAX_EXACT_CANDIDATES).
pub fn directed_best_response(r: &DirectedRealization, u: NodeId) -> ScoredStrategy {
    let n = r.n();
    let b = r.graph().out_degree(u);
    let count = enumeration_count(n - 1, b);
    assert!(
        count <= MAX_EXACT_CANDIDATES,
        "directed best response would enumerate {count} candidates"
    );
    let pool: Vec<NodeId> = (0..n).map(NodeId::new).filter(|&t| t != u).collect();
    let mut odometer = CombinationOdometer::new(pool.len(), b);
    let mut targets: Vec<NodeId> = Vec::with_capacity(b);
    let mut best: Option<ScoredStrategy> = None;
    loop {
        targets.clear();
        targets.extend(odometer.indices().iter().map(|&i| pool[i]));
        let cost = r.cost_with_strategy(u, &targets);
        if best.as_ref().is_none_or(|s| cost < s.cost) {
            best = Some(ScoredStrategy {
                targets: targets.clone(),
                cost,
            });
        }
        if !odometer.advance() {
            break;
        }
    }
    best.expect("at least one strategy exists")
}

/// Is `u` best-responding in the directed game?
pub fn directed_is_best_response(r: &DirectedRealization, u: NodeId) -> bool {
    if r.graph().out_degree(u) == 0 {
        return true;
    }
    directed_best_response(r, u).cost >= r.cost(u)
}

/// Is the profile a Nash equilibrium of the directed game? (Parallel
/// over players.)
pub fn directed_is_nash(r: &DirectedRealization) -> bool {
    let flags = bbncg_par::par_map_index(r.n(), |i| directed_is_best_response(r, NodeId::new(i)));
    flags.into_iter().all(|ok| ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn directed_distances_are_one_way() {
        // 0 -> 1 -> 2: from 0 all reachable; from 2 nothing is.
        let r = DirectedRealization::new(OwnedDigraph::from_arcs(3, &[(0, 1), (1, 2)]));
        assert_eq!(r.cost(v(0)), 1 + 2);
        assert_eq!(r.cost(v(2)), 2 * 9); // both unreachable at n² = 9
        assert_eq!(r.directed_diameter(), None);
    }

    #[test]
    fn directed_cycle_costs() {
        let r = DirectedRealization::new(bbncg_graph::generators::cycle(4));
        // Every vertex reaches the others at distances 1, 2, 3.
        for u in 0..4 {
            assert_eq!(r.cost(v(u)), 6);
        }
        assert_eq!(r.directed_diameter(), Some(3));
    }

    #[test]
    fn directed_cycle_is_nash_for_unit_budgets() {
        // In the directed unit-budget game the directed cycle is a
        // natural equilibrium candidate: any re-target strands the
        // player's successor chain. Verify exactly at n = 5.
        let r = DirectedRealization::new(bbncg_graph::generators::cycle(5));
        assert!(directed_is_nash(&r));
    }

    #[test]
    fn best_response_reconnects() {
        // 0 -> 1, 1 -> 0, 2 -> 0: player 2 is fine; player 0 could
        // prefer pointing at 2? From 0: via 1? 1 -> 0 only. 0 -> 1
        // gives d(1) = 1, d(2) unreachable -> 1 + 9. 0 -> 2 gives
        // d(2) = 1, d(1) unreachable -> 1 + 9. Tie; lex keeps {1}.
        let r = DirectedRealization::new(OwnedDigraph::from_arcs(3, &[(0, 1), (1, 0), (2, 0)]));
        let br = directed_best_response(&r, v(0));
        assert_eq!(br.cost, 1 + 9);
        assert_eq!(br.targets, vec![v(1)]);
    }

    #[test]
    fn cost_with_strategy_matches_applied() {
        let r = DirectedRealization::new(OwnedDigraph::from_arcs(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        ));
        let mut r2 = r.clone();
        r2.set_strategy(v(1), vec![v(4)]);
        assert_eq!(r.cost_with_strategy(v(1), &[v(4)]), r2.cost(v(1)));
    }

    #[test]
    fn directed_vs_undirected_cost_differ() {
        // The same arcs under the undirected game give strictly lower
        // costs (links usable both ways) — the model distinction.
        let g = OwnedDigraph::from_arcs(3, &[(0, 1), (1, 2)]);
        let directed = DirectedRealization::new(g.clone());
        let undirected = bbncg_core::Realization::new(g);
        assert!(directed.cost(v(2)) > undirected.cost(v(2), bbncg_core::CostModel::Sum));
    }
}
