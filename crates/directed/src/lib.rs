//! The **directed** bounded-budget connection (BBC) game of Laoutaris,
//! Poplawski, Rajaraman, Sundaram and Teng (PODC 2008) — the model the
//! reproduced paper builds on and contrasts itself against.
//!
//! Differences from the undirected `(b₁,…,bₙ)-BG` game implemented in
//! [`bbncg_core`]:
//!
//! * links are usable **only by their buyer's side** (`i → j` carries
//!   traffic from `i` toward `j` only), so distances are directed;
//! * best-response dynamics **provably may cycle** (Laoutaris et al.
//!   construct a loop), whereas the undirected game's convergence is
//!   the open problem of the reproduced paper's §8.
//!
//! This crate implements the directed game exactly (costs, exact best
//! responses, Nash verification, round-robin dynamics with cycle
//! detection) so the `e-directed-baseline` experiment can compare the
//! two models side by side.

#![warn(missing_docs)]

pub mod dynamics;
pub mod game;

pub use dynamics::{hunt_for_cycles, run_directed_dynamics, DirectedDynamicsReport};
pub use game::{
    directed_best_response, directed_is_best_response, directed_is_nash, DirectedRealization,
};
