//! Best-response dynamics for the directed game — including the hunt
//! for best-response cycles.
//!
//! Laoutaris et al. prove their directed game need not converge: they
//! exhibit an explicit best-response loop. [`run_directed_dynamics`]
//! plays round-robin exact best responses with full profile-history
//! hashing, so any revisited profile is caught and reported — and
//! [`hunt_for_cycles`] sweeps seeds/instances to measure how often
//! trajectories cycle in practice, the quantity the undirected paper's
//! §8 contrasts.

use crate::game::{directed_best_response, DirectedRealization};
use bbncg_graph::NodeId;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Outcome of a directed dynamics run.
#[derive(Clone, Debug)]
pub struct DirectedDynamicsReport {
    /// Final profile.
    pub state: DirectedRealization,
    /// A full round passed with no improving move.
    pub converged: bool,
    /// A previously seen profile was revisited (a proven best-response
    /// cycle under round-robin order).
    pub cycled: bool,
    /// Applied deviations.
    pub steps: usize,
    /// Completed rounds.
    pub rounds: usize,
}

fn profile_hash(r: &DirectedRealization) -> u64 {
    let mut h = DefaultHasher::new();
    r.graph().hash(&mut h);
    h.finish()
}

/// Round-robin exact best-response dynamics with cycle detection.
pub fn run_directed_dynamics(
    initial: DirectedRealization,
    max_rounds: usize,
) -> DirectedDynamicsReport {
    let n = initial.n();
    let mut state = initial;
    let mut steps = 0;
    let mut rounds = 0;
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(profile_hash(&state));
    while rounds < max_rounds {
        let mut improved = false;
        for i in 0..n {
            let u = NodeId::new(i);
            if state.graph().out_degree(u) == 0 {
                continue;
            }
            let current = state.cost(u);
            let best = directed_best_response(&state, u);
            if best.cost < current {
                state.set_strategy(u, best.targets);
                steps += 1;
                improved = true;
            }
        }
        rounds += 1;
        if !improved {
            return DirectedDynamicsReport {
                state,
                converged: true,
                cycled: false,
                steps,
                rounds,
            };
        }
        if !seen.insert(profile_hash(&state)) {
            return DirectedDynamicsReport {
                state,
                converged: false,
                cycled: true,
                steps,
                rounds,
            };
        }
    }
    DirectedDynamicsReport {
        state,
        converged: false,
        cycled: false,
        steps,
        rounds,
    }
}

/// Sweep seeds over random initial profiles of the uniform-budget
/// directed game and count convergence vs. cycling — the §8 comparison
/// numbers. Returns `(converged, cycled, timed_out)`.
pub fn hunt_for_cycles(
    n: usize,
    budget: usize,
    seeds: u64,
    max_rounds: usize,
) -> (usize, usize, usize) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let outcomes = bbncg_par::par_map_index(seeds as usize, |s| {
        let mut rng = StdRng::seed_from_u64(s as u64);
        let budgets = vec![budget; n];
        let g = bbncg_graph::generators::random_realization(&budgets, &mut rng);
        let rep = run_directed_dynamics(DirectedRealization::new(g), max_rounds);
        (rep.converged, rep.cycled)
    });
    let converged = outcomes.iter().filter(|o| o.0).count();
    let cycled = outcomes.iter().filter(|o| o.1).count();
    (converged, cycled, outcomes.len() - converged - cycled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::directed_is_nash;
    use bbncg_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converged_runs_are_nash() {
        let mut rng = StdRng::seed_from_u64(3);
        for seed in 0..4u64 {
            let _ = seed;
            let budgets = vec![1usize; 7];
            let g = generators::random_realization(&budgets, &mut rng);
            let rep = run_directed_dynamics(DirectedRealization::new(g), 300);
            if rep.converged {
                assert!(directed_is_nash(&rep.state));
            } else {
                assert!(rep.cycled || rep.rounds == 300);
            }
        }
    }

    #[test]
    fn directed_cycle_is_a_fixed_point() {
        let rep = run_directed_dynamics(DirectedRealization::new(generators::cycle(6)), 50);
        assert!(rep.converged);
        assert_eq!(rep.steps, 0);
    }

    #[test]
    fn hunt_reports_consistent_totals() {
        let (c, y, t) = hunt_for_cycles(6, 1, 6, 100);
        assert_eq!(c + y + t, 6);
    }
}
