//! Property-based tests for the directed BBC baseline game.

use bbncg_directed::{directed_best_response, directed_is_nash, DirectedRealization};
use bbncg_graph::{generators, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `cost_with_strategy` prices deviations identically to applying
    /// them.
    #[test]
    fn deviation_pricing_is_consistent(n in 3usize..9, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets: Vec<usize> = (0..n).map(|i| 1 + i % 2).collect();
        let r = DirectedRealization::new(generators::random_realization(&budgets, &mut rng));
        for u in 0..n {
            let u = NodeId::new(u);
            let b = r.graph().out_degree(u);
            // Deterministic candidate: the b smallest non-self ids.
            let targets: Vec<NodeId> = (0..n)
                .map(NodeId::new)
                .filter(|&t| t != u)
                .take(b)
                .collect();
            let priced = r.cost_with_strategy(u, &targets);
            let mut applied = r.clone();
            applied.set_strategy(u, targets);
            prop_assert_eq!(priced, applied.cost(u));
        }
    }

    /// The best response never costs more than the current strategy,
    /// and applying it makes the player stable.
    #[test]
    fn best_response_is_optimal(n in 3usize..8, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets = vec![1usize; n];
        let r = DirectedRealization::new(generators::random_realization(&budgets, &mut rng));
        let u = NodeId::new(0);
        let br = directed_best_response(&r, u);
        prop_assert!(br.cost <= r.cost(u));
        let mut applied = r.clone();
        applied.set_strategy(u, br.targets);
        prop_assert_eq!(applied.cost(u), br.cost);
        prop_assert!(bbncg_directed::directed_is_best_response(&applied, u));
    }

    /// Directed costs dominate undirected SUM costs on the same arcs
    /// (one-way links can only hurt).
    #[test]
    fn directed_cost_dominates_undirected(n in 3usize..9, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let g = generators::random_realization(&budgets, &mut rng);
        let directed = DirectedRealization::new(g.clone());
        let undirected = bbncg_core::Realization::new(g);
        for u in 0..n {
            let u = NodeId::new(u);
            prop_assert!(
                directed.cost(u) >= undirected.cost(u, bbncg_core::CostModel::Sum)
            );
        }
    }

    /// The directed cycle is always a Nash equilibrium of the directed
    /// unit game.
    #[test]
    fn directed_cycle_is_always_nash(n in 3usize..8) {
        let r = DirectedRealization::new(generators::cycle(n));
        prop_assert!(directed_is_nash(&r));
    }
}
